//! Schedulability acceptance study: how many random tasks does each
//! analysis admit at a given deadline tightness?
//!
//! Sweeps the deadline factor `D = k · len(G)` and reports acceptance
//! ratios of the homogeneous and heterogeneous analyses, plus the
//! empirical check that admitted tasks indeed meet their deadline in
//! simulation (soundness in action).
//!
//! ```text
//! cargo run --release --example schedulability_check
//! ```

use hetrta::analysis::HeterogeneousAnalysis;
use hetrta::gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta::gen::{generate_nfj, NfjParams};
use hetrta::sim::policy::BreadthFirst;
use hetrta::sim::{simulate, Platform};
use hetrta::{HeteroDagTask, Ticks};
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: u64 = 4;
const TASKS: u64 = 50;
const OFFLOAD_FRACTION: f64 = 0.25;

fn task_with_deadline(seed: u64, factor_pct: u64) -> HeteroDagTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(
        &NfjParams::large_tasks().with_node_range(100, 200),
        &mut rng,
    )
    .expect("generation succeeds");
    let t = make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(OFFLOAD_FRACTION),
        &mut rng,
    )
    .expect("offload succeeds");
    let d = Ticks::new(t.critical_path_length().get() * factor_pct / 100);
    HeteroDagTask::new(t.dag().clone(), t.offloaded(), d, d).expect("valid deadline")
}

fn main() {
    println!(
        "acceptance over {TASKS} random tasks, m = {M} cores, C_off/vol = {:.0}%\n",
        OFFLOAD_FRACTION * 100.0
    );
    println!("  D/len(G) | hom accepts | het accepts | het-only | deadline misses among admitted");
    println!("  ---------+-------------+-------------+----------+--------------------------------");
    for factor_pct in [110u64, 130, 150, 175, 200, 250, 300] {
        let mut hom = 0u32;
        let mut het = 0u32;
        let mut het_only = 0u32;
        let mut misses = 0u32;
        for seed in 0..TASKS {
            let task = task_with_deadline(seed, factor_pct);
            let report = HeterogeneousAnalysis::run(&task, M).expect("analysis succeeds");
            let hom_ok = report.is_schedulable_homogeneous();
            let het_ok = report.is_schedulable();
            hom += u32::from(hom_ok);
            het += u32::from(het_ok);
            het_only += u32::from(het_ok && !hom_ok);
            if het_ok {
                // Empirical confirmation: simulate the transformed task.
                let run = simulate(
                    report.transformed().transformed(),
                    Some(task.offloaded()),
                    Platform::with_accelerator(M as usize),
                    &mut BreadthFirst::new(),
                )
                .expect("simulation succeeds");
                if run.makespan() > task.deadline() {
                    misses += 1;
                }
            }
        }
        println!(
            "  {:>7.2}x | {:>11} | {:>11} | {:>8} | {:>8}",
            f64::from(u32::try_from(factor_pct).unwrap()) / 100.0,
            format!("{hom}/{TASKS}"),
            format!("{het}/{TASKS}"),
            het_only,
            misses,
        );
        assert_eq!(misses, 0, "an admitted task missed its deadline — unsound!");
    }
    println!("\nEvery task admitted by R_het met its deadline in simulation (0 misses).");
}
