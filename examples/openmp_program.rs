//! From an OpenMP-style tasking program to a verified response time — the
//! workflow the paper motivates: write `task`/`target`/`taskwait`
//! structure, derive the DAG, run the heterogeneous analysis.
//!
//! ```text
//! cargo run --example openmp_program
//! ```

use hetrta::analysis::HeterogeneousAnalysis;
use hetrta::gen::openmp::{Program, Stmt};
use hetrta::sim::policy::BreadthFirst;
use hetrta::sim::{simulate, trace, Platform};
use hetrta::{HeteroDagTask, Ticks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // void frame() {
    //   preprocess();                        // 4
    //   #pragma omp target                   // GPU inference: 30
    //     { cnn(); }
    //   #pragma omp task { features(); }     // 12
    //   #pragma omp task { landmarks(); }    // 10
    //   filter();                            // 6
    //   #pragma omp taskwait
    //   fuse();                              // 3
    // }
    let program = Program::new(vec![
        Stmt::work("preprocess", 4),
        Stmt::offload("cnn", 30),
        Stmt::spawn(Program::new(vec![Stmt::work("features", 12)])),
        Stmt::spawn(Program::new(vec![Stmt::work("landmarks", 10)])),
        Stmt::work("filter", 6),
        Stmt::Taskwait,
        Stmt::work("fuse", 3),
    ]);

    let lowered = program.lower()?;
    println!(
        "derived DAG: {} nodes, {} edges, vol = {}, len = {}, width = {}",
        lowered.dag.node_count(),
        lowered.dag.edge_count(),
        lowered.dag.volume(),
        hetrta::dag::algo::CriticalPath::of(&lowered.dag).length(),
        hetrta::dag::algo::width(&lowered.dag)?,
    );

    let v_off = lowered.offloaded.expect("program has a target region");
    let task = HeteroDagTask::new(lowered.dag, v_off, Ticks::new(60), Ticks::new(45))?;

    println!("\n  m | R_hom | R_het | scenario | meets D=45?");
    println!("  --+-------+-------+----------+------------");
    for m in [1u64, 2, 4] {
        let report = HeterogeneousAnalysis::run(&task, m)?;
        println!(
            "  {m} | {:>5.1} | {:>5.1} | {:>8} | {}",
            report.r_hom_original().to_f64(),
            report.r_het().to_f64(),
            report.scenario().paper_label(),
            if report.is_schedulable() { "yes" } else { "no" },
        );
    }

    let report = HeterogeneousAnalysis::run(&task, 2)?;
    let run = simulate(
        report.transformed().transformed(),
        Some(v_off),
        Platform::with_accelerator(2),
        &mut BreadthFirst::new(),
    )?;
    println!(
        "\ntransformed program on 2 cores + GPU (makespan {}):",
        run.makespan()
    );
    print!(
        "{}",
        trace::gantt(report.transformed().transformed(), &run, 1)
    );
    Ok(())
}
