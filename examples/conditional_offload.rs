//! Conditional DAG task with an offloadable kernel (extension combining
//! the paper with its reference [12]).
//!
//! An adaptive perception task: a preprocessing stage, then *either* the
//! GPU path (kernel offloaded, host filters in parallel) *or* a software
//! fallback, then postprocessing. The analysis covers both realizations;
//! the fallback realization never touches the device.
//!
//! ```text
//! cargo run --example conditional_offload
//! ```

use hetrta::cond::{r_cond, r_cond_exact, r_parallel_flattening, CondExpr, HetCondTask};
use hetrta::Ticks;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // pre ; if { (kernel ∥ edge ∥ flow) | soft_fallback } ; fuse
    let expr = CondExpr::series(vec![
        CondExpr::leaf("pre", 4),
        CondExpr::conditional(vec![
            CondExpr::parallel(vec![
                CondExpr::leaf("kernel", 26), // offloaded on the GPU path
                CondExpr::leaf("edge", 11),
                CondExpr::leaf("flow", 9),
            ]),
            CondExpr::leaf("soft_fallback", 30),
        ]),
        CondExpr::leaf("fuse", 3),
    ]);

    println!(
        "conditional task: {} leaves, {} realizations, W* = {}, len* = {}\n",
        expr.leaf_count(),
        expr.realization_count(),
        expr.worst_case_workload(),
        expr.worst_case_length()
    );

    println!("  m   flatten-all   cond-aware   per-realization   het (kernel offloaded)");
    for m in [2u64, 4, 8] {
        let flat = r_parallel_flattening(&expr, m)?;
        let aware = r_cond(&expr, m)?;
        let exact = r_cond_exact(&expr, m, 100)?;
        let task = HetCondTask::new(expr.clone(), "kernel", Ticks::new(120), Ticks::new(80))?;
        let het = task.r_het_cond(m, 100)?;
        println!(
            "{m:>3}   {:>11.2} {:>12.2} {:>17.2} {:>23.2}",
            flat.to_f64(),
            aware.to_f64(),
            exact.to_f64(),
            het.to_f64()
        );
    }

    let task = HetCondTask::new(expr, "kernel", Ticks::new(120), Ticks::new(80))?;
    println!("\nper-realization detail (m = 2):");
    for rb in task.analyze_realizations(2, 100)? {
        println!(
            "  choices {:?}: {} — bound {:.2}",
            rb.choices,
            if rb.offloads {
                "GPU path (Theorem 1)"
            } else {
                "fallback path (Eq. 1)"
            },
            rb.bound.to_f64()
        );
    }
    println!(
        "\nschedulable on 2 cores + GPU with D = 80: {}",
        task.is_schedulable(2, 100)?
    );
    Ok(())
}
