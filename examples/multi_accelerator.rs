//! Multi-offload / multi-device extension (the paper's future work):
//! a task with two GPU kernels analyzed on one vs. two devices, with the
//! bounds checked against the multi-device simulator.
//!
//! ```text
//! cargo run --example multi_accelerator
//! ```

use hetrta::analysis::multi::r_het_multi;
use hetrta::sim::policy::BreadthFirst;
use hetrta::sim::{simulate_multi, trace, Platform};
use hetrta::{DagBuilder, Ticks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stereo perception: two independent CNN kernels plus host-side fusion.
    let mut b = DagBuilder::new();
    let capture = b.node("capture", Ticks::new(3));
    let left = b.node("cnn_left", Ticks::new(24));
    let right = b.node("cnn_right", Ticks::new(24));
    let flow = b.node("optical_flow", Ticks::new(18));
    let track = b.node("tracking", Ticks::new(12));
    let fuse = b.node("fusion", Ticks::new(5));
    b.edges([
        (capture, left),
        (capture, right),
        (capture, flow),
        (flow, track),
        (left, fuse),
        (right, fuse),
        (track, fuse),
    ])?;
    let dag = b.build()?;
    let kernels = [left, right];
    let m = 2usize;

    println!(
        "stereo pipeline: vol = {}, two offloadable kernels of 24 each\n",
        dag.volume()
    );
    println!("devices | bound (best) | typed bound | candidate plan | simulated (BFS)");
    println!("--------+--------------+-------------+----------------+----------------");
    for d in [1usize, 2] {
        let bound = r_het_multi(&dag, &kernels, m as u64, d as u64)?;
        let run = simulate_multi(
            &dag,
            &kernels,
            Platform::new(m, d),
            &mut BreadthFirst::new(),
        )?;
        let plan = bound
            .candidate()
            .map_or("- (shared device)".to_owned(), |p| {
                format!("transform @ {}", p.node)
            });
        println!(
            "      {d} | {:>12.2} | {:>11.2} | {:>14} | {:>14}",
            bound.value().to_f64(),
            bound.typed_bound().to_f64(),
            plan,
            run.makespan(),
        );
        assert!(run.makespan().to_rational() <= bound.typed_bound());
    }

    let run2 = simulate_multi(
        &dag,
        &kernels,
        Platform::new(m, 2),
        &mut BreadthFirst::new(),
    )?;
    println!(
        "\nschedule with two devices:\n{}",
        trace::gantt(&dag, &run2, 1)
    );
    println!(
        "A second device lets both kernels overlap ({} vs {} ticks simulated).",
        run2.makespan(),
        simulate_multi(
            &dag,
            &kernels,
            Platform::new(m, 1),
            &mut BreadthFirst::new()
        )?
        .makespan()
    );
    Ok(())
}
