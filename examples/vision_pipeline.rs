//! A realistic embedded scenario: camera-based perception pipeline on a
//! heterogeneous SoC (the NVIDIA-TX1-class platform the paper's
//! introduction motivates), with the CNN inference kernel offloaded to the
//! GPU.
//!
//! The example sizes the stages in microseconds, checks schedulability at
//! a 30 Hz frame deadline across host core counts, and shows where the
//! paper's heterogeneous analysis admits configurations the homogeneous
//! analysis rejects.
//!
//! ```text
//! cargo run --example vision_pipeline
//! ```

use hetrta::analysis::HeterogeneousAnalysis;
use hetrta::sim::policy::BreadthFirst;
use hetrta::sim::{simulate, Platform};
use hetrta::{DagBuilder, HeteroDagTask, Ticks};

fn build_pipeline() -> Result<HeteroDagTask, Box<dyn std::error::Error>> {
    // WCETs in hundreds of microseconds.
    let mut b = DagBuilder::new();
    let capture = b.node("capture", Ticks::new(10));
    let debayer = b.node("debayer", Ticks::new(25));
    let resize = b.node("resize", Ticks::new(15));
    // The CNN runs on the GPU: one offloaded region.
    let cnn = b.node("cnn_inference", Ticks::new(120));
    // Classic CV runs on the host, in parallel with the CNN.
    let lanes = b.node("lane_detect", Ticks::new(60));
    let optical = b.node("optical_flow", Ticks::new(70));
    let tracker = b.node("object_track", Ticks::new(40));
    let fusion = b.node("fusion", Ticks::new(30));
    let control = b.node("control", Ticks::new(12));
    b.edges([
        (capture, debayer),
        (debayer, resize),
        (resize, cnn),
        (resize, lanes),
        (resize, optical),
        (optical, tracker),
        (cnn, fusion),
        (lanes, fusion),
        (tracker, fusion),
        (fusion, control),
    ])?;
    // 30 Hz → ~333 (x100 µs); constrained deadline at 300.
    Ok(HeteroDagTask::new(
        b.build()?,
        cnn,
        Ticks::new(333),
        Ticks::new(300),
    )?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = build_pipeline()?;
    println!(
        "perception pipeline: {} stages, vol = {} (x100us), C_off = {} ({:.1}% of volume), D = {}",
        task.dag().node_count(),
        task.volume(),
        task.c_off(),
        task.offload_fraction().to_f64() * 100.0,
        task.deadline(),
    );
    println!("\n  m | R_hom(tau) | R_het(tau') | scenario | hom says | het says | simulated tau'");
    println!("  --+------------+-------------+----------+----------+----------+---------------");
    for m in [1u64, 2, 4, 8] {
        let report = HeterogeneousAnalysis::run(&task, m)?;
        let sim = simulate(
            report.transformed().transformed(),
            Some(task.offloaded()),
            Platform::with_accelerator(m as usize),
            &mut BreadthFirst::new(),
        )?;
        println!(
            "  {m} | {:>10.1} | {:>11.1} | {:>8} | {:>8} | {:>8} | {:>13}",
            report.r_hom_original().to_f64(),
            report.r_het().to_f64(),
            report.scenario().paper_label(),
            if report.is_schedulable_homogeneous() {
                "OK"
            } else {
                "MISS"
            },
            if report.is_schedulable() {
                "OK"
            } else {
                "MISS"
            },
            sim.makespan(),
        );
    }
    println!(
        "\nThe GPU offload is {:.0}% of the volume — well past the paper's ~10% \
         threshold, so the heterogeneous analysis admits the pipeline on \
         fewer cores than the homogeneous one.",
        task.offload_fraction().to_f64() * 100.0
    );
    Ok(())
}
