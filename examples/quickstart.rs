//! Quickstart: build a heterogeneous DAG task, analyze it, simulate it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hetrta::analysis::HeterogeneousAnalysis;
use hetrta::sim::policy::BreadthFirst;
use hetrta::sim::{simulate, trace, Platform};
use hetrta::{DagBuilder, HeteroDagTask, Ticks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small offload pattern: prepare on the host, run a kernel on the
    // accelerator while the host post-processes a parallel branch, then
    // merge.
    let mut b = DagBuilder::new();
    let prepare = b.node("prepare", Ticks::new(4));
    let kernel = b.node("kernel", Ticks::new(20)); // runs on the GPU
    let filter = b.node("filter", Ticks::new(9));
    let reduce = b.node("reduce", Ticks::new(8));
    let merge = b.node("merge", Ticks::new(3));
    b.edges([
        (prepare, kernel),
        (prepare, filter),
        (prepare, reduce),
        (kernel, merge),
        (filter, merge),
        (reduce, merge),
    ])?;
    let task = HeteroDagTask::new(b.build()?, kernel, Ticks::new(60), Ticks::new(40))?;

    println!(
        "task: vol = {}, len = {}, C_off = {}",
        task.volume(),
        task.critical_path_length(),
        task.c_off()
    );

    // Analyze on a 2-core host + 1 accelerator.
    let report = HeterogeneousAnalysis::run(&task, 2)?;
    println!("\nanalysis (m = 2):");
    println!(
        "  R_hom(tau)   = {:>6}  (homogeneous baseline, Eq. 1)",
        report.r_hom_original()
    );
    println!(
        "  R_het(tau')  = {:>6}  ({})",
        report.r_het(),
        report.scenario()
    );
    println!(
        "  deadline     = {:>6}  -> schedulable: {}",
        report.deadline(),
        report.is_schedulable()
    );

    // Simulate the transformed task under the GOMP-like breadth-first
    // scheduler and show the schedule.
    let t = report.transformed();
    let run = simulate(
        t.transformed(),
        Some(task.offloaded()),
        Platform::with_accelerator(2),
        &mut BreadthFirst::new(),
    )?;
    println!(
        "\nsimulated makespan of tau': {} (bound was {})",
        run.makespan(),
        report.r_het()
    );
    println!("\n{}", trace::gantt(t.transformed(), &run, 1));
    Ok(())
}
