//! Design-space exploration: how many host cores does a randomly generated
//! workload need, as a function of how much of it is offloaded?
//!
//! For each offload fraction, finds the smallest `m` for which the task
//! set is schedulable under (a) the homogeneous analysis and (b) the
//! heterogeneous analysis of the paper — quantifying saved silicon.
//!
//! ```text
//! cargo run --release --example design_space_sweep
//! ```

use hetrta::analysis::HeterogeneousAnalysis;
use hetrta::gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta::gen::{generate_nfj, NfjParams};
use hetrta::{HeteroDagTask, Rational, Ticks};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deadline factor: D = factor · len(G) — a tight-but-feasible budget.
const DEADLINE_FACTOR: (u64, u64) = (5, 2); // 2.5x

fn generate_task(seed: u64, fraction: f64) -> HeteroDagTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(
        &NfjParams::large_tasks().with_node_range(100, 200),
        &mut rng,
    )
    .expect("generation succeeds");
    let task = make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(fraction),
        &mut rng,
    )
    .expect("offload succeeds");
    // re-wrap with a deadline proportional to the critical path
    let len = task.critical_path_length();
    let d = Ticks::new(len.get() * DEADLINE_FACTOR.0 / DEADLINE_FACTOR.1);
    HeteroDagTask::new(task.dag().clone(), task.offloaded(), d, d).expect("valid deadline")
}

fn min_cores(task: &HeteroDagTask, heterogeneous: bool) -> Option<u64> {
    let d = task.deadline().to_rational();
    (1..=64u64).find(|&m| {
        let report = HeterogeneousAnalysis::run(task, m).expect("analysis succeeds");
        let bound: Rational = if heterogeneous {
            report.r_het()
        } else {
            report.r_hom_original()
        };
        bound <= d
    })
}

fn main() {
    const TASKS: u64 = 20;
    println!("minimum host cores to meet D = 2.5 x len(G), averaged over {TASKS} random tasks\n");
    println!("  C_off/vol | min m (hom analysis) | min m (het analysis) | avg cores saved");
    println!("  ----------+----------------------+----------------------+----------------");
    for fraction in [0.02, 0.05, 0.10, 0.20, 0.30, 0.45, 0.60] {
        let mut hom_sum = 0.0;
        let mut het_sum = 0.0;
        let mut counted = 0u32;
        for seed in 0..TASKS {
            let task = generate_task(seed, fraction);
            let (Some(hom), Some(het)) = (min_cores(&task, false), min_cores(&task, true)) else {
                continue;
            };
            hom_sum += hom as f64;
            het_sum += het as f64;
            counted += 1;
        }
        let n = f64::from(counted.max(1));
        println!(
            "  {:>8.1}% | {:>20.2} | {:>20.2} | {:>15.2}",
            fraction * 100.0,
            hom_sum / n,
            het_sum / n,
            (hom_sum - het_sum) / n,
        );
    }
    println!(
        "\nLarger offloaded regions let the heterogeneous analysis certify the \
         same deadlines on fewer host cores (paper, Section 5.4)."
    );
}
