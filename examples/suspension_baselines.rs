//! Self-suspending baselines vs. the paper's Theorem 1 (related work, §6).
//!
//! For a sweep of offload fractions, prints every classical bound next to
//! `R_het` and the worst work-conserving schedule the simulator can find —
//! including the **unsound** naive discount of §3.2, whose violations are
//! flagged in the last column (the executable Figure 1(c) argument).
//!
//! ```text
//! cargo run --release --example suspension_baselines
//! ```

use hetrta::gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta::gen::{generate_nfj, NfjParams};
use hetrta::sim::{explore_worst_case, Platform};
use hetrta::suspend::BaselineComparison;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 2usize;
    println!("single-task bounds on m = {m} cores + 1 accelerator (averages over 25 tasks)\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "C_off/vol", "oblivious", "barrier", "R_het~", "naive(!)", "sim-worst", "violated"
    );

    for pct in [5u32, 10, 20, 30, 45, 60] {
        let f = pct as f64 / 100.0;
        let (mut obl, mut bar, mut het, mut naive, mut worst) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut violations = 0usize;
        let mut count = 0usize;
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(pct) << 32));
            let Ok(dag) = generate_nfj(&NfjParams::small_tasks(), &mut rng) else {
                continue;
            };
            let Ok(task) = make_hetero_task(
                dag,
                OffloadSelection::AnyInterior,
                CoffSizing::VolumeFraction(f),
                &mut rng,
            ) else {
                continue;
            };
            let c = BaselineComparison::compute(&task, m as u64)?;
            let w = explore_worst_case(
                task.dag(),
                Some(task.offloaded()),
                Platform::with_accelerator(m),
                60,
            )?
            .makespan();
            obl += c.oblivious.to_f64();
            bar += c.phase_barrier.to_f64();
            het += c.r_het_tight.to_f64();
            naive += c.naive_unsound.to_f64();
            worst += w.as_f64();
            if w.to_rational() > c.naive_unsound {
                violations += 1;
            }
            count += 1;
        }
        let n = count.max(1) as f64;
        println!(
            "{:>7}% {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>7}/{}",
            pct,
            obl / n,
            bar / n,
            het / n,
            naive / n,
            worst / n,
            violations,
            count
        );
    }

    println!("\nR_het~ is min(R_het, R_hom(G')); 'violated' counts tasks whose observed");
    println!("worst work-conserving schedule of tau exceeded the naive discount bound —");
    println!("nonzero counts are the paper's Figure 1(c) phenomenon in the wild.");
    Ok(())
}
