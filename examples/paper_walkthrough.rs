//! Step-by-step walkthrough of the paper's Sections 3–4 on the Figure 1
//! example: the homogeneous bound, why naive discounting is unsound, the
//! DAG transformation (with DOT output), and the heterogeneous bound.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use hetrta::analysis::{r_het, r_hom_dag, transform};
use hetrta::dag::dot::{to_dot, DotOptions};
use hetrta::sim::{explore_worst_case, Platform};
use hetrta::{DagBuilder, HeteroDagTask, Rational, Ticks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1(a), WCETs reconstructed from the paper's aggregates.
    let mut b = DagBuilder::new();
    let v1 = b.node("v1", Ticks::new(1));
    let v2 = b.node("v2", Ticks::new(4));
    let v3 = b.node("v3", Ticks::new(6));
    let v4 = b.node("v4", Ticks::new(2));
    let v5 = b.node("v5", Ticks::new(1));
    let voff = b.node("v_off", Ticks::new(4));
    b.edges([
        (v1, v2),
        (v1, v3),
        (v1, v4),
        (v4, voff),
        (v2, v5),
        (v3, v5),
        (voff, v5),
    ])?;
    let task = HeteroDagTask::new(b.build()?, voff, Ticks::new(50), Ticks::new(50))?;
    let m = 2u64;

    println!("== Step 1: the homogeneous bound (Eq. 1) ==");
    let r_hom = r_hom_dag(task.dag(), m)?;
    println!(
        "vol(G) = {}, len(G) = {}  =>  R_hom = len + (vol-len)/m = {r_hom}",
        task.volume(),
        task.critical_path_length()
    );

    println!("\n== Step 2: why naively discounting C_off/m is UNSOUND ==");
    let naive = r_hom - Rational::new(task.c_off().get() as i128, m as i128);
    let worst = explore_worst_case(
        task.dag(),
        Some(task.offloaded()),
        Platform::with_accelerator(m as usize),
        500,
    )?;
    println!(
        "naive bound: {naive}; but a legal work-conserving schedule reaches {}",
        worst.makespan()
    );
    println!("(the paper's Figure 1(c): all cores idle while v_off runs)");

    println!("\n== Step 3: Algorithm 1 — insert the synchronization node ==");
    let t = transform(&task)?;
    println!(
        "len(G') = {} (was {}), G_par: {} nodes, vol(G_par) = {}, len(G_par) = {}",
        t.len_transformed(),
        task.critical_path_length(),
        t.par_nodes().len(),
        t.vol_g_par(),
        t.len_g_par()
    );
    let mut opts = DotOptions::named("transformed");
    opts.offloaded = Some(task.offloaded());
    opts.sync = Some(t.sync_node());
    opts.highlight = Some(t.par_nodes().clone());
    println!(
        "\nGraphviz of G' (pipe into `dot -Tpng`):\n{}",
        to_dot(t.transformed(), &opts)
    );

    println!("== Step 4: Theorem 1 — the heterogeneous bound ==");
    let bound = r_het(&t, m)?;
    println!(
        "{}: R_het(tau') = {}  (vs R_hom(tau) = {r_hom}; worst observed schedule of tau' <= bound)",
        bound.scenario(),
        bound.value()
    );
    let worst_t = explore_worst_case(
        t.transformed(),
        Some(task.offloaded()),
        Platform::with_accelerator(m as usize),
        500,
    )?;
    println!(
        "worst observed makespan of tau' over 500 random schedules: {}",
        worst_t.makespan()
    );
    assert!(worst_t.makespan().to_rational() <= bound.value());
    Ok(())
}
