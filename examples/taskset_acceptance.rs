//! Task-set schedulability: acceptance-ratio comparison of the global
//! tests (extension of the paper's single-task evaluation).
//!
//! Sweeps the normalized utilization `U/m` and reports, per test, the
//! fraction of random heterogeneous task sets accepted — the standard way
//! to compare schedulability analyses at system level. The heterogeneous
//! tests (Theorem 1 intra-task bound, host-only interference) accept
//! strictly more sets than their homogeneous counterparts once a sizable
//! share of each task is offloaded.
//!
//! ```text
//! cargo run --release --example taskset_acceptance
//! ```

use hetrta::sched::acceptance::{acceptance_sweep, AcceptanceConfig, TestKind};
use hetrta::sched::taskset::TaskSetParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = 4;
    let config = AcceptanceConfig {
        cores,
        n_tasks: 4,
        sets_per_point: 40,
        normalized_utils: (1..=9).map(|i| i as f64 / 10.0).collect(),
        template: TaskSetParams::small(4, 1.0).with_offload_fraction(0.2, 0.45),
        seed: 0xDAC_2018,
    };

    println!(
        "acceptance ratios, m = {cores} host cores, {} tasks/set, {} sets/point",
        config.n_tasks, config.sets_per_point
    );
    println!("offload fraction per task: 20-45% of vol\n");

    print!("{:>6}", "U/m");
    for t in TestKind::ALL {
        print!("{:>10}", t.label());
    }
    println!();

    for point in acceptance_sweep(&config)? {
        print!("{:>6.2}", point.normalized_util);
        for t in TestKind::ALL {
            print!("{:>10.2}", point.ratio(t));
        }
        println!();
    }

    println!("\nreading guide: het columns should dominate their hom counterparts;");
    println!("federated wastes cores on low-utilization tasks, so the global tests");
    println!("overtake it as the set gets denser.");
    Ok(())
}
