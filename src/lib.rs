//! # hetrta — Response-Time Analysis of DAG Tasks Supporting Heterogeneous Computing
//!
//! Facade crate for the `hetrta` workspace, a from-scratch Rust reproduction
//! of *Serrano & Quiñones, "Response-Time Analysis of DAG Tasks Supporting
//! Heterogeneous Computing", DAC 2018*.
//!
//! The workspace is organized as ten library crates, all re-exported here:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`dag`] | `hetrta-dag` | DAG model, graph algorithms, exact arithmetic |
//! | [`gen`] | `hetrta-gen` | random DAG task generators (paper §5.1) |
//! | [`analysis`] | `hetrta-core` | Algorithm 1 transformation + Theorem 1 RTA |
//! | [`api`] | `hetrta-api` | unified [`Analysis`](api::Analysis) trait, typed request/outcome, key-addressed registry |
//! | [`sim`] | `hetrta-sim` | work-conserving execution simulator (paper §5.2) |
//! | [`exact`] | `hetrta-exact` | exact minimum-makespan solver (ILP substitute, §5.3) |
//! | [`sched`] | `hetrta-sched` | multi-task global schedulability (extension: future work "(i) more tasks") |
//! | [`suspend`] | `hetrta-suspend` | self-suspending baselines (the related work of §6) |
//! | [`cond`] | `hetrta-cond` | conditional DAG tasks (the model of reference \[12\]) with offloading |
//! | [`engine`] | `hetrta-engine` | registry-driven work-stealing batch-analysis engine with bounded content-addressed caching |
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! ## The analysis registry
//!
//! Every analysis entry point is also reachable through the unified
//! [`api`] layer — one [`AnalysisRegistry`] resolving stable string keys
//! (`"het"`, `"hom"`, `"sim"`, `"exact"`, `"cond"`, `"suspend"`,
//! `"acceptance"`) to [`api::Analysis`] implementations:
//!
//! ```
//! use hetrta::api::{AnalysisOutcome, AnalysisRegistry, AnalysisRequest, DirectContext};
//! use hetrta::{DagBuilder, HeteroDagTask, Ticks};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let pre = b.node("pre", Ticks::new(2));
//! let gpu = b.node("gpu", Ticks::new(9));
//! b.edges([(pre, gpu)])?;
//! let task = HeteroDagTask::new(b.build()?, gpu, Ticks::new(40), Ticks::new(40))?;
//!
//! let registry = AnalysisRegistry::builtin();
//! let outcome = registry.run("het", &AnalysisRequest::task(task, 2), &DirectContext)?;
//! let AnalysisOutcome::Het(h) = outcome else { unreachable!() };
//! assert!(h.r_het <= h.r_hom_original);
//! # Ok(())
//! # }
//! ```
//!
//! Custom analyses implement [`api::Analysis`] and register under their
//! own key; the [`engine`] then schedules, caches, and aggregates them
//! like the builtins (see the trait docs for a complete example).
//!
//! ## Quickstart
//!
//! Analyze a heterogeneous DAG task end to end:
//!
//! ```
//! use hetrta::{DagBuilder, HeteroDagTask, Ticks};
//! use hetrta::analysis::HeterogeneousAnalysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Host part: fork-join; `kernel` runs on the accelerator.
//! let mut b = DagBuilder::new();
//! let pre = b.node("pre", Ticks::new(2));
//! let left = b.node("left", Ticks::new(6));
//! let kernel = b.node("kernel", Ticks::new(9));
//! let post = b.node("post", Ticks::new(2));
//! b.edges([(pre, left), (pre, kernel), (left, post), (kernel, post)])?;
//!
//! let task = HeteroDagTask::new(b.build()?, kernel, Ticks::new(40), Ticks::new(30))?;
//! let report = HeterogeneousAnalysis::run(&task, 4)?;
//! println!("R_het = {} vs R_hom = {}", report.r_het(), report.r_hom_original());
//! assert!(report.r_het() <= report.r_hom_original());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hetrta_api as api;
pub use hetrta_cond as cond;
pub use hetrta_core as analysis;
pub use hetrta_dag as dag;
pub use hetrta_engine as engine;
pub use hetrta_exact as exact;
pub use hetrta_gen as gen;
pub use hetrta_sched as sched;
pub use hetrta_sim as sim;
pub use hetrta_suspend as suspend;

pub use hetrta_api::{Analysis, AnalysisOutcome, AnalysisRegistry, AnalysisRequest};
pub use hetrta_core::{transform::TransformedTask, HeterogeneousAnalysis, Scenario};
pub use hetrta_dag::{Dag, DagBuilder, DagError, DagTask, HeteroDagTask, NodeId, Rational, Ticks};
pub use hetrta_engine::{Engine, EngineBuilder, EngineStats, SweepEvent, SweepHandle, SweepSpec};
