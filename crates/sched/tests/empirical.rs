//! Empirical soundness of the set-level schedulability tests.
//!
//! Every random task set accepted by a test is replayed in the sporadic
//! simulator of `hetrta-sim` under the matching discipline and platform;
//! the synchronous periodic arrival pattern is one legal sporadic arrival
//! sequence, so an observed deadline miss would disprove the test's
//! soundness. We additionally check the stronger per-job property: no
//! observed response time exceeds the task's analytical bound.

use hetrta_dag::Ticks;
use hetrta_sched::model::{AnalysisModel, DeviceModel};
use hetrta_sched::taskset::{generate_task_set, sort_deadline_monotonic, TaskSetParams};
use hetrta_sched::{gedf_test, gfp_test, SetVerdict};
use hetrta_sim::sporadic::{simulate_sporadic, Discipline, SporadicConfig};
use hetrta_sim::Platform;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HET: AnalysisModel = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);
const HET_SHARED: AnalysisModel = AnalysisModel::Heterogeneous(DeviceModel::SharedFifo);

/// The heterogeneous bounds hold for the *transformed* tasks τ′ (the
/// paper's whole point: without `v_sync`, the schedule of Figure 1(c) can
/// beat the analysis). Deploying the het analysis means deploying τ′.
fn transformed_set(tasks: &[hetrta_dag::HeteroDagTask]) -> Vec<hetrta_dag::HeteroDagTask> {
    tasks
        .iter()
        .map(|t| {
            let tr = hetrta_core::transform(t).unwrap();
            hetrta_dag::HeteroDagTask::new(
                tr.transformed().clone(),
                tr.offloaded(),
                t.period(),
                t.deadline(),
            )
            .unwrap()
        })
        .collect()
}

/// Simulation horizon: a few periods of every task.
fn horizon(tasks: &[hetrta_dag::HeteroDagTask]) -> Ticks {
    let max_t = tasks.iter().map(|t| t.period().get()).max().unwrap_or(1);
    Ticks::new(max_t * 3 + 1)
}

fn check_accepted_set(
    tasks: &[hetrta_dag::HeteroDagTask],
    verdict: &SetVerdict,
    discipline: Discipline,
    platform: Platform,
    on_host: bool,
    label: &str,
) {
    let config = SporadicConfig::new(platform, horizon(tasks))
        .discipline(discipline)
        .offload_on_host(on_host);
    let result = simulate_sporadic(tasks, &config).unwrap();
    hetrta_sim::sporadic::validate_segments(tasks, &result, &config)
        .unwrap_or_else(|e| panic!("{label}: invalid schedule: {e}"));
    assert!(
        !result.any_deadline_miss(),
        "{label}: accepted set missed a deadline (miss = {:?})",
        result.misses().next()
    );
    for tv in &verdict.per_task {
        let bound = tv.response_bound.as_ref().expect("accepted set has bounds");
        if let Some(observed) = result.max_response_time(tv.task) {
            assert!(
                observed.to_rational() <= *bound,
                "{label}: task {} observed response {} exceeds bound {}",
                tv.task,
                observed,
                bound
            );
        }
    }
}

fn run_campaign(m: u64, n_tasks: usize, util: f64, seeds: std::ops::Range<u64>) -> (usize, usize) {
    let mut accepted = 0;
    let mut total = 0;
    for seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = TaskSetParams::small(n_tasks, util).with_offload_fraction(0.1, 0.5);
        let Ok(mut set) = generate_task_set(&params, &mut rng) else {
            continue;
        };
        sort_deadline_monotonic(&mut set);
        total += 1;
        let dedicated = Platform::new(m as usize, set.len());
        let shared = Platform::with_accelerator(m as usize);
        let host_only = Platform::host_only(m as usize);

        let v = gfp_test(&set, m, AnalysisModel::Homogeneous).unwrap();
        if v.is_schedulable() {
            accepted += 1;
            check_accepted_set(
                &set,
                &v,
                Discipline::FixedPriority,
                host_only,
                true,
                "GFP-hom",
            );
        }
        let tset = transformed_set(&set);
        let v = gfp_test(&set, m, HET).unwrap();
        if v.is_schedulable() {
            check_accepted_set(
                &tset,
                &v,
                Discipline::FixedPriority,
                dedicated,
                false,
                "GFP-het",
            );
        }
        let v = gfp_test(&set, m, HET_SHARED).unwrap();
        if v.is_schedulable() {
            check_accepted_set(
                &tset,
                &v,
                Discipline::FixedPriority,
                shared,
                false,
                "GFP-het-shared",
            );
        }
        let v = gedf_test(&set, m, AnalysisModel::Homogeneous).unwrap();
        if v.is_schedulable() {
            check_accepted_set(
                &set,
                &v,
                Discipline::EarliestDeadlineFirst,
                host_only,
                true,
                "GEDF-hom",
            );
        }
        let v = gedf_test(&set, m, HET).unwrap();
        if v.is_schedulable() {
            check_accepted_set(
                &tset,
                &v,
                Discipline::EarliestDeadlineFirst,
                dedicated,
                false,
                "GEDF-het",
            );
        }
    }
    (accepted, total)
}

#[test]
fn accepted_sets_never_miss_quick() {
    // Trimmed variant of the three full campaigns below, so the default
    // `cargo test` still replays accepted sets across all three load
    // shapes without the multi-minute sweep.
    let (accepted, total) = run_campaign(4, 3, 1.0, 0..6);
    assert!(total >= 4, "generation failed too often ({total})");
    assert!(accepted > 0, "campaign accepted nothing — checks never ran");
    let (_, total) = run_campaign(2, 4, 1.2, 100..104);
    assert!(total >= 3);
    let (_, total) = run_campaign(8, 5, 3.0, 200..203);
    assert!(total >= 2);
}

#[test]
#[ignore = "full empirical campaign (minutes); run with --ignored"]
fn accepted_sets_never_miss_light_load() {
    // Light sets: most are accepted, exercising the miss check broadly.
    let (accepted, total) = run_campaign(4, 3, 1.0, 0..25);
    assert!(total >= 20, "generation failed too often ({total})");
    assert!(accepted > 0, "campaign accepted nothing — checks never ran");
}

#[test]
#[ignore = "full empirical campaign (minutes); run with --ignored"]
fn accepted_sets_never_miss_medium_load() {
    let (_, total) = run_campaign(2, 4, 1.2, 100..120);
    assert!(total >= 15);
}

#[test]
#[ignore = "full empirical campaign (minutes); run with --ignored"]
fn accepted_sets_never_miss_many_cores() {
    let (_, total) = run_campaign(8, 5, 3.0, 200..215);
    assert!(total >= 10);
}

#[test]
fn accepted_sets_survive_asynchronous_release_patterns() {
    // Synchronous release is not always the worst case under global
    // scheduling; a sound test's accepted sets must survive arbitrary
    // offsets too. Sweep a few deterministic offset patterns.
    use hetrta_sim::sporadic::simulate_sporadic_with_offsets;
    let mut replays = 0usize;
    for seed in 400..420u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = TaskSetParams::small(3, 1.2).with_offload_fraction(0.1, 0.4);
        let Ok(mut set) = generate_task_set(&params, &mut rng) else {
            continue;
        };
        sort_deadline_monotonic(&mut set);
        let v = gfp_test(&set, 4, HET).unwrap();
        if !v.is_schedulable() {
            continue;
        }
        let tset = transformed_set(&set);
        let config = SporadicConfig::new(Platform::new(4, tset.len()), horizon(&tset))
            .discipline(Discipline::FixedPriority);
        for divisor in [2u64, 3, 5] {
            let offsets: Vec<Ticks> = tset
                .iter()
                .enumerate()
                .map(|(i, t)| Ticks::new((t.period().get() / divisor) * (i as u64 % divisor)))
                .collect();
            let run = simulate_sporadic_with_offsets(&tset, &offsets, &config).unwrap();
            assert!(
                !run.any_deadline_miss(),
                "seed {seed}, divisor {divisor}: accepted set missed under offsets {offsets:?}"
            );
            for tv in &v.per_task {
                if let (Some(bound), Some(observed)) =
                    (&tv.response_bound, run.max_response_time(tv.task))
                {
                    assert!(
                        observed.to_rational() <= *bound,
                        "seed {seed}, divisor {divisor}, task {}: {observed} > {bound}",
                        tv.task
                    );
                }
            }
            replays += 1;
        }
    }
    assert!(replays >= 9, "only {replays} asynchronous replays ran");
}

#[test]
fn het_test_accepts_superset_of_hom_on_offload_heavy_sets() {
    // Statistical domination: across seeds, every GFP-hom-accepted set is
    // also GFP-het-accepted (interference can only shrink; intra bound
    // uses tight_value ≤ R_hom(G) does not hold in general because of the
    // sync node, so we check set-level counts instead of per-set).
    let mut hom_count = 0;
    let mut het_count = 0;
    for seed in 300..330u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = TaskSetParams::small(4, 1.6).with_offload_fraction(0.25, 0.5);
        let Ok(mut set) = generate_task_set(&params, &mut rng) else {
            continue;
        };
        sort_deadline_monotonic(&mut set);
        if gfp_test(&set, 2, AnalysisModel::Homogeneous)
            .unwrap()
            .is_schedulable()
        {
            hom_count += 1;
        }
        if gfp_test(&set, 2, HET).unwrap().is_schedulable() {
            het_count += 1;
        }
    }
    assert!(
        het_count >= hom_count,
        "heterogeneous test accepted fewer sets ({het_count}) than homogeneous ({hom_count})"
    );
}
