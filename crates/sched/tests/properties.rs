//! Property-based tests of the schedulability machinery.

use hetrta_dag::{Rational, Ticks};
use hetrta_sched::model::{AnalysisModel, DeviceModel};
use hetrta_sched::taskset::{generate_task_set, sort_deadline_monotonic, uunifast, TaskSetParams};
use hetrta_sched::workload::{carry_in_workload, device_demand, InterferingTask};
use hetrta_sched::{gedf_test, gfp_test};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HET: AnalysisModel = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn uunifast_always_sums_to_total(n in 1usize..24, total in 0.05f64..8.0, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let us = uunifast(n, total, &mut rng).unwrap();
        prop_assert_eq!(us.len(), n);
        prop_assert!((us.iter().sum::<f64>() - total).abs() < 1e-6);
        prop_assert!(us.iter().all(|&u| u > 0.0));
    }

    #[test]
    fn workload_monotone_in_window_and_resp(
        w in 1u64..200, t in 1u64..500, c in 0u64..50,
        m in 1u64..16,
        l1 in 0i128..1000, dl in 0i128..500,
        r1 in 0i128..300, dr in 0i128..200,
    ) {
        let task = InterferingTask {
            host_workload: Ticks::new(w),
            period: Ticks::new(t),
            c_off: Ticks::new(c),
        };
        let (l2, r2) = (l1 + dl, r1 + dr);
        let base = carry_in_workload(&task, Rational::from_integer(l1), Rational::from_integer(r1), m);
        let wider = carry_in_workload(&task, Rational::from_integer(l2), Rational::from_integer(r1), m);
        let later = carry_in_workload(&task, Rational::from_integer(l1), Rational::from_integer(r2), m);
        prop_assert!(wider >= base);
        prop_assert!(later >= base);
        // Never negative, never more than one job per period plus two.
        prop_assert!(!base.is_negative());
        let jobs_cap = (l1 + r1) / t as i128 + 2;
        prop_assert!(base <= Rational::from_integer(jobs_cap.max(0) * w as i128));
        // Device demand monotone too.
        let d1 = device_demand(&task, Rational::from_integer(l1), Rational::from_integer(r1));
        let d2 = device_demand(&task, Rational::from_integer(l2), Rational::from_integer(r1));
        prop_assert!(d2 >= d1);
    }

    #[test]
    fn gfp_bounds_shrink_with_more_cores(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = TaskSetParams::small(3, 1.5).with_offload_fraction(0.1, 0.4);
        let Ok(mut set) = generate_task_set(&params, &mut rng) else { return Ok(()) };
        sort_deadline_monotonic(&mut set);
        for model in [AnalysisModel::Homogeneous, HET] {
            let mut prev: Vec<Option<Rational>> = vec![None; set.len()];
            for m in [2u64, 4, 8, 16] {
                let v = gfp_test(&set, m, model).unwrap();
                for (k, tv) in v.per_task.iter().enumerate() {
                    if let (Some(p), Some(r)) = (&prev[k], &tv.response_bound) {
                        prop_assert!(r <= p, "task {k}, m {m}: {r} > {p}");
                    }
                    if tv.response_bound.is_some() {
                        prev[k] = tv.response_bound;
                    }
                }
            }
        }
    }

    #[test]
    fn gfp_accepts_monotonically_in_priority_removal(seed: u64) {
        // Removing the lowest-priority task never hurts the remaining ones.
        let mut rng = StdRng::seed_from_u64(seed);
        let params = TaskSetParams::small(4, 2.0);
        let Ok(mut set) = generate_task_set(&params, &mut rng) else { return Ok(()) };
        sort_deadline_monotonic(&mut set);
        let full = gfp_test(&set, 4, HET).unwrap();
        let trimmed = gfp_test(&set[..3], 4, HET).unwrap();
        for k in 0..3 {
            prop_assert_eq!(
                full.per_task[k].response_bound,
                trimmed.per_task[k].response_bound,
                "higher-priority bounds must not depend on lower-priority tasks"
            );
        }
    }

    #[test]
    fn gedf_invariant_under_permutation(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = TaskSetParams::small(4, 1.8);
        let Ok(set) = generate_task_set(&params, &mut rng) else { return Ok(()) };
        let mut rev = set.clone();
        rev.reverse();
        let a = gedf_test(&set, 4, HET).unwrap();
        let b = gedf_test(&rev, 4, HET).unwrap();
        prop_assert_eq!(a.is_schedulable(), b.is_schedulable());
        for k in 0..set.len() {
            prop_assert_eq!(
                a.per_task[k].response_bound,
                b.per_task[set.len() - 1 - k].response_bound
            );
        }
    }

    #[test]
    fn single_task_gfp_equals_gedf_equals_tight_theorem1(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = TaskSetParams::small(1, 0.8).with_offload_fraction(0.1, 0.5);
        let Ok(set) = generate_task_set(&params, &mut rng) else { return Ok(()) };
        let fp = gfp_test(&set, 4, HET).unwrap();
        let edf = gedf_test(&set, 4, HET).unwrap();
        prop_assert_eq!(
            fp.per_task[0].response_bound,
            edf.per_task[0].response_bound
        );
        if let Some(r) = &fp.per_task[0].response_bound {
            let t = hetrta_core::transform(&set[0]).unwrap();
            let faithful = hetrta_core::r_het(&t, 4).unwrap();
            prop_assert_eq!(*r, faithful.tight_value());
        }
    }
}
