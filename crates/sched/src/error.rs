//! Schedulability-analysis errors.

use core::fmt;

use hetrta_core::AnalysisError;
use hetrta_gen::GenError;

/// Errors produced by task-set generation and schedulability tests.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// A parameter is out of range (message explains which).
    InvalidParams(String),
    /// The platform must have at least one host core.
    ZeroCores,
    /// Task-set generation failed.
    Gen(GenError),
    /// A single-task analysis failed.
    Analysis(AnalysisError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            SchedError::ZeroCores => write!(f, "platform must have at least one host core"),
            SchedError::Gen(e) => write!(f, "task-set generation failed: {e}"),
            SchedError::Analysis(e) => write!(f, "single-task analysis failed: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Gen(e) => Some(e),
            SchedError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GenError> for SchedError {
    fn from(e: GenError) -> Self {
        SchedError::Gen(e)
    }
}

impl From<AnalysisError> for SchedError {
    fn from(e: AnalysisError) -> Self {
        SchedError::Analysis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SchedError::InvalidParams("x".into())
            .to_string()
            .contains('x'));
        assert_eq!(
            SchedError::ZeroCores.to_string(),
            "platform must have at least one host core"
        );
        assert!(SchedError::from(AnalysisError::ZeroCores)
            .to_string()
            .contains("analysis"));
    }

    #[test]
    fn error_sources() {
        use std::error::Error;
        assert!(SchedError::ZeroCores.source().is_none());
        assert!(SchedError::from(AnalysisError::ZeroCores)
            .source()
            .is_some());
    }
}
