//! Global-EDF schedulability test for heterogeneous DAG task sets.
//!
//! Under global EDF, a job of `τ_k` can only be delayed by jobs with
//! earlier absolute deadlines, and the interference any task `τ_j ≠ τ_k`
//! contributes within the *problem window* `[release, deadline)` of length
//! `D_k` is bounded by the carry-in workload function with shift `R_j`.
//! The test evaluates, for every task,
//!
//! ```text
//! R_k = intra_k + I_k/m [+ B_k]     I_k = Σ_{j ≠ k} W_j(D_k)
//! ```
//!
//! and declares the set schedulable when `R_k ≤ D_k` for all `k`. The
//! carry-in shifts use `R_j = D_j` (first-deadline-miss argument: when the
//! first miss happens, every earlier job met its deadline, so each
//! interfering task's carry-in job started within `D_j` of its release).
//! The window is a constant, so no fixed-point iteration is needed —
//! except under [`DeviceModel::SharedFifo`], where the blocking term
//! depends on the (window-sized) device queue and a single evaluation at
//! `L = D_k` already covers it.
//!
//! ## Limited carry-in
//!
//! [`gedf_test`] applies the classical refinement (used for conditional
//! DAG tasks by Melani et al., ECRTS 2015): extend the problem window to
//! the last instant before it at which some core is idle; at that instant
//! at most `m − 1` jobs are executing, so at most `m − 1` interfering
//! tasks contribute *carry-in* workload. The interference is therefore
//! `Σ_j W_j^NC` plus the `m − 1` largest differences `W_j^CI − W_j^NC` —
//! never more than charging carry-in to everybody
//! ([`CarryIn::AllTasks`], available via [`gedf_test_with`] for
//! comparison).

use hetrta_dag::{HeteroDagTask, Rational};

use crate::model::{
    build_contexts, device_utilization_ok, AnalysisModel, DeviceModel, SetVerdict, TaskVerdict,
};
use crate::workload::{carry_in_workload, device_demand, no_carry_in_workload};
use crate::SchedError;

/// How many interfering tasks are charged carry-in workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CarryIn {
    /// Every interfering task gets the carry-in bound (most pessimistic;
    /// kept for comparison and ablation).
    AllTasks,
    /// At most `m − 1` interfering tasks get carry-in (the busy-window
    /// extension argument); the default of [`gedf_test`].
    LimitedMinusOne,
}

/// Global-EDF schedulability test on `m` host cores.
///
/// Task order in the slice is irrelevant (EDF has no static priorities).
///
/// # Errors
///
/// - [`SchedError::ZeroCores`] if `m == 0`;
/// - [`SchedError::Analysis`] if a task's graph is structurally invalid.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
/// use hetrta_sched::gedf::gedf_test;
/// use hetrta_sched::model::AnalysisModel;
///
/// # fn mk(c_off: u64, t: u64) -> HeteroDagTask {
/// #     let mut b = DagBuilder::new();
/// #     let a = b.node("a", Ticks::new(1));
/// #     let k = b.node("k", Ticks::new(c_off));
/// #     let z = b.node("z", Ticks::new(1));
/// #     b.edges([(a, k), (k, z)]).unwrap();
/// #     HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(t), Ticks::new(t)).unwrap()
/// # }
/// let tasks = vec![mk(2, 20), mk(3, 25)];
/// assert!(gedf_test(&tasks, 2, AnalysisModel::Homogeneous)?.is_schedulable());
/// # Ok::<(), hetrta_sched::SchedError>(())
/// ```
pub fn gedf_test(
    tasks: &[HeteroDagTask],
    m: u64,
    model: AnalysisModel,
) -> Result<SetVerdict, SchedError> {
    gedf_test_with(tasks, m, model, CarryIn::LimitedMinusOne)
}

/// [`gedf_test`] with an explicit carry-in policy (ablation hook).
///
/// # Errors
///
/// See [`gedf_test`].
pub fn gedf_test_with(
    tasks: &[HeteroDagTask],
    m: u64,
    model: AnalysisModel,
    carry_in: CarryIn,
) -> Result<SetVerdict, SchedError> {
    let ctxs = build_contexts(tasks, m)?;
    if matches!(model, AnalysisModel::Heterogeneous(DeviceModel::SharedFifo))
        && !device_utilization_ok(tasks)
    {
        let per_task = ctxs
            .iter()
            .enumerate()
            .map(|(k, c)| TaskVerdict {
                task: k,
                response_bound: None,
                deadline: c.deadline,
            })
            .collect();
        return Ok(SetVerdict { per_task, model });
    }

    let m_r = Rational::from_integer(m as i128);
    let mut per_task = Vec::with_capacity(ctxs.len());
    for (k, ctx) in ctxs.iter().enumerate() {
        let window = ctx.deadline.to_rational();
        let mut inter = Rational::ZERO;
        let mut ci_extras: Vec<Rational> = Vec::with_capacity(ctxs.len());
        for (j, other) in ctxs.iter().enumerate() {
            if j != k {
                let ci = carry_in_workload(
                    other.interference(model),
                    window,
                    other.deadline.to_rational(),
                    m,
                );
                match carry_in {
                    CarryIn::AllTasks => inter += ci,
                    CarryIn::LimitedMinusOne => {
                        let nc = no_carry_in_workload(other.interference(model), window, m);
                        inter += nc;
                        ci_extras.push(ci - nc);
                    }
                }
            }
        }
        if carry_in == CarryIn::LimitedMinusOne {
            // Charge only the m − 1 largest carry-in surpluses.
            ci_extras.sort_unstable_by(|a, b| b.partial_cmp(a).expect("rationals are ordered"));
            for extra in ci_extras.into_iter().take((m as usize).saturating_sub(1)) {
                inter += extra;
            }
        }
        let mut r = ctx.intra_bound(model, m) + inter / m_r;
        if let AnalysisModel::Heterogeneous(DeviceModel::SharedFifo) = model {
            for (j, other) in ctxs.iter().enumerate() {
                if j != k {
                    r += device_demand(&other.interf_het, window, other.deadline.to_rational());
                }
            }
        }
        let bound = if r <= window { Some(r) } else { None };
        per_task.push(TaskVerdict {
            task: k,
            response_bound: bound,
            deadline: ctx.deadline,
        });
    }
    Ok(SetVerdict { per_task, model })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfp::gfp_test;
    use crate::model::DeviceModel;
    use hetrta_dag::{DagBuilder, Ticks};

    fn chain(c_off: u64, t: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(1));
        let k = b.node("k", Ticks::new(c_off));
        let z = b.node("z", Ticks::new(1));
        b.edges([(a, k), (k, z)]).unwrap();
        HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(t), Ticks::new(t)).unwrap()
    }

    fn forkjoin(w: u64, branches: usize, c_off: u64, t: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::new(1));
        let sink = b.node("sink", Ticks::new(1));
        let k = b.node("k", Ticks::new(c_off));
        b.edges([(src, k), (k, sink)]).unwrap();
        for i in 0..branches {
            let p = b.node(format!("p{i}"), Ticks::new(w));
            b.edges([(src, p), (p, sink)]).unwrap();
        }
        HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(t), Ticks::new(t)).unwrap()
    }

    const HET: AnalysisModel = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);

    #[test]
    fn single_task_reduces_to_intra_bound() {
        let t = forkjoin(4, 3, 5, 100);
        let v = gedf_test(std::slice::from_ref(&t), 2, AnalysisModel::Homogeneous).unwrap();
        let expected = hetrta_core::r_hom(&t.as_homogeneous(), 2).unwrap();
        assert_eq!(v.per_task[0].response_bound, Some(expected));
    }

    #[test]
    fn light_sets_pass_heavy_sets_fail() {
        let light = vec![chain(2, 40), chain(2, 50)];
        let heavy = vec![forkjoin(10, 6, 1, 16), forkjoin(10, 6, 1, 16)];
        assert!(gedf_test(&light, 2, HET).unwrap().is_schedulable());
        assert!(!gedf_test(&heavy, 2, AnalysisModel::Homogeneous)
            .unwrap()
            .is_schedulable());
    }

    #[test]
    fn het_dominates_hom_for_offload_heavy_sets() {
        let tasks = vec![chain(20, 30), chain(20, 36), chain(18, 40)];
        let hom = gedf_test(&tasks, 2, AnalysisModel::Homogeneous).unwrap();
        let het = gedf_test(&tasks, 2, HET).unwrap();
        assert!(!hom.is_schedulable());
        assert!(het.is_schedulable());
    }

    #[test]
    fn order_invariance() {
        let a = vec![chain(5, 30), chain(3, 25), chain(7, 45)];
        let mut b = a.clone();
        b.reverse();
        let va = gedf_test(&a, 2, HET).unwrap();
        let vb = gedf_test(&b, 2, HET).unwrap();
        assert_eq!(va.is_schedulable(), vb.is_schedulable());
        // Same multiset of bounds.
        let mut ba: Vec<_> = va.per_task.iter().map(|t| t.response_bound).collect();
        let mut bb: Vec<_> = vb.per_task.iter().map(|t| t.response_bound).collect();
        ba.sort_by(|x, y| x.partial_cmp(y).unwrap());
        bb.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(ba, bb);
    }

    #[test]
    fn shared_device_never_tightens() {
        let tasks = vec![chain(6, 60), chain(6, 70)];
        let ded = gedf_test(&tasks, 2, HET).unwrap();
        let shared = gedf_test(
            &tasks,
            2,
            AnalysisModel::Heterogeneous(DeviceModel::SharedFifo),
        )
        .unwrap();
        for k in 0..2 {
            if let (Some(rd), Some(rs)) = (
                ded.per_task[k].response_bound,
                shared.per_task[k].response_bound,
            ) {
                assert!(rs >= rd);
            }
        }
    }

    #[test]
    fn gfp_and_gedf_agree_on_trivial_sets() {
        // One tiny task: both reduce to the single-task bound.
        let tasks = vec![chain(2, 100)];
        let fp = gfp_test(&tasks, 2, HET).unwrap();
        let edf = gedf_test(&tasks, 2, HET).unwrap();
        assert_eq!(
            fp.per_task[0].response_bound,
            edf.per_task[0].response_bound
        );
    }

    #[test]
    fn zero_cores_is_an_error() {
        assert!(matches!(
            gedf_test(&[chain(1, 10)], 0, AnalysisModel::Homogeneous),
            Err(SchedError::ZeroCores)
        ));
    }

    #[test]
    fn limited_carry_in_dominates_full_carry_in() {
        let tasks = vec![
            chain(4, 25),
            chain(6, 30),
            chain(3, 40),
            forkjoin(3, 3, 2, 50),
        ];
        for m in [2u64, 4, 8] {
            for model in [AnalysisModel::Homogeneous, HET] {
                let limited = gedf_test_with(&tasks, m, model, CarryIn::LimitedMinusOne).unwrap();
                let full = gedf_test_with(&tasks, m, model, CarryIn::AllTasks).unwrap();
                for (l, f) in limited.per_task.iter().zip(&full.per_task) {
                    match (&l.response_bound, &f.response_bound) {
                        (Some(rl), Some(rf)) => assert!(rl <= rf, "m {m}: {rl} > {rf}"),
                        (Some(_), None) => {} // limited accepts more: fine
                        (None, Some(_)) => panic!("limited carry-in rejected what full accepted"),
                        (None, None) => {}
                    }
                }
            }
        }
    }

    #[test]
    fn limited_carry_in_reduces_to_full_on_one_core() {
        // m = 1 charges zero carry-in surpluses: strictly tighter than
        // the all-tasks policy, never looser.
        let tasks = vec![chain(2, 30), chain(2, 45)];
        let limited = gedf_test_with(&tasks, 1, HET, CarryIn::LimitedMinusOne).unwrap();
        let full = gedf_test_with(&tasks, 1, HET, CarryIn::AllTasks).unwrap();
        for (l, f) in limited.per_task.iter().zip(&full.per_task) {
            if let (Some(rl), Some(rf)) = (&l.response_bound, &f.response_bound) {
                assert!(rl <= rf);
            }
        }
    }
}
