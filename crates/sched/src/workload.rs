//! Carry-in workload bounds for interfering sporadic DAG tasks.
//!
//! Under global scheduling, the response time of a DAG job is inflated by
//! the workload that *other* tasks execute on the host during its
//! scheduling window. This module bounds that workload with the classical
//! carry-in decomposition used for DAG tasks by Melani et al. (ECRTS 2015)
//! and in the fixed-priority analysis of Serrano et al. (DATE 2016, the
//! paper's reference \[18\]):
//!
//! ```text
//! W(L) = ⌊L′/T⌋ · w  +  min(w, m · (L′ mod T))      L′ = L + R − w/m
//! ```
//!
//! where `w` is the interfering workload per job (full `vol(G)` on a
//! homogeneous platform; host volume `vol(G) − C_off` when the task
//! offloads — accelerator work never competes for host cores), `T` the
//! period, and `R` any sound response-time bound of the *interfering* task.
//! The `R − w/m` shift captures the worst-case carry-in alignment: the
//! first overlapping job was released as early as possible while still
//! running at the window start.
//!
//! Everything is computed in exact [`Rational`] arithmetic; windows are
//! rational because the response-time bounds being iterated are.

use hetrta_dag::{Rational, Ticks};

/// Timing summary of one interfering task, as seen by the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InterferingTask {
    /// Workload one job executes **on the host** (`vol(G)` if nothing is
    /// offloaded, `vol(G) − C_off` otherwise).
    pub host_workload: Ticks,
    /// Minimum inter-arrival time `T`.
    pub period: Ticks,
    /// `C_off` of the task (zero when nothing is offloaded); used for
    /// device-contention bounds, not for host workload.
    pub c_off: Ticks,
}

/// Upper bound on the host workload of one interfering task in any window
/// of length `window`, given a sound response-time bound `resp` of that
/// task (the carry-in shift).
///
/// Monotone in `window` and in `resp`; zero when the task has no host
/// workload or the window is empty.
///
/// # Panics
///
/// Panics (debug) if `m == 0` or the period is zero.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{Rational, Ticks};
/// use hetrta_sched::workload::{carry_in_workload, InterferingTask};
///
/// let t = InterferingTask {
///     host_workload: Ticks::new(4),
///     period: Ticks::new(10),
///     c_off: Ticks::ZERO,
/// };
/// // Window of one full period with a tight bound R = 4 on m = 2:
/// // L' = 10 + 4 − 2 = 12 → one full job + min(4, 2·2) = 8.
/// let w = carry_in_workload(&t, Rational::from_integer(10), Rational::from_integer(4), 2);
/// assert_eq!(w, Rational::from_integer(8));
/// ```
#[must_use]
pub fn carry_in_workload(
    task: &InterferingTask,
    window: Rational,
    resp: Rational,
    m: u64,
) -> Rational {
    debug_assert!(m > 0, "zero cores");
    debug_assert!(!task.period.is_zero(), "zero period");
    let w = task.host_workload.to_rational();
    if w.is_zero() || window.is_negative() || window.is_zero() {
        return Rational::ZERO;
    }
    let t = task.period.to_rational();
    let shift = resp - w / Rational::from_integer(m as i128);
    let l_ext = window + shift.max(Rational::ZERO);
    let full_jobs = Rational::from_integer((l_ext / t).floor());
    let tail = l_ext - full_jobs * t;
    full_jobs * w + w.min(Rational::from_integer(m as i128) * tail)
}

/// Upper bound on the host workload of one interfering task in a window of
/// length `window` **without carry-in**: the task's first overlapping job
/// is released no earlier than the window start.
///
/// Equals [`carry_in_workload`] with a zero shift; used by the limited
/// carry-in refinement (at most `m − 1` interfering tasks can have a job
/// already executing when a busy window opens, so only the `m − 1` largest
/// `W^CI − W^NC` differences are charged on top of `Σ W^NC`).
///
/// # Examples
///
/// ```
/// use hetrta_dag::{Rational, Ticks};
/// use hetrta_sched::workload::{carry_in_workload, no_carry_in_workload, InterferingTask};
///
/// let t = InterferingTask {
///     host_workload: Ticks::new(4),
///     period: Ticks::new(10),
///     c_off: Ticks::ZERO,
/// };
/// let window = Rational::from_integer(10);
/// let nc = no_carry_in_workload(&t, window, 2);
/// let ci = carry_in_workload(&t, window, Rational::from_integer(4), 2);
/// assert!(nc <= ci);
/// assert_eq!(nc, Rational::from_integer(4)); // exactly one job fits
/// ```
#[must_use]
pub fn no_carry_in_workload(task: &InterferingTask, window: Rational, m: u64) -> Rational {
    carry_in_workload(task, window, Rational::ZERO, m)
}

/// Upper bound on the **device** time demanded by one interfering task in
/// any window of length `window`, assuming a single shared FIFO
/// accelerator (extension; the paper and the federated analysis assume a
/// dedicated device per task).
///
/// Every job overlapping the window can enqueue its offloaded node ahead
/// of ours, so the count is `⌊(L + R)/T⌋ + 1` jobs, each contributing
/// `C_off`.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{Rational, Ticks};
/// use hetrta_sched::workload::{device_demand, InterferingTask};
///
/// let t = InterferingTask {
///     host_workload: Ticks::new(4),
///     period: Ticks::new(10),
///     c_off: Ticks::new(3),
/// };
/// // L = 10, R = 6: ⌊16/10⌋ + 1 = 2 jobs → 6 ticks of device time.
/// let d = device_demand(&t, Rational::from_integer(10), Rational::from_integer(6));
/// assert_eq!(d, Rational::from_integer(6));
/// ```
#[must_use]
pub fn device_demand(task: &InterferingTask, window: Rational, resp: Rational) -> Rational {
    if task.c_off.is_zero() || window.is_negative() {
        return Rational::ZERO;
    }
    let t = task.period.to_rational();
    let jobs = ((window + resp.max(Rational::ZERO)) / t).floor() + 1;
    Rational::from_integer(jobs) * task.c_off.to_rational()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(w: u64, t: u64, c: u64) -> InterferingTask {
        InterferingTask {
            host_workload: Ticks::new(w),
            period: Ticks::new(t),
            c_off: Ticks::new(c),
        }
    }

    #[test]
    fn zero_window_contributes_nothing() {
        let t = task(4, 10, 0);
        assert_eq!(
            carry_in_workload(&t, Rational::ZERO, Rational::from_integer(4), 2),
            Rational::ZERO
        );
    }

    #[test]
    fn zero_host_workload_contributes_nothing() {
        // A task whose entire volume is offloaded never touches the host.
        let t = task(0, 10, 9);
        assert_eq!(
            carry_in_workload(
                &t,
                Rational::from_integer(100),
                Rational::from_integer(9),
                2
            ),
            Rational::ZERO
        );
    }

    #[test]
    fn workload_is_monotone_in_window() {
        let t = task(5, 12, 0);
        let resp = Rational::from_integer(7);
        let mut prev = Rational::ZERO;
        for l in 1..60 {
            let w = carry_in_workload(&t, Rational::from_integer(l), resp, 4);
            assert!(w >= prev, "not monotone at L = {l}");
            prev = w;
        }
    }

    #[test]
    fn workload_is_monotone_in_response_bound() {
        let t = task(5, 12, 0);
        let window = Rational::from_integer(30);
        let mut prev = Rational::ZERO;
        for r in 1..=12 {
            let w = carry_in_workload(&t, window, Rational::from_integer(r), 4);
            assert!(w >= prev, "not monotone at R = {r}");
            prev = w;
        }
    }

    #[test]
    fn long_window_approaches_utilization_rate() {
        // Over k periods the bound is ≤ (k+2) jobs of workload.
        let t = task(6, 10, 0);
        let w = carry_in_workload(
            &t,
            Rational::from_integer(1000),
            Rational::from_integer(8),
            2,
        );
        assert!(w <= Rational::from_integer(102 * 6));
        assert!(w >= Rational::from_integer(100 * 6));
    }

    #[test]
    fn tail_is_capped_by_one_job() {
        // Tiny window: at most one job's workload, and at most m·L.
        let t = task(40, 100, 0);
        let w = carry_in_workload(&t, Rational::ONE, Rational::from_integer(50), 2);
        assert!(w <= Rational::from_integer(40));
    }

    #[test]
    fn device_demand_counts_overlapping_jobs() {
        let t = task(4, 10, 3);
        // Tiny window, R = 0: exactly one overlapping job.
        assert_eq!(
            device_demand(&t, Rational::ONE, Rational::ZERO),
            Rational::from_integer(3)
        );
        // Window of 3 periods: ⌊30/10⌋ + 1 = 4 jobs.
        assert_eq!(
            device_demand(&t, Rational::from_integer(30), Rational::ZERO),
            Rational::from_integer(12)
        );
    }

    #[test]
    fn no_offload_no_device_demand() {
        let t = task(4, 10, 0);
        assert_eq!(
            device_demand(&t, Rational::from_integer(30), Rational::from_integer(5)),
            Rational::ZERO
        );
    }
}
