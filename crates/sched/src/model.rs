//! Shared types of the global schedulability tests.
//!
//! ## Composition of Theorem 1 with inter-task interference
//!
//! The single-task bounds (Eq. 1 and Theorem 1) follow the Graham window
//! argument: `R ≤ chain + (interfering workload)/m`. Under global
//! scheduling, other tasks add their host workload to the same window, so
//! the composed bound is
//!
//! ```text
//! R_k = intra_k(I_k) + I_k / m        I_k = Σ_j W_j(window)
//! ```
//!
//! with `W_j` the carry-in workload bound of
//! [`workload`](crate::workload). The intra-task term needs care in the
//! heterogeneous case because Theorem 1's scenarios are classified by
//! comparing `C_off` against `R_hom(G_par)` — a bound that holds **in
//! isolation** but can be exceeded when other tasks delay `G_par`. The
//! composition stays sound because the classification is equivalent to
//! taking the *larger* of the two scenario-2 equations:
//!
//! ```text
//! Eq3 − Eq4 = C_off − (len(G_par) + (vol(G_par) − len(G_par))/m)
//!           = C_off − R_hom(G_par)
//! ```
//!
//! so `max(Eq3, Eq4)` *is* the faithful Theorem 1 value, with no pivot
//! comparison left to be perturbed by interference. Under interference the
//! max is still sound by a case split on the actual execution of the
//! barrier section (`G_par` ∥ `v_off`):
//!
//! * **Scenario 1** (`v_off` off the critical path of `G'`) is
//!   interference-robust as stated: some path of `G_par` is longer than
//!   `C_off`, and host interference only delays it further, so the device
//!   returns strictly before the barrier's host side completes and Eq. 2's
//!   discount of `C_off` remains safe.
//! * If the device returns **after** `G_par` drains (even with the
//!   interference charged to the window), the barrier lasts `C_off` and no
//!   `G_par` work delays the post-join chain — Eq. 3's argument.
//! * Otherwise the chain passes through `G_par` and Eq. 4's substitution
//!   applies — additionally capped by Eq. 1 on `G'`, which is sound
//!   unconditionally (the
//!   [`HetBound::tight_value`](hetrta_core::HetBound::tight_value)
//!   rationale for non-generic structures).
//!
//! Whichever case materializes, its bound is ≤ the max we use. The
//! empirical cross-check lives in `tests/empirical.rs`: sets accepted by
//! these tests never miss a deadline in the sporadic simulator.

use hetrta_core::{r_hom, r_hom_dag, transform, TransformedTask};
use hetrta_dag::{HeteroDagTask, Rational, Ticks};

use crate::taskset::{interference_heterogeneous, interference_homogeneous};
use crate::workload::InterferingTask;
use crate::SchedError;

/// How the accelerator is shared among tasks (heterogeneous analyses only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeviceModel {
    /// Every task owns a device (the paper's single-task model, and the
    /// platform assumption of `hetrta-core::federated`): offloads never
    /// queue.
    DedicatedPerTask,
    /// All tasks share **one** FIFO, non-preemptive device. Every job
    /// overlapping the window may enqueue its offload ahead of ours; the
    /// analysis adds that queueing delay and additionally requires device
    /// utilization `Σ C_off_j / T_j ≤ 1` (a diverging device queue breaks
    /// the per-window job-count bound).
    SharedFifo,
}

/// Which response-time model the test uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AnalysisModel {
    /// Everything executes on the host; Eq. 1 intra-task term and full
    /// volumes as interference (the baseline the paper compares against).
    Homogeneous,
    /// `v_off` executes on the accelerator; Theorem-1 intra-task term
    /// (interference-robust composition, see the module docs) and host
    /// volumes as interference.
    Heterogeneous(DeviceModel),
}

/// Outcome of the response-time iteration for one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskVerdict {
    /// Index of the task in the input slice.
    pub task: usize,
    /// The converged response-time bound, or `None` when the iteration
    /// exceeded the deadline (or the iteration cap) — unschedulable.
    pub response_bound: Option<Rational>,
    /// The task's relative deadline, for reporting.
    pub deadline: Ticks,
}

impl TaskVerdict {
    /// `true` if a bound exists and meets the deadline.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        match &self.response_bound {
            Some(r) => *r <= self.deadline.to_rational(),
            None => false,
        }
    }
}

/// Outcome of a set-level schedulability test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetVerdict {
    /// Per-task verdicts, in input order.
    pub per_task: Vec<TaskVerdict>,
    /// The model the test ran with.
    pub model: AnalysisModel,
}

impl SetVerdict {
    /// `true` if every task's bound meets its deadline.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        !self.per_task.is_empty() && self.per_task.iter().all(TaskVerdict::is_schedulable)
    }

    /// The verdict of one task.
    #[must_use]
    pub fn task(&self, index: usize) -> Option<&TaskVerdict> {
        self.per_task.iter().find(|v| v.task == index)
    }
}

/// Precomputed per-task analysis context shared by the FP and EDF tests.
#[derive(Debug)]
pub(crate) struct TaskCtx {
    pub deadline: Ticks,
    /// Eq. 1 on the original DAG (homogeneous intra-task term).
    pub r_hom: Rational,
    /// The transformed task (heterogeneous intra-task term inputs).
    pub transformed: TransformedTask,
    /// Eq. 1 on `G'` (the Scenario 2.2 cap).
    pub r_hom_transformed: Rational,
    /// Interference summary when everything runs on the host.
    pub interf_hom: InterferingTask,
    /// Interference summary when `v_off` runs on the device.
    pub interf_het: InterferingTask,
}

impl TaskCtx {
    pub(crate) fn build(task: &HeteroDagTask, m: u64) -> Result<TaskCtx, SchedError> {
        let transformed = transform(task)?;
        let r_hom_transformed = r_hom_dag(transformed.transformed(), m)?;
        Ok(TaskCtx {
            deadline: task.deadline(),
            r_hom: r_hom(&task.as_homogeneous(), m)?,
            transformed,
            r_hom_transformed,
            interf_hom: interference_homogeneous(task),
            interf_het: interference_heterogeneous(task),
        })
    }

    /// The intra-task response-time term under `model` — constant in the
    /// inter-task interference (see the module docs: `max(Eq3, Eq4)`
    /// replaces the pivot comparison, so no classification can be
    /// perturbed by other tasks).
    pub(crate) fn intra_bound(&self, model: AnalysisModel, m: u64) -> Rational {
        match model {
            AnalysisModel::Homogeneous => self.r_hom,
            AnalysisModel::Heterogeneous(_) => {
                let t = &self.transformed;
                let len2 = t.len_transformed().to_rational();
                let vol2 = t.vol_transformed().to_rational();
                let c_off = t.c_off().to_rational();
                let m_r = Rational::from_integer(m as i128);
                if !t.off_on_critical_path() {
                    // Eq. 2 — robust to interference (module docs).
                    len2 + (vol2 - len2 - c_off) / m_r
                } else {
                    // max(Eq3, Eq4 capped by Eq.1-on-G').
                    let eq3 = len2 + (vol2 - len2 - t.vol_g_par().to_rational()) / m_r;
                    let len_par = t.len_g_par().to_rational();
                    let eq4 = len2 - c_off + len_par + (vol2 - len2 - len_par) / m_r;
                    eq3.max(eq4.min(self.r_hom_transformed))
                }
            }
        }
    }

    /// The interference summary other tasks see under `model`.
    pub(crate) fn interference(&self, model: AnalysisModel) -> &InterferingTask {
        match model {
            AnalysisModel::Homogeneous => &self.interf_hom,
            AnalysisModel::Heterogeneous(_) => &self.interf_het,
        }
    }
}

/// Builds the per-task contexts for a whole set.
pub(crate) fn build_contexts(tasks: &[HeteroDagTask], m: u64) -> Result<Vec<TaskCtx>, SchedError> {
    if m == 0 {
        return Err(SchedError::ZeroCores);
    }
    tasks.iter().map(|t| TaskCtx::build(t, m)).collect()
}

/// Necessary condition for [`DeviceModel::SharedFifo`]: the single device
/// must not be over-utilized.
pub(crate) fn device_utilization_ok(tasks: &[HeteroDagTask]) -> bool {
    let u = tasks
        .iter()
        .map(|t| Rational::new(t.c_off().get() as i128, t.period().get() as i128))
        .fold(Rational::ZERO, |a, b| a + b);
    u <= Rational::ONE
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::DagBuilder;

    fn task(c_off: u64, period: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(1));
        let k = b.node("k", Ticks::new(c_off));
        let p = b.node("p", Ticks::new(4));
        let z = b.node("z", Ticks::new(1));
        b.edges([(a, k), (a, p), (k, z), (p, z)]).unwrap();
        HeteroDagTask::new(
            b.build().unwrap(),
            k,
            Ticks::new(period),
            Ticks::new(period),
        )
        .unwrap()
    }

    #[test]
    fn intra_hom_matches_eq1() {
        let t = task(3, 20);
        let ctx = TaskCtx::build(&t, 2).unwrap();
        // vol = 9, len = 6 → 6 + 3/2 = 7.5
        assert_eq!(
            ctx.intra_bound(AnalysisModel::Homogeneous, 2),
            Rational::new(15, 2)
        );
    }

    #[test]
    fn intra_het_scenario1_uses_eq2() {
        // p (4) is longer than c_off (3): scenario 1.
        let t = task(3, 20);
        let ctx = TaskCtx::build(&t, 2).unwrap();
        let het = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);
        assert!(!ctx.transformed.off_on_critical_path());
        // G': a(1) → sync → {k(3), p(4)} → z(1); len 6, vol 9.
        // Eq.2: 6 + (9 − 6 − 3)/2 = 6.
        assert_eq!(ctx.intra_bound(het, 2), Rational::from_integer(6));
    }

    #[test]
    fn intra_het_matches_faithful_theorem1_value() {
        // The max(Eq3, Eq4) form must agree with hetrta-core's scenario
        // classification on generic structures.
        for c_off in [2u64, 4, 6, 10, 16] {
            let t = task(c_off, 60);
            let ctx = TaskCtx::build(&t, 2).unwrap();
            let het = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);
            let faithful = hetrta_core::r_het(&ctx.transformed, 2).unwrap();
            assert_eq!(
                ctx.intra_bound(het, 2),
                faithful.tight_value(),
                "c_off = {c_off}"
            );
        }
    }

    #[test]
    fn het_intra_never_exceeds_hom_on_transformed() {
        for c in [1u64, 3, 5, 8, 12, 20] {
            let t = task(c, 60);
            let ctx = TaskCtx::build(&t, 4).unwrap();
            let het = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);
            let v = ctx.intra_bound(het, 4);
            assert!(v <= ctx.r_hom_transformed.max(ctx.r_hom), "c_off {c}: {v}");
        }
    }

    #[test]
    fn device_utilization_check() {
        assert!(device_utilization_ok(&[task(3, 20), task(5, 10)]));
        assert!(!device_utilization_ok(&[task(9, 10), task(5, 20)]));
    }

    #[test]
    fn verdicts() {
        let v = TaskVerdict {
            task: 0,
            response_bound: Some(Rational::from_integer(9)),
            deadline: Ticks::new(10),
        };
        assert!(v.is_schedulable());
        let miss = TaskVerdict {
            response_bound: None,
            ..v.clone()
        };
        assert!(!miss.is_schedulable());
        let set = SetVerdict {
            per_task: vec![v, miss],
            model: AnalysisModel::Homogeneous,
        };
        assert!(!set.is_schedulable());
        assert!(set.task(0).unwrap().is_schedulable());
        assert!(SetVerdict {
            per_task: vec![],
            model: AnalysisModel::Homogeneous
        }
        .is_schedulable()
        .eq(&false));
    }

    #[test]
    fn zero_cores_rejected() {
        assert!(matches!(
            build_contexts(&[task(3, 20)], 0),
            Err(SchedError::ZeroCores)
        ));
    }
}
