//! Random heterogeneous DAG task-*set* generation.
//!
//! Schedulability experiments (the acceptance-ratio methodology standard in
//! the real-time literature) need task sets with a controlled **total
//! utilization**: utilizations are drawn with UUniFast (Bini & Buttazzo,
//! 2005), a DAG is generated per task with the paper's §5.1 generator, and
//! the period is derived as `T = vol(G) / u` so the set hits the target
//! exactly (up to integer rounding).

use hetrta_dag::{HeteroDagTask, Rational, Ticks};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use rand::Rng;

use crate::workload::InterferingTask;
use crate::SchedError;

/// Draws `n` utilizations summing to `total` with the UUniFast algorithm.
///
/// The returned values are unbiased over the simplex
/// `{u ∈ (0, total)^n : Σu = total}`. Individual utilizations may exceed 1
/// — legitimate for parallel DAG tasks (`vol/T > 1` just means the task
/// needs more than one core); use [`uunifast_capped`] to constrain them.
///
/// # Errors
///
/// [`SchedError::InvalidParams`] if `n == 0` or `total <= 0`.
///
/// # Examples
///
/// ```
/// use hetrta_sched::taskset::uunifast;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let us = uunifast(4, 2.0, &mut rng)?;
/// assert_eq!(us.len(), 4);
/// assert!((us.iter().sum::<f64>() - 2.0).abs() < 1e-9);
/// # Ok::<(), hetrta_sched::SchedError>(())
/// ```
pub fn uunifast<R: Rng + ?Sized>(
    n: usize,
    total: f64,
    rng: &mut R,
) -> Result<Vec<f64>, SchedError> {
    if n == 0 {
        return Err(SchedError::InvalidParams("n must be positive".into()));
    }
    if total <= 0.0 || !total.is_finite() {
        return Err(SchedError::InvalidParams(format!(
            "total utilization {total} must be > 0"
        )));
    }
    let mut us = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next = sum * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        us.push(sum - next);
        sum = next;
    }
    us.push(sum);
    Ok(us)
}

/// UUniFast with rejection: redraws until every utilization is at most
/// `cap` (at most `max_attempts` times).
///
/// # Errors
///
/// Everything [`uunifast`] reports, plus [`SchedError::InvalidParams`] if
/// `cap <= total/n` makes the constraint unsatisfiable or the attempt
/// budget is exhausted.
pub fn uunifast_capped<R: Rng + ?Sized>(
    n: usize,
    total: f64,
    cap: f64,
    max_attempts: usize,
    rng: &mut R,
) -> Result<Vec<f64>, SchedError> {
    if cap * n as f64 <= total {
        return Err(SchedError::InvalidParams(format!(
            "cap {cap} · {n} tasks cannot reach total {total}"
        )));
    }
    for _ in 0..max_attempts.max(1) {
        let us = uunifast(n, total, rng)?;
        if us.iter().all(|&u| u <= cap) {
            return Ok(us);
        }
    }
    Err(SchedError::InvalidParams(format!(
        "no utilization vector with cap {cap} found in {max_attempts} attempts"
    )))
}

/// Parameters of a random heterogeneous task set.
#[derive(Debug, Clone)]
pub struct TaskSetParams {
    /// Number of tasks.
    pub n_tasks: usize,
    /// Target total utilization `Σ vol_i/T_i` (host + device volume).
    pub total_util: f64,
    /// Per-task utilization cap for UUniFast rejection (DAG tasks may
    /// legitimately exceed 1; cap relative to the platform keeps sets
    /// meaningful).
    pub util_cap: f64,
    /// DAG shape parameters (paper §5.1).
    pub nfj: NfjParams,
    /// Offload fraction `C_off/vol` is drawn uniformly from this range.
    pub offload_fraction: (f64, f64),
    /// `D = deadline_ratio · T` (1.0 = implicit deadlines).
    pub deadline_ratio: f64,
}

impl TaskSetParams {
    /// A small-task template: `n_tasks` tasks of the paper's *small* DAG
    /// shape, implicit deadlines, offload fraction in `[0.05, 0.4]`.
    #[must_use]
    pub fn small(n_tasks: usize, total_util: f64) -> Self {
        TaskSetParams {
            n_tasks,
            total_util,
            util_cap: f64::INFINITY,
            nfj: NfjParams::small_tasks(),
            offload_fraction: (0.05, 0.4),
            deadline_ratio: 1.0,
        }
    }

    /// Sets the per-task utilization cap.
    #[must_use]
    pub fn with_util_cap(mut self, cap: f64) -> Self {
        self.util_cap = cap;
        self
    }

    /// Sets the offload-fraction range.
    #[must_use]
    pub fn with_offload_fraction(mut self, lo: f64, hi: f64) -> Self {
        self.offload_fraction = (lo, hi);
        self
    }

    /// Sets the deadline-to-period ratio (constrained deadlines).
    #[must_use]
    pub fn with_deadline_ratio(mut self, ratio: f64) -> Self {
        self.deadline_ratio = ratio;
        self
    }
}

/// Generates a random heterogeneous task set hitting `params.total_util`.
///
/// Each task's period is `T_i = max(round(vol_i / u_i), len_i)` — a period
/// below the critical-path length would make the task trivially
/// infeasible on *any* number of cores, which acceptance experiments
/// exclude by construction (the clamp loses a little utilization on very
/// unlucky draws; the typical deviation is well below 1 %).
///
/// # Errors
///
/// - [`SchedError::InvalidParams`] for out-of-range parameters;
/// - [`SchedError::Gen`] if DAG generation fails.
///
/// # Examples
///
/// ```
/// use hetrta_sched::taskset::{generate_task_set, TaskSetParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(11);
/// let set = generate_task_set(&TaskSetParams::small(4, 2.0), &mut rng)?;
/// assert_eq!(set.len(), 4);
/// let total: f64 = set.iter().map(|t| t.as_homogeneous().utilization().to_f64()).sum();
/// assert!((total - 2.0).abs() < 0.2, "total utilization {total}");
/// # Ok::<(), hetrta_sched::SchedError>(())
/// ```
pub fn generate_task_set<R: Rng + ?Sized>(
    params: &TaskSetParams,
    rng: &mut R,
) -> Result<Vec<HeteroDagTask>, SchedError> {
    let (lo, hi) = params.offload_fraction;
    if !(0.0 < lo && lo <= hi && hi < 1.0) {
        return Err(SchedError::InvalidParams(format!(
            "offload fraction range ({lo}, {hi}) must satisfy 0 < lo ≤ hi < 1"
        )));
    }
    if !(params.deadline_ratio > 0.0 && params.deadline_ratio <= 1.0) {
        return Err(SchedError::InvalidParams(format!(
            "deadline ratio {} must be in (0, 1]",
            params.deadline_ratio
        )));
    }
    let us = if params.util_cap.is_finite() {
        uunifast_capped(
            params.n_tasks,
            params.total_util,
            params.util_cap,
            1000,
            rng,
        )?
    } else {
        uunifast(params.n_tasks, params.total_util, rng)?
    };

    let mut tasks = Vec::with_capacity(params.n_tasks);
    for u in us {
        let dag = generate_nfj(&params.nfj, rng)?;
        let f = if lo < hi { rng.gen_range(lo..hi) } else { lo };
        let sized = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(f),
            rng,
        )?;
        let vol = sized.volume().get();
        let len = sized.critical_path_length().get();
        let period = ((vol as f64 / u).round() as u64).max(len).max(1);
        let deadline = ((period as f64 * params.deadline_ratio).round() as u64)
            .max(len)
            .max(1);
        let deadline = deadline.min(period);
        tasks.push(HeteroDagTask::new(
            sized.dag().clone(),
            sized.offloaded(),
            Ticks::new(period),
            Ticks::new(deadline),
        )?);
    }
    Ok(tasks)
}

impl From<hetrta_dag::DagError> for SchedError {
    fn from(e: hetrta_dag::DagError) -> Self {
        SchedError::Gen(hetrta_gen::GenError::Structure(e))
    }
}

/// Sorts a task set into deadline-monotonic priority order (shortest
/// deadline first; ties by period, then original position).
pub fn sort_deadline_monotonic(tasks: &mut [HeteroDagTask]) {
    tasks.sort_by_key(|t| (t.deadline(), t.period()));
}

/// The interference summary of a task on a **homogeneous** platform, where
/// `v_off` executes on the host and its WCET interferes like any other.
#[must_use]
pub fn interference_homogeneous(task: &HeteroDagTask) -> InterferingTask {
    InterferingTask {
        host_workload: task.volume(),
        period: task.period(),
        c_off: Ticks::ZERO,
    }
}

/// The interference summary of a task on the **heterogeneous** platform:
/// only the host volume competes for host cores; `C_off` is reported for
/// device-contention bounds.
#[must_use]
pub fn interference_heterogeneous(task: &HeteroDagTask) -> InterferingTask {
    InterferingTask {
        host_workload: task.host_volume(),
        period: task.period(),
        c_off: task.c_off(),
    }
}

/// Total utilization `Σ vol_i/T_i` of a set, exactly.
#[must_use]
pub fn total_utilization(tasks: &[HeteroDagTask]) -> Rational {
    tasks
        .iter()
        .map(|t| Rational::new(t.volume().get() as i128, t.period().get() as i128))
        .fold(Rational::ZERO, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uunifast_sums_to_total() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 5, 20] {
            for total in [0.5, 1.0, 3.7] {
                let us = uunifast(n, total, &mut rng).unwrap();
                assert_eq!(us.len(), n);
                assert!((us.iter().sum::<f64>() - total).abs() < 1e-9);
                assert!(us.iter().all(|&u| u > 0.0));
            }
        }
    }

    #[test]
    fn uunifast_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(uunifast(0, 1.0, &mut rng).is_err());
        assert!(uunifast(3, 0.0, &mut rng).is_err());
        assert!(uunifast(3, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn uunifast_capped_respects_cap() {
        let mut rng = StdRng::seed_from_u64(2);
        let us = uunifast_capped(6, 3.0, 0.9, 10_000, &mut rng).unwrap();
        assert!(us.iter().all(|&u| u <= 0.9));
        assert!((us.iter().sum::<f64>() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn uunifast_capped_detects_impossible_cap() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(uunifast_capped(4, 4.0, 0.5, 100, &mut rng).is_err());
    }

    #[test]
    fn generated_set_hits_target_utilization() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = TaskSetParams::small(6, 3.0);
        let set = generate_task_set(&params, &mut rng).unwrap();
        assert_eq!(set.len(), 6);
        let total = total_utilization(&set).to_f64();
        assert!((total - 3.0).abs() < 0.3, "total {total}");
        for t in &set {
            assert!(t.period() >= t.critical_path_length());
            assert_eq!(t.deadline(), t.period()); // implicit
        }
    }

    #[test]
    fn constrained_deadlines_respect_ratio() {
        let mut rng = StdRng::seed_from_u64(4);
        let params = TaskSetParams::small(5, 2.0).with_deadline_ratio(0.8);
        let set = generate_task_set(&params, &mut rng).unwrap();
        for t in &set {
            assert!(t.deadline() <= t.period());
            assert!(t.deadline() >= t.critical_path_length());
        }
    }

    #[test]
    fn offload_fraction_lands_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let params = TaskSetParams::small(8, 2.0).with_offload_fraction(0.2, 0.3);
        let set = generate_task_set(&params, &mut rng).unwrap();
        for t in &set {
            let f = t.offload_fraction().to_f64();
            // VolumeFraction rounds to integer WCETs; allow slack.
            assert!((0.1..=0.45).contains(&f), "offload fraction {f}");
        }
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let bad_frac = TaskSetParams::small(3, 1.0).with_offload_fraction(0.0, 0.4);
        assert!(generate_task_set(&bad_frac, &mut rng).is_err());
        let bad_ratio = TaskSetParams::small(3, 1.0).with_deadline_ratio(1.5);
        assert!(generate_task_set(&bad_ratio, &mut rng).is_err());
    }

    #[test]
    fn dm_sort_orders_by_deadline() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut set = generate_task_set(&TaskSetParams::small(6, 2.0), &mut rng).unwrap();
        sort_deadline_monotonic(&mut set);
        assert!(set.windows(2).all(|w| w[0].deadline() <= w[1].deadline()));
    }

    #[test]
    fn interference_summaries_split_host_and_device() {
        let mut rng = StdRng::seed_from_u64(8);
        let set = generate_task_set(&TaskSetParams::small(1, 0.5), &mut rng).unwrap();
        let t = &set[0];
        let hom = interference_homogeneous(t);
        let het = interference_heterogeneous(t);
        assert_eq!(hom.host_workload, t.volume());
        assert_eq!(hom.c_off, Ticks::ZERO);
        assert_eq!(het.host_workload + het.c_off, hom.host_workload);
        assert_eq!(het.c_off, t.c_off());
    }
}
