//! Global fixed-priority response-time analysis for heterogeneous DAG
//! task sets.
//!
//! Tasks are analyzed in priority order (slice index 0 = highest priority;
//! sort with [`sort_deadline_monotonic`](crate::taskset::sort_deadline_monotonic)
//! first for DM priorities). For each task `τ_k` the test iterates
//!
//! ```text
//! R_k ← intra_k + I_k/m [+ B_k]     I_k = Σ_{j < k} W_j(⌈R_k⌉)
//! ```
//!
//! to its least fixed point, where `W_j` is the carry-in workload bound of
//! [`workload`](crate::workload) instantiated with the *already computed*
//! bound `R_j` of each higher-priority task, `intra_k` is the Eq. 1 or
//! Theorem 1 term of [`AnalysisModel`], and `B_k` is the shared-device
//! queueing delay under [`DeviceModel::SharedFifo`]. Iteration stops as
//! soon as the bound exceeds the deadline (unschedulable: lower-priority
//! tasks are still analyzed, with this task interfering at `R_j = D_j`).
//!
//! Windows passed to `W_j` are rounded up to the next integer, which keeps
//! every iterate on the lattice `(1/m)·ℤ` and guarantees termination
//! without a convergence epsilon (the rounding only ever increases the
//! bound, preserving soundness).

use hetrta_dag::{HeteroDagTask, Rational};

use crate::model::{
    build_contexts, device_utilization_ok, AnalysisModel, DeviceModel, SetVerdict, TaskCtx,
    TaskVerdict,
};
use crate::workload::{carry_in_workload, device_demand};
use crate::SchedError;

/// Hard cap on fixed-point iterations per task; reaching it is reported as
/// unschedulable (sound direction).
const MAX_ITERATIONS: usize = 50_000;

/// Global-FP schedulability test: per-task response-time bounds for
/// `tasks` (in priority order) on `m` host cores.
///
/// # Errors
///
/// - [`SchedError::ZeroCores`] if `m == 0`;
/// - [`SchedError::Analysis`] if a task's graph is structurally invalid.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
/// use hetrta_sched::gfp::gfp_test;
/// use hetrta_sched::model::{AnalysisModel, DeviceModel};
///
/// # fn mk(c_off: u64, t: u64) -> HeteroDagTask {
/// #     let mut b = DagBuilder::new();
/// #     let a = b.node("a", Ticks::new(1));
/// #     let k = b.node("k", Ticks::new(c_off));
/// #     let z = b.node("z", Ticks::new(1));
/// #     b.edges([(a, k), (k, z)]).unwrap();
/// #     HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(t), Ticks::new(t)).unwrap()
/// # }
/// let tasks = vec![mk(3, 12), mk(4, 30)];
/// let het = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);
/// let verdict = gfp_test(&tasks, 2, het)?;
/// assert!(verdict.is_schedulable());
/// # Ok::<(), hetrta_sched::SchedError>(())
/// ```
pub fn gfp_test(
    tasks: &[HeteroDagTask],
    m: u64,
    model: AnalysisModel,
) -> Result<SetVerdict, SchedError> {
    let ctxs = build_contexts(tasks, m)?;
    if matches!(model, AnalysisModel::Heterogeneous(DeviceModel::SharedFifo))
        && !device_utilization_ok(tasks)
    {
        // Over-utilized device: the job-count bound does not hold; reject.
        let per_task = ctxs
            .iter()
            .enumerate()
            .map(|(k, c)| TaskVerdict {
                task: k,
                response_bound: None,
                deadline: c.deadline,
            })
            .collect();
        return Ok(SetVerdict { per_task, model });
    }

    let mut per_task = Vec::with_capacity(ctxs.len());
    // Response bound of already-analyzed (higher-priority) tasks; D_j for
    // tasks that failed (they still release and interfere).
    let mut resp: Vec<Rational> = Vec::with_capacity(ctxs.len());

    for (k, ctx) in ctxs.iter().enumerate() {
        let bound = fixed_point(k, ctx, &ctxs, &resp, m, model);
        resp.push(match &bound {
            Some(r) => *r,
            None => ctx.deadline.to_rational(),
        });
        per_task.push(TaskVerdict {
            task: k,
            response_bound: bound,
            deadline: ctx.deadline,
        });
    }
    Ok(SetVerdict { per_task, model })
}

/// Least fixed point of the response-time recurrence for task `k`, or
/// `None` once the bound exceeds the deadline.
fn fixed_point(
    k: usize,
    ctx: &TaskCtx,
    ctxs: &[TaskCtx],
    resp: &[Rational],
    m: u64,
    model: AnalysisModel,
) -> Option<Rational> {
    let deadline = ctx.deadline.to_rational();
    let intra = ctx.intra_bound(model, m);
    let mut r = intra;
    if r > deadline {
        return None;
    }
    for _ in 0..MAX_ITERATIONS {
        let window = Rational::from_integer(r.ceil());
        let mut inter = Rational::ZERO;
        for j in 0..k {
            inter += carry_in_workload(ctxs[j].interference(model), window, resp[j], m);
        }
        let mut next = intra + inter / Rational::from_integer(m as i128);
        if let AnalysisModel::Heterogeneous(DeviceModel::SharedFifo) = model {
            // FIFO device: *every* other task (any priority) may enqueue
            // its offload ahead of ours.
            let mut blocking = Rational::ZERO;
            for (j, other) in ctxs.iter().enumerate() {
                if j != k {
                    let rj = resp.get(j).copied().unwrap_or(other.deadline.to_rational());
                    blocking += device_demand(&other.interf_het, window, rj);
                }
            }
            next += blocking;
        }
        if next > deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        debug_assert!(next > r, "response-time recurrence must be non-decreasing");
        r = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeviceModel;
    use hetrta_dag::{DagBuilder, Ticks};

    fn chain(c_off: u64, t: u64, d: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(1));
        let k = b.node("k", Ticks::new(c_off));
        let z = b.node("z", Ticks::new(1));
        b.edges([(a, k), (k, z)]).unwrap();
        HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(t), Ticks::new(d)).unwrap()
    }

    fn forkjoin(w: u64, branches: usize, c_off: u64, t: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::new(1));
        let sink = b.node("sink", Ticks::new(1));
        let k = b.node("k", Ticks::new(c_off));
        b.edges([(src, k), (k, sink)]).unwrap();
        for i in 0..branches {
            let p = b.node(format!("p{i}"), Ticks::new(w));
            b.edges([(src, p), (p, sink)]).unwrap();
        }
        HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(t), Ticks::new(t)).unwrap()
    }

    const HET: AnalysisModel = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);
    const HET_SHARED: AnalysisModel = AnalysisModel::Heterogeneous(DeviceModel::SharedFifo);

    #[test]
    fn single_task_reduces_to_single_task_analysis() {
        let t = forkjoin(4, 3, 5, 100);
        let v = gfp_test(std::slice::from_ref(&t), 2, AnalysisModel::Homogeneous).unwrap();
        let expected = hetrta_core::r_hom(&t.as_homogeneous(), 2).unwrap();
        assert_eq!(v.per_task[0].response_bound, Some(expected));
    }

    #[test]
    fn lower_priority_tasks_absorb_interference() {
        let tasks = vec![chain(2, 10, 10), chain(2, 40, 40)];
        let v = gfp_test(&tasks, 2, HET).unwrap();
        assert!(v.is_schedulable());
        let r0 = v.per_task[0].response_bound.unwrap();
        let r1 = v.per_task[1].response_bound.unwrap();
        assert!(r1 >= r0, "low priority should not beat high priority here");
    }

    #[test]
    fn het_accepts_what_hom_rejects_for_large_offloads() {
        // Three tasks whose offloads dominate: the host barely works, but
        // on a homogeneous platform the kernels crush the two cores.
        let tasks = vec![chain(20, 30, 30), chain(20, 34, 34), chain(20, 38, 38)];
        let hom = gfp_test(&tasks, 2, AnalysisModel::Homogeneous).unwrap();
        let het = gfp_test(&tasks, 2, HET).unwrap();
        assert!(!hom.is_schedulable());
        assert!(het.is_schedulable());
    }

    #[test]
    fn overload_is_rejected() {
        // Two host-heavy tasks on one core with tight periods.
        let tasks = vec![forkjoin(5, 3, 1, 18), forkjoin(5, 3, 1, 18)];
        let v = gfp_test(&tasks, 1, AnalysisModel::Homogeneous).unwrap();
        assert!(!v.is_schedulable());
        // The top-priority task alone is fine.
        assert!(v.per_task[0].is_schedulable());
        assert!(!v.per_task[1].is_schedulable());
    }

    #[test]
    fn shared_device_adds_blocking() {
        let tasks = vec![chain(6, 40, 40), chain(6, 44, 44)];
        let ded = gfp_test(&tasks, 2, HET).unwrap();
        let shared = gfp_test(&tasks, 2, HET_SHARED).unwrap();
        for k in 0..2 {
            let rd = ded.per_task[k].response_bound.unwrap();
            let rs = shared.per_task[k].response_bound.unwrap();
            assert!(rs >= rd, "shared device must not tighten the bound");
        }
        // Task 1's offload can wait behind task 0's.
        assert!(
            shared.per_task[1].response_bound.unwrap() > ded.per_task[1].response_bound.unwrap()
        );
    }

    #[test]
    fn overutilized_shared_device_rejects_cleanly() {
        let tasks = vec![chain(9, 10, 10), chain(9, 12, 12)];
        let v = gfp_test(&tasks, 4, HET_SHARED).unwrap();
        assert!(!v.is_schedulable());
        assert!(v.per_task.iter().all(|t| t.response_bound.is_none()));
    }

    #[test]
    fn bounds_decrease_with_more_cores() {
        let tasks = vec![forkjoin(4, 4, 3, 60), forkjoin(4, 4, 3, 80)];
        let mut prev: Option<Rational> = None;
        for m in [1u64, 2, 4, 8] {
            let v = gfp_test(&tasks, m, HET).unwrap();
            if let Some(r) = v.per_task[1].response_bound {
                if let Some(p) = prev {
                    assert!(r <= p, "m = {m}: bound {r} > previous {p}");
                }
                prev = Some(r);
            }
        }
        assert!(prev.is_some());
    }

    #[test]
    fn zero_cores_is_an_error() {
        assert!(matches!(
            gfp_test(&[chain(1, 10, 10)], 0, AnalysisModel::Homogeneous),
            Err(SchedError::ZeroCores)
        ));
    }

    #[test]
    fn empty_set_is_vacuously_unschedulable_by_convention() {
        let v = gfp_test(&[], 2, AnalysisModel::Homogeneous).unwrap();
        assert!(!v.is_schedulable());
        assert!(v.per_task.is_empty());
    }

    #[test]
    fn failed_high_priority_still_interferes_with_low() {
        // Task 0 infeasible (deadline below its critical path); task 1
        // must still account for τ_0's workload.
        let tasks = vec![chain(50, 60, 20), chain(2, 200, 200)];
        let v = gfp_test(&tasks, 2, AnalysisModel::Homogeneous).unwrap();
        assert!(!v.per_task[0].is_schedulable());
        let alone = gfp_test(&tasks[1..], 2, AnalysisModel::Homogeneous)
            .unwrap()
            .per_task[0]
            .response_bound
            .unwrap();
        let with_hp = v.per_task[1].response_bound.unwrap();
        assert!(with_hp > alone);
    }
}
