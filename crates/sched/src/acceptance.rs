//! Acceptance-ratio experiments — the standard empirical methodology for
//! comparing schedulability tests.
//!
//! For each target *normalized utilization* `U/m`, the sweep generates
//! many random task sets ([`taskset`](crate::taskset)) and reports, per
//! test, the fraction the test accepts. A test that dominates another
//! shows a curve shifted to the right: it keeps accepting at utilizations
//! where the other already gives up. This quantifies at the task-*set*
//! level the paper's single-task claim that `R_het` outperforms `R_hom`
//! once enough work is offloaded.

use hetrta_core::federated::{federated_partition, AnalysisKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gedf::gedf_test;
use crate::gfp::gfp_test;
use crate::model::{AnalysisModel, DeviceModel};
use crate::taskset::{generate_task_set, sort_deadline_monotonic, TaskSetParams};
use crate::SchedError;

/// The schedulability tests an acceptance sweep compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TestKind {
    /// Global FP (DM priorities), homogeneous model.
    GfpHomogeneous,
    /// Global FP (DM priorities), heterogeneous model (dedicated devices).
    GfpHeterogeneous,
    /// Global EDF, homogeneous model.
    GedfHomogeneous,
    /// Global EDF, heterogeneous model (dedicated devices).
    GedfHeterogeneous,
    /// Federated clustering sized with Eq. 1.
    FederatedHomogeneous,
    /// Federated clustering sized with Theorem 1.
    FederatedHeterogeneous,
}

impl TestKind {
    /// All tests, in presentation order.
    pub const ALL: [TestKind; 6] = [
        TestKind::GfpHomogeneous,
        TestKind::GfpHeterogeneous,
        TestKind::GedfHomogeneous,
        TestKind::GedfHeterogeneous,
        TestKind::FederatedHomogeneous,
        TestKind::FederatedHeterogeneous,
    ];

    /// Short column label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TestKind::GfpHomogeneous => "GFP-hom",
            TestKind::GfpHeterogeneous => "GFP-het",
            TestKind::GedfHomogeneous => "GEDF-hom",
            TestKind::GedfHeterogeneous => "GEDF-het",
            TestKind::FederatedHomogeneous => "FED-hom",
            TestKind::FederatedHeterogeneous => "FED-het",
        }
    }
}

/// Configuration of an acceptance-ratio sweep.
#[derive(Debug, Clone)]
pub struct AcceptanceConfig {
    /// Host cores `m`.
    pub cores: u64,
    /// Tasks per set.
    pub n_tasks: usize,
    /// Random sets per utilization point.
    pub sets_per_point: usize,
    /// Normalized utilizations `U/m` to sweep (e.g. `0.1, 0.2, …, 1.0`).
    pub normalized_utils: Vec<f64>,
    /// Task-set template; its `total_util` field is overwritten per point.
    pub template: TaskSetParams,
    /// Base RNG seed (point `i`, set `s` uses a seed derived from it).
    pub seed: u64,
}

impl AcceptanceConfig {
    /// A compact default: `m` cores, 4 small tasks per set, 11 utilization
    /// points from 0.05 to 0.95·m.
    #[must_use]
    pub fn quick(cores: u64) -> Self {
        AcceptanceConfig {
            cores,
            n_tasks: 4,
            sets_per_point: 50,
            normalized_utils: (1..=19).step_by(2).map(|i| i as f64 / 20.0).collect(),
            template: TaskSetParams::small(4, 1.0),
            seed: 0xDAC_2018,
        }
    }
}

/// Acceptance ratios at one utilization point.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptancePoint {
    /// `U/m` at this point.
    pub normalized_util: f64,
    /// Sets generated.
    pub sets: usize,
    /// `(test, accepted count)` in [`TestKind::ALL`] order.
    pub accepted: Vec<(TestKind, usize)>,
}

impl AcceptancePoint {
    /// Acceptance ratio of `test` in `[0, 1]`.
    #[must_use]
    pub fn ratio(&self, test: TestKind) -> f64 {
        self.accepted
            .iter()
            .find(|(t, _)| *t == test)
            .map_or(0.0, |(_, n)| *n as f64 / self.sets.max(1) as f64)
    }
}

/// The RNG seed of set `set_index` at utilization point `point_index`.
///
/// The base seed goes through a SplitMix64 finalizer before the point and
/// set indices are XORed in: without the mixing step, base seeds that
/// differ only in their low bits (0, 1, 2, …) would produce overlapping
/// per-set seed ranges, silently regenerating identical "independent"
/// sets. Both the serial sweep below and the parallel engine
/// (`hetrta-engine`) derive seeds through this function, which is what
/// keeps their acceptance ratios identical.
#[must_use]
pub fn point_seed(base_seed: u64, point_index: usize, set_index: usize) -> u64 {
    splitmix64(base_seed) ^ ((point_index as u64) << 32) ^ set_index as u64
}

/// The SplitMix64 finalizer used to decorrelate nearby base seeds (shared
/// by [`point_seed`] and the engine's sampled-grid seed derivations).
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the acceptance sweep and returns one point per normalized
/// utilization.
///
/// # Errors
///
/// - [`SchedError::InvalidParams`] for an empty sweep or zero sets;
/// - generation/analysis errors from the underlying modules.
pub fn acceptance_sweep(config: &AcceptanceConfig) -> Result<Vec<AcceptancePoint>, SchedError> {
    if config.normalized_utils.is_empty() || config.sets_per_point == 0 {
        return Err(SchedError::InvalidParams(
            "sweep needs at least one utilization point and one set".into(),
        ));
    }
    if config.cores == 0 {
        return Err(SchedError::ZeroCores);
    }
    let het = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);
    let mut points = Vec::with_capacity(config.normalized_utils.len());
    for (pi, &nu) in config.normalized_utils.iter().enumerate() {
        let mut counts = [0usize; 6];
        for s in 0..config.sets_per_point {
            let mut params = config.template.clone();
            params.n_tasks = config.n_tasks;
            params.total_util = nu * config.cores as f64;
            let mut rng = StdRng::seed_from_u64(point_seed(config.seed, pi, s));
            let mut set = generate_task_set(&params, &mut rng)?;
            sort_deadline_monotonic(&mut set);

            if gfp_test(&set, config.cores, AnalysisModel::Homogeneous)?.is_schedulable() {
                counts[0] += 1;
            }
            if gfp_test(&set, config.cores, het)?.is_schedulable() {
                counts[1] += 1;
            }
            if gedf_test(&set, config.cores, AnalysisModel::Homogeneous)?.is_schedulable() {
                counts[2] += 1;
            }
            if gedf_test(&set, config.cores, het)?.is_schedulable() {
                counts[3] += 1;
            }
            if federated_partition(&set, config.cores, AnalysisKind::Homogeneous)?.is_schedulable()
            {
                counts[4] += 1;
            }
            if federated_partition(&set, config.cores, AnalysisKind::Heterogeneous)?
                .is_schedulable()
            {
                counts[5] += 1;
            }
        }
        points.push(AcceptancePoint {
            normalized_util: nu,
            sets: config.sets_per_point,
            accepted: TestKind::ALL.iter().copied().zip(counts).collect(),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> AcceptanceConfig {
        AcceptanceConfig {
            cores: 2,
            n_tasks: 3,
            sets_per_point: 8,
            normalized_utils: vec![0.2, 0.6, 1.0],
            template: TaskSetParams::small(3, 1.0).with_offload_fraction(0.15, 0.35),
            seed: 42,
        }
    }

    #[test]
    fn sweep_produces_one_point_per_utilization() {
        let points = acceptance_sweep(&tiny_config()).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.sets, 8);
            assert_eq!(p.accepted.len(), 6);
            for &(t, n) in &p.accepted {
                assert!(n <= p.sets, "{t:?} accepted more sets than generated");
            }
        }
    }

    #[test]
    fn acceptance_declines_with_utilization() {
        let points = acceptance_sweep(&tiny_config()).unwrap();
        // At 20 % of 2 cores almost everything passes; at 100 % almost
        // nothing should (workload exceeds what bounds can admit).
        for t in TestKind::ALL {
            assert!(
                points[0].ratio(t) >= points[2].ratio(t),
                "{t:?}: low-util ratio below high-util ratio"
            );
        }
    }

    #[test]
    fn het_tests_dominate_hom_counterparts() {
        // With sizeable offload fractions the heterogeneous tests accept
        // at least as many sets (same generated sets per seed).
        let points = acceptance_sweep(&tiny_config()).unwrap();
        for p in &points {
            assert!(p.ratio(TestKind::GfpHeterogeneous) >= p.ratio(TestKind::GfpHomogeneous));
            assert!(p.ratio(TestKind::GedfHeterogeneous) >= p.ratio(TestKind::GedfHomogeneous));
            assert!(
                p.ratio(TestKind::FederatedHeterogeneous)
                    >= p.ratio(TestKind::FederatedHomogeneous)
            );
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = tiny_config();
        c.normalized_utils.clear();
        assert!(acceptance_sweep(&c).is_err());
        let mut c = tiny_config();
        c.sets_per_point = 0;
        assert!(acceptance_sweep(&c).is_err());
        let mut c = tiny_config();
        c.cores = 0;
        assert!(acceptance_sweep(&c).is_err());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            TestKind::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
