//! # hetrta-sched — multi-task schedulability for heterogeneous DAG tasks
//!
//! The DAC 2018 paper analyzes **one** DAG task in isolation; its future
//! work asks for systems with "more tasks". This crate is that extension:
//! global schedulability tests for *sets* of sporadic heterogeneous DAG
//! tasks sharing `m` host cores (and optionally a single accelerator),
//! composing the paper's Theorem 1 intra-task bound with classical
//! carry-in inter-task workload bounds (Melani et al., ECRTS 2015; the
//! paper's reference \[18\], DATE 2016).
//!
//! * [`taskset`] — UUniFast utilization draws + random task-set generation
//!   on top of the paper's §5.1 DAG generator;
//! * [`workload`] — carry-in workload and shared-device demand bounds;
//! * [`model`] — the homogeneous/heterogeneous analysis models and the
//!   interference-robust composition of Theorem 1 (see its module docs);
//! * [`gfp`] — global fixed-priority response-time analysis;
//! * [`gedf`] — global-EDF schedulability test;
//! * [`acceptance`] — acceptance-ratio sweeps comparing all tests (plus
//!   the federated clustering of `hetrta-core`).
//!
//! The empirical soundness harness lives in `tests/empirical.rs`: every
//! set accepted by any test here is replayed in the sporadic simulator of
//! `hetrta-sim` and must not miss a deadline.
//!
//! ## Example
//!
//! ```
//! use hetrta_sched::acceptance::{acceptance_sweep, AcceptanceConfig, TestKind};
//!
//! let mut config = AcceptanceConfig::quick(4);
//! config.sets_per_point = 5;          // keep the doc test fast
//! config.normalized_utils = vec![0.3];
//! let points = acceptance_sweep(&config)?;
//! let p = &points[0];
//! assert!(p.ratio(TestKind::GfpHeterogeneous) >= p.ratio(TestKind::GfpHomogeneous));
//! # Ok::<(), hetrta_sched::SchedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acceptance;
mod error;
pub mod gedf;
pub mod gfp;
pub mod model;
pub mod taskset;
pub mod workload;

pub use acceptance::{acceptance_sweep, AcceptanceConfig, AcceptancePoint, TestKind};
pub use error::SchedError;
pub use gedf::{gedf_test, gedf_test_with, CarryIn};
pub use gfp::gfp_test;
pub use model::{AnalysisModel, DeviceModel, SetVerdict, TaskVerdict};
pub use taskset::{generate_task_set, TaskSetParams};
