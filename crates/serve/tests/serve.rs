//! End-to-end daemon guarantees, pinned over real sockets: a remote
//! sweep is bitwise the local one, overload answers `Busy`, a client
//! disconnect cancels its in-flight sweep on the shared engine, and
//! shutdown drains admitted work before the daemon exits.

use std::time::{Duration, Instant};

use hetrta_engine::{
    AggregateView, AnalysisSelection, Engine, GeneratorPreset, SweepEvent, SweepSpec,
};
use hetrta_serve::{
    AdmissionConfig, ClientError, Progress, ServeClient, Server, ServerConfig, ShutdownHandle,
};

fn quick_spec() -> SweepSpec {
    SweepSpec::fractions(
        GeneratorPreset::Small,
        vec![2, 4],
        vec![0.1, 0.3],
        4,
        0xBEEF,
    )
}

/// Plenty of jobs for a 1-thread engine: slow enough to observe
/// in-flight cancellation and queueing. Every user cancels it mid-run,
/// so the count only has to outlast a few client round-trips — 20k tiny
/// jobs keeps that true even for a release build (64 did not).
fn slow_spec() -> SweepSpec {
    let tiny = GeneratorPreset::Custom(hetrta_gen::NfjParams::small_tasks().with_node_range(4, 12));
    SweepSpec::fractions(tiny, vec![2], vec![0.2], 20_000, 3)
        .with_analyses(AnalysisSelection::from_keys(["sim", "exact"]))
}

struct TestDaemon {
    addr: String,
    shutdown: ShutdownHandle,
    engine: std::sync::Arc<Engine>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestDaemon {
    fn start(admission: AdmissionConfig, threads: usize) -> TestDaemon {
        TestDaemon::start_with(ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads,
            cache_dir: None,
            admission,
            partial_every: Some(1),
            dist: None,
            journal_dir: None,
            chaos: None,
        })
    }

    fn start_with(config: ServerConfig) -> TestDaemon {
        let server = Server::bind(config).expect("bind on a free port");
        let addr = server.local_addr().to_string();
        let shutdown = server.shutdown_handle();
        let engine = std::sync::Arc::clone(server.engine());
        let thread = std::thread::spawn(move || server.run().expect("daemon run"));
        TestDaemon {
            addr,
            shutdown,
            engine,
            thread: Some(thread),
        }
    }

    fn stop(mut self) {
        self.shutdown.shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("daemon thread");
        }
    }
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn remote_sweep_is_bitwise_the_local_one_and_events_reassemble() {
    let daemon = TestDaemon::start(AdmissionConfig::default(), 2);
    let local = Engine::new(2).run(&quick_spec()).expect("local run");

    let mut client = ServeClient::connect(&daemon.addr).expect("connect");
    let jobs = client.submit("team-a", &quick_spec()).expect("accepted");
    assert_eq!(jobs, quick_spec().job_count());

    // Reassemble the streamed partial aggregates exactly like a local
    // consumer would.
    let mut view = AggregateView::new();
    let mut partials = 0usize;
    let outcome = loop {
        match client.next_progress().expect("stream") {
            Progress::Event(SweepEvent::PartialAggregate { update, .. }) => {
                partials += 1;
                assert!(
                    view.apply(&update).is_some(),
                    "an in-order stream never desyncs the view"
                );
            }
            Progress::Event(_) => {}
            Progress::Done(outcome) => break outcome,
        }
    };
    assert!(partials > 0, "partials were streamed");
    assert!(!outcome.cancelled);
    assert_eq!(outcome.completed, jobs);
    assert_eq!(outcome.events_dropped, 0, "this client kept up");
    assert_eq!(outcome.aggregate, local.aggregate);
    assert_eq!(
        format!("{:?}", outcome.aggregate),
        format!("{:?}", local.aggregate),
        "remote result is bitwise the local one"
    );

    // A second sweep on the same connection works once the first is done.
    let again = client
        .run_to_completion("team-a", &quick_spec(), |_| {})
        .expect("second sweep");
    assert_eq!(again.aggregate, local.aggregate);

    let stats = client.stats().expect("stats");
    assert!(stats.contains("serve.tenant.team-a.submitted"), "{stats}");
    assert!(stats.contains("queue: pending="), "{stats}");
    daemon.stop();
}

#[test]
fn overload_answers_busy_with_the_configured_hint_not_buffering() {
    let daemon = TestDaemon::start(
        AdmissionConfig {
            max_active: 1,
            max_pending: 1,
            retry_after_ms: 77,
        },
        1,
    );

    // First sweep occupies the single active slot…
    let mut active = ServeClient::connect(&daemon.addr).expect("connect");
    active.submit("flood", &slow_spec()).expect("accepted");
    wait_until("the first sweep to start", Duration::from_secs(10), || {
        daemon.engine.active_sessions() == 1
    });
    // …second fills the single pending slot…
    let mut queued = ServeClient::connect(&daemon.addr).expect("connect");
    queued.submit("flood", &slow_spec()).expect("enqueued");
    // …so the third must bounce with the typed backpressure reply.
    let mut refused = ServeClient::connect(&daemon.addr).expect("connect");
    match refused.submit("flood", &slow_spec()) {
        Err(ClientError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 77),
        other => panic!("expected Busy, got {other:?}"),
    }

    // Cancel both admitted sweeps; both streams still terminate cleanly.
    active.cancel().expect("cancel active");
    queued.cancel().expect("cancel queued");
    for client in [&mut active, &mut queued] {
        loop {
            match client.next_progress() {
                Ok(Progress::Event(_)) => continue,
                Ok(Progress::Done(outcome)) => {
                    assert!(outcome.cancelled);
                    break;
                }
                Err(ClientError::Rejected(_)) => break,
                Err(err) => panic!("stream must end typed, got {err}"),
            }
        }
    }
    daemon.stop();
}

#[test]
fn client_disconnect_cancels_the_in_flight_sweep() {
    let daemon = TestDaemon::start(AdmissionConfig::default(), 1);

    let mut client = ServeClient::connect(&daemon.addr).expect("connect");
    client.submit("vanisher", &slow_spec()).expect("accepted");
    wait_until("the sweep to start", Duration::from_secs(10), || {
        daemon.engine.active_sessions() == 1
    });

    // The client vanishes mid-sweep: the daemon must map the dropped
    // socket to a cancel, and the engine's session count must fall back
    // to zero long before the 20k-job sweep could finish on one thread.
    drop(client);
    wait_until(
        "disconnect to cancel the sweep",
        Duration::from_secs(30),
        || daemon.engine.active_sessions() == 0,
    );

    // The daemon is still healthy for other clients.
    let local = Engine::new(2).run(&quick_spec()).expect("local run");
    let outcome = ServeClient::connect(&daemon.addr)
        .expect("connect")
        .run_to_completion("survivor", &quick_spec(), |_| {})
        .expect("post-disconnect sweep");
    assert_eq!(outcome.aggregate, local.aggregate);
    daemon.stop();
}

#[test]
fn shutdown_drains_in_flight_sweeps_before_exit() {
    let daemon = TestDaemon::start(AdmissionConfig::default(), 2);
    let local = Engine::new(2).run(&quick_spec()).expect("local run");

    // A sweep is admitted, then a second connection requests shutdown.
    let mut client = ServeClient::connect(&daemon.addr).expect("connect");
    let jobs = client.submit("drainee", &quick_spec()).expect("accepted");
    ServeClient::connect(&daemon.addr)
        .expect("connect")
        .shutdown()
        .expect("acknowledged");

    // Drain means: the admitted sweep still runs to completion and its
    // Done frame reaches the client before the daemon closes sockets.
    let outcome = loop {
        match client.next_progress().expect("drained stream") {
            Progress::Event(_) => continue,
            Progress::Done(outcome) => break outcome,
        }
    };
    assert!(!outcome.cancelled, "drain completes, not cancels");
    assert_eq!(outcome.completed, jobs);
    assert_eq!(outcome.aggregate, local.aggregate);

    // The daemon actually exits (run() returns, every thread joined)…
    let thread = daemon.thread.expect("daemon thread");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !thread.is_finished() {
        assert!(Instant::now() < deadline, "daemon failed to exit");
        std::thread::sleep(Duration::from_millis(10));
    }
    thread.join().expect("clean exit");
    assert_eq!(daemon.engine.active_sessions(), 0, "no orphan sweeps");

    // …and new work is refused while it was draining (pinned separately
    // above via Offer::Draining unit tests; the socket is gone here).
    assert!(
        ServeClient::connect(&daemon.addr).is_err() || {
            // Accept a race where the OS still completes the TCP handshake
            // on the closed listener's backlog; any subsequent submit must
            // then fail.
            let mut late = ServeClient::connect(&daemon.addr).expect("raced connect");
            late.submit("late", &quick_spec()).is_err()
        }
    );
}

#[test]
fn journaling_daemon_resumes_an_interrupted_sweep_on_resubmit() {
    use hetrta_engine::{spec_hash, JournalConfig, SweepJournal};

    let local = Engine::new(2).run(&quick_spec()).expect("local run");
    let total = local.stats.jobs;

    // Simulate a daemon that was SIGKILLed mid-sweep: its journal holds
    // `done` records for 4 jobs and nothing else (no seal, torn tail).
    let journal_root =
        std::env::temp_dir().join(format!("hetrta-serve-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_root);
    let sweep_dir = journal_root.join(format!("{:016x}", spec_hash(&quick_spec())));
    let prefix = [0usize, 2, 4, 6];
    {
        let cfg = JournalConfig::new(&sweep_dir);
        let (journal, _) = SweepJournal::open(&cfg, &quick_spec(), total).expect("fresh journal");
        Engine::new(1)
            .run_job_subset(&quick_spec(), &prefix, |result| {
                journal.record_done(&result);
            })
            .expect("prefix subset");
    }

    // The "restarted" daemon points at the same journal directory.
    let daemon = TestDaemon::start_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        journal_dir: Some(journal_root.clone()),
        ..ServerConfig::default()
    });

    let outcome = ServeClient::connect(&daemon.addr)
        .expect("connect")
        .run_to_completion("recoverer", &quick_spec(), |_| {})
        .expect("resumed sweep");
    assert_eq!(outcome.completed, total);
    assert_eq!(
        outcome.aggregate, local.aggregate,
        "resumed daemon aggregate is bitwise the uninterrupted local one"
    );
    let snapshot = daemon.engine.metrics().snapshot();
    assert_eq!(
        snapshot.counter("serve.journal.replayed"),
        Some(prefix.len() as u64),
        "the journaled prefix was replayed, not re-executed"
    );
    assert_eq!(
        snapshot.counter("serve.journal.executed"),
        Some((total - prefix.len()) as u64),
        "only the remainder was executed"
    );

    // Resubmitting the now-complete sweep replays everything.
    let again = ServeClient::connect(&daemon.addr)
        .expect("connect")
        .run_to_completion("recoverer", &quick_spec(), |_| {})
        .expect("fully-replayed sweep");
    assert_eq!(again.aggregate, local.aggregate);
    let snapshot = daemon.engine.metrics().snapshot();
    assert_eq!(
        snapshot.counter("serve.journal.replayed"),
        Some((prefix.len() + total) as u64)
    );
    assert_eq!(
        snapshot.counter("serve.journal.executed"),
        Some((total - prefix.len()) as u64),
        "the second submit executed nothing"
    );

    daemon.stop();
    let _ = std::fs::remove_dir_all(&journal_root);
}
