//! Property tests of the serve protocol against defective bytes: any
//! truncation of any `Request`/`Reply` frame reads back as a typed
//! error, any bitflip reads back as a typed error or a valid frame —
//! and the payload decoders never panic on arbitrary bytes.

use std::io::Cursor;
use std::sync::OnceLock;
use std::time::Duration;

use hetrta_engine::{Engine, GeneratorPreset, SweepEvent, SweepSpec};
use hetrta_serve::{Reply, Request};
use proptest::prelude::*;

fn tiny_spec() -> SweepSpec {
    SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.1], 1, 0xFADE)
}

/// Every protocol message once, encoded to its frame bytes. The `Done`
/// reply carries a real aggregate (computed once — the expensive one).
fn sample_frames() -> &'static Vec<Vec<u8>> {
    static FRAMES: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    FRAMES.get_or_init(|| {
        let aggregate = Engine::new(1)
            .run(&tiny_spec())
            .expect("tiny sweep")
            .aggregate;
        let requests = [
            Request::Submit {
                tenant: "prop".into(),
                spec: Box::new(tiny_spec()),
            },
            Request::Cancel,
            Request::Stats,
            Request::Shutdown,
        ];
        let replies = [
            Reply::Accepted { jobs: 16 },
            Reply::Busy {
                retry_after_ms: 200,
            },
            Reply::Event(SweepEvent::JobFinished {
                index: 3,
                cell: 1,
                key: 0xDEAD_BEEF,
                cache_hit: true,
                wall_time: Duration::from_micros(417),
            }),
            Reply::Done {
                completed: 1,
                cancelled: false,
                events_dropped: 0,
                aggregate,
            },
            Reply::Error {
                message: "sweep failed: demo".into(),
            },
            Reply::StatsReply {
                text: "serve.sweeps 3\n".into(),
            },
            Reply::ShutdownAck,
        ];
        let mut frames = Vec::new();
        for request in &requests {
            let mut buf = Vec::new();
            request.write_to(&mut buf).expect("encode request");
            frames.push(buf);
        }
        for reply in &replies {
            let mut buf = Vec::new();
            reply.write_to(&mut buf).expect("encode reply");
            frames.push(buf);
        }
        frames
    })
}

proptest! {
    #[test]
    fn truncated_protocol_frames_read_back_as_typed_errors(
        pick in 0usize..10_000,
        cut_seed in 0usize..1_000_000,
    ) {
        let frames = sample_frames();
        let frame = &frames[pick % frames.len()];
        let cut = cut_seed % frame.len();
        let prefix = &frame[..cut];
        prop_assert!(Request::read_from(&mut Cursor::new(prefix)).is_err());
        prop_assert!(Reply::read_from(&mut Cursor::new(prefix)).is_err());
    }

    #[test]
    fn bitflipped_protocol_frames_never_panic(
        pick in 0usize..10_000,
        bit_seed in 0usize..10_000_000,
    ) {
        let frames = sample_frames();
        let frame = &frames[pick % frames.len()];
        let bit = bit_seed % (frame.len() * 8);
        let mut corrupted = frame.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        // A flip lands in a checksummed region (typed error) or in the
        // kind byte — where it may alias another valid payload-free kind,
        // which is a *valid* frame of a different meaning, not a defect.
        let _ = Request::read_from(&mut Cursor::new(&corrupted));
        let _ = Reply::read_from(&mut Cursor::new(&corrupted));
    }

    #[test]
    fn arbitrary_payload_bytes_never_panic_the_decoders(
        kind in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let _ = Request::decode(kind, &payload);
        let _ = Reply::decode(kind, &payload);
    }
}
