//! The one polite way to retry a busy daemon: jittered exponential
//! backoff, honouring the server's `retry_after_ms` hint as a floor.
//!
//! Both the load generator and `hetrta submit` used to carry their own
//! copies of this loop; they now share [`RetryPolicy`], so the backoff
//! shape (and its cap and jitter) is decided in exactly one place.

use std::time::Duration;

use crate::client::ClientError;

/// Backoff-and-retry policy for [`ClientError::Busy`] replies.
///
/// Delay before retry `n` (0-based) is the daemon's hint floored under
/// an exponential curve `base × 2ⁿ`, capped at `cap`, then scaled by a
/// deterministic jitter in `[0.5, 1.0)` drawn from `seed` — deterministic
/// so a chaos run with a pinned seed replays the same schedule.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Consecutive `Busy` replies tolerated before giving up.
    pub max_retries: usize,
    /// First-retry delay (the exponential curve's base).
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Jitter seed. Two policies with the same seed sleep identically.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 10_000,
            base: Duration::from_millis(2),
            cap: Duration::from_secs(2),
            seed: 0x9E37_79B9,
        }
    }
}

impl RetryPolicy {
    /// The default policy (generous retry budget, 2ms base, 2s cap).
    #[must_use]
    pub fn new() -> Self {
        RetryPolicy::default()
    }

    /// Same policy with a different retry budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// The delay before retry `attempt` (0-based), given the daemon's
    /// `retry_after_ms` hint. Pure: same (policy, attempt, hint) →
    /// same delay.
    #[must_use]
    pub fn delay(&self, attempt: usize, hint_ms: u64) -> Duration {
        let shift = u32::try_from(attempt.min(20)).unwrap_or(20);
        let exponential = self
            .base
            .saturating_mul(2u32.saturating_pow(shift))
            .max(Duration::from_millis(hint_ms.max(1)))
            .min(self.cap);
        // splitmix64 of (seed, attempt) → jitter factor in [0.5, 1.0):
        // spreads synchronized clients without ever undercutting half
        // the hinted floor.
        let mut z = self
            .seed
            .wrapping_add(attempt as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        exponential.mul_f64(0.5 + unit / 2.0)
    }

    /// Runs `op` until it succeeds or fails with anything other than
    /// [`ClientError::Busy`]; each `Busy` sleeps this policy's delay
    /// after calling `on_busy(delay)`. Exhausting the budget returns
    /// [`ClientError::Rejected`].
    ///
    /// # Errors
    ///
    /// The first non-`Busy` error of `op`, or `Rejected` when
    /// `max_retries` consecutive `Busy` replies were honoured.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, ClientError>,
        mut on_busy: impl FnMut(Duration),
    ) -> Result<T, ClientError> {
        let mut attempt = 0usize;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(ClientError::Busy { retry_after_ms }) => {
                    if attempt >= self.max_retries {
                        return Err(ClientError::Rejected(format!(
                            "gave up after {attempt} busy retries"
                        )));
                    }
                    let delay = self.delay(attempt, retry_after_ms);
                    attempt += 1;
                    on_busy(delay);
                    std::thread::sleep(delay);
                }
                Err(err) => return Err(err),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_respect_the_hint_and_stay_capped() {
        let policy = RetryPolicy::new();
        // Jitter keeps every delay within [raw/2, raw); compare bounds.
        let early = policy.delay(0, 1);
        assert!(early >= Duration::from_millis(1), "{early:?}");
        assert!(early < Duration::from_millis(2), "{early:?}");
        // The hint floors the curve when it exceeds the exponential.
        let hinted = policy.delay(0, 100);
        assert!(hinted >= Duration::from_millis(50), "{hinted:?}");
        assert!(hinted < Duration::from_millis(100), "{hinted:?}");
        // Deep attempts never exceed the cap.
        assert!(policy.delay(40, 1) < policy.cap);
        // Deterministic: same (policy, attempt, hint) → same delay.
        assert_eq!(policy.delay(7, 10), policy.delay(7, 10));
        // Different attempts jitter differently (with overwhelming odds).
        assert_ne!(policy.delay(19, 1), policy.delay(20, 1));
    }

    #[test]
    fn run_retries_busy_until_success_and_exhausts_into_rejected() {
        let policy = RetryPolicy {
            base: Duration::from_micros(10),
            cap: Duration::from_micros(50),
            ..RetryPolicy::new().with_max_retries(3)
        };
        let mut calls = 0;
        let mut busy_sleeps = 0usize;
        let out = policy.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err(ClientError::Busy { retry_after_ms: 0 })
                } else {
                    Ok(calls)
                }
            },
            |_| busy_sleeps += 1,
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(busy_sleeps, 2);

        let always_busy = policy.run(
            || Err::<(), _>(ClientError::Busy { retry_after_ms: 0 }),
            |_| {},
        );
        match always_busy {
            Err(ClientError::Rejected(msg)) => assert!(msg.contains("3 busy retries")),
            other => panic!("expected Rejected, got {other:?}"),
        }

        // Non-busy errors pass straight through without retries.
        let mut calls = 0;
        let fatal = policy.run(
            || {
                calls += 1;
                Err::<(), _>(ClientError::Rejected("bad spec".into()))
            },
            |_| {},
        );
        assert!(matches!(fatal, Err(ClientError::Rejected(_))));
        assert_eq!(calls, 1);
    }
}
