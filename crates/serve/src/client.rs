//! The blocking client: connect, submit, stream events, collect the
//! final aggregate. Used by `hetrta submit`, the load generator, and
//! any program that wants daemon results without speaking frames
//! by hand.

use std::net::TcpStream;
use std::time::Duration;

use hetrta_api::wire::WireError;
use hetrta_engine::{SweepAggregate, SweepEvent, SweepSpec};

use crate::proto::{Reply, Request};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec defect (includes connect failures).
    Wire(WireError),
    /// The daemon's admission queue is full; retry after the hint.
    Busy {
        /// Daemon-suggested backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon refused or aborted the sweep (bad spec, draining,
    /// cancelled, engine failure) with this message.
    Rejected(String),
    /// The daemon answered with a frame that makes no sense here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(err) => write!(f, "wire: {err}"),
            ClientError::Busy { retry_after_ms } => {
                write!(f, "daemon busy, retry after {retry_after_ms}ms")
            }
            ClientError::Rejected(msg) => write!(f, "rejected: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Wire(err)
    }
}

/// The final result of a remotely-run sweep.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    /// Jobs that completed daemon-side.
    pub completed: usize,
    /// Whether the sweep was cancelled before running every job.
    pub cancelled: bool,
    /// Events the daemon dropped because this client fell behind.
    pub events_dropped: u64,
    /// The final aggregate — bitwise what a local run produces.
    pub aggregate: SweepAggregate,
}

/// Socket deadlines for a [`ServeClient`] connection.
///
/// `connect` bounds how long establishing the TCP connection may take;
/// `read` bounds each blocking wait for a reply frame (beware: a sweep
/// that streams no partials can legitimately go quiet for the duration
/// of its longest job, so pick read deadlines accordingly). `None`
/// means block indefinitely — the historical behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientTimeouts {
    /// Deadline for establishing the connection.
    pub connect: Option<Duration>,
    /// Deadline for each blocking read of a reply frame.
    pub read: Option<Duration>,
}

/// A blocking connection to a `hetrta serve` daemon.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to the daemon at `addr` (e.g. `127.0.0.1:7917`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] when the connection fails.
    pub fn connect(addr: &str) -> Result<ServeClient, ClientError> {
        ServeClient::connect_with(addr, ClientTimeouts::default())
    }

    /// Like [`ServeClient::connect`] with a connect timeout.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on failure or timeout.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> Result<ServeClient, ClientError> {
        ServeClient::connect_with(
            addr,
            ClientTimeouts {
                connect: Some(timeout),
                read: None,
            },
        )
    }

    /// Connects with explicit [`ClientTimeouts`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] on connect failure, timeout, or an
    /// unparseable address (only needed when a connect deadline is set).
    pub fn connect_with(addr: &str, timeouts: ClientTimeouts) -> Result<ServeClient, ClientError> {
        let stream = match timeouts.connect {
            None => TcpStream::connect(addr).map_err(|err| {
                ClientError::Wire(WireError::Io(format!("connect {addr}: {err}")))
            })?,
            Some(deadline) => {
                let sock_addr = addr.parse().map_err(|err| {
                    ClientError::Wire(WireError::Io(format!("bad addr {addr}: {err}")))
                })?;
                TcpStream::connect_timeout(&sock_addr, deadline).map_err(|err| {
                    ClientError::Wire(WireError::Io(format!("connect {addr}: {err}")))
                })?
            }
        };
        let _ = stream.set_nodelay(true);
        let client = ServeClient { stream };
        client.set_read_timeout(timeouts.read)?;
        Ok(client)
    }

    /// Sets (or clears, with `None`) the per-read deadline; a reply
    /// frame that takes longer surfaces as [`ClientError::Wire`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] when the socket refuses the option (a
    /// zero `Duration` does).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|err| ClientError::Wire(WireError::Io(format!("set read timeout: {err}"))))
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        request
            .write_to(&mut self.stream)
            .map_err(ClientError::from)
    }

    fn recv(&mut self) -> Result<Reply, ClientError> {
        Reply::read_from(&mut self.stream).map_err(ClientError::from)
    }

    /// Submits one sweep and returns its daemon-side job count once
    /// accepted.
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] when admission is full (retry later);
    /// [`ClientError::Rejected`] when the daemon refuses the spec.
    pub fn submit(&mut self, tenant: &str, spec: &SweepSpec) -> Result<usize, ClientError> {
        self.send(&Request::Submit {
            tenant: tenant.to_string(),
            spec: Box::new(spec.clone()),
        })?;
        match self.recv()? {
            Reply::Accepted { jobs } => Ok(jobs),
            Reply::Busy { retry_after_ms } => Err(ClientError::Busy { retry_after_ms }),
            Reply::Error { message } => Err(ClientError::Rejected(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to submit: {other:?}"
            ))),
        }
    }

    /// After a successful [`ServeClient::submit`], blocks for the next
    /// streamed event or the terminal outcome.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] when the daemon aborts the sweep;
    /// [`ClientError::Wire`] on transport defects.
    pub fn next_progress(&mut self) -> Result<Progress, ClientError> {
        match self.recv()? {
            Reply::Event(event) => Ok(Progress::Event(event)),
            Reply::Done {
                completed,
                cancelled,
                events_dropped,
                aggregate,
            } => Ok(Progress::Done(RemoteOutcome {
                completed,
                cancelled,
                events_dropped,
                aggregate,
            })),
            Reply::Error { message } => Err(ClientError::Rejected(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply mid-stream: {other:?}"
            ))),
        }
    }

    /// Submits and blocks until the terminal outcome, handing every
    /// streamed event to `on_event`.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeClient::submit`] and stream errors.
    pub fn run_to_completion(
        &mut self,
        tenant: &str,
        spec: &SweepSpec,
        mut on_event: impl FnMut(&SweepEvent),
    ) -> Result<RemoteOutcome, ClientError> {
        self.submit(tenant, spec)?;
        loop {
            match self.next_progress()? {
                Progress::Event(event) => on_event(&event),
                Progress::Done(outcome) => return Ok(outcome),
            }
        }
    }

    /// Asks the in-flight sweep to cancel (fire-and-forget; the stream
    /// still terminates with an `Error` or `Done` reply).
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] when the send fails.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Cancel)
    }

    /// Fetches the daemon's rendered metrics snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on an unexpected reply.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Reply::StatsReply { text } => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to stats: {other:?}"
            ))),
        }
    }

    /// Asks the daemon to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on an unexpected reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Reply::ShutdownAck => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected reply to shutdown: {other:?}"
            ))),
        }
    }
}

/// One step of a streamed sweep.
#[derive(Debug, Clone)]
pub enum Progress {
    /// A streamed event (job progress or partial aggregate).
    Event(SweepEvent),
    /// The terminal outcome.
    Done(RemoteOutcome),
}
