//! `hetrta-serve`: a multi-tenant analysis daemon over the shared
//! engine, dependency-free on top of `std::net`.
//!
//! One [`Server`] owns one [`Engine`](hetrta_engine::Engine) — one
//! work-stealing pool, one disk cache, one metrics registry — and
//! serves many concurrent clients over a length-delimited,
//! checksummed binary protocol ([`proto`]). Admission control
//! ([`admission`]) bounds the pending queue with per-tenant round-robin
//! fairness and answers overload with a typed `Busy` reply instead of
//! buffering without bound. Client disconnects cancel their in-flight
//! sweeps; `Shutdown` (and SIGTERM on unix) drains admitted work before
//! exit. The blocking [`ServeClient`] and the saturation driver in
//! [`loadgen`] ship in the same crate so the protocol never has two
//! dialects.
//!
//! The one unsafe block in the workspace's non-shim crates lives here:
//! the SIGTERM latch in [`server`] (a `signal(2)` FFI call installing a
//! handler that performs a single atomic store).

#![deny(unsafe_code)] // allowed back in exactly one place: the SIGTERM latch
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod client;
pub mod loadgen;
pub mod proto;
pub mod retry;
pub mod server;

pub use admission::{Admission, AdmissionConfig, Offer};
pub use client::{ClientError, ClientTimeouts, Progress, RemoteOutcome, ServeClient};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use proto::{Reply, Request};
pub use retry::RetryPolicy;
pub use server::{ServeError, Server, ServerConfig, ShutdownHandle};
