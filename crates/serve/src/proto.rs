//! The daemon's request/reply protocol over the checksummed frame layer
//! of `hetrta-api` ([`hetrta_api::wire`]).
//!
//! Every message is one frame; the frame kind selects the message and
//! the payload reuses the engine's text codecs ([`hetrta_engine::wire`])
//! — a streamed event is literally an [`encode_event`] text, and the
//! final result rides in the `Done` frame as an
//! [`AggregateUpdate::Keyframe`] text, so clients reassemble with the
//! same machinery local consumers use. Any defect on the wire decodes
//! to a typed [`WireError`], never a panic.

use std::io::{Read, Write};

use hetrta_api::wire::{self, parse_num, text_payload, WireError};
use hetrta_engine::wire::{
    decode_event, decode_spec, decode_update, encode_event, encode_spec, encode_update,
};
use hetrta_engine::{AggregateUpdate, SweepAggregate, SweepEvent, SweepSpec};

/// Frame kind of a [`Request::Submit`].
pub const KIND_SUBMIT: u8 = 0x01;
/// Frame kind of a [`Request::Cancel`].
pub const KIND_CANCEL: u8 = 0x02;
/// Frame kind of a [`Request::Stats`].
pub const KIND_STATS: u8 = 0x03;
/// Frame kind of a [`Request::Shutdown`].
pub const KIND_SHUTDOWN: u8 = 0x04;
/// Frame kind of a [`Reply::Accepted`].
pub const KIND_ACCEPTED: u8 = 0x81;
/// Frame kind of a [`Reply::Busy`].
pub const KIND_BUSY: u8 = 0x82;
/// Frame kind of a [`Reply::Event`].
pub const KIND_EVENT: u8 = 0x83;
/// Frame kind of a [`Reply::Done`].
pub const KIND_DONE: u8 = 0x84;
/// Frame kind of a [`Reply::Error`].
pub const KIND_ERROR: u8 = 0x85;
/// Frame kind of a [`Reply::StatsReply`].
pub const KIND_STATS_REPLY: u8 = 0x86;
/// Frame kind of a [`Reply::ShutdownAck`].
pub const KIND_SHUTDOWN_ACK: u8 = 0x87;

/// What a client asks the daemon.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit one sweep under a tenant name.
    Submit {
        /// Tenant the sweep is accounted (and queued fairly) under.
        tenant: String,
        /// The sweep, validated daemon-side before admission (boxed:
        /// a spec is large next to the payload-free request kinds).
        spec: Box<SweepSpec>,
    },
    /// Cancel the connection's in-flight (or pending) sweep.
    Cancel,
    /// Ask for the daemon's metrics snapshot.
    Stats,
    /// Ask the daemon to drain in-flight sweeps and exit.
    Shutdown,
}

/// What the daemon answers (several per submit: `Accepted`, a stream of
/// `Event`s, then one terminal `Done` or `Error`).
#[derive(Debug, Clone)]
pub enum Reply {
    /// The sweep was admitted; `jobs` jobs will run.
    Accepted {
        /// Jobs the accepted spec expands to.
        jobs: usize,
    },
    /// The pending queue is full — retry after the given backoff instead
    /// of buffering unboundedly daemon-side.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// One streamed sweep event (progress / partial aggregates).
    Event(SweepEvent),
    /// Terminal success: the sweep's deterministic final aggregate.
    Done {
        /// Jobs that completed.
        completed: usize,
        /// Whether the sweep was cancelled before running every job.
        cancelled: bool,
        /// Events the daemon's session dropped because this client's
        /// stream fell behind (the stream was lossy, the result is not).
        events_dropped: u64,
        /// The final aggregate, bitwise the one a local run produces.
        aggregate: SweepAggregate,
    },
    /// Terminal failure (rejected spec, cancelled sweep, draining daemon).
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// The metrics snapshot, rendered as text.
    StatsReply {
        /// Rendered metrics table plus daemon gauges.
        text: String,
    },
    /// Shutdown acknowledged; the daemon drains and exits.
    ShutdownAck,
}

/// `true` for tenant names the daemon accepts (1–64 chars of
/// `[A-Za-z0-9._-]` — they become metric names and queue keys).
#[must_use]
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

impl Request {
    /// Encodes this request as `(frame kind, payload)`.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Submit { tenant, spec } => (
                KIND_SUBMIT,
                format!("tenant {tenant}\n{}", encode_spec(spec)).into_bytes(),
            ),
            Request::Cancel => (KIND_CANCEL, Vec::new()),
            Request::Stats => (KIND_STATS, Vec::new()),
            Request::Shutdown => (KIND_SHUTDOWN, Vec::new()),
        }
    }

    /// Decodes one request from `(frame kind, payload)`.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown kinds, bad tenants, or
    /// unparseable specs.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Request, WireError> {
        match kind {
            KIND_SUBMIT => {
                let text = text_payload(payload, "submit")?;
                let (tenant_line, spec_text) = text.split_once('\n').ok_or_else(|| {
                    WireError::Malformed("submit payload has no spec after the tenant line".into())
                })?;
                let tenant = tenant_line
                    .strip_prefix("tenant ")
                    .ok_or_else(|| {
                        WireError::Malformed(format!("expected `tenant …`, got `{tenant_line}`"))
                    })?
                    .to_string();
                if !valid_tenant(&tenant) {
                    return Err(WireError::Malformed(format!(
                        "invalid tenant name `{tenant}` (1-64 chars of [A-Za-z0-9._-])"
                    )));
                }
                Ok(Request::Submit {
                    tenant,
                    spec: Box::new(decode_spec(spec_text)?),
                })
            }
            KIND_CANCEL => Ok(Request::Cancel),
            KIND_STATS => Ok(Request::Stats),
            KIND_SHUTDOWN => Ok(Request::Shutdown),
            other => Err(WireError::Malformed(format!(
                "unknown request kind {other:#04x}"
            ))),
        }
    }

    /// Writes this request as one frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the write fails.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), WireError> {
        let (kind, payload) = self.encode();
        wire::write_frame(writer, kind, &payload)
    }

    /// Reads one request frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] when the peer hung up between frames; every
    /// other defect maps to its variant.
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Request, WireError> {
        let (kind, payload) = wire::read_frame(reader)?;
        Request::decode(kind, &payload)
    }
}

impl Reply {
    /// Encodes this reply as `(frame kind, payload)`.
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Reply::Accepted { jobs } => (KIND_ACCEPTED, format!("jobs {jobs}").into_bytes()),
            Reply::Busy { retry_after_ms } => (
                KIND_BUSY,
                format!("retry-after-ms {retry_after_ms}").into_bytes(),
            ),
            Reply::Event(event) => (KIND_EVENT, encode_event(event).into_bytes()),
            Reply::Done {
                completed,
                cancelled,
                events_dropped,
                aggregate,
            } => (
                KIND_DONE,
                format!(
                    "done {completed} {} {events_dropped}\n{}",
                    u8::from(*cancelled),
                    encode_update(&AggregateUpdate::Keyframe {
                        seq: 0,
                        aggregate: aggregate.clone(),
                    })
                )
                .into_bytes(),
            ),
            Reply::Error { message } => (KIND_ERROR, message.clone().into_bytes()),
            Reply::StatsReply { text } => (KIND_STATS_REPLY, text.clone().into_bytes()),
            Reply::ShutdownAck => (KIND_SHUTDOWN_ACK, Vec::new()),
        }
    }

    /// Decodes one reply from `(frame kind, payload)`.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown kinds or unparseable
    /// payloads.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Reply, WireError> {
        match kind {
            KIND_ACCEPTED => {
                let text = text_payload(payload, "accepted")?;
                let jobs = text
                    .strip_prefix("jobs ")
                    .ok_or_else(|| WireError::Malformed(format!("bad accepted line `{text}`")))?;
                Ok(Reply::Accepted {
                    jobs: parse_num(jobs, "job count")?,
                })
            }
            KIND_BUSY => {
                let text = text_payload(payload, "busy")?;
                let ms = text
                    .strip_prefix("retry-after-ms ")
                    .ok_or_else(|| WireError::Malformed(format!("bad busy line `{text}`")))?;
                Ok(Reply::Busy {
                    retry_after_ms: parse_num(ms, "retry-after")?,
                })
            }
            KIND_EVENT => Ok(Reply::Event(decode_event(&text_payload(
                payload, "event",
            )?)?)),
            KIND_DONE => {
                let text = text_payload(payload, "done")?;
                let (head, update_text) = text
                    .split_once('\n')
                    .ok_or_else(|| WireError::Malformed("done payload has no aggregate".into()))?;
                let mut fields = head.split(' ');
                let tag = fields.next();
                if tag != Some("done") {
                    return Err(WireError::Malformed(format!("bad done line `{head}`")));
                }
                let completed = parse_num(
                    fields
                        .next()
                        .ok_or_else(|| WireError::Malformed("done line truncated".into()))?,
                    "completed count",
                )?;
                let cancelled = match fields.next() {
                    Some("0") => false,
                    Some("1") => true,
                    other => {
                        return Err(WireError::Malformed(format!(
                            "bad cancelled bit `{other:?}`"
                        )))
                    }
                };
                let events_dropped = parse_num(
                    fields
                        .next()
                        .ok_or_else(|| WireError::Malformed("done line truncated".into()))?,
                    "dropped count",
                )?;
                if fields.next().is_some() {
                    return Err(WireError::Malformed("trailing fields on done line".into()));
                }
                match decode_update(update_text)? {
                    AggregateUpdate::Keyframe { aggregate, .. } => Ok(Reply::Done {
                        completed,
                        cancelled,
                        events_dropped,
                        aggregate,
                    }),
                    AggregateUpdate::Delta { .. } => Err(WireError::Malformed(
                        "done frame must carry a keyframe, got a delta".into(),
                    )),
                }
            }
            KIND_ERROR => Ok(Reply::Error {
                message: text_payload(payload, "error")?,
            }),
            KIND_STATS_REPLY => Ok(Reply::StatsReply {
                text: text_payload(payload, "stats")?,
            }),
            KIND_SHUTDOWN_ACK => Ok(Reply::ShutdownAck),
            other => Err(WireError::Malformed(format!(
                "unknown reply kind {other:#04x}"
            ))),
        }
    }

    /// Writes this reply as one frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the write fails.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), WireError> {
        let (kind, payload) = self.encode();
        wire::write_frame(writer, kind, &payload)
    }

    /// Reads one reply frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Eof`] when the daemon hung up between frames; every
    /// other defect maps to its variant.
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Reply, WireError> {
        let (kind, payload) = wire::read_frame(reader)?;
        Reply::decode(kind, &payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_engine::GeneratorPreset;

    fn spec() -> SweepSpec {
        SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.1, 0.3], 4, 9)
    }

    #[test]
    fn requests_roundtrip() {
        let requests = vec![
            Request::Submit {
                tenant: "team-a.prod_1".into(),
                spec: Box::new(spec()),
            },
            Request::Cancel,
            Request::Stats,
            Request::Shutdown,
        ];
        for request in requests {
            let mut buf = Vec::new();
            request.write_to(&mut buf).unwrap();
            let mut cursor = std::io::Cursor::new(buf);
            let back = Request::read_from(&mut cursor).unwrap();
            match (&request, &back) {
                (
                    Request::Submit { tenant, spec },
                    Request::Submit {
                        tenant: t2,
                        spec: s2,
                    },
                ) => {
                    assert_eq!(tenant, t2);
                    assert_eq!(
                        hetrta_engine::wire::encode_spec(spec),
                        hetrta_engine::wire::encode_spec(s2)
                    );
                }
                (Request::Cancel, Request::Cancel)
                | (Request::Stats, Request::Stats)
                | (Request::Shutdown, Request::Shutdown) => {}
                other => panic!("request changed shape over the wire: {other:?}"),
            }
        }
    }

    #[test]
    fn replies_roundtrip() {
        let engine = hetrta_engine::Engine::new(2);
        let aggregate = engine.run(&spec()).unwrap().aggregate;
        let replies = vec![
            Reply::Accepted { jobs: 8 },
            Reply::Busy {
                retry_after_ms: 250,
            },
            Reply::Event(hetrta_engine::SweepEvent::JobStarted { index: 3 }),
            Reply::Done {
                completed: 8,
                cancelled: false,
                events_dropped: 2,
                aggregate: aggregate.clone(),
            },
            Reply::Error {
                message: "no such analysis".into(),
            },
            Reply::StatsReply {
                text: "metric value\n".into(),
            },
            Reply::ShutdownAck,
        ];
        for reply in replies {
            let mut buf = Vec::new();
            reply.write_to(&mut buf).unwrap();
            let mut cursor = std::io::Cursor::new(buf);
            let back = Reply::read_from(&mut cursor).unwrap();
            match (&reply, &back) {
                (Reply::Accepted { jobs }, Reply::Accepted { jobs: j2 }) => assert_eq!(jobs, j2),
                (Reply::Busy { retry_after_ms }, Reply::Busy { retry_after_ms: m2 }) => {
                    assert_eq!(retry_after_ms, m2)
                }
                (Reply::Event(a), Reply::Event(b)) => assert_eq!(a, b),
                (
                    Reply::Done {
                        completed,
                        cancelled,
                        events_dropped,
                        aggregate,
                    },
                    Reply::Done {
                        completed: c2,
                        cancelled: x2,
                        events_dropped: d2,
                        aggregate: a2,
                    },
                ) => {
                    assert_eq!(completed, c2);
                    assert_eq!(cancelled, x2);
                    assert_eq!(events_dropped, d2);
                    assert_eq!(aggregate, a2, "aggregate survives bitwise");
                }
                (Reply::Error { message }, Reply::Error { message: m2 }) => {
                    assert_eq!(message, m2);
                }
                (Reply::StatsReply { text }, Reply::StatsReply { text: t2 }) => {
                    assert_eq!(text, t2);
                }
                (Reply::ShutdownAck, Reply::ShutdownAck) => {}
                other => panic!("reply changed shape over the wire: {other:?}"),
            }
        }
    }

    #[test]
    fn tenant_names_are_validated() {
        for good in ["a", "team-a", "team_b.9", &"x".repeat(64)] {
            assert!(valid_tenant(good), "{good}");
        }
        for bad in ["", "has space", "semi;colon", "new\nline", &"x".repeat(65)] {
            assert!(!valid_tenant(bad), "{bad:?}");
        }
        let naughty = format!("tenant bad guy\n{}", encode_spec(&spec()));
        assert!(matches!(
            Request::decode(KIND_SUBMIT, naughty.as_bytes()),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn defective_frames_never_panic() {
        assert!(matches!(
            Request::decode(0x7E, b""),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Reply::decode(0x7E, b""),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Reply::decode(KIND_ACCEPTED, b"jobs many"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Reply::decode(KIND_DONE, b"done 1 0 0\ndelta 1 0\n"),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Request::decode(KIND_SUBMIT, b"no tenant line"),
            Err(WireError::Malformed(_))
        ));
    }
}
