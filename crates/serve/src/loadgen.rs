//! The saturation benchmark driver: N concurrent clients each pushing K
//! sweeps through a live daemon, measuring end-to-end submit→`Done`
//! latency and aggregate throughput.
//!
//! `Busy` replies are handled the way a well-behaved client must —
//! sleep the daemon's hint and retry — so a saturated queue shows up as
//! latency and retry counts, never as protocol errors.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hetrta_engine::SweepSpec;

use crate::client::{ClientError, ServeClient};
use crate::retry::RetryPolicy;

/// One load-generation rung: a fixed client count against one daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Sweeps each client completes before exiting.
    pub sweeps_per_client: usize,
    /// The sweep every client submits.
    pub spec: SweepSpec,
    /// Distinct tenant names to spread clients over (≥1; exercises the
    /// fairness rotation when >1).
    pub tenants: usize,
    /// Cap on consecutive `Busy` retries per sweep before counting a
    /// failure (guards against a wedged daemon; generous by default).
    pub max_busy_retries: usize,
    /// `Some(offset)` gives every submitted sweep a unique seed (offset
    /// plus a per-sweep index) so nothing replays from cache — the
    /// cold-cache measurement. `None` submits the spec verbatim every
    /// time, so after the first completion the daemon answers from
    /// cache — the warm measurement.
    pub vary_seeds: Option<u64>,
}

impl LoadgenConfig {
    /// A rung with default tenant spread (4) and retry cap (10 000).
    #[must_use]
    pub fn new(addr: &str, clients: usize, sweeps_per_client: usize, spec: SweepSpec) -> Self {
        LoadgenConfig {
            addr: addr.to_string(),
            clients,
            sweeps_per_client,
            spec,
            tenants: 4,
            max_busy_retries: 10_000,
            vary_seeds: None,
        }
    }
}

/// What one rung measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Concurrent clients of the rung.
    pub clients: usize,
    /// Sweeps that reached `Done`.
    pub completed: usize,
    /// Sweeps that failed (rejected, protocol error, retry cap).
    pub failed: usize,
    /// `Busy` replies honoured with a backoff-and-retry.
    pub busy_retries: usize,
    /// Transport/codec defects observed (must be zero on a sound wire).
    pub protocol_errors: usize,
    /// Wall-clock of the whole rung.
    pub elapsed: Duration,
    /// Completed sweeps per second of wall-clock.
    pub sweeps_per_sec: f64,
    /// Median end-to-end submit→`Done` latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// The first per-sweep failure of the rung, rendered — the counts
    /// say how often, this says what.
    pub first_error: Option<String>,
    /// Jobs computed per fleet worker (dist-mode rungs only; empty when
    /// the rung drove a daemon). Records fleet balance in BENCH docs.
    pub worker_jobs: Vec<u64>,
}

/// The `q`-quantile (0..=1) of unsorted latency samples, in
/// milliseconds. Nearest-rank on the sorted samples; 0 when empty.
#[must_use]
pub fn percentile_ms(samples: &[Duration], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

/// Runs one rung to completion against a live daemon.
///
/// # Errors
///
/// [`ClientError`] only when the very first connection cannot be
/// established (a dead daemon); per-sweep failures are counted in the
/// report instead.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, ClientError> {
    // Fail fast (and typed) if the daemon isn't there at all.
    drop(ServeClient::connect(&config.addr)?);

    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let busy_retries = Arc::new(AtomicUsize::new(0));
    let protocol_errors = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicUsize::new(0));
    let first_error: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let started = Instant::now();

    let workers: Vec<_> = (0..config.clients)
        .map(|client_index| {
            let config = config.clone();
            let latencies = Arc::clone(&latencies);
            let busy_retries = Arc::clone(&busy_retries);
            let protocol_errors = Arc::clone(&protocol_errors);
            let failed = Arc::clone(&failed);
            let first_error = Arc::clone(&first_error);
            std::thread::spawn(move || {
                let tenant = format!("loadgen-{}", client_index % config.tenants.max(1));
                for iteration in 0..config.sweeps_per_client {
                    let spec = match config.vary_seeds {
                        Some(offset) => config.spec.clone().with_seeds(vec![
                            offset + (client_index * config.sweeps_per_client + iteration) as u64,
                        ]),
                        None => config.spec.clone(),
                    };
                    match run_one_sweep(&config, &spec, &tenant, &busy_retries) {
                        Ok(latency) => latencies.lock().expect("latencies").push(latency),
                        Err(err) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            if matches!(err, ClientError::Wire(_) | ClientError::Protocol(_)) {
                                protocol_errors.fetch_add(1, Ordering::Relaxed);
                            }
                            first_error
                                .lock()
                                .expect("first error")
                                .get_or_insert_with(|| format!("{err:?}"));
                        }
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        let _ = worker.join();
    }

    let elapsed = started.elapsed();
    let first_error = first_error.lock().expect("first error").take();
    let latencies = latencies.lock().expect("latencies");
    let completed = latencies.len();
    Ok(LoadgenReport {
        clients: config.clients,
        completed,
        failed: failed.load(Ordering::Relaxed),
        busy_retries: busy_retries.load(Ordering::Relaxed),
        protocol_errors: protocol_errors.load(Ordering::Relaxed),
        elapsed,
        sweeps_per_sec: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        first_error,
        worker_jobs: Vec::new(),
    })
}

/// Connects with a short retry loop: under a saturating connect storm
/// the listener's accept backlog can momentarily refuse, which is
/// backpressure, not a protocol defect.
fn connect_with_retry(addr: &str) -> Result<ServeClient, ClientError> {
    let mut last = None;
    for _ in 0..200 {
        match ServeClient::connect(addr) {
            Ok(client) => return Ok(client),
            Err(err) => {
                last = Some(err);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

/// One submit→`Done`, with the shared polite `Busy` backoff-and-retry
/// policy. A fresh connection per sweep, like a CLI client would make.
fn run_one_sweep(
    config: &LoadgenConfig,
    spec: &hetrta_engine::SweepSpec,
    tenant: &str,
    busy_retries: &AtomicUsize,
) -> Result<Duration, ClientError> {
    let started = Instant::now();
    let policy = RetryPolicy::new().with_max_retries(config.max_busy_retries);
    policy.run(
        || {
            let mut client = connect_with_retry(&config.addr)?;
            client.run_to_completion(tenant, spec, |_| {}).map(|_| ())
        },
        |_| {
            busy_retries.fetch_add(1, Ordering::Relaxed);
        },
    )?;
    Ok(started.elapsed())
}

/// Renders ladder results as a BENCH_*.json document (`bench` names the
/// ladder — `serve_saturation` for daemon rungs, `dist_scaling` for
/// worker-fleet rungs): one row per (cache-state, count) rung, with
/// per-worker job counts when the rung ran a fleet.
#[must_use]
pub fn render_bench_json(bench: &str, rows: &[(String, LoadgenReport)]) -> String {
    let mut out = format!("{{\n  \"bench\": \"{bench}\",\n  \"rungs\": [\n");
    for (i, (cache, report)) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"cache\": \"{cache}\", \"clients\": {}, \"completed\": {}, \"failed\": {}, \
             \"busy_retries\": {}, \"protocol_errors\": {}, \"elapsed_s\": {:.3}, \
             \"sweeps_per_sec\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}",
            report.clients,
            report.completed,
            report.failed,
            report.busy_retries,
            report.protocol_errors,
            report.elapsed.as_secs_f64(),
            report.sweeps_per_sec,
            report.p50_ms,
            report.p99_ms,
        );
        if !report.worker_jobs.is_empty() {
            let jobs: Vec<String> = report.worker_jobs.iter().map(u64::to_string).collect();
            let _ = write!(out, ", \"worker_jobs\": [{}]", jobs.join(", "));
        }
        out.push('}');
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&samples, 0.50), 50.0);
        assert_eq!(percentile_ms(&samples, 0.99), 99.0);
        assert_eq!(percentile_ms(&samples, 1.0), 100.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        assert_eq!(percentile_ms(&[Duration::from_millis(7)], 0.99), 7.0);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let report = LoadgenReport {
            clients: 8,
            completed: 64,
            failed: 0,
            busy_retries: 3,
            protocol_errors: 0,
            elapsed: Duration::from_millis(1500),
            sweeps_per_sec: 42.7,
            p50_ms: 12.5,
            p99_ms: 80.25,
            first_error: None,
            worker_jobs: Vec::new(),
        };
        let mut fleet = report.clone();
        fleet.worker_jobs = vec![32, 32];
        let json = render_bench_json(
            "serve_saturation",
            &[("cold".into(), report), ("warm".into(), fleet)],
        );
        assert!(json.contains("\"bench\": \"serve_saturation\""));
        assert!(json.contains("\"clients\": 8"));
        assert!(json.contains("\"worker_jobs\": [32, 32]"));
        assert_eq!(json.matches("\"worker_jobs\"").count(), 1);
        assert_eq!(json.matches("\"cache\"").count(), 2);
        // Brace balance as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
