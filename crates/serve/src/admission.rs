//! Admission control: a bounded pending-sweep queue with per-tenant
//! round-robin fairness.
//!
//! The daemon never buffers unboundedly — past `max_pending` queued
//! sweeps it answers [`Offer::Busy`] with a retry hint and drops the
//! request on the floor. Granted slots are bounded by `max_active`, and
//! tenants take turns: one chatty tenant enqueueing fifty sweeps cannot
//! starve a quiet one's single request, because grants rotate across
//! tenants with pending work rather than draining queues FIFO.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

use hetrta_obs::Gauge;

/// Tuning knobs for [`Admission`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Sweeps allowed to run concurrently on the shared engine.
    pub max_active: usize,
    /// Sweeps allowed to wait; one more gets `Busy`.
    pub max_pending: usize,
    /// Backoff hint carried in `Busy` replies, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_active: 2,
            max_pending: 64,
            retry_after_ms: 200,
        }
    }
}

/// Outcome of offering a sweep to the queue.
#[derive(Debug)]
pub enum Offer {
    /// Admitted; the scheduler will grant it a slot in fair order.
    Enqueued,
    /// Queue full — the typed backpressure reply, instead of buffering.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon is draining and takes no new work.
    Draining,
}

struct State<T> {
    /// Pending sweeps, one FIFO per tenant.
    queues: HashMap<String, VecDeque<T>>,
    /// Round-robin rotation of tenants that have pending work.
    rotation: VecDeque<String>,
    pending_total: usize,
    active: usize,
    draining: bool,
}

/// The bounded, tenant-fair pending queue shared by every connection.
///
/// `T` is the queued work item (the daemon queues pending sweeps; the
/// unit tests queue labels).
pub struct Admission<T> {
    config: AdmissionConfig,
    state: Mutex<State<T>>,
    /// Signalled when a grant may have become possible.
    grantable: Condvar,
    /// Signalled when drain may have completed.
    drained: Condvar,
    queue_depth: Gauge,
    active_gauge: Gauge,
}

impl<T> std::fmt::Debug for Admission<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("admission lock");
        f.debug_struct("Admission")
            .field("config", &self.config)
            .field("pending_total", &state.pending_total)
            .field("active", &state.active)
            .field("draining", &state.draining)
            .finish_non_exhaustive()
    }
}

impl<T> Admission<T> {
    /// A queue with the given bounds, publishing depth/active gauges.
    #[must_use]
    pub fn new(config: AdmissionConfig, queue_depth: Gauge, active_gauge: Gauge) -> Self {
        Admission {
            config,
            state: Mutex::new(State {
                queues: HashMap::new(),
                rotation: VecDeque::new(),
                pending_total: 0,
                active: 0,
                draining: false,
            }),
            grantable: Condvar::new(),
            drained: Condvar::new(),
            queue_depth,
            active_gauge,
        }
    }

    /// Offers one sweep under `tenant`; bounded, so this never blocks.
    pub fn offer(&self, tenant: &str, item: T) -> Offer {
        self.offer_with(tenant, item, |_| {})
    }

    /// [`Admission::offer`], with `on_decision` invoked while the queue
    /// lock is still held — before [`Admission::next_granted`] in any
    /// other thread can observe the enqueue. A reply enqueued inside the
    /// callback is therefore ordered ahead of every frame the granted
    /// sweep itself emits (on a fully-cached sweep the pump can reach
    /// its terminal frame within a millisecond of the enqueue, beating
    /// an `Accepted` sent after `offer` returns).
    pub fn offer_with(&self, tenant: &str, item: T, on_decision: impl FnOnce(&Offer)) -> Offer {
        let mut state = self.state.lock().expect("admission lock");
        let offer = if state.draining {
            Offer::Draining
        } else if state.pending_total >= self.config.max_pending {
            Offer::Busy {
                retry_after_ms: self.config.retry_after_ms,
            }
        } else {
            let queue = state.queues.entry(tenant.to_string()).or_default();
            let newly_pending = queue.is_empty();
            queue.push_back(item);
            if newly_pending {
                state.rotation.push_back(tenant.to_string());
            }
            state.pending_total += 1;
            self.queue_depth.set(state.pending_total as u64);
            self.grantable.notify_all();
            Offer::Enqueued
        };
        on_decision(&offer);
        offer
    }

    /// Blocks until a slot opens and pending work exists, then grants
    /// the next sweep in tenant round-robin order. Returns `None` once
    /// the queue is draining and empty — the scheduler's exit signal.
    pub fn next_granted(&self) -> Option<T> {
        let mut state = self.state.lock().expect("admission lock");
        loop {
            if state.pending_total > 0 && state.active < self.config.max_active {
                let tenant = state.rotation.pop_front().expect("rotation tracks pending");
                let queue = state.queues.get_mut(&tenant).expect("queued tenant");
                let item = queue.pop_front().expect("non-empty queue in rotation");
                if queue.is_empty() {
                    state.queues.remove(&tenant);
                } else {
                    state.rotation.push_back(tenant);
                }
                state.pending_total -= 1;
                state.active += 1;
                self.queue_depth.set(state.pending_total as u64);
                self.active_gauge.set(state.active as u64);
                return Some(item);
            }
            if state.draining && state.pending_total == 0 {
                return None;
            }
            state = self.grantable.wait(state).expect("admission lock");
        }
    }

    /// Releases a granted slot (call exactly once per grant, after the
    /// sweep finished, failed, or was skipped).
    pub fn complete(&self) {
        let mut state = self.state.lock().expect("admission lock");
        state.active = state
            .active
            .checked_sub(1)
            .expect("complete() pairs with a grant");
        self.active_gauge.set(state.active as u64);
        self.grantable.notify_all();
        if state.draining && state.active == 0 && state.pending_total == 0 {
            self.drained.notify_all();
        }
    }

    /// Stops admitting, then blocks until every pending and active sweep
    /// has completed. Idempotent.
    pub fn drain(&self) {
        let mut state = self.state.lock().expect("admission lock");
        state.draining = true;
        // Wake the scheduler so it can observe draining (and exit once
        // the queue empties).
        self.grantable.notify_all();
        while state.active > 0 || state.pending_total > 0 {
            state = self.drained.wait(state).expect("admission lock");
        }
    }

    /// Pending sweeps currently queued (not yet granted).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.state.lock().expect("admission lock").pending_total
    }

    /// Sweeps currently holding a granted slot.
    #[must_use]
    pub fn active(&self) -> usize {
        self.state.lock().expect("admission lock").active
    }

    /// Whether [`Admission::drain`] has been initiated.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("admission lock").draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn admission(max_active: usize, max_pending: usize) -> Admission<&'static str> {
        Admission::new(
            AdmissionConfig {
                max_active,
                max_pending,
                retry_after_ms: 125,
            },
            Gauge::detached(),
            Gauge::detached(),
        )
    }

    #[test]
    fn grants_rotate_across_tenants_not_fifo() {
        let adm = admission(1, 16);
        // Tenant `a` floods the queue before `b` and `c` show up once.
        for item in ["a1", "a2", "a3", "a4"] {
            assert!(matches!(adm.offer("a", item), Offer::Enqueued));
        }
        assert!(matches!(adm.offer("b", "b1"), Offer::Enqueued));
        assert!(matches!(adm.offer("c", "c1"), Offer::Enqueued));

        let mut order = Vec::new();
        for _ in 0..6 {
            order.push(adm.next_granted().expect("pending work"));
            adm.complete();
        }
        assert_eq!(
            order,
            vec!["a1", "b1", "c1", "a2", "a3", "a4"],
            "each waiting tenant gets a turn before a's backlog continues"
        );
    }

    #[test]
    fn bounded_queue_answers_busy_with_the_configured_hint() {
        let adm = admission(1, 2);
        assert!(matches!(adm.offer("t", "s1"), Offer::Enqueued));
        assert!(matches!(adm.offer("t", "s2"), Offer::Enqueued));
        match adm.offer("t", "s3") {
            Offer::Busy { retry_after_ms } => assert_eq!(retry_after_ms, 125),
            other => panic!("expected Busy, got {other:?}"),
        }
        // A grant frees pending capacity (even while the slot is active).
        assert_eq!(adm.next_granted(), Some("s1"));
        assert!(matches!(adm.offer("t", "s3"), Offer::Enqueued));
        adm.complete();
    }

    #[test]
    fn active_slots_are_capped() {
        let adm = Arc::new(admission(2, 16));
        for item in ["s1", "s2", "s3"] {
            adm.offer("t", item);
        }
        assert!(adm.next_granted().is_some());
        assert!(adm.next_granted().is_some());
        assert_eq!(adm.active(), 2);

        // The third grant blocks until a slot completes.
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.next_granted())
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "grant must wait for a free slot");
        adm.complete();
        assert_eq!(waiter.join().expect("waiter"), Some("s3"));
        adm.complete();
        adm.complete();
    }

    #[test]
    fn drain_refuses_new_work_and_waits_for_the_backlog() {
        let adm = Arc::new(admission(1, 16));
        adm.offer("t", "s1");
        adm.offer("t", "s2");

        // A scheduler that keeps granting until drain empties the queue.
        let scheduler = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || {
                let mut ran = Vec::new();
                while let Some(item) = adm.next_granted() {
                    std::thread::sleep(Duration::from_millis(10));
                    ran.push(item);
                    adm.complete();
                }
                ran
            })
        };

        std::thread::sleep(Duration::from_millis(5));
        adm.drain();
        assert!(matches!(adm.offer("t", "s3"), Offer::Draining));
        assert_eq!(
            adm.pending(),
            0,
            "drain returned only after the backlog ran"
        );
        assert_eq!(adm.active(), 0);
        assert_eq!(scheduler.join().expect("scheduler"), vec!["s1", "s2"]);
    }

    #[test]
    fn offer_decision_runs_before_the_grant_is_observable() {
        // Regression: the daemon's `Accepted` reply is enqueued inside
        // `offer_with`'s callback. If the scheduler could pop the item
        // before the callback ran, a fast sweep's `Done` could beat
        // `Accepted` onto the wire.
        let adm = Arc::new(admission(1, 4));
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let scheduler = {
            let adm = Arc::clone(&adm);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let item = adm.next_granted().expect("pending work");
                order.lock().expect("order").push(item);
                adm.complete();
            })
        };
        // Give the scheduler time to block in next_granted first, then
        // hold the decision callback open: the grant must still wait.
        std::thread::sleep(Duration::from_millis(20));
        adm.offer_with("t", "reply-sent", |offer| {
            assert!(matches!(offer, Offer::Enqueued));
            std::thread::sleep(Duration::from_millis(30));
            order.lock().expect("order").push("decision");
        });
        scheduler.join().expect("scheduler");
        assert_eq!(
            *order.lock().expect("order"),
            vec!["decision", "reply-sent"]
        );
    }

    #[test]
    fn gauges_track_depth_and_active() {
        let depth = Gauge::detached();
        let active = Gauge::detached();
        let adm: Admission<&str> = Admission::new(
            AdmissionConfig {
                max_active: 1,
                max_pending: 8,
                retry_after_ms: 50,
            },
            depth.clone(),
            active.clone(),
        );
        adm.offer("t", "s1");
        adm.offer("t", "s2");
        assert_eq!(depth.get(), 2);
        assert_eq!(active.get(), 0);
        adm.next_granted();
        assert_eq!((depth.get(), active.get()), (1, 1));
        adm.complete();
        assert_eq!(active.get(), 0);
    }
}
