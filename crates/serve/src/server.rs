//! The daemon: one shared [`Engine`] behind a `TcpListener`, a
//! reader/writer thread pair per connection, and the [`Admission`]
//! queue between them.
//!
//! Lifecycle of a submit: the reader decodes the request, offers it to
//! admission (replying `Busy`/`Error` synchronously when refused), and
//! the scheduler thread later grants it a slot and spawns a pump thread.
//! The pump runs the sweep on the shared engine, streams its events to
//! the connection's writer thread, and finishes with `Done` carrying the
//! final aggregate. A client that disconnects mid-sweep has its sweep
//! cancelled through [`SweepCancelToken`]; `Shutdown` (and SIGTERM on
//! unix) drains every admitted sweep before the daemon exits.

use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hetrta_api::wire::WireError;
use hetrta_engine::{
    spec_hash, Engine, EngineBuilder, EngineError, FaultPlan, JournalConfig, SessionConfig,
    SweepCancelToken, SweepEvent, SweepSpec,
};

use crate::admission::{Admission, AdmissionConfig, Offer};
use crate::proto::{Reply, Request};

/// Everything needed to bring up a daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7917` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads of the shared engine pool (0 = auto).
    pub threads: usize,
    /// Optional shared on-disk result cache.
    pub cache_dir: Option<PathBuf>,
    /// Admission bounds and backpressure hint.
    pub admission: AdmissionConfig,
    /// Cadence of streamed partial aggregates, in completed jobs
    /// (`None` streams no partials, only the terminal `Done`).
    pub partial_every: Option<usize>,
    /// `Some` fans every granted sweep across a multi-process worker
    /// fleet (`hetrta-dist`) instead of the in-process engine; the
    /// fleet shares this daemon's cache directory, so tenants still
    /// warm each other's cells.
    pub dist: Option<hetrta_dist::DistConfig>,
    /// `Some` journals every engine-mode sweep into
    /// `<dir>/<spec_hash:016x>` (one directory per distinct spec) and
    /// always resumes: a daemon killed mid-sweep replays the journaled
    /// jobs on resubmit and executes only the remainder. Concurrent
    /// submits of the *same* spec share a directory — appends stay
    /// checksummed and replay dedups, but durability is strongest when
    /// identical specs are serialized.
    pub journal_dir: Option<PathBuf>,
    /// Chaos seed: arms a deterministic [`FaultPlan`] on the shared
    /// engine (disk-cache read/write faults, `fault.*` counters in
    /// `stats`). Same seed, same fault sequence.
    pub chaos: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            cache_dir: None,
            admission: AdmissionConfig::default(),
            partial_every: Some(8),
            dist: None,
            journal_dir: None,
            chaos: None,
        }
    }
}

/// Daemon-level failures (binding, engine construction).
#[derive(Debug)]
pub enum ServeError {
    /// The listen socket could not be bound.
    Bind(String),
    /// The shared engine could not be built (e.g. unusable cache dir).
    Engine(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(msg) => write!(f, "cannot bind listener: {msg}"),
            ServeError::Engine(err) => write!(f, "cannot build engine: {err}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Sets the shutdown flag from outside `run()` (tests, signal handlers,
/// a `Shutdown` frame). Cloneable and cheap.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests a graceful drain-and-exit.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Messages to a connection's writer thread.
enum Out {
    /// One reply frame to serialize onto the socket.
    Frame(Reply),
    /// Flush barrier: ack once every earlier frame hit the socket.
    Flush(mpsc::Sender<()>),
}

/// State shared between a connection's reader, its writer, and the pump
/// threads running its sweeps.
struct ConnShared {
    out: mpsc::Sender<Out>,
    /// Cancel token of the in-flight sweep, when one is running.
    cancel: Mutex<Option<SweepCancelToken>>,
    /// Cancel flag of the in-flight *distributed* sweep (dist mode has
    /// no session token; the coordinator polls this flag instead).
    dist_cancel: Mutex<Option<Arc<AtomicBool>>>,
    /// Set by the reader on EOF/error; pumps skip or cancel accordingly.
    disconnected: AtomicBool,
    /// Set by a `Cancel` frame arriving before the sweep was granted.
    cancel_requested: AtomicBool,
    /// One sweep in flight per connection (admission + stream framing
    /// both assume it).
    in_flight: AtomicBool,
}

impl ConnShared {
    fn send(&self, reply: Reply) {
        // A failed send means the writer exited (socket gone) — the
        // disconnect path already cancels the sweep, so just drop it.
        let _ = self.out.send(Out::Frame(reply));
    }

    /// Queues `reply` and blocks until the writer has flushed it (used
    /// for terminal frames so drain can't close the socket under them).
    fn send_flushed(&self, reply: Reply) {
        let _ = self.out.send(Out::Frame(reply));
        let (ack_tx, ack_rx) = mpsc::channel();
        if self.out.send(Out::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }
}

/// One pending sweep travelling from reader to scheduler to pump.
struct PendingSweep {
    tenant: String,
    spec: SweepSpec,
    conn: Arc<ConnShared>,
}

/// The daemon. Construct with [`Server::bind`], drive with
/// [`Server::run`] (blocking until shutdown).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    engine: Arc<Engine>,
    admission: Arc<Admission<PendingSweep>>,
    shutdown: ShutdownHandle,
    config: ServerConfig,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener and builds the shared engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] or [`ServeError::Engine`].
    pub fn bind(config: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|err| ServeError::Bind(format!("{}: {err}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|err| ServeError::Bind(err.to_string()))?;
        let mut builder = EngineBuilder::new().threads(config.threads);
        if let Some(dir) = &config.cache_dir {
            builder = builder.with_cache_dir(dir);
        }
        if let Some(seed) = config.chaos {
            builder = builder.with_fault_plan(Arc::new(FaultPlan::new(seed)));
        }
        let engine = Arc::new(builder.build().map_err(ServeError::Engine)?);
        let metrics = engine.metrics();
        let admission = Arc::new(Admission::new(
            config.admission.clone(),
            metrics.gauge("serve.queue_depth"),
            metrics.gauge("serve.active_sweeps"),
        ));
        Ok(Server {
            listener,
            local_addr,
            engine,
            admission,
            shutdown: ShutdownHandle {
                flag: Arc::new(AtomicBool::new(false)),
            },
            config,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that triggers graceful shutdown from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// The daemon's shared engine (tests inspect `active_sessions`).
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Serves until shutdown is requested (by a `Shutdown` frame, the
    /// [`ShutdownHandle`], or SIGTERM on unix), then drains every
    /// admitted sweep, closes connections, and joins every thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the listener cannot enter
    /// non-blocking mode.
    pub fn run(self) -> Result<(), ServeError> {
        #[cfg(unix)]
        sigterm::install();

        self.listener
            .set_nonblocking(true)
            .map_err(|err| ServeError::Bind(err.to_string()))?;

        let scheduler = {
            let admission = Arc::clone(&self.admission);
            let engine = Arc::clone(&self.engine);
            let config = self.config.clone();
            std::thread::spawn(move || {
                let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                while let Some(pending) = admission.next_granted() {
                    let admission = Arc::clone(&admission);
                    let engine = Arc::clone(&engine);
                    let config = config.clone();
                    pumps.retain(|pump| !pump.is_finished());
                    pumps.push(std::thread::spawn(move || {
                        pump_sweep(&engine, pending, &config);
                        admission.complete();
                    }));
                }
                for pump in pumps {
                    let _ = pump.join();
                }
            })
        };

        let mut connections: Vec<(TcpStream, JoinHandle<()>, JoinHandle<()>)> = Vec::new();
        loop {
            if self.shutdown.is_shutdown() || sigterm_requested() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    connections.retain(|(_, reader, writer)| {
                        !(reader.is_finished() && writer.is_finished())
                    });
                    match spawn_connection(
                        stream,
                        Arc::clone(&self.engine),
                        Arc::clone(&self.admission),
                        self.shutdown.clone(),
                    ) {
                        Ok(conn) => connections.push(conn),
                        Err(_) => continue,
                    }
                }
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }

        // Graceful drain: no new admissions, every admitted sweep runs to
        // completion and its terminal frame is flushed before sockets
        // close.
        self.admission.drain();
        let _ = scheduler.join();
        for (stream, reader, writer) in connections {
            let _ = stream.shutdown(SocketShutdown::Both);
            let _ = reader.join();
            let _ = writer.join();
        }
        Ok(())
    }
}

/// Whether a SIGTERM arrived (always `false` off unix).
fn sigterm_requested() -> bool {
    #[cfg(unix)]
    {
        sigterm::TERM.load(Ordering::SeqCst)
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Minimal SIGTERM latch: `signal(2)` flips an atomic the accept loop
/// polls. The handler body is async-signal-safe (one atomic store).
#[cfg(unix)]
mod sigterm {
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static TERM: AtomicBool = AtomicBool::new(false);

    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }
}

/// Spawns the reader/writer thread pair for one accepted connection.
fn spawn_connection(
    stream: TcpStream,
    engine: Arc<Engine>,
    admission: Arc<Admission<PendingSweep>>,
    shutdown: ShutdownHandle,
) -> std::io::Result<(TcpStream, JoinHandle<()>, JoinHandle<()>)> {
    stream.set_nonblocking(false)?;
    let _ = stream.set_nodelay(true);
    let reader_stream = stream.try_clone()?;
    let mut writer_stream = stream.try_clone()?;
    let (out_tx, out_rx) = mpsc::channel::<Out>();

    let writer = std::thread::spawn(move || {
        while let Ok(out) = out_rx.recv() {
            match out {
                Out::Frame(reply) => {
                    // Socket errors are terminal for this connection; keep
                    // draining the channel so pumps never block on send.
                    let _ = reply.write_to(&mut writer_stream);
                }
                Out::Flush(ack) => {
                    let _ = ack.send(());
                }
            }
        }
    });

    let conn = Arc::new(ConnShared {
        out: out_tx,
        cancel: Mutex::new(None),
        dist_cancel: Mutex::new(None),
        disconnected: AtomicBool::new(false),
        cancel_requested: AtomicBool::new(false),
        in_flight: AtomicBool::new(false),
    });
    let reader = std::thread::spawn(move || {
        serve_connection(&reader_stream, &engine, &admission, &conn, &shutdown);
        // Reader exit = client gone (or daemon closing the socket):
        // cancel whatever is still running for this connection.
        conn.disconnected.store(true, Ordering::SeqCst);
        if let Some(token) = conn.cancel.lock().expect("cancel slot").as_ref() {
            token.cancel();
        }
        if let Some(flag) = conn.dist_cancel.lock().expect("dist cancel").as_ref() {
            flag.store(true, Ordering::SeqCst);
        }
    });
    Ok((stream, reader, writer))
}

/// The reader loop: decode requests, answer or enqueue, until EOF.
fn serve_connection(
    stream: &TcpStream,
    engine: &Arc<Engine>,
    admission: &Arc<Admission<PendingSweep>>,
    conn: &Arc<ConnShared>,
    shutdown: &ShutdownHandle,
) {
    let metrics = engine.metrics();
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    loop {
        let request = match Request::read_from(&mut reader) {
            Ok(request) => request,
            Err(WireError::Eof) => return,
            Err(WireError::Io(_)) | Err(WireError::Truncated) => {
                metrics.counter("serve.disconnects").incr();
                return;
            }
            Err(err) => {
                // Protocol defect: tell the client and drop the
                // connection (framing may be out of sync).
                conn.send_flushed(Reply::Error {
                    message: format!("protocol error: {err}"),
                });
                metrics.counter("serve.disconnects").incr();
                return;
            }
        };
        match request {
            Request::Submit { tenant, spec } => {
                handle_submit(engine, admission, conn, tenant, *spec);
            }
            Request::Cancel => {
                conn.cancel_requested.store(true, Ordering::SeqCst);
                if let Some(token) = conn.cancel.lock().expect("cancel slot").as_ref() {
                    token.cancel();
                }
                if let Some(flag) = conn.dist_cancel.lock().expect("dist cancel").as_ref() {
                    flag.store(true, Ordering::SeqCst);
                }
            }
            Request::Stats => {
                let mut text = metrics.snapshot().render_table();
                text.push_str(&format!(
                    "queue: pending={} active={} draining={}\n",
                    admission.pending(),
                    admission.active(),
                    admission.is_draining(),
                ));
                conn.send(Reply::StatsReply { text });
            }
            Request::Shutdown => {
                conn.send_flushed(Reply::ShutdownAck);
                shutdown.shutdown();
            }
        }
    }
}

/// Validates and enqueues one submit, replying synchronously.
fn handle_submit(
    engine: &Arc<Engine>,
    admission: &Arc<Admission<PendingSweep>>,
    conn: &Arc<ConnShared>,
    tenant: String,
    spec: SweepSpec,
) {
    let metrics = engine.metrics();
    metrics
        .counter(&format!("serve.tenant.{tenant}.submitted"))
        .incr();
    if conn.in_flight.swap(true, Ordering::SeqCst) {
        conn.send(Reply::Error {
            message: "one sweep per connection: wait for the previous Done".into(),
        });
        return;
    }
    if let Err(err) = spec.validate() {
        conn.in_flight.store(false, Ordering::SeqCst);
        conn.send(Reply::Error {
            message: format!("rejected spec: {err}"),
        });
        return;
    }
    let jobs = spec.job_count();
    conn.cancel_requested.store(false, Ordering::SeqCst);
    let pending = PendingSweep {
        tenant: tenant.clone(),
        spec,
        conn: Arc::clone(conn),
    };
    // The reply is enqueued inside the admission critical section:
    // once `offer` returns, the scheduler may grant the sweep and a
    // fully-cached run can emit its terminal frame within a
    // millisecond, so an `Accepted` sent after the fact could arrive
    // behind the sweep's own `Done`.
    let offer = admission.offer_with(&tenant, pending, |offer| match offer {
        Offer::Enqueued => conn.send(Reply::Accepted { jobs }),
        Offer::Busy { retry_after_ms } => conn.send(Reply::Busy {
            retry_after_ms: *retry_after_ms,
        }),
        Offer::Draining => conn.send(Reply::Error {
            message: "daemon is draining, not accepting new sweeps".into(),
        }),
    });
    match offer {
        Offer::Enqueued => {}
        Offer::Busy { .. } => {
            conn.in_flight.store(false, Ordering::SeqCst);
            metrics
                .counter(&format!("serve.tenant.{tenant}.busy"))
                .incr();
        }
        Offer::Draining => conn.in_flight.store(false, Ordering::SeqCst),
    }
}

/// Runs one granted sweep — on the shared engine, or fanned across the
/// worker fleet when dist mode is configured — and streams it back.
fn pump_sweep(engine: &Arc<Engine>, pending: PendingSweep, config: &ServerConfig) {
    let PendingSweep { tenant, spec, conn } = pending;
    let partial_every = config.partial_every;
    let metrics = Arc::clone(engine.metrics());
    let finish = |conn: &ConnShared, reply: Reply| {
        // Release the connection's sweep slot before the terminal frame
        // goes out: the moment the client sees it, a resubmit is legal.
        *conn.cancel.lock().expect("cancel slot") = None;
        *conn.dist_cancel.lock().expect("dist cancel") = None;
        conn.in_flight.store(false, Ordering::SeqCst);
        conn.send_flushed(reply);
    };

    if conn.disconnected.load(Ordering::SeqCst) || conn.cancel_requested.load(Ordering::SeqCst) {
        finish(
            &conn,
            Reply::Error {
                message: "sweep cancelled before it started".into(),
            },
        );
        return;
    }

    if let Some(dist) = &config.dist {
        pump_sweep_dist(engine, &tenant, &spec, &conn, dist, partial_every, finish);
        return;
    }

    if let Some(dir) = &config.journal_dir {
        pump_sweep_journaled(engine, &tenant, &spec, &conn, dir, finish);
        return;
    }

    let session = SessionConfig {
        job_events: false,
        partial_every,
        ..SessionConfig::quiet()
    };
    let handle = match engine.submit_with(&spec, session) {
        Ok(handle) => handle,
        Err(err) => {
            finish(
                &conn,
                Reply::Error {
                    message: format!("engine rejected sweep: {err}"),
                },
            );
            return;
        }
    };
    *conn.cancel.lock().expect("cancel slot") = Some(handle.cancel_token());
    // The reader may have observed a disconnect between the pre-check and
    // the token publication; re-check so the cancel is never lost.
    if conn.disconnected.load(Ordering::SeqCst) || conn.cancel_requested.load(Ordering::SeqCst) {
        handle.cancel();
    }

    let mut terminal = None;
    while let Some(event) = handle.next_event() {
        match event {
            SweepEvent::SweepFinished {
                completed,
                cancelled,
                events_dropped,
            } => {
                terminal = Some((completed, cancelled, events_dropped));
            }
            event => conn.send(Reply::Event(event)),
        }
    }
    let (completed, cancelled, events_dropped) = terminal.unwrap_or((0, true, 0));
    match handle.wait() {
        Ok(output) => {
            metrics
                .counter(&format!("serve.tenant.{tenant}.completed"))
                .incr();
            finish(
                &conn,
                Reply::Done {
                    completed,
                    cancelled,
                    events_dropped,
                    aggregate: output.aggregate,
                },
            );
        }
        Err(err) => {
            finish(
                &conn,
                Reply::Error {
                    message: format!("sweep failed: {err}"),
                },
            );
        }
    }
}

/// Journal-mode pump: run the sweep write-ahead journaled under
/// `<journal_dir>/<spec_hash:016x>` with resume always on — the daemon
/// restart-recovery path. A sweep the previous daemon process was
/// SIGKILLed out of replays its journaled jobs and executes only the
/// remainder; the aggregate stays bitwise identical to an
/// uninterrupted run. Executed jobs stream as `JobFinished` events.
fn pump_sweep_journaled(
    engine: &Arc<Engine>,
    tenant: &str,
    spec: &SweepSpec,
    conn: &Arc<ConnShared>,
    journal_dir: &std::path::Path,
    finish: impl Fn(&ConnShared, Reply),
) {
    let metrics = Arc::clone(engine.metrics());
    let cancel = Arc::new(AtomicBool::new(false));
    // Journal mode cancels through the same polled flag dist mode uses
    // (there is no session token on this path).
    *conn.dist_cancel.lock().expect("dist cancel") = Some(Arc::clone(&cancel));
    if conn.disconnected.load(Ordering::SeqCst) || conn.cancel_requested.load(Ordering::SeqCst) {
        cancel.store(true, Ordering::SeqCst);
    }

    let cfg = JournalConfig::new(journal_dir.join(format!("{:016x}", spec_hash(spec)))).resuming();
    let outcome = engine.run_journaled_with(spec, &cfg, Some(&cancel), |_, _, result| {
        conn.send(Reply::Event(SweepEvent::JobFinished {
            index: result.index,
            cell: result.cell,
            key: result.identity,
            cache_hit: result.cache_hit,
            wall_time: result.wall_time,
        }));
    });
    match outcome {
        Ok(out) => {
            metrics
                .counter(&format!("serve.tenant.{tenant}.completed"))
                .incr();
            metrics
                .counter("serve.journal.replayed")
                .add(out.replayed as u64);
            metrics
                .counter("serve.journal.executed")
                .add(out.executed as u64);
            finish(
                conn,
                Reply::Done {
                    completed: out.total,
                    cancelled: false,
                    events_dropped: 0,
                    aggregate: out.aggregate,
                },
            );
        }
        Err(EngineError::Cancelled) => {
            finish(
                conn,
                Reply::Error {
                    message: "sweep cancelled (journal keeps the finished jobs; \
                              resubmitting resumes)"
                        .into(),
                },
            );
        }
        Err(err) => {
            finish(
                conn,
                Reply::Error {
                    message: format!("sweep failed: {err}"),
                },
            );
        }
    }
}

/// Dist-mode pump: fan the sweep across the worker fleet, streaming
/// the coordinator's partial keyframes as ordinary `Event` frames so
/// clients reassemble progress exactly as in engine mode.
fn pump_sweep_dist(
    engine: &Arc<Engine>,
    tenant: &str,
    spec: &SweepSpec,
    conn: &Arc<ConnShared>,
    dist: &hetrta_dist::DistConfig,
    partial_every: Option<usize>,
    finish: impl Fn(&ConnShared, Reply),
) {
    let metrics = Arc::clone(engine.metrics());
    let cancel = Arc::new(AtomicBool::new(false));
    *conn.dist_cancel.lock().expect("dist cancel") = Some(Arc::clone(&cancel));
    // The reader may have observed a disconnect between the pre-check
    // and the flag publication; re-check so the cancel is never lost.
    if conn.disconnected.load(Ordering::SeqCst) || conn.cancel_requested.load(Ordering::SeqCst) {
        cancel.store(true, Ordering::SeqCst);
    }

    let mut config = dist.clone();
    config.partial_every = partial_every;
    let outcome = hetrta_dist::run_distributed(
        spec,
        &config,
        &hetrta_obs::NOOP,
        Some(&cancel),
        |progress| match progress {
            hetrta_dist::DistProgress::Partial {
                completed,
                total,
                update,
            } => conn.send(Reply::Event(SweepEvent::PartialAggregate {
                completed,
                total,
                update,
            })),
            hetrta_dist::DistProgress::WorkerDown { .. } => {
                metrics.counter("serve.dist.worker_deaths").incr();
            }
            hetrta_dist::DistProgress::Job { .. } => {}
        },
    );
    match outcome {
        Ok(out) => {
            metrics
                .counter(&format!("serve.tenant.{tenant}.completed"))
                .incr();
            finish(
                conn,
                Reply::Done {
                    completed: out.completed,
                    cancelled: out.cancelled,
                    events_dropped: 0,
                    aggregate: out.aggregate,
                },
            );
        }
        Err(err) => {
            finish(
                conn,
                Reply::Error {
                    message: format!("distributed sweep failed: {err}"),
                },
            );
        }
    }
}
