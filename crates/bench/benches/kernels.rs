//! Criterion benches for the flat-CSR graph kernels and the reusable
//! analysis workspaces — the per-kernel counterpart of `hetrta bench`
//! (which also measures end-to-end sweeps and emits the `BENCH_*.json`
//! trajectory).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hetrta_core::transform;
use hetrta_dag::algo::{topological_order, CriticalPath, Reachability};
use hetrta_dag::HeteroDagTask;
use hetrta_exact::{solve_with, SolverConfig, SolverWorkspace};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::policy::BreadthFirst;
use hetrta_sim::{simulate_makespan, Platform, SimWorkspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_task(n_min: usize, n_max: usize, seed: u64) -> HeteroDagTask {
    let params = NfjParams::large_tasks().with_node_range(n_min, n_max);
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let Ok(dag) = generate_nfj(&params, &mut rng) else {
            continue;
        };
        if let Ok(task) = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(0.1),
            &mut rng,
        ) {
            return task;
        }
    }
}

fn csr_kernels(c: &mut Criterion) {
    let task = bench_task(100, 250, 0xBE9C_BE9C);
    let dag = task.dag();
    let mut group = c.benchmark_group("kernels");
    group.bench_function("dag_clone", |b| b.iter(|| black_box(dag.clone())));
    group.bench_function("topological_order", |b| {
        b.iter(|| black_box(topological_order(dag).unwrap()))
    });
    group.bench_function("reachability", |b| {
        b.iter(|| black_box(Reachability::of(dag).unwrap()))
    });
    group.bench_function("critical_path", |b| {
        b.iter(|| black_box(CriticalPath::of(dag).length()))
    });
    group.bench_function("transform_alg1", |b| {
        b.iter(|| black_box(transform(&task).unwrap()))
    });
}

fn workspace_kernels(c: &mut Criterion) {
    let task = bench_task(100, 250, 0xBE9C_BE9D);
    let mut group = c.benchmark_group("workspaces");
    let mut sim_ws = SimWorkspace::new();
    group.bench_function("sim_breadth_first_warm", |b| {
        b.iter(|| {
            black_box(
                simulate_makespan(
                    &mut sim_ws,
                    task.dag(),
                    Some(task.offloaded()),
                    Platform::with_accelerator(4),
                    &mut BreadthFirst::new(),
                )
                .unwrap(),
            )
        })
    });
    let small = bench_task(10, 14, 0xBE9C_BE9E);
    let mut solver_ws = SolverWorkspace::new();
    group.bench_function("exact_solve_small_warm", |b| {
        b.iter(|| {
            black_box(
                solve_with(
                    &mut solver_ws,
                    small.dag(),
                    Some(small.offloaded()),
                    2,
                    &SolverConfig::default(),
                )
                .unwrap()
                .makespan(),
            )
        })
    });
}

criterion_group!(benches, csr_kernels, workspace_kernels);
criterion_main!(benches);
