//! Criterion benches for the builder-first generation pipeline — the
//! paper-scale presets and the large-graph tier (n ≈ 10,000) that
//! edge-by-edge CSR mutation made impractical before PR 5.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hetrta_core::transform;
use hetrta_gen::layered::{generate_layered, LayeredParams};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::openmp::{Program, Stmt};
use hetrta_gen::{generate_nfj, NfjParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn generation_paper_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation_paper");
    let small = NfjParams::small_tasks();
    group.bench_function("nfj_small", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(generate_nfj(&small, &mut rng).unwrap())
        })
    });
    let large = NfjParams::large_tasks();
    group.bench_function("nfj_large", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(generate_nfj(&large, &mut rng).unwrap())
        })
    });
    let layered = LayeredParams::default();
    group.bench_function("layered_default", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(generate_layered(&layered, &mut rng).unwrap())
        })
    });
    let program = Program::new(vec![
        Stmt::work("prep", 2),
        Stmt::offload("gpu", 20),
        Stmt::spawn(Program::new(vec![Stmt::work("cpu_a", 9)])),
        Stmt::spawn(Program::new(vec![Stmt::work("cpu_b", 7)])),
        Stmt::work("local", 3),
        Stmt::Taskwait,
        Stmt::work("post", 1),
    ]);
    group.bench_function("openmp_lower", |b| {
        b.iter(|| black_box(program.lower().unwrap()))
    });
}

fn generation_large_graphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation_10k");
    group.sample_size(10);
    let nfj = NfjParams::large_graphs(10_000);
    group.bench_function("nfj_build_10k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(0xBE9C_0010 ^ seed);
            black_box(generate_nfj(&nfj, &mut rng).unwrap())
        })
    });
    let layered = LayeredParams::large_graphs(10_000);
    group.bench_function("layered_build_10k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(0xBE9C_0020 ^ seed);
            black_box(generate_layered(&layered, &mut rng).unwrap())
        })
    });
    // Algorithm 1 at the large-graph tier (analysis-side counterpart).
    let task = {
        let mut rng = StdRng::seed_from_u64(0xBE9C_0030);
        let dag = generate_nfj(&nfj, &mut rng).unwrap();
        make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(0.2),
            &mut rng,
        )
        .unwrap()
    };
    group.bench_function("transform_10k", |b| {
        b.iter(|| black_box(transform(&task).unwrap()))
    });
}

criterion_group!(benches, generation_paper_scale, generation_large_graphs);
criterion_main!(benches);
