//! Criterion bench for the Figure 6 pipeline (transformation impact on
//! average simulated performance).
//!
//! Measures the per-task cost of the full Figure 6 inner loop
//! (generate → transform → simulate τ and τ') and runs the scaled-down
//! experiment once per sample to keep `cargo bench` fast; the `fig6`
//! binary regenerates the full figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetrta_bench::experiments::fig6;
use hetrta_core::transform;
use hetrta_gen::series::BatchSpec;
use hetrta_gen::NfjParams;
use hetrta_sim::policy::BreadthFirst;
use hetrta_sim::{simulate, Platform};
use std::hint::black_box;

fn bench_inner_loop(c: &mut Criterion) {
    let spec = BatchSpec::new(NfjParams::large_tasks().with_node_range(100, 250), 1, 42);
    let mut group = c.benchmark_group("fig6/per_task");
    for m in [2usize, 16] {
        group.bench_with_input(BenchmarkId::new("simulate_both", m), &m, |b, &m| {
            b.iter(|| {
                let task = spec.task(0, 0.2).expect("generation succeeds");
                let t = transform(&task).expect("transform succeeds");
                let platform = Platform::with_accelerator(m);
                let orig = simulate(
                    task.dag(),
                    Some(task.offloaded()),
                    platform,
                    &mut BreadthFirst::new(),
                )
                .expect("simulate");
                let trans = simulate(
                    t.transformed(),
                    Some(task.offloaded()),
                    platform,
                    &mut BreadthFirst::new(),
                )
                .expect("simulate");
                black_box((orig.makespan(), trans.makespan()))
            });
        });
    }
    group.finish();
}

fn bench_quick_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/experiment");
    group.sample_size(10);
    group.bench_function("quick_config", |b| {
        b.iter(|| black_box(fig6::run(&fig6::Config::quick())));
    });
    group.finish();
}

criterion_group!(benches, bench_inner_loop, bench_quick_experiment);
criterion_main!(benches);
