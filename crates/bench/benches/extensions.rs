//! Criterion benchmarks of the extension crates: runtime scaling of the
//! set-level schedulability tests and the sporadic task-set simulator.
//!
//! These are *analysis cost* benchmarks (how expensive is the tooling),
//! complementing the accuracy experiments of the `acceptance` and
//! `baselines` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetrta_dag::Ticks;
use hetrta_sched::model::{AnalysisModel, DeviceModel};
use hetrta_sched::taskset::{generate_task_set, sort_deadline_monotonic, TaskSetParams};
use hetrta_sched::{gedf_test, gfp_test};
use hetrta_sim::sporadic::{simulate_sporadic, Discipline, SporadicConfig};
use hetrta_sim::Platform;
use hetrta_suspend::BaselineComparison;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HET: AnalysisModel = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);

fn taskset(n: usize, seed: u64) -> Vec<hetrta_dag::HeteroDagTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TaskSetParams::small(n, 0.25 * n as f64).with_offload_fraction(0.15, 0.4);
    let mut set = generate_task_set(&params, &mut rng).expect("generation succeeds");
    sort_deadline_monotonic(&mut set);
    set
}

fn bench_schedulability_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_tests");
    for &n in &[2usize, 4, 8] {
        let set = taskset(n, 7);
        group.bench_with_input(BenchmarkId::new("gfp_het", n), &set, |b, s| {
            b.iter(|| gfp_test(s, 8, HET).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("gfp_hom", n), &set, |b, s| {
            b.iter(|| gfp_test(s, 8, AnalysisModel::Homogeneous).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("gedf_het", n), &set, |b, s| {
            b.iter(|| gedf_test(s, 8, HET).unwrap())
        });
    }
    group.finish();
}

fn bench_sporadic_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sporadic_sim");
    group.sample_size(20);
    for &n in &[2usize, 4] {
        let set = taskset(n, 13);
        let horizon = Ticks::new(set.iter().map(|t| t.period().get()).max().unwrap() * 3);
        for (name, disc) in [
            ("fp", Discipline::FixedPriority),
            ("edf", Discipline::EarliestDeadlineFirst),
        ] {
            let config = SporadicConfig::new(Platform::new(8, n), horizon).discipline(disc);
            group.bench_with_input(BenchmarkId::new(name, n), &set, |b, s| {
                b.iter(|| simulate_sporadic(s, &config).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_baseline_comparison(c: &mut Criterion) {
    let set = taskset(1, 21);
    c.bench_function("suspend_baseline_comparison", |b| {
        b.iter(|| BaselineComparison::compute(&set[0], 8).unwrap())
    });
}

fn bench_conditional_bounds(c: &mut Criterion) {
    use hetrta_cond::{generate_cond, r_cond, r_cond_exact, CondGenParams};

    let mut group = c.benchmark_group("cond_bounds");
    let mut rng = StdRng::seed_from_u64(31);
    // Pick expressions with a fixed realization budget so the exact
    // enumeration stays comparable across runs.
    let exprs: Vec<_> =
        std::iter::from_fn(|| generate_cond(&CondGenParams::small(), &mut rng).ok())
            .filter(|e| (8..=64).contains(&e.realization_count()))
            .take(4)
            .collect();
    group.bench_function("dp", |b| {
        b.iter(|| {
            exprs
                .iter()
                .map(|e| r_cond(e, 8).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("exact_enumeration", |b| {
        b.iter(|| {
            exprs
                .iter()
                .map(|e| r_cond_exact(e, 8, 128).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulability_tests,
    bench_sporadic_simulation,
    bench_baseline_comparison,
    bench_conditional_bounds
);
criterion_main!(benches);
