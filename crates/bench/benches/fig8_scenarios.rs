//! Criterion bench for the Figure 8 pipeline (scenario classification).

use criterion::{criterion_group, criterion_main, Criterion};
use hetrta_bench::experiments::fig8;
use hetrta_core::{r_het, transform};
use hetrta_gen::series::BatchSpec;
use hetrta_gen::NfjParams;
use std::hint::black_box;

fn bench_classification(c: &mut Criterion) {
    let spec = BatchSpec::new(NfjParams::large_tasks().with_node_range(100, 250), 1, 99);
    let task = spec.task(0, 0.15).expect("generation succeeds");
    c.bench_function("fig8/transform_and_classify", |b| {
        b.iter(|| {
            let t = transform(&task).expect("transform succeeds");
            black_box(r_het(&t, 8).expect("m > 0").scenario())
        });
    });
}

fn bench_quick_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/experiment");
    group.sample_size(10);
    group.bench_function("quick_config", |b| {
        b.iter(|| black_box(fig8::run(&fig8::Config::quick())));
    });
    group.finish();
}

criterion_group!(benches, bench_classification, bench_quick_experiment);
criterion_main!(benches);
