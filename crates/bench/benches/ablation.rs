//! Ablation benches: design choices called out in DESIGN.md.
//!
//! * transformation on/off under the same scheduler (runtime cost of the
//!   barrier bookkeeping and the simulated makespans);
//! * scheduler-policy sensitivity of the simulator;
//! * exact solver with and without its dominance memo / incumbent seeding
//!   (via configuration knobs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetrta_core::transform;
use hetrta_exact::{solve, SolverConfig};
use hetrta_gen::series::BatchSpec;
use hetrta_gen::NfjParams;
use hetrta_sim::policy::{BreadthFirst, CriticalPathFirst, DepthFirst, Policy, RandomTieBreak};
use hetrta_sim::{simulate, Platform};
use std::hint::black_box;

fn bench_transformation_ablation(c: &mut Criterion) {
    let spec = BatchSpec::new(NfjParams::large_tasks().with_node_range(100, 250), 1, 1);
    let task = spec.task(0, 0.25).expect("generation succeeds");
    let t = transform(&task).expect("transform succeeds");
    let platform = Platform::with_accelerator(4);

    let mut group = c.benchmark_group("ablation/transformation");
    group.bench_function("simulate_original", |b| {
        b.iter(|| {
            black_box(
                simulate(
                    task.dag(),
                    Some(task.offloaded()),
                    platform,
                    &mut BreadthFirst::new(),
                )
                .expect("simulate"),
            )
        });
    });
    group.bench_function("simulate_transformed", |b| {
        b.iter(|| {
            black_box(
                simulate(
                    t.transformed(),
                    Some(task.offloaded()),
                    platform,
                    &mut BreadthFirst::new(),
                )
                .expect("simulate"),
            )
        });
    });
    group.finish();
}

fn bench_policy_sensitivity(c: &mut Criterion) {
    let spec = BatchSpec::new(NfjParams::large_tasks().with_node_range(100, 250), 1, 2);
    let task = spec.task(0, 0.25).expect("generation succeeds");
    let platform = Platform::with_accelerator(4);
    let mut group = c.benchmark_group("ablation/policy");
    type PolicyFactory = Box<dyn Fn() -> Box<dyn Policy>>;
    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("breadth_first", Box::new(|| Box::new(BreadthFirst::new()))),
        ("depth_first", Box::new(|| Box::new(DepthFirst::new()))),
        (
            "critical_path_first",
            Box::new(|| Box::new(CriticalPathFirst::new())),
        ),
        ("random", Box::new(|| Box::new(RandomTieBreak::new(3)))),
    ];
    for (name, make) in policies {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = make();
                black_box(
                    simulate(task.dag(), Some(task.offloaded()), platform, p.as_mut())
                        .expect("simulate"),
                )
            });
        });
    }
    group.finish();
}

fn bench_solver_memo_ablation(c: &mut Criterion) {
    let spec = BatchSpec::new(NfjParams::small_tasks().with_node_range(14, 22), 1, 3);
    let task = spec.task(0, 0.2).expect("generation succeeds");
    let mut group = c.benchmark_group("ablation/solver_memo");
    for (label, memo) in [("with_memo", 64usize), ("no_memo", 0)] {
        let cfg = SolverConfig {
            max_memo_per_mask: memo,
            ..SolverConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("m2", label), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(solve(task.dag(), Some(task.offloaded()), 2, cfg).expect("solver runs"))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transformation_ablation,
    bench_policy_sensitivity,
    bench_solver_memo_ablation
);
criterion_main!(benches);
