//! Criterion bench for the Figure 7 pipeline (exact-oracle accuracy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetrta_bench::experiments::fig7;
use hetrta_exact::{solve, SolverConfig};
use hetrta_gen::series::BatchSpec;
use hetrta_gen::NfjParams;
use std::hint::black_box;

fn bench_exact_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/exact_solver");
    for (label, lo, hi) in [("n3_20", 3usize, 20usize), ("n20_40", 20, 40)] {
        let spec = BatchSpec::new(NfjParams::small_tasks().with_node_range(lo, hi), 1, 7);
        let task = spec.task(0, 0.2).expect("generation succeeds");
        group.bench_with_input(BenchmarkId::new("solve_m2", label), &task, |b, task| {
            b.iter(|| {
                black_box(
                    solve(
                        task.dag(),
                        Some(task.offloaded()),
                        2,
                        &SolverConfig::default(),
                    )
                    .expect("solver runs"),
                )
            });
        });
    }
    group.finish();
}

fn bench_quick_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/experiment");
    group.sample_size(10);
    group.bench_function("quick_config", |b| {
        b.iter(|| black_box(fig7::run(&fig7::Config::quick())));
    });
    group.finish();
}

criterion_group!(benches, bench_exact_solver, bench_quick_experiment);
criterion_main!(benches);
