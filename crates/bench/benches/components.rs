//! Component micro-benchmarks: generator, graph algorithms,
//! transformation, RTA, simulator and exact solver in isolation.
//!
//! These are the ablation/performance benches backing the claim that the
//! analysis is cheap (polynomial) while the exact oracle is not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetrta_core::{r_het, r_hom_dag, transform};
use hetrta_dag::algo::{CriticalPath, Reachability};
use hetrta_exact::{list_schedule_cp_first, solve, SolverConfig};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::policy::{BreadthFirst, CriticalPathFirst};
use hetrta_sim::{simulate, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn task_of(n_lo: usize, n_hi: usize, seed: u64) -> hetrta_dag::HeteroDagTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(
        &NfjParams::large_tasks().with_node_range(n_lo, n_hi),
        &mut rng,
    )
    .expect("generation succeeds");
    make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(0.2),
        &mut rng,
    )
    .expect("offload succeeds")
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("components/generate");
    for (label, lo, hi) in [("n100_250", 100, 250), ("n250_400", 250, 400)] {
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(
                    generate_nfj(&NfjParams::large_tasks().with_node_range(lo, hi), &mut rng)
                        .expect("generation succeeds"),
                )
            });
        });
    }
    group.finish();
}

fn bench_graph_algorithms(c: &mut Criterion) {
    let task = task_of(250, 400, 11);
    let dag = task.dag();
    let mut group = c.benchmark_group("components/graph");
    group.bench_function("critical_path_n400", |b| {
        b.iter(|| black_box(CriticalPath::of(dag).length()));
    });
    group.bench_function("reachability_n400", |b| {
        b.iter(|| black_box(Reachability::of(dag).expect("acyclic").node_count()));
    });
    group.finish();
}

fn bench_transform_and_rta(c: &mut Criterion) {
    let task = task_of(250, 400, 13);
    let mut group = c.benchmark_group("components/analysis");
    group.bench_function("transform_n400", |b| {
        b.iter(|| black_box(transform(&task).expect("transform succeeds")));
    });
    let t = transform(&task).expect("transform succeeds");
    group.bench_function("r_hom_n400", |b| {
        b.iter(|| black_box(r_hom_dag(task.dag(), 8).expect("m > 0")));
    });
    group.bench_function("r_het_n400", |b| {
        b.iter(|| black_box(r_het(&t, 8).expect("m > 0")));
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let task = task_of(250, 400, 17);
    let mut group = c.benchmark_group("components/simulate");
    for m in [2usize, 16] {
        group.bench_with_input(BenchmarkId::new("breadth_first", m), &m, |b, &m| {
            b.iter(|| {
                black_box(
                    simulate(
                        task.dag(),
                        Some(task.offloaded()),
                        Platform::with_accelerator(m),
                        &mut BreadthFirst::new(),
                    )
                    .expect("simulate"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("critical_path_first", m), &m, |b, &m| {
            b.iter(|| {
                black_box(
                    simulate(
                        task.dag(),
                        Some(task.offloaded()),
                        Platform::with_accelerator(m),
                        &mut CriticalPathFirst::new(),
                    )
                    .expect("simulate"),
                )
            });
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(19);
    let dag = generate_nfj(&NfjParams::small_tasks().with_node_range(10, 18), &mut rng)
        .expect("generation succeeds");
    let task = make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(0.2),
        &mut rng,
    )
    .expect("offload succeeds");
    let mut group = c.benchmark_group("components/exact");
    group.bench_function("list_schedule_n18", |b| {
        b.iter(|| {
            black_box(
                list_schedule_cp_first(task.dag(), Some(task.offloaded()), 2)
                    .expect("heuristic runs"),
            )
        });
    });
    group.bench_function("branch_and_bound_n18", |b| {
        b.iter(|| {
            black_box(
                solve(
                    task.dag(),
                    Some(task.offloaded()),
                    2,
                    &SolverConfig::default(),
                )
                .expect("solver runs"),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generator,
    bench_graph_algorithms,
    bench_transform_and_rta,
    bench_simulator,
    bench_exact
);
criterion_main!(benches);
