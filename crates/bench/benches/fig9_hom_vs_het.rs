//! Criterion bench for the Figure 9 pipeline (`R_hom` vs `R_het`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetrta_bench::experiments::fig9;
use hetrta_core::HeterogeneousAnalysis;
use hetrta_gen::series::BatchSpec;
use hetrta_gen::NfjParams;
use std::hint::black_box;

fn bench_full_analysis(c: &mut Criterion) {
    let spec = BatchSpec::new(NfjParams::large_tasks().with_node_range(100, 250), 1, 5);
    let task = spec.task(0, 0.25).expect("generation succeeds");
    let mut group = c.benchmark_group("fig9/analysis");
    for m in [2u64, 16] {
        group.bench_with_input(BenchmarkId::new("run", m), &m, |b, &m| {
            b.iter(|| black_box(HeterogeneousAnalysis::run(&task, m).expect("analysis runs")));
        });
    }
    group.finish();
}

fn bench_quick_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/experiment");
    group.sample_size(10);
    group.bench_function("quick_config", |b| {
        b.iter(|| black_box(fig9::run(&fig9::Config::quick())));
    });
    group.finish();
}

criterion_group!(benches, bench_full_analysis, bench_quick_experiment);
criterion_main!(benches);
