//! Thread fan-out for independent sweep points (std only).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item of `items` using up to
/// `std::thread::available_parallelism()` worker threads, preserving input
/// order in the output.
///
/// Sweep points of the experiments are fully independent (the generators
/// derive per-task seeds from the point itself), so this is a plain
/// embarrassingly-parallel map.
///
/// # Panics
///
/// Propagates panics from `f` (the worker thread's panic aborts the whole
/// map, as for `std::thread::scope`).
///
/// # Examples
///
/// ```
/// let squares = hetrta_bench::runner::parallel_map(vec![1, 2, 3], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input lock")
                    .take()
                    .expect("taken once");
                let result = f(item);
                *outputs[i].lock().expect("output lock") = Some(result);
            });
        }
    });

    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output lock")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |x: u64| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_runs_in_parallel_without_reordering() {
        let out = parallel_map((0..32).collect(), |x: u64| {
            // tiny busy loop to force interleaving
            let mut acc = x;
            for i in 0..1000 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
