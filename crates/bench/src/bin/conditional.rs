//! Conditional-analysis ablation (extension, reference \[12\]): pessimism of
//! the flatten-all baseline vs. the conditional-aware DP bound vs. exact
//! per-realization enumeration, over random conditional expressions with a
//! growing conditional share. Runs on the batch-analysis engine via the
//! `cond` registry key.
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin conditional [-- --quick]
//! ```

use hetrta_bench::experiments::conditional;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        conditional::Config::quick()
    } else {
        conditional::Config::paper()
    };

    let points = conditional::run(&config);
    println!(
        "== conditional-aware vs flatten-all vs exact, {} expressions/point ==\n",
        config.exprs_per_point
    );
    println!("{}", conditional::render(&points));
    println!("flatten vs aware: mean pessimism added by ignoring conditionals.");
    println!("aware vs exact: residual DP pessimism against full enumeration.");
}
