//! Conditional-analysis ablation (extension, reference \[12\]): pessimism of
//! the flatten-all baseline vs. the conditional-aware DP bound vs. exact
//! per-realization enumeration, over random conditional expressions with a
//! growing conditional share.
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin conditional [-- --quick]
//! ```

use hetrta_bench::runner::parallel_map;
use hetrta_bench::table::Table;
use hetrta_cond::{generate_cond, r_cond, r_cond_exact, r_parallel_flattening, CondGenParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Row {
    p_cond: f64,
    m: u64,
    /// Mean % by which flattening exceeds the conditional-aware bound.
    flat_overhead: f64,
    /// Mean % by which the DP bound exceeds the exact enumeration.
    dp_overhead: f64,
    /// Mean realizations per expression.
    realizations: f64,
    samples: usize,
}

fn sweep(p_cond: f64, m: u64, n: usize) -> Row {
    let mut params = CondGenParams::small();
    params.p_cond = p_cond;
    params.p_par = (0.65 - p_cond).max(0.1);
    let mut flat_sum = 0.0;
    let mut dp_sum = 0.0;
    let mut realizations = 0.0;
    let mut samples = 0usize;
    for seed in 0..n as u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ ((p_cond * 1000.0) as u64) << 20 ^ (m << 40));
        let Ok(e) = generate_cond(&params, &mut rng) else {
            continue;
        };
        let Ok(exact) = r_cond_exact(&e, m, 512) else {
            continue;
        };
        let dp = r_cond(&e, m).expect("valid expression");
        let flat = r_parallel_flattening(&e, m).expect("valid expression");
        if exact.is_zero() {
            continue;
        }
        flat_sum += (flat.to_f64() / dp.to_f64() - 1.0) * 100.0;
        dp_sum += (dp.to_f64() / exact.to_f64() - 1.0) * 100.0;
        realizations += e.realization_count() as f64;
        samples += 1;
    }
    let d = samples.max(1) as f64;
    Row {
        p_cond,
        m,
        flat_overhead: flat_sum / d,
        dp_overhead: dp_sum / d,
        realizations: realizations / d,
        samples,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 40 } else { 300 };

    let jobs: Vec<(f64, u64)> = [0.1, 0.2, 0.3, 0.4]
        .into_iter()
        .flat_map(|p| [2u64, 8].map(|m| (p, m)))
        .collect();
    let rows = parallel_map(jobs, move |(p, m)| sweep(p, m, n));

    println!("== conditional-aware vs flatten-all vs exact, {n} expressions/point ==\n");
    let mut table = Table::new(
        [
            "p_cond",
            "m",
            "avg realizations",
            "flatten vs DP (+%)",
            "DP vs exact (+%)",
            "samples",
        ]
        .map(String::from)
        .to_vec(),
    );
    for r in &rows {
        table.row(vec![
            format!("{:.1}", r.p_cond),
            r.m.to_string(),
            format!("{:.1}", r.realizations),
            format!("+{:.1}%", r.flat_overhead),
            format!("+{:.1}%", r.dp_overhead),
            r.samples.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("flatten-all charges every branch (sound, naive); the conditional-aware");
    println!("DP bound removes the non-taken branches; exact enumerates realizations.");
}
