//! Regenerates Figure 8 of the paper (scenario occurrence).
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin fig8            # full (paper) config
//! cargo run -p hetrta-bench --release --bin fig8 -- --quick # scaled-down
//! ```

use hetrta_bench::experiments::fig8;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        fig8::Config::quick()
    } else {
        fig8::Config::paper()
    };
    eprintln!(
        "fig8: {} core counts x {} fractions x {} DAGs ({} mode)",
        config.core_counts.len(),
        config.fractions.len(),
        config.tasks_per_point,
        if quick { "quick" } else { "paper" },
    );
    let results = fig8::run(&config);
    print!("{}", results.render());
}
