//! Runs every experiment of the paper in sequence (the full evaluation).
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin all_figures            # paper config
//! cargo run -p hetrta-bench --release --bin all_figures -- --quick # scaled-down
//! ```

use hetrta_bench::experiments::{fig6, fig7, fig8, fig9, paper_example};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("================ worked example (Figures 1-2) ================\n");
    print!("{}", paper_example::report());

    println!("\n================ Figure 6 ================\n");
    let c6 = if quick {
        fig6::Config::quick()
    } else {
        fig6::Config::paper()
    };
    print!("{}", fig6::run(&c6).render());

    println!("\n================ Figure 7 ================\n");
    let c7 = if quick {
        fig7::Config::quick()
    } else {
        fig7::Config::paper()
    };
    print!("{}", fig7::run(&c7).render());

    println!("\n================ Figure 8 ================\n");
    let c8 = if quick {
        fig8::Config::quick()
    } else {
        fig8::Config::paper()
    };
    print!("{}", fig8::run(&c8).render());

    println!("\n================ Figure 9 ================\n");
    let c9 = if quick {
        fig9::Config::quick()
    } else {
        fig9::Config::paper()
    };
    print!("{}", fig9::run(&c9).render());
}
