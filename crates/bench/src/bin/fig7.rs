//! Regenerates Figure 7 of the paper (accuracy vs. the exact oracle).
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin fig7            # full (paper) config
//! cargo run -p hetrta-bench --release --bin fig7 -- --quick # scaled-down
//! ```

use hetrta_bench::experiments::fig7;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        fig7::Config::quick()
    } else {
        fig7::Config::paper()
    };
    eprintln!(
        "fig7: {} panels x {} fractions x {} DAGs ({} mode)",
        config.panels.len(),
        config.fractions.len(),
        config.tasks_per_point,
        if quick { "quick" } else { "paper" },
    );
    let results = fig7::run(&config);
    print!("{}", results.render());
}
