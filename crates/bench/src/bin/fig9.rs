//! Regenerates Figure 9 of the paper (`R_hom` vs `R_het`).
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin fig9            # full (paper) config
//! cargo run -p hetrta-bench --release --bin fig9 -- --quick # scaled-down
//! ```

use hetrta_bench::experiments::fig9;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        fig9::Config::quick()
    } else {
        fig9::Config::paper()
    };
    eprintln!(
        "fig9: {} core counts x {} fractions x {} DAGs ({} mode)",
        config.core_counts.len(),
        config.fractions.len(),
        config.tasks_per_point,
        if quick { "quick" } else { "paper" },
    );
    let results = fig9::run(&config);
    print!("{}", results.render());
}
