//! Observed-response ablation (extension): the task-set-level analogue of
//! the paper's Figure 6. Random task sets run in the sporadic simulator
//! under global FP, once as the homogeneous deployment (offload on the
//! host) and once as the transformed heterogeneous deployment (offload on
//! a device); the table reports the mean observed per-job response-time
//! improvement, swept over the offload fraction.
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin observed [-- --quick]
//! ```

use hetrta_bench::runner::parallel_map;
use hetrta_bench::table::Table;
use hetrta_core::transform;
use hetrta_dag::{HeteroDagTask, Ticks};
use hetrta_sched::taskset::{generate_task_set, sort_deadline_monotonic, TaskSetParams};
use hetrta_sim::sporadic::{simulate_sporadic, SporadicConfig};
use hetrta_sim::Platform;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Point {
    fraction_pct: u32,
    m: usize,
    /// Mean % change of hom mean response w.r.t. het mean response
    /// (positive = heterogeneous deployment faster).
    improvement: f64,
    miss_rate_hom: f64,
    miss_rate_het: f64,
    sets: usize,
}

fn transformed_deployment(set: &[HeteroDagTask]) -> Vec<HeteroDagTask> {
    set.iter()
        .map(|t| {
            let tr = transform(t).expect("transformable");
            HeteroDagTask::new(
                tr.transformed().clone(),
                tr.offloaded(),
                t.period(),
                t.deadline(),
            )
            .expect("valid task")
        })
        .collect()
}

fn sweep(fraction_pct: u32, m: usize, sets: usize) -> Point {
    let f = f64::from(fraction_pct) / 100.0;
    let mut improvement = 0.0;
    let mut misses_hom = 0usize;
    let mut misses_het = 0usize;
    let mut count = 0usize;
    for seed in 0..sets as u64 {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (u64::from(fraction_pct) << 16) ^ ((m as u64) << 40));
        let params = TaskSetParams::small(3, 0.35 * m as f64)
            .with_offload_fraction((f - 0.02).max(0.01), f + 0.02);
        let Ok(mut set) = generate_task_set(&params, &mut rng) else {
            continue;
        };
        sort_deadline_monotonic(&mut set);
        let horizon = Ticks::new(set.iter().map(|t| t.period().get()).max().unwrap() * 3);

        let hom_cfg = SporadicConfig::new(Platform::host_only(m), horizon).offload_on_host(true);
        let hom = simulate_sporadic(&set, &hom_cfg).expect("simulation succeeds");

        let tset = transformed_deployment(&set);
        let het_cfg = SporadicConfig::new(Platform::new(m, tset.len()), horizon);
        let het = simulate_sporadic(&tset, &het_cfg).expect("simulation succeeds");

        let mut hom_mean = 0.0;
        let mut het_mean = 0.0;
        let mut tasks_counted = 0usize;
        for k in 0..set.len() {
            if let (Some(a), Some(b)) = (hom.response_stats(k), het.response_stats(k)) {
                hom_mean += a.mean;
                het_mean += b.mean;
                tasks_counted += 1;
            }
        }
        if tasks_counted == 0 || het_mean == 0.0 {
            continue;
        }
        improvement += (hom_mean / het_mean - 1.0) * 100.0;
        misses_hom += usize::from(hom.any_deadline_miss());
        misses_het += usize::from(het.any_deadline_miss());
        count += 1;
    }
    Point {
        fraction_pct,
        m,
        improvement: improvement / count.max(1) as f64,
        miss_rate_hom: misses_hom as f64 / count.max(1) as f64,
        miss_rate_het: misses_het as f64 / count.max(1) as f64,
        sets: count,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sets = if quick { 20 } else { 100 };

    let jobs: Vec<(u32, usize)> = [5u32, 10, 20, 30, 45]
        .into_iter()
        .flat_map(|p| [2usize, 8].map(|m| (p, m)))
        .collect();
    let points = parallel_map(jobs, move |(p, m)| sweep(p, m, sets));

    println!("== observed mean response, hom vs transformed het deployment (global FP) ==");
    println!("   {sets} sets/point, 3 tasks/set, total utilization 0.35·m\n");
    let mut table = Table::new(
        [
            "C_off/vol",
            "m",
            "het speedup (+%)",
            "miss rate hom",
            "miss rate het",
            "sets",
        ]
        .map(String::from)
        .to_vec(),
    );
    for p in &points {
        table.row(vec![
            format!("{}%", p.fraction_pct),
            p.m.to_string(),
            format!("{:+.1}%", p.improvement),
            format!("{:.2}", p.miss_rate_hom),
            format!("{:.2}", p.miss_rate_het),
            p.sets.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("positive speedup = the transformed heterogeneous deployment responds faster");
    println!("on average; the paper's Fig. 6 reports the single-task analogue.");
}
