//! System-level ablation (extension): federated scheduling of random task
//! sets, sizing per-task clusters with the homogeneous vs. the
//! heterogeneous analysis — how many task sets become schedulable thanks to
//! the paper's bound?
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin federated [-- --quick]
//! ```

use hetrta_bench::runner::parallel_map;
use hetrta_bench::table::{pct, Table};
use hetrta_core::federated::{federated_partition, AnalysisKind};
use hetrta_dag::{HeteroDagTask, Ticks};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_taskset(seed: u64, tasks: usize, fraction: f64) -> Vec<HeteroDagTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..tasks)
        .map(|_| {
            let dag = generate_nfj(&NfjParams::large_tasks().with_node_range(80, 160), &mut rng)
                .expect("generation succeeds");
            let t = make_hetero_task(
                dag,
                OffloadSelection::AnyInterior,
                CoffSizing::VolumeFraction(fraction),
                &mut rng,
            )
            .expect("offload succeeds");
            // Deadline between 1.3x and 2.5x the critical path.
            let factor: u64 = rng.gen_range(130..=250);
            let d = Ticks::new(t.critical_path_length().get() * factor / 100);
            HeteroDagTask::new(t.dag().clone(), t.offloaded(), d, d).expect("valid deadline")
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sets, tasks_per_set) = if quick { (20, 3) } else { (100, 4) };
    let fraction = 0.25;
    let platforms: &[u64] = &[8, 12, 16, 24, 32];

    eprintln!(
        "federated ablation: {sets} task sets x {tasks_per_set} tasks, C_off/vol = {}",
        pct(fraction)
    );
    println!(
        "Federated scheduling acceptance: clusters sized by R_hom vs R_het vs min of both\n\
         ({} random task sets of {} DAG tasks each, offload fraction {})\n",
        sets,
        tasks_per_set,
        pct(fraction)
    );

    let mut table = Table::new(vec![
        "host cores".into(),
        "hom accepts".into(),
        "het accepts".into(),
        "best accepts".into(),
        "het-only".into(),
    ]);
    for &m_total in platforms {
        let rows = parallel_map((0..sets).collect::<Vec<u64>>(), |seed| {
            let taskset = random_taskset(seed, tasks_per_set, fraction);
            let hom = federated_partition(&taskset, m_total, AnalysisKind::Homogeneous)
                .expect("analysis runs")
                .is_schedulable();
            let het = federated_partition(&taskset, m_total, AnalysisKind::Heterogeneous)
                .expect("analysis runs")
                .is_schedulable();
            let best = federated_partition(&taskset, m_total, AnalysisKind::Best)
                .expect("analysis runs")
                .is_schedulable();
            (hom, het, best)
        });
        let hom = rows.iter().filter(|r| r.0).count();
        let het = rows.iter().filter(|r| r.1).count();
        let best = rows.iter().filter(|r| r.2).count();
        let het_only = rows.iter().filter(|r| r.1 && !r.0).count();
        table.row(vec![
            m_total.to_string(),
            format!("{hom}/{sets}"),
            format!("{het}/{sets}"),
            format!("{best}/{sets}"),
            het_only.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nClusters sized with the heterogeneous bound fit platforms the homogeneous\n\
         analysis rejects — the system-level payoff of the paper's Theorem 1."
    );
}
