//! Prints the worked example of the paper (Figures 1–2) with every stated
//! number recomputed by this reproduction.
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin paper_example
//! ```

use hetrta_bench::experiments::paper_example;

fn main() {
    print!("{}", paper_example::report());
}
