//! Acceptance-ratio experiment (extension): global FP / EDF / federated
//! schedulability of random heterogeneous task sets, homogeneous vs.
//! heterogeneous analysis, swept over normalized utilization.
//!
//! Runs on the batch-analysis engine: one job per generated task set,
//! work-stealing across all cores, with content-addressed caching of the
//! six test verdicts. Seeding matches the serial
//! [`hetrta_sched::acceptance::acceptance_sweep`] path exactly.
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin acceptance [-- --quick]
//! ```

use hetrta_bench::table::{pct, Table};
use hetrta_engine::{CellKind, Engine, SweepSpec, TestKind};
use hetrta_sched::taskset::TaskSetParams;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sets, cores_list) = if quick {
        (12, vec![4u64])
    } else {
        (100, vec![2u64, 4, 8, 16])
    };
    for cores in cores_list {
        // One engine per core count: set-job cache keys include `cores`,
        // so entries can never hit across iterations — a shared engine
        // would only accumulate dead memory.
        let engine = Engine::new(0);
        let spec = SweepSpec::acceptance(
            TaskSetParams::small(4, 1.0).with_offload_fraction(0.2, 0.45),
            vec![cores],
            (1..=9).map(|i| f64::from(i) / 10.0).collect(),
            4,
            sets,
            0xDAC_2018 ^ cores,
        );
        let out = engine.run(&spec).expect("sweep succeeds");

        println!("\n== acceptance ratios, m = {cores}, {sets} sets/point, offload 20-45% ==");
        let mut table = Table::new(
            std::iter::once("U/m".to_string())
                .chain(TestKind::ALL.iter().map(|t| t.label().to_string()))
                .collect(),
        );
        for cell in &out.aggregate.cells {
            let CellKind::Set(s) = &cell.kind else {
                unreachable!("acceptance cells")
            };
            table.row(
                std::iter::once(format!("{:.2}", cell.grid_value))
                    .chain(TestKind::ALL.iter().map(|&t| pct(s.ratio(t, cell.samples))))
                    .collect(),
            );
        }
        println!("{}", table.render());

        // Breakeven summary: last utilization where each test still
        // accepts at least half the sets.
        for t in TestKind::ALL {
            let breakeven = out
                .aggregate
                .cells
                .iter()
                .filter_map(|cell| match &cell.kind {
                    CellKind::Set(s) if s.ratio(t, cell.samples) >= 0.5 => Some(cell.grid_value),
                    _ => None,
                })
                .fold(f64::NAN, f64::max);
            println!(
                "  {:>9}: 50% acceptance up to U/m ≈ {breakeven:.2}",
                t.label()
            );
        }
        println!("\n{}", out.stats.render());
    }
}
