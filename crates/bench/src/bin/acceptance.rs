//! Acceptance-ratio experiment (extension): global FP / EDF / federated
//! schedulability of random heterogeneous task sets, homogeneous vs.
//! heterogeneous analysis, swept over normalized utilization.
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin acceptance [-- --quick]
//! ```

use hetrta_bench::runner::parallel_map;
use hetrta_bench::table::{pct, Table};
use hetrta_sched::acceptance::{acceptance_sweep, AcceptanceConfig, TestKind};
use hetrta_sched::taskset::TaskSetParams;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sets, cores_list) = if quick { (12, vec![4u64]) } else { (100, vec![2u64, 4, 8, 16]) };

    for cores in cores_list {
        let config = AcceptanceConfig {
            cores,
            n_tasks: 4,
            sets_per_point: sets,
            normalized_utils: (1..=9).map(|i| i as f64 / 10.0).collect(),
            template: TaskSetParams::small(4, 1.0).with_offload_fraction(0.2, 0.45),
            seed: 0xDAC_2018 ^ cores,
        };
        // Each utilization point is independent: fan out across threads.
        let per_point: Vec<AcceptanceConfig> = config
            .normalized_utils
            .iter()
            .map(|&u| AcceptanceConfig { normalized_utils: vec![u], ..config.clone() })
            .collect();
        let points: Vec<_> = parallel_map(per_point, |c| {
            acceptance_sweep(&c).expect("sweep succeeds").remove(0)
        });

        println!("\n== acceptance ratios, m = {cores}, {sets} sets/point, offload 20-45% ==");
        let mut table = Table::new(
            std::iter::once("U/m".to_string())
                .chain(TestKind::ALL.iter().map(|t| t.label().to_string()))
                .collect(),
        );
        for p in &points {
            table.row(
                std::iter::once(format!("{:.2}", p.normalized_util))
                    .chain(TestKind::ALL.iter().map(|&t| pct(p.ratio(t))))
                    .collect(),
            );
        }
        println!("{}", table.render());

        // Breakeven summary: last utilization where each test still
        // accepts at least half the sets.
        for t in TestKind::ALL {
            let breakeven = points
                .iter()
                .filter(|p| p.ratio(t) >= 0.5)
                .map(|p| p.normalized_util)
                .fold(f64::NAN, f64::max);
            println!("  {:>9}: 50% acceptance up to U/m ≈ {breakeven:.2}", t.label());
        }
    }
}
