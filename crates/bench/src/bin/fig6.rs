//! Regenerates Figure 6 of the paper.
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin fig6            # full (paper) config
//! cargo run -p hetrta-bench --release --bin fig6 -- --quick # scaled-down
//! ```

use hetrta_bench::experiments::fig6;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        fig6::Config::quick()
    } else {
        fig6::Config::paper()
    };
    eprintln!(
        "fig6: {} core counts x {} fractions x {} DAGs ({} mode)",
        config.core_counts.len(),
        config.fractions.len(),
        config.tasks_per_point,
        if quick { "quick" } else { "paper" },
    );
    let results = fig6::run(&config);
    print!("{}", results.render());
}
