//! Self-suspending baseline ablation (extension, related work of §6):
//! classical single-task bounds vs. the paper's Theorem 1, swept over the
//! offload fraction, with the unsound naive discount's violation rate.
//! Runs on the batch-analysis engine via the `suspend` registry key.
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin baselines [-- --quick]
//! ```

use hetrta_bench::experiments::suspension;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        suspension::Config::quick()
    } else {
        suspension::Config::paper()
    };

    let points = suspension::run(&config);
    println!(
        "== self-suspending baselines vs Theorem 1, {} tasks/point ==\n",
        config.tasks_per_point
    );
    println!("{}", suspension::render(&points));
    println!("R_het~ = min(R_het, R_hom(G')). naive(!) is the unsound §3.2 discount;");
    println!("its violation count is the Figure 1(c) phenomenon measured in the wild.");
}
