//! Self-suspending baseline ablation (extension, related work of §6):
//! classical single-task bounds vs. the paper's Theorem 1, swept over the
//! offload fraction, with the unsound naive discount's violation rate.
//!
//! ```text
//! cargo run -p hetrta-bench --release --bin baselines [-- --quick]
//! ```

use hetrta_bench::runner::parallel_map;
use hetrta_bench::table::Table;
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::{explore_worst_case, Platform};
use hetrta_suspend::BaselineComparison;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Point {
    pct: u32,
    oblivious: f64,
    barrier: f64,
    het: f64,
    naive: f64,
    worst: f64,
    violations: usize,
    count: usize,
}

fn sweep_point(pct: u32, m: u64, tasks: usize, seeds: u64) -> Point {
    let f = f64::from(pct) / 100.0;
    let mut p = Point {
        pct,
        oblivious: 0.0,
        barrier: 0.0,
        het: 0.0,
        naive: 0.0,
        worst: 0.0,
        violations: 0,
        count: 0,
    };
    for seed in 0..tasks as u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(pct) << 24) ^ (m << 48));
        let Ok(dag) = generate_nfj(&NfjParams::small_tasks(), &mut rng) else {
            continue;
        };
        let Ok(task) = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(f),
            &mut rng,
        ) else {
            continue;
        };
        let c = BaselineComparison::compute(&task, m).expect("analysis succeeds");
        let w = explore_worst_case(
            task.dag(),
            Some(task.offloaded()),
            Platform::with_accelerator(m as usize),
            seeds,
        )
        .expect("simulation succeeds")
        .makespan();
        p.oblivious += c.oblivious.to_f64();
        p.barrier += c.phase_barrier.to_f64();
        p.het += c.r_het_tight.to_f64();
        p.naive += c.naive_unsound.to_f64();
        p.worst += w.as_f64();
        if w.to_rational() > c.naive_unsound {
            p.violations += 1;
        }
        p.count += 1;
    }
    p
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (tasks, seeds) = if quick { (15usize, 30u64) } else { (100, 120) };

    for m in [2u64, 8] {
        let jobs: Vec<u32> = vec![2, 5, 10, 20, 30, 45, 60];
        let points = parallel_map(jobs, move |pct| sweep_point(pct, m, tasks, seeds));

        println!("\n== self-suspending baselines vs Theorem 1, m = {m}, {tasks} tasks/point ==");
        let mut table = Table::new(
            [
                "C_off/vol",
                "oblivious",
                "barrier",
                "R_het~",
                "naive(!)",
                "sim-worst",
                "naive-violated",
            ]
            .map(String::from)
            .to_vec(),
        );
        for p in &points {
            let n = p.count.max(1) as f64;
            table.row(vec![
                format!("{}%", p.pct),
                format!("{:.1}", p.oblivious / n),
                format!("{:.1}", p.barrier / n),
                format!("{:.1}", p.het / n),
                format!("{:.1}", p.naive / n),
                format!("{:.1}", p.worst / n),
                format!("{}/{}", p.violations, p.count),
            ]);
        }
        println!("{}", table.render());
    }
    println!("R_het~ = min(R_het, R_hom(G')). naive(!) is the unsound §3.2 discount;");
    println!("its violation count is the Figure 1(c) phenomenon measured in the wild.");
}
