//! Small statistics helpers for experiment aggregation.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
    /// Population standard deviation (0 for an empty sample).
    pub stddev: f64,
}

/// Computes [`Summary`] statistics of `values`.
///
/// # Examples
///
/// ```
/// let s = hetrta_bench::stats::summarize(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.mean, 2.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 3.0);
/// ```
#[must_use]
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            stddev: 0.0,
        };
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    Summary {
        count: values.len(),
        mean,
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        stddev: var.sqrt(),
    }
}

/// Linear interpolation of the x-position where a series crosses zero.
///
/// `points` are `(x, y)` pairs sorted by `x`. Returns the first crossing,
/// interpolated between the bracketing points, or `None` if the series
/// never changes sign.
///
/// Used to report the paper's crossover fractions ("`R_hom` only
/// outperforms `R_het` when `C_off` represents less than 1.6%…").
///
/// # Examples
///
/// ```
/// let xs = [(0.0, -2.0), (1.0, 2.0)];
/// assert_eq!(hetrta_bench::stats::zero_crossing(&xs), Some(0.5));
/// ```
#[must_use]
pub fn zero_crossing(points: &[(f64, f64)]) -> Option<f64> {
    for w in points.windows(2) {
        let ((x0, y0), (x1, y1)) = (w[0], w[1]);
        if y0 == 0.0 {
            return Some(x0);
        }
        if y0 < 0.0 && y1 >= 0.0 || y0 > 0.0 && y1 <= 0.0 {
            let t = y0 / (y0 - y1);
            return Some(x0 + t * (x1 - x0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.stddev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_sample() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn crossing_detection() {
        assert_eq!(zero_crossing(&[(0.0, -1.0), (1.0, 1.0)]), Some(0.5));
        assert_eq!(zero_crossing(&[(0.0, 1.0), (1.0, 2.0)]), None);
        assert_eq!(zero_crossing(&[(0.0, 0.0), (1.0, 2.0)]), Some(0.0));
        // descending series
        assert_eq!(zero_crossing(&[(0.0, 3.0), (2.0, -3.0)]), Some(1.0));
    }
}
