//! Measured performance harness: per-kernel ns/op plus end-to-end engine
//! sweep wall times, with a JSON rendering for the repo's `BENCH_*.json`
//! perf trajectory.
//!
//! Everything is deterministic up to wall-clock noise: the kernel inputs
//! are a fixed seeded batch of generated tasks, so two runs of the harness
//! measure the same work. The `hetrta bench` CLI subcommand is a thin
//! wrapper over [`run`]; `--json` emits [`PerfReport::to_json`] for
//! machine comparison (the CI perf-smoke job and the committed
//! `BENCH_*.json` files).

use std::time::{Duration, Instant};

use hetrta_core::{r_het, r_hom, transform, TransformedTask};
use hetrta_dag::algo::{
    topological_order, transitive::find_transitive_edge, CriticalPath, Reachability,
};
use hetrta_dag::HeteroDagTask;
use hetrta_engine::{AnalysisSelection, Engine, EngineOutput, GeneratorPreset, SweepSpec};
use hetrta_exact::{solve, SolverConfig};
use hetrta_gen::layered::{generate_layered, LayeredParams};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::policy::BreadthFirst;
use hetrta_sim::{simulate, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::{fig8, fig9};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Scaled-down inputs and iteration budgets (CI smoke mode).
    pub quick: bool,
}

impl PerfConfig {
    /// The full measurement configuration.
    #[must_use]
    pub fn full() -> Self {
        PerfConfig { quick: false }
    }

    /// The scaled-down smoke configuration.
    #[must_use]
    pub fn quick() -> Self {
        PerfConfig { quick: true }
    }
}

/// One measured kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelResult {
    /// Stable kernel name (`"algo/critical_path"`).
    pub name: &'static str,
    /// Mean wall time per operation, in nanoseconds.
    pub ns_per_op: f64,
    /// Operations measured.
    pub iters: u64,
}

/// One measured end-to-end sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Stable sweep name (`"sweep/fig8_quick_cold"`).
    pub name: &'static str,
    /// Wall-clock time of the sweep, in milliseconds.
    pub wall_ms: f64,
    /// Jobs the sweep expanded into.
    pub jobs: usize,
}

/// Latency quantiles of one analysis kind, measured inside the engine
/// during the Figure 8 sweeps (the engine's per-analysis histograms).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyResult {
    /// Analysis registry key (`"het"`).
    pub analysis: String,
    /// Computed analyses the histogram saw (cache hits record nothing).
    pub count: u64,
    /// Median latency, in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency, in nanoseconds.
    pub p99_ns: u64,
}

/// The full harness output.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Per-kernel measurements.
    pub kernels: Vec<KernelResult>,
    /// End-to-end sweep measurements.
    pub sweeps: Vec<SweepResult>,
    /// Per-analysis latency quantiles from the Figure 8 sweeps.
    pub latencies: Vec<LatencyResult>,
}

impl PerfReport {
    /// JSON rendering (stable key order, no external dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let comma = if i + 1 < self.kernels.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}, \"iters\": {}}}{comma}\n",
                k.name, k.ns_per_op, k.iters
            ));
        }
        out.push_str("  ],\n  \"sweeps\": [\n");
        for (i, s) in self.sweeps.iter().enumerate() {
            let comma = if i + 1 < self.sweeps.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.2}, \"jobs\": {}}}{comma}\n",
                s.name, s.wall_ms, s.jobs
            ));
        }
        out.push_str("  ],\n  \"analysis_latency\": [\n");
        for (i, l) in self.latencies.iter().enumerate() {
            let comma = if i + 1 < self.latencies.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"analysis\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{comma}\n",
                l.analysis, l.count, l.p50_ns, l.p99_ns
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable table rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("kernel                        ns/op\n");
        for k in &self.kernels {
            out.push_str(&format!("  {:<28}{:>12.1}\n", k.name, k.ns_per_op));
        }
        out.push_str("sweep                         wall ms     jobs\n");
        for s in &self.sweeps {
            out.push_str(&format!(
                "  {:<28}{:>9.1}{:>9}\n",
                s.name, s.wall_ms, s.jobs
            ));
        }
        if !self.latencies.is_empty() {
            out.push_str("analysis latency                count   p50 us   p99 us\n");
            for l in &self.latencies {
                out.push_str(&format!(
                    "  {:<28}{:>7}{:>9.1}{:>9.1}\n",
                    l.analysis,
                    l.count,
                    l.p50_ns as f64 / 1e3,
                    l.p99_ns as f64 / 1e3
                ));
            }
        }
        out
    }
}

/// Times `op` until the budget elapses (one warm-up call first).
fn time_kernel<T>(
    name: &'static str,
    budget: Duration,
    mut op: impl FnMut(u64) -> T,
) -> KernelResult {
    std::hint::black_box(op(0));
    let mut iters = 0u64;
    let started = Instant::now();
    loop {
        std::hint::black_box(op(iters));
        iters += 1;
        if started.elapsed() >= budget {
            break;
        }
    }
    let ns_per_op = started.elapsed().as_nanos() as f64 / iters as f64;
    KernelResult {
        name,
        ns_per_op,
        iters,
    }
}

/// The fixed seeded task batch the kernels run on.
fn kernel_tasks(config: &PerfConfig) -> Vec<HeteroDagTask> {
    let (count, n_min, n_max) = if config.quick {
        (6, 60, 120)
    } else {
        (12, 100, 250)
    };
    let params = NfjParams::large_tasks().with_node_range(n_min, n_max);
    let mut rng = StdRng::seed_from_u64(0xBE9C_0001);
    let mut tasks = Vec::with_capacity(count);
    while tasks.len() < count {
        let Ok(dag) = generate_nfj(&params, &mut rng) else {
            continue;
        };
        if let Ok(task) = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(0.1),
            &mut rng,
        ) {
            tasks.push(task);
        }
    }
    tasks
}

/// A small fixed task the exact solver finishes instantly.
fn exact_task() -> HeteroDagTask {
    let params = NfjParams::small_tasks().with_node_range(8, 12);
    let mut rng = StdRng::seed_from_u64(0xBE9C_0002);
    loop {
        let Ok(dag) = generate_nfj(&params, &mut rng) else {
            continue;
        };
        if let Ok(task) = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(0.2),
            &mut rng,
        ) {
            return task;
        }
    }
}

fn timed_sweep(name: &'static str, engine: &Engine, spec: &SweepSpec) -> SweepResult {
    let started = Instant::now();
    let out: EngineOutput = engine.run(spec).expect("perf sweep succeeds");
    SweepResult {
        name,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        jobs: out.stats.jobs,
    }
}

/// Runs the full harness: kernels on a fixed seeded task batch, then the
/// Figure 8/9 quick sweeps end-to-end on the engine (cold and warm).
///
/// # Panics
///
/// Panics if a sweep fails (deterministic specs; cannot happen).
#[must_use]
pub fn run(config: &PerfConfig) -> PerfReport {
    let budget = if config.quick {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(200)
    };
    let tasks = kernel_tasks(config);
    let transformed: Vec<TransformedTask> = tasks
        .iter()
        .map(|t| transform(t).expect("generated tasks transform"))
        .collect();
    let pick = |i: u64| &tasks[(i % tasks.len() as u64) as usize];

    let mut kernels = Vec::new();
    kernels.push(time_kernel("dag/clone", budget, |i| pick(i).dag().clone()));
    kernels.push(time_kernel("algo/topological_order", budget, |i| {
        topological_order(pick(i).dag()).expect("acyclic")
    }));
    kernels.push(time_kernel("algo/reachability", budget, |i| {
        Reachability::of(pick(i).dag()).expect("acyclic")
    }));
    kernels.push(time_kernel("algo/critical_path", budget, |i| {
        CriticalPath::of(pick(i).dag()).length()
    }));
    kernels.push(time_kernel("algo/transitive_find", budget, |i| {
        find_transitive_edge(pick(i).dag()).expect("acyclic")
    }));
    kernels.push(time_kernel("core/transform_alg1", budget, |i| {
        transform(pick(i)).expect("transformable")
    }));
    kernels.push(time_kernel("core/r_hom", budget, |i| {
        r_hom(&pick(i).as_homogeneous(), 4).expect("acyclic")
    }));
    kernels.push(time_kernel("core/r_het", budget, |i| {
        let t = &transformed[(i % transformed.len() as u64) as usize];
        r_het(t, 4).expect("valid cores").value()
    }));
    kernels.push(time_kernel("sim/breadth_first", budget, |i| {
        let task = pick(i);
        simulate(
            task.dag(),
            Some(task.offloaded()),
            Platform::with_accelerator(4),
            &mut BreadthFirst::new(),
        )
        .expect("simulates")
        .makespan()
    }));
    let small = exact_task();
    kernels.push(time_kernel("exact/solve_small", budget, |_| {
        solve(
            small.dag(),
            Some(small.offloaded()),
            2,
            &SolverConfig::default(),
        )
        .expect("small instance solves")
        .makespan()
    }));

    // Large-graph tier: n≈10k construction through the builder-first
    // pipeline (the pre-PR5 edge-by-edge path was 5.7 ms / 117 ms per
    // graph here), plus Algorithm 1 at that scale. One op is one whole
    // graph, so these get a larger budget than the microsecond kernels.
    let gen_budget = budget.max(Duration::from_millis(120));
    let nfj_10k = NfjParams::large_graphs(10_000);
    kernels.push(time_kernel("gen/nfj_build_10k", gen_budget, |i| {
        let mut rng = StdRng::seed_from_u64(0xBE9C_0010 ^ i);
        generate_nfj(&nfj_10k, &mut rng).expect("large-graph sample accepted")
    }));
    let layered_10k = LayeredParams::large_graphs(10_000);
    kernels.push(time_kernel("gen/layered_build_10k", gen_budget, |i| {
        let mut rng = StdRng::seed_from_u64(0xBE9C_0020 ^ i);
        generate_layered(&layered_10k, &mut rng).expect("valid params")
    }));
    let large_task = {
        let mut rng = StdRng::seed_from_u64(0xBE9C_0030);
        let dag = generate_nfj(&nfj_10k, &mut rng).expect("large-graph sample accepted");
        make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(0.2),
            &mut rng,
        )
        .expect("offload assignment succeeds")
    };
    kernels.push(time_kernel("core/transform_10k", gen_budget, |_| {
        transform(&large_task).expect("transformable")
    }));
    // The tier this PR opens: n≈10⁵ construction must stay closure-free
    // (the old bitset-closure reduction alone would be seconds and ≈1.2
    // GiB here). One op is one whole 100k-node graph.
    let layered_100k = LayeredParams::large_graphs(100_000);
    kernels.push(time_kernel("gen/layered_build_100k", gen_budget, |i| {
        let mut rng = StdRng::seed_from_u64(0xBE9C_0021 ^ i);
        generate_layered(&layered_100k, &mut rng).expect("valid params")
    }));
    if !config.quick {
        let layered_1m = LayeredParams::large_graphs(1_000_000);
        kernels.push(time_kernel("gen/layered_build_1m", gen_budget, |i| {
            let mut rng = StdRng::seed_from_u64(0xBE9C_0022 ^ i);
            generate_layered(&layered_1m, &mut rng).expect("valid params")
        }));
    }

    let mut sweeps = Vec::new();
    let fig8_spec = fig8::sweep_spec(&fig8::Config::quick());
    let engine = Engine::new(0);
    sweeps.push(timed_sweep("sweep/fig8_quick_cold", &engine, &fig8_spec));
    sweeps.push(timed_sweep("sweep/fig8_quick_warm", &engine, &fig8_spec));

    // Sampled analysis at the 100k-node tier: generation + Algorithm 1 +
    // an 8-sample seeded makespan estimate per job, cold and warm (the
    // warm run measures the result cache at large n).
    let mut n100k_spec = SweepSpec::fractions(
        GeneratorPreset::LargeGraphs(100_000),
        vec![8],
        vec![0.2],
        2,
        0xDAC_2018,
    )
    .with_analyses(AnalysisSelection::from_keys(["sampled", "anytime"]));
    n100k_spec.sample_budget = 8;
    let engine100k = Engine::new(0);
    sweeps.push(timed_sweep(
        "sweep/n100k_sampled_cold",
        &engine100k,
        &n100k_spec,
    ));
    sweeps.push(timed_sweep(
        "sweep/n100k_sampled_warm",
        &engine100k,
        &n100k_spec,
    ));

    // The engine recorded a latency histogram per analysis kind while the
    // Figure 8 sweeps ran; lift its quantiles into the report.
    let snapshot = engine.metrics().snapshot();
    let latencies: Vec<LatencyResult> = snapshot
        .histograms_with_prefix("analysis.")
        .into_iter()
        .filter_map(|(name, hist)| {
            let analysis = name
                .strip_prefix("analysis.")?
                .strip_suffix(".latency_ns")?;
            Some(LatencyResult {
                analysis: analysis.to_owned(),
                count: hist.count,
                p50_ns: hist.p50().unwrap_or(0),
                p99_ns: hist.p99().unwrap_or(0),
            })
        })
        .collect();
    if !config.quick {
        let fig9_spec = fig9::sweep_spec(&fig9::Config::quick());
        let engine9 = Engine::new(0);
        sweeps.push(timed_sweep("sweep/fig9_quick_cold", &engine9, &fig9_spec));
        // The first end-to-end large-graph sweep: ten jobs over
        // ten-thousand-node DAGs (generation + Algorithm 1 + Theorem 1),
        // impossible before builder-first construction unlocked the tier.
        let n10k_spec = SweepSpec::fractions(
            GeneratorPreset::LargeGraphs(10_000),
            vec![8],
            vec![0.1, 0.3],
            5,
            0xDAC_2018,
        );
        let engine10k = Engine::new(0);
        sweeps.push(timed_sweep("sweep/n10k_het_cold", &engine10k, &n10k_spec));
        sweeps.push(timed_sweep("sweep/n10k_het_warm", &engine10k, &n10k_spec));
        // The top of the tier: one million-node job end to end
        // (generation, transform, sampled + anytime analyses).
        let mut n1m_spec = SweepSpec::fractions(
            GeneratorPreset::LargeGraphs(1_000_000),
            vec![8],
            vec![0.2],
            1,
            0xDAC_2018,
        )
        .with_analyses(AnalysisSelection::from_keys(["sampled", "anytime"]));
        n1m_spec.sample_budget = 4;
        let engine1m = Engine::new(0);
        sweeps.push(timed_sweep("sweep/n1m_sampled_cold", &engine1m, &n1m_spec));
    }

    PerfReport {
        kernels,
        sweeps,
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_produces_every_section() {
        let report = run(&PerfConfig::quick());
        assert!(report.kernels.len() >= 8);
        assert!(report.sweeps.len() >= 2);
        assert!(report.kernels.iter().all(|k| k.ns_per_op > 0.0));
        assert!(
            report.latencies.iter().any(|l| l.analysis == "het"),
            "fig8 sweeps feed the het latency histogram"
        );
        for l in &report.latencies {
            assert!(l.count > 0);
            assert!(l.p50_ns <= l.p99_ns, "{}: p50 above p99", l.analysis);
        }
        let json = report.to_json();
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("sweep/fig8_quick_cold"));
        assert!(json.contains("\"analysis_latency\""));
        assert!(json.contains("\"p99_ns\""));
        let table = report.render();
        assert!(table.contains("algo/critical_path"));
        assert!(table.contains("analysis latency"));
    }
}
