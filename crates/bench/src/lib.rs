//! # hetrta-bench — experiment harness for the DAC 2018 reproduction
//!
//! One module per evaluation artifact of the paper:
//!
//! | module | reproduces | paper section |
//! |--------|------------|---------------|
//! | [`experiments::fig6`] | % change of avg simulated execution time of `τ` w.r.t. `τ'` | §5.2, Figure 6 |
//! | [`experiments::fig7`] | increment of `R_hom`/`R_het` over the minimum makespan | §5.3, Figure 7 |
//! | [`experiments::fig8`] | scenario occurrence percentages | §5.4, Figure 8 |
//! | [`experiments::fig9`] | % change of `R_hom(τ)` w.r.t. `R_het(τ')` | §5.4, Figure 9 |
//! | [`experiments::paper_example`] | the worked example of Figures 1–3 | §3 |
//! | [`experiments::suspension`] | self-suspending baselines vs Theorem 1 (ablation) | §6 related work |
//! | [`experiments::conditional`] | flatten-all vs cond-aware vs exact bounds (ablation) | reference \[12\] |
//!
//! Every experiment has a `Config` with two presets: `paper()` — the full
//! parameters of the publication (100 DAGs per sweep point) — and
//! `quick()` — a scaled-down variant for CI and Criterion benches. Results
//! are plain structs with an ASCII [`table`] rendering; the `fig*` binaries
//! print them (`cargo run -p hetrta-bench --release --bin fig6`).
//!
//! Every sweep is routed through the batch-analysis engine
//! (`hetrta-engine`) via analysis registry keys; the `engine_parity`
//! integration tests pin bitwise equality against verbatim copies of the
//! pre-engine serial loops. [`runner::parallel_map`] remains for the few
//! non-sweep fan-outs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod perf;
pub mod runner;
pub mod stats;
pub mod table;
