//! One module per evaluation artifact of the paper.

pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod paper_example;
