//! One module per evaluation artifact of the paper (plus the extension
//! ablations), every sweep routed through the batch-analysis engine.

pub mod conditional;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod paper_example;
pub mod suspension;
