//! Figure 7 — accuracy of `R_hom` / `R_het` against the minimum makespan.
//!
//! For small tasks, compute the exact minimum makespan of the
//! heterogeneous task `τ` (branch-and-bound, substituting the paper's
//! CPLEX ILP) and report the percentage increment of the analytical bounds
//! over it: `100·(R − makespan_min)/makespan_min`.
//!
//! The paper's panels: (a) `m = 2`, `n ∈ [3, 20]`; (b) `m = 8`,
//! `n ∈ [30, 60]`. Instances the solver cannot close within its node
//! budget are skipped, exactly as the paper skips instances CPLEX could
//! not solve within 12 hours.

use hetrta_engine::{CellKind, Engine, GeneratorPreset, SweepSpec};
use hetrta_exact::SolverConfig;
use hetrta_gen::series::fraction_sweep_fine;
use hetrta_gen::NfjParams;

use crate::table::{pct, signed_pct, Table};

/// One panel of the figure: a host size plus a node-count range.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Host core count.
    pub m: u64,
    /// Generator parameters.
    pub params: NfjParams,
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Panels (paper: `(2, n ∈ [3,20])` and `(8, n ∈ [30,60])`).
    pub panels: Vec<Panel>,
    /// Offload fractions to sweep.
    pub fractions: Vec<f64>,
    /// DAGs per sweep point (paper: 100).
    pub tasks_per_point: usize,
    /// Exact-solver budget per instance. The engine path honors
    /// [`SolverConfig::max_nodes`] only (see [`panel_spec`]); the other
    /// solver knobs keep their defaults.
    pub solver: SolverConfig,
    /// Base RNG seed.
    pub seed: u64,
}

impl Config {
    /// The paper's configuration (small tasks; solver budget playing the
    /// role of the 12-hour CPLEX cutoff).
    #[must_use]
    pub fn paper() -> Self {
        Config {
            panels: vec![
                Panel {
                    m: 2,
                    params: NfjParams::small_tasks().with_node_range(3, 20),
                },
                Panel {
                    m: 8,
                    params: NfjParams::small_tasks().with_node_range(30, 60),
                },
            ],
            fractions: fraction_sweep_fine(),
            tasks_per_point: 100,
            solver: SolverConfig::default(),
            seed: 0x7007_0001,
        }
    }

    /// Scaled-down configuration.
    #[must_use]
    pub fn quick() -> Self {
        Config {
            panels: vec![
                Panel {
                    m: 2,
                    params: NfjParams::small_tasks().with_node_range(3, 20),
                },
                Panel {
                    m: 8,
                    params: NfjParams::small_tasks().with_node_range(20, 40),
                },
            ],
            fractions: vec![0.01, 0.10, 0.30, 0.50],
            tasks_per_point: 10,
            solver: SolverConfig {
                max_nodes: 200_000,
                ..SolverConfig::default()
            },
            seed: 0x7007_0002,
        }
    }
}

/// One sweep point of one panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Host core count.
    pub m: u64,
    /// Target `C_off / vol(τ)`.
    pub fraction: f64,
    /// Mean % increment of `R_hom(τ)` over the minimum makespan.
    pub hom_increment: f64,
    /// Mean % increment of `R_het(τ')` over the minimum makespan.
    pub het_increment: f64,
    /// Instances where the solver proved optimality (of `tasks_per_point`).
    pub solved: usize,
}

/// Full results of the Figure 7 experiment.
#[derive(Debug, Clone)]
pub struct Results {
    /// All sweep points.
    pub points: Vec<Point>,
}

/// The engine sweep specification equivalent to one panel of `config`: an
/// exact-accuracy grid (`exact`, `hom`, `het` registry keys) whose cells
/// report the bounds' mean increment over solved instances.
///
/// The engine path honors the solver's node budget
/// ([`SolverConfig::max_nodes`]); the remaining solver knobs use their
/// defaults.
#[must_use]
pub fn panel_spec(config: &Config, panel: &Panel) -> SweepSpec {
    let mut spec = SweepSpec::exact_accuracy(
        GeneratorPreset::Custom(panel.params.clone()),
        vec![panel.m],
        config.fractions.clone(),
        config.tasks_per_point,
        config.seed,
    );
    spec.exact_node_budget = Some(config.solver.max_nodes);
    spec
}

/// Runs the experiment on the batch-analysis engine (all cores), one sweep
/// per panel.
///
/// # Panics
///
/// Panics if generation fails for a configuration (deterministic).
#[must_use]
pub fn run(config: &Config) -> Results {
    run_on(&Engine::new(0), config)
}

/// Runs the experiment on an existing engine (sharing its caches).
///
/// # Panics
///
/// Panics if generation fails for a configuration (deterministic).
#[must_use]
pub fn run_on(engine: &Engine, config: &Config) -> Results {
    let mut points = Vec::new();
    for panel in &config.panels {
        let out = engine
            .run(&panel_spec(config, panel))
            .expect("sweep succeeds");
        points.extend(out.aggregate.cells.iter().map(|cell| {
            let CellKind::Task(t) = &cell.kind else {
                unreachable!("fraction sweeps produce task cells")
            };
            let accuracy = t.accuracy.as_ref().expect("exact+hom+het selected");
            Point {
                m: cell.m,
                fraction: cell.grid_value,
                hom_increment: accuracy.mean_hom_increment,
                het_increment: accuracy.mean_het_increment,
                solved: accuracy.solved,
            }
        }));
    }
    Results { points }
}

impl Results {
    /// Renders both panels as ASCII tables.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 7: increment of R_hom(tau) and R_het(tau') w.r.t. the minimum makespan\n\n",
        );
        let mut ms: Vec<u64> = self.points.iter().map(|p| p.m).collect();
        ms.sort_unstable();
        ms.dedup();
        for m in ms {
            out.push_str(&format!("panel m = {m}\n"));
            let mut table = Table::new(vec![
                "C_off/vol".into(),
                "R_hom inc".into(),
                "R_het inc".into(),
                "solved".into(),
            ]);
            for p in self.points.iter().filter(|p| p.m == m) {
                table.row(vec![
                    pct(p.fraction),
                    signed_pct(p.hom_increment),
                    signed_pct(p.het_increment),
                    format!("{}", p.solved),
                ]);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_paper_trends() {
        let r = run(&Config::quick());
        assert_eq!(r.points.len(), 2 * 4);
        for p in &r.points {
            assert!(
                p.solved > 0,
                "no instance solved at m={} f={}",
                p.m,
                p.fraction
            );
            // bounds are upper bounds: increments never negative
            assert!(p.hom_increment >= -1e-9);
            assert!(p.het_increment >= -1e-9);
        }
        // R_het pessimism shrinks as C_off grows (paper: <1% at large
        // fractions for m=2).
        let small = r
            .points
            .iter()
            .find(|p| p.m == 2 && p.fraction == 0.01)
            .unwrap();
        let large = r
            .points
            .iter()
            .find(|p| p.m == 2 && p.fraction == 0.50)
            .unwrap();
        assert!(large.het_increment < small.het_increment);
    }

    #[test]
    fn render_has_two_panels() {
        let r = run(&Config::quick());
        let text = r.render();
        assert!(text.contains("panel m = 2"));
        assert!(text.contains("panel m = 8"));
    }
}
