//! Conditional-analysis ablation (extension, reference \[12\]): pessimism
//! of the flatten-all baseline vs. the conditional-aware DP bound vs.
//! exact per-realization enumeration, over random conditional expressions
//! with a growing conditional share.
//!
//! Runs on the batch-analysis engine via the `cond` registry key: one job
//! per generated expression, with the serial ablation's seed derivation
//! and inclusion rule (samples whose exact enumeration is refused or zero
//! are skipped) reproduced exactly — pinned by the `engine_parity` tests.

use hetrta_cond::CondGenParams;
use hetrta_engine::{CellKind, Engine, SweepSpec};

use crate::table::{pct, Table};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Conditional shares `p_cond` to sweep.
    pub cond_shares: Vec<f64>,
    /// Host core counts.
    pub core_counts: Vec<u64>,
    /// Expressions per sweep point.
    pub exprs_per_point: usize,
    /// Enumeration cap for the exact bound.
    pub realization_cap: usize,
}

impl Config {
    /// The full ablation (300 expressions per point).
    #[must_use]
    pub fn paper() -> Self {
        Config {
            cond_shares: vec![0.1, 0.2, 0.3, 0.4],
            core_counts: vec![2, 8],
            exprs_per_point: 300,
            realization_cap: 512,
        }
    }

    /// Scaled-down configuration.
    #[must_use]
    pub fn quick() -> Self {
        Config {
            exprs_per_point: 40,
            ..Config::paper()
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Conditional share `p_cond`.
    pub p_cond: f64,
    /// Host core count.
    pub m: u64,
    /// Mean % by which flattening exceeds the conditional-aware bound.
    pub flat_overhead: f64,
    /// Mean % by which the DP bound exceeds the exact enumeration.
    pub dp_overhead: f64,
    /// Mean realizations per included expression.
    pub realizations: f64,
    /// Included samples (exact enumeration succeeded, nonzero).
    pub samples: usize,
}

/// The engine sweep specification equivalent to `config`.
#[must_use]
pub fn sweep_spec(config: &Config) -> SweepSpec {
    SweepSpec::conditional(
        CondGenParams::small(),
        config.core_counts.clone(),
        config.cond_shares.clone(),
        config.exprs_per_point,
        config.realization_cap,
    )
}

/// Runs the ablation on the batch-analysis engine (all cores).
///
/// # Panics
///
/// Panics if the sweep fails (deterministic for a configuration).
#[must_use]
pub fn run(config: &Config) -> Vec<Point> {
    run_on(&Engine::new(0), config)
}

/// Runs the ablation on an existing engine (sharing its caches).
///
/// # Panics
///
/// Panics if the sweep fails (deterministic for a configuration).
#[must_use]
pub fn run_on(engine: &Engine, config: &Config) -> Vec<Point> {
    let out = engine.run(&sweep_spec(config)).expect("sweep succeeds");
    out.aggregate
        .cells
        .iter()
        .map(|cell| {
            let CellKind::Cond(c) = &cell.kind else {
                unreachable!("conditional sweeps produce cond cells")
            };
            Point {
                p_cond: cell.grid_value,
                m: cell.m,
                flat_overhead: c.mean_flat_overhead,
                dp_overhead: c.mean_dp_overhead,
                realizations: c.mean_realizations,
                samples: c.included,
            }
        })
        .collect()
}

/// Renders the ablation as an ASCII table.
#[must_use]
pub fn render(points: &[Point]) -> String {
    let mut table = Table::new(
        [
            "p_cond",
            "m",
            "avg realizations",
            "flatten vs aware",
            "aware vs exact",
            "samples",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut ordered: Vec<&Point> = points.iter().collect();
    ordered.sort_by(|a, b| a.p_cond.total_cmp(&b.p_cond).then_with(|| a.m.cmp(&b.m)));
    for p in ordered {
        table.row(vec![
            pct(p.p_cond),
            p.m.to_string(),
            format!("{:.1}", p.realizations),
            format!("+{:.2}%", p.flat_overhead),
            format!("+{:.3}%", p.dp_overhead),
            p.samples.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            cond_shares: vec![0.2, 0.4],
            core_counts: vec![2],
            exprs_per_point: 12,
            realization_cap: 512,
        }
    }

    #[test]
    fn overheads_are_nonnegative_and_samples_counted() {
        let points = run(&tiny());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.samples > 0, "no sample included at p_cond = {}", p.p_cond);
            assert!(p.flat_overhead >= -1e-9, "flattening can only add work");
            assert!(p.dp_overhead >= -1e-9, "the DP bound is an upper bound");
            assert!(p.realizations >= 1.0);
        }
    }

    #[test]
    fn render_lists_every_point() {
        let points = run(&tiny());
        let text = render(&points);
        assert!(text.contains("flatten vs aware"));
        assert!(text.contains("20.00%"));
    }
}
