//! Figure 9 — `R_hom(τ)` vs `R_het(τ')`.
//!
//! The headline comparison of the paper: the percentage change of the
//! homogeneous bound with respect to the heterogeneous one,
//! `100·(R_hom − R_het)/R_het`, averaged per sweep point. Positive values
//! mean the heterogeneous analysis is tighter.
//!
//! Paper findings reproduced here (§5.4): `R_hom` wins only below
//! 1.6%/3.4%/4.6%/5% offload for m = 2/4/8/16; the maximum average benefit
//! (70%/55%/40%/30%) is reached where `C_off = R_hom(G_par)`; maximum
//! observed differences are 95.0%/82.5%/65.3%/47.7%.

use hetrta_engine::{CellKind, Engine, GeneratorPreset, SweepSpec};
use hetrta_gen::series::fraction_sweep_wide;
use hetrta_gen::NfjParams;

use crate::stats::zero_crossing;
use crate::table::{pct, signed_pct, Table};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Host core counts (paper: 2, 4, 8, 16).
    pub core_counts: Vec<u64>,
    /// Offload fractions to sweep (paper: 0.12% … 50%).
    pub fractions: Vec<f64>,
    /// DAGs per sweep point (paper: 100).
    pub tasks_per_point: usize,
    /// Generator parameters (paper: large tasks, n ∈ [100, 250]).
    pub params: NfjParams,
    /// Base RNG seed.
    pub seed: u64,
}

impl Config {
    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        let mut fractions = vec![0.0012, 0.005];
        fractions.extend(fraction_sweep_wide().into_iter().filter(|&f| f <= 0.5));
        Config {
            core_counts: vec![2, 4, 8, 16],
            fractions,
            tasks_per_point: 100,
            params: NfjParams::large_tasks().with_node_range(100, 250),
            seed: 0x9009_0001,
        }
    }

    /// Scaled-down configuration.
    #[must_use]
    pub fn quick() -> Self {
        Config {
            core_counts: vec![2, 16],
            fractions: vec![0.0012, 0.02, 0.10, 0.30, 0.50],
            tasks_per_point: 16,
            params: NfjParams::large_tasks().with_node_range(60, 120),
            seed: 0x9009_0002,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Host core count.
    pub m: u64,
    /// Target `C_off / vol(τ)`.
    pub fraction: f64,
    /// Mean `100·(R_hom − R_het)/R_het` over the batch.
    pub mean_change: f64,
    /// Maximum observed change within the batch.
    pub max_change: f64,
}

/// Full results of the Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct Results {
    /// All sweep points.
    pub points: Vec<Point>,
    /// Per-`m`: fraction below which `R_hom` still wins (crossover).
    pub crossovers: Vec<(u64, Option<f64>)>,
    /// Per-`m`: the sweep point with the maximum average benefit.
    pub peak_benefit: Vec<(u64, f64, f64)>,
    /// Per-`m`: maximum change observed across the whole sweep.
    pub max_observed: Vec<(u64, f64)>,
}

/// The engine sweep specification equivalent to `config`.
#[must_use]
pub fn sweep_spec(config: &Config) -> SweepSpec {
    SweepSpec::fractions(
        GeneratorPreset::Custom(config.params.clone()),
        config.core_counts.clone(),
        config.fractions.clone(),
        config.tasks_per_point,
        config.seed,
    )
}

/// Runs the experiment on the batch-analysis engine (all cores).
///
/// # Panics
///
/// Panics if generation fails for a configuration (deterministic).
#[must_use]
pub fn run(config: &Config) -> Results {
    run_on(&Engine::new(0), config)
}

/// Runs the experiment on an existing engine (sharing its caches).
///
/// # Panics
///
/// Panics if generation fails for a configuration (deterministic).
#[must_use]
pub fn run_on(engine: &Engine, config: &Config) -> Results {
    let out = engine.run(&sweep_spec(config)).expect("sweep succeeds");
    let points: Vec<Point> = out
        .aggregate
        .cells
        .iter()
        .map(|cell| {
            let CellKind::Task(t) = &cell.kind else {
                unreachable!("fraction sweeps produce task cells")
            };
            Point {
                m: cell.m,
                fraction: cell.grid_value,
                mean_change: t.mean_improvement,
                max_change: t.max_improvement,
            }
        })
        .collect();

    let mut crossovers = Vec::new();
    let mut peak_benefit = Vec::new();
    let mut max_observed = Vec::new();
    for &m in &config.core_counts {
        let series: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.m == m)
            .map(|p| (p.fraction, p.mean_change))
            .collect();
        crossovers.push((m, zero_crossing(&series)));
        if let Some(best) = points
            .iter()
            .filter(|p| p.m == m)
            .max_by(|a, b| a.mean_change.total_cmp(&b.mean_change))
        {
            peak_benefit.push((m, best.fraction, best.mean_change));
        }
        let observed = points
            .iter()
            .filter(|p| p.m == m)
            .map(|p| p.max_change)
            .fold(f64::NEG_INFINITY, f64::max);
        max_observed.push((m, observed));
    }

    Results {
        points,
        crossovers,
        peak_benefit,
        max_observed,
    }
}

impl Results {
    /// Renders the figure plus the derived headline numbers.
    #[must_use]
    pub fn render(&self) -> String {
        let mut ms: Vec<u64> = self.points.iter().map(|p| p.m).collect();
        ms.sort_unstable();
        ms.dedup();
        let mut header = vec!["C_off/vol".to_owned()];
        header.extend(ms.iter().map(|m| format!("m={m}")));
        let mut table = Table::new(header);
        let mut fracs: Vec<f64> = self.points.iter().map(|p| p.fraction).collect();
        fracs.sort_by(f64::total_cmp);
        fracs.dedup();
        for f in fracs {
            let mut row = vec![pct(f)];
            for &m in &ms {
                let cell = self
                    .points
                    .iter()
                    .find(|p| p.m == m && p.fraction == f)
                    .map_or(String::new(), |p| signed_pct(p.mean_change));
                row.push(cell);
            }
            table.row(row);
        }
        let mut out = String::from(
            "Figure 9: percentage change of R_hom(tau) w.r.t. R_het(tau')\n\
             (positive = heterogeneous analysis is tighter)\n\n",
        );
        out.push_str(&table.render());
        out.push('\n');
        for (m, c) in &self.crossovers {
            match c {
                Some(f) => out.push_str(&format!(
                    "  m={m:>2}: R_het overtakes R_hom above C_off/vol ~ {}\n",
                    pct(*f)
                )),
                None => out.push_str(&format!("  m={m:>2}: R_het dominates the whole sweep\n")),
            }
        }
        for (m, f, v) in &self.peak_benefit {
            out.push_str(&format!(
                "  m={m:>2}: peak average benefit {} at C_off/vol = {}\n",
                signed_pct(*v),
                pct(*f)
            ));
        }
        for (m, v) in &self.max_observed {
            out.push_str(&format!(
                "  m={m:>2}: maximum observed difference {}\n",
                signed_pct(*v)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trends_hold_in_quick_config() {
        let r = run(&Config::quick());
        let at = |m: u64, f: f64| {
            r.points
                .iter()
                .find(|p| p.m == m && p.fraction == f)
                .unwrap()
        };
        // Tiny offload: hom analysis wins (negative change).
        assert!(at(2, 0.0012).mean_change < 0.0);
        // Large offload: het analysis wins clearly.
        assert!(at(2, 0.30).mean_change > 10.0);
        // Benefit decreases with more cores at the same fraction.
        assert!(at(2, 0.30).mean_change > at(16, 0.30).mean_change);
    }

    #[test]
    fn max_at_least_mean() {
        let r = run(&Config::quick());
        for p in &r.points {
            assert!(p.max_change >= p.mean_change - 1e-9);
        }
    }

    #[test]
    fn render_lists_headlines() {
        let text = run(&Config::quick()).render();
        assert!(text.contains("peak average benefit"));
        assert!(text.contains("maximum observed difference"));
    }
}
