//! Figure 6 — impact of the DAG transformation on *average* performance.
//!
//! For each host size `m ∈ {2, 4, 8, 16}` and each offload fraction
//! `C_off/vol(τ)`, simulate the original task `τ` and the transformed task
//! `τ'` under the work-conserving breadth-first (GOMP) scheduler and report
//! the percentage change of the average execution time of `τ` with respect
//! to `τ'`: positive values mean the transformation *speeds the task up*
//! on average.
//!
//! Paper findings this reproduces (§5.2): the synchronization point hurts
//! for small `C_off` (crossovers near 11%/8%/6%/4.5% of the volume for
//! m = 2/4/8/16) and helps substantially beyond (τ up to 24% slower than
//! τ' for m = 2).

use hetrta_engine::{CellKind, Engine, GeneratorPreset, SweepSpec};
use hetrta_gen::series::fraction_sweep_wide;
use hetrta_gen::NfjParams;
use hetrta_sim::metrics::percentage_change;

use crate::stats::zero_crossing;
use crate::table::{pct, signed_pct, Table};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Host core counts (paper: 2, 4, 8, 16).
    pub core_counts: Vec<u64>,
    /// Offload fractions to sweep.
    pub fractions: Vec<f64>,
    /// DAGs per sweep point (paper: 100).
    pub tasks_per_point: usize,
    /// Generator parameters (paper: large tasks, n ∈ [100, 250]).
    pub params: NfjParams,
    /// Base RNG seed.
    pub seed: u64,
}

impl Config {
    /// The paper's full configuration.
    #[must_use]
    pub fn paper() -> Self {
        Config {
            core_counts: vec![2, 4, 8, 16],
            fractions: fraction_sweep_wide(),
            tasks_per_point: 100,
            params: NfjParams::large_tasks().with_node_range(100, 250),
            seed: 0x6006_0001,
        }
    }

    /// A scaled-down configuration for CI and Criterion benches.
    #[must_use]
    pub fn quick() -> Self {
        Config {
            core_counts: vec![2, 8],
            fractions: vec![0.02, 0.10, 0.30, 0.60],
            tasks_per_point: 12,
            params: NfjParams::large_tasks().with_node_range(60, 120),
            seed: 0x6006_0002,
        }
    }
}

/// One sweep point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Host core count.
    pub m: u64,
    /// Target `C_off / vol(τ)`.
    pub fraction: f64,
    /// Average breadth-first makespan of the original task `τ`.
    pub avg_original: f64,
    /// Average breadth-first makespan of the transformed task `τ'`.
    pub avg_transformed: f64,
    /// `100·(avg_original − avg_transformed)/avg_transformed`.
    pub change_percent: f64,
}

/// Full results of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct Results {
    /// All sweep points, grouped by core count then fraction.
    pub points: Vec<Point>,
    /// Per-`m` crossover fraction (where the transformation starts to pay
    /// off on average), if observed within the sweep.
    pub crossovers: Vec<(u64, Option<f64>)>,
}

/// The engine sweep specification equivalent to `config`: a simulation
/// grid (`sim` registry key with `sim_transformed`) over the offload
/// fractions.
#[must_use]
pub fn sweep_spec(config: &Config) -> SweepSpec {
    SweepSpec::simulation_impact(
        GeneratorPreset::Custom(config.params.clone()),
        config.core_counts.clone(),
        config.fractions.clone(),
        config.tasks_per_point,
        config.seed,
    )
}

/// Runs the experiment on the batch-analysis engine (all cores).
///
/// # Panics
///
/// Panics if generation fails (attempt budget exhausted) — deterministic
/// for a given configuration, so this indicates a misconfiguration rather
/// than flakiness.
#[must_use]
pub fn run(config: &Config) -> Results {
    run_on(&Engine::new(0), config)
}

/// Runs the experiment on an existing engine (sharing its caches).
///
/// # Panics
///
/// Panics if generation fails for a configuration (deterministic).
#[must_use]
pub fn run_on(engine: &Engine, config: &Config) -> Results {
    let out = engine.run(&sweep_spec(config)).expect("sweep succeeds");
    let points: Vec<Point> = out
        .aggregate
        .cells
        .iter()
        .map(|cell| {
            let CellKind::Task(t) = &cell.kind else {
                unreachable!("fraction sweeps produce task cells")
            };
            let avg_original = t.mean_sim_makespan.expect("simulation selected");
            let avg_transformed = t.mean_sim_transformed.expect("sim_transformed selected");
            Point {
                m: cell.m,
                fraction: cell.grid_value,
                avg_original,
                avg_transformed,
                change_percent: percentage_change(avg_original, avg_transformed),
            }
        })
        .collect();

    let crossovers = config
        .core_counts
        .iter()
        .map(|&m| {
            let series: Vec<(f64, f64)> = points
                .iter()
                .filter(|p| p.m == m)
                .map(|p| (p.fraction, p.change_percent))
                .collect();
            (m, zero_crossing(&series))
        })
        .collect();

    Results { points, crossovers }
}

impl Results {
    /// Renders the figure as an ASCII table (one column per `m`).
    #[must_use]
    pub fn render(&self) -> String {
        let mut ms: Vec<u64> = self.points.iter().map(|p| p.m).collect();
        ms.sort_unstable();
        ms.dedup();
        let mut header = vec!["C_off/vol".to_owned()];
        header.extend(ms.iter().map(|m| format!("m={m}")));
        let mut table = Table::new(header);
        let mut fracs: Vec<f64> = self.points.iter().map(|p| p.fraction).collect();
        fracs.sort_by(f64::total_cmp);
        fracs.dedup();
        for f in fracs {
            let mut row = vec![pct(f)];
            for &m in &ms {
                let cell = self
                    .points
                    .iter()
                    .find(|p| p.m == m && p.fraction == f)
                    .map_or(String::new(), |p| signed_pct(p.change_percent));
                row.push(cell);
            }
            table.row(row);
        }
        let mut out = String::from(
            "Figure 6: percentage change of avg execution time of tau w.r.t. tau'\n\
             (positive = transformed task is faster on average)\n\n",
        );
        out.push_str(&table.render());
        out.push('\n');
        for (m, c) in &self.crossovers {
            match c {
                Some(f) => out.push_str(&format!(
                    "  m={m:>2}: transformation pays off above C_off/vol ~ {}\n",
                    pct(*f)
                )),
                None => out.push_str(&format!("  m={m:>2}: no crossover within the sweep\n")),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_paper_shape() {
        let r = run(&Config::quick());
        assert_eq!(r.points.len(), 2 * 4);
        // Small fraction: transformation hurts or is neutral on average;
        // large fraction: it must help for m = 2.
        let small = r
            .points
            .iter()
            .find(|p| p.m == 2 && p.fraction == 0.02)
            .unwrap();
        let large = r
            .points
            .iter()
            .find(|p| p.m == 2 && p.fraction == 0.60)
            .unwrap();
        assert!(small.change_percent < large.change_percent);
        assert!(large.change_percent > 0.0, "60% offload must favour tau'");
    }

    #[test]
    fn render_contains_all_columns() {
        let r = run(&Config::quick());
        let text = r.render();
        assert!(text.contains("m=2"));
        assert!(text.contains("m=8"));
        assert!(text.contains("C_off/vol"));
    }
}
