//! The worked example of the paper (§3, Figures 1–2), end to end.

use hetrta_core::{r_het, r_hom_dag, transform, Scenario};
use hetrta_dag::{DagBuilder, HeteroDagTask, NodeId, Rational, Ticks};
use hetrta_sim::policy::{BreadthFirst, CriticalPathFirst};
use hetrta_sim::{simulate, trace, Platform};

/// All numbers the paper states about the Figure 1/2 example, computed by
/// this reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperExample {
    /// `vol(G)` — the paper states 18.
    pub volume: Ticks,
    /// `len(G)` — the paper states 8.
    pub len_original: Ticks,
    /// `R_hom(τ)` on `m = 2` — the paper states 13.
    pub r_hom: Rational,
    /// The (unsafe!) bound obtained by naively discounting `C_off/m` —
    /// the paper states 11.
    pub naive_reduced: Rational,
    /// Worst observed work-conserving heterogeneous makespan of `τ` —
    /// the paper states 12 (Figure 1(c)).
    pub worst_case_original: Ticks,
    /// `len(G')` after the transformation — the paper states 10.
    pub len_transformed: Ticks,
    /// Breadth-first makespan of the transformed task (Figure 2(b)).
    pub makespan_transformed: Ticks,
    /// `R_het(τ')` (Theorem 1).
    pub r_het: Rational,
    /// The scenario that applies to the transformed task.
    pub scenario: Scenario,
    /// Best observed makespan of `τ` (optimal is 8 here).
    pub best_case_original: Ticks,
    /// Gantt chart of the transformed task's breadth-first schedule.
    pub gantt_transformed: String,
}

/// Builds the Figure 1(a) task (WCETs reconstructed from the paper's
/// aggregate values — see DESIGN.md §3) and evaluates every claim made
/// about it in §3 of the paper.
///
/// # Panics
///
/// Panics only on internal inconsistency (the construction is static).
#[must_use]
pub fn run() -> PaperExample {
    let (task, _) = figure1_task();
    let m = 2u64;

    let t = transform(&task).expect("figure 1 task transforms");
    let bound = r_het(&t, m).expect("m > 0");

    let platform = Platform::with_accelerator(m as usize);
    let worst = hetrta_sim::explore_worst_case(task.dag(), Some(task.offloaded()), platform, 500)
        .expect("simulation succeeds");
    let best = simulate(
        task.dag(),
        Some(task.offloaded()),
        platform,
        &mut CriticalPathFirst::new(),
    )
    .expect("simulation succeeds");
    let transformed_run = simulate(
        t.transformed(),
        Some(task.offloaded()),
        platform,
        &mut BreadthFirst::new(),
    )
    .expect("simulation succeeds");

    let r_hom = r_hom_dag(task.dag(), m).expect("m > 0");
    let naive_reduced = r_hom - Rational::new(task.c_off().get() as i128, m as i128);

    PaperExample {
        volume: task.volume(),
        len_original: task.critical_path_length(),
        r_hom,
        naive_reduced,
        worst_case_original: worst.makespan(),
        len_transformed: t.len_transformed(),
        makespan_transformed: transformed_run.makespan(),
        r_het: bound.value(),
        scenario: bound.scenario(),
        best_case_original: best.makespan(),
        gantt_transformed: trace::gantt(t.transformed(), &transformed_run, 1),
    }
}

/// The Figure 1(a) heterogeneous task.
#[must_use]
pub fn figure1_task() -> (HeteroDagTask, [NodeId; 6]) {
    let mut b = DagBuilder::new();
    let v1 = b.node("v1", Ticks::new(1));
    let v2 = b.node("v2", Ticks::new(4));
    let v3 = b.node("v3", Ticks::new(6));
    let v4 = b.node("v4", Ticks::new(2));
    let v5 = b.node("v5", Ticks::new(1));
    let voff = b.node("v_off", Ticks::new(4));
    b.edges([
        (v1, v2),
        (v1, v3),
        (v1, v4),
        (v4, voff),
        (v2, v5),
        (v3, v5),
        (voff, v5),
    ])
    .expect("static edges are valid");
    let task = HeteroDagTask::new(
        b.build().expect("static graph is valid"),
        voff,
        Ticks::new(50),
        Ticks::new(50),
    )
    .expect("valid task");
    (task, [v1, v2, v3, v4, v5, voff])
}

/// Renders the example as a human-readable report comparing against the
/// paper's stated values.
#[must_use]
pub fn report() -> String {
    let e = run();
    let mut out = String::new();
    out.push_str("Worked example of the paper (Figures 1-2), m = 2 cores + 1 accelerator\n");
    out.push_str(&format!(
        "  vol(G)                         = {:>5}   (paper: 18)\n",
        e.volume
    ));
    out.push_str(&format!(
        "  len(G)                         = {:>5}   (paper: 8)\n",
        e.len_original
    ));
    out.push_str(&format!(
        "  R_hom(tau)        [Eq. 1]      = {:>5}   (paper: 13)\n",
        e.r_hom
    ));
    out.push_str(&format!(
        "  naive C_off/m discount (UNSAFE)= {:>5}   (paper: 11)\n",
        e.naive_reduced
    ));
    out.push_str(&format!(
        "  worst work-conserving makespan = {:>5}   (paper: 12 > 11!)\n",
        e.worst_case_original
    ));
    out.push_str(&format!(
        "  len(G') after transformation   = {:>5}   (paper: 10)\n",
        e.len_transformed
    ));
    out.push_str(&format!(
        "  BFS makespan of tau'           = {:>5}   (Figure 2(b): 10)\n",
        e.makespan_transformed
    ));
    out.push_str(&format!(
        "  R_het(tau')       [{}]         = {:>5}\n",
        e.scenario, e.r_het
    ));
    out.push_str(&format!(
        "  best observed makespan of tau  = {:>5}\n",
        e.best_case_original
    ));
    out.push_str("\nTransformed-task schedule (breadth-first):\n");
    out.push_str(&e.gantt_transformed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_number_matches_the_paper() {
        let e = run();
        assert_eq!(e.volume, Ticks::new(18));
        assert_eq!(e.len_original, Ticks::new(8));
        assert_eq!(e.r_hom, Rational::from_integer(13));
        assert_eq!(e.naive_reduced, Rational::from_integer(11));
        assert_eq!(e.worst_case_original, Ticks::new(12));
        assert_eq!(e.len_transformed, Ticks::new(10));
        assert_eq!(e.makespan_transformed, Ticks::new(10));
        assert_eq!(e.scenario, Scenario::OffNotOnCriticalPath);
        assert_eq!(e.r_het, Rational::from_integer(12));
        assert_eq!(e.best_case_original, Ticks::new(8));
    }

    #[test]
    fn report_mentions_key_values() {
        let r = report();
        assert!(r.contains("(paper: 13)"));
        assert!(r.contains("accel"));
    }
}
