//! Self-suspending baseline ablation (extension, related work of §6):
//! classical single-task bounds vs. the paper's Theorem 1, swept over the
//! offload fraction, with the unsound naive discount's violation rate.
//!
//! Runs on the batch-analysis engine via the `suspend` registry key: one
//! job per sampled task, with the serial ablation's per-job seed
//! derivation (and its skip-on-generation-failure convention) reproduced
//! exactly — pinned by the `engine_parity` tests.

use hetrta_engine::{CellKind, Engine, SweepSpec};

use crate::table::Table;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Offload percentages `C_off/vol · 100` to sweep.
    pub percents: Vec<u32>,
    /// Host core counts.
    pub core_counts: Vec<u64>,
    /// Tasks sampled per sweep point.
    pub tasks_per_point: usize,
    /// Random tie-break seeds for the worst-case schedule exploration.
    pub explore_seeds: u64,
}

impl Config {
    /// The full ablation (100 tasks per point, 120 exploration seeds).
    #[must_use]
    pub fn paper() -> Self {
        Config {
            percents: vec![2, 5, 10, 20, 30, 45, 60],
            core_counts: vec![2, 8],
            tasks_per_point: 100,
            explore_seeds: 120,
        }
    }

    /// Scaled-down configuration.
    #[must_use]
    pub fn quick() -> Self {
        Config {
            tasks_per_point: 15,
            explore_seeds: 30,
            ..Config::paper()
        }
    }
}

/// One sweep point (means over the generated samples).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Host core count.
    pub m: u64,
    /// Offload percentage.
    pub pct: u32,
    /// Mean suspension-oblivious bound.
    pub oblivious: f64,
    /// Mean phase-barrier bound.
    pub barrier: f64,
    /// Mean `min(R_het, R_hom(τ'))`.
    pub het: f64,
    /// Mean naive (unsound) discount.
    pub naive: f64,
    /// Mean worst observed makespan over the explored schedules.
    pub worst: f64,
    /// Samples whose observed worst case exceeded the naive discount.
    pub violations: usize,
    /// Generated samples.
    pub samples: usize,
}

/// The engine sweep specification equivalent to `config`.
#[must_use]
pub fn sweep_spec(config: &Config) -> SweepSpec {
    SweepSpec::suspension(
        config.core_counts.clone(),
        config
            .percents
            .iter()
            .map(|&pct| f64::from(pct) / 100.0)
            .collect(),
        config.tasks_per_point,
        config.explore_seeds,
    )
}

/// Runs the ablation on the batch-analysis engine (all cores).
///
/// # Panics
///
/// Panics if the sweep fails (deterministic for a configuration).
#[must_use]
pub fn run(config: &Config) -> Vec<Point> {
    run_on(&Engine::new(0), config)
}

/// Runs the ablation on an existing engine (sharing its caches).
///
/// # Panics
///
/// Panics if the sweep fails (deterministic for a configuration).
#[must_use]
pub fn run_on(engine: &Engine, config: &Config) -> Vec<Point> {
    let out = engine.run(&sweep_spec(config)).expect("sweep succeeds");
    out.aggregate
        .cells
        .iter()
        .map(|cell| {
            let CellKind::Task(t) = &cell.kind else {
                unreachable!("suspension sweeps produce task cells")
            };
            let s = t.suspend.as_ref().expect("suspend selected");
            Point {
                m: cell.m,
                pct: (cell.grid_value * 100.0).round() as u32,
                oblivious: s.mean_oblivious,
                barrier: s.mean_barrier,
                het: s.mean_het_tight,
                naive: s.mean_naive,
                worst: s.mean_worst_observed.unwrap_or(0.0),
                violations: s.naive_violations,
                samples: cell.samples,
            }
        })
        .collect()
}

/// Renders one table per core count.
#[must_use]
pub fn render(points: &[Point]) -> String {
    let mut ms: Vec<u64> = points.iter().map(|p| p.m).collect();
    ms.sort_unstable();
    ms.dedup();
    let mut out = String::new();
    for m in ms {
        out.push_str(&format!("m = {m}\n"));
        let mut table = Table::new(
            [
                "C_off/vol",
                "oblivious",
                "barrier",
                "R_het~",
                "naive(!)",
                "sim-worst",
                "naive-violated",
            ]
            .map(String::from)
            .to_vec(),
        );
        for p in points.iter().filter(|p| p.m == m) {
            table.row(vec![
                format!("{}%", p.pct),
                format!("{:.1}", p.oblivious),
                format!("{:.1}", p.barrier),
                format!("{:.1}", p.het),
                format!("{:.1}", p.naive),
                format!("{:.1}", p.worst),
                format!("{}/{}", p.violations, p.samples),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            percents: vec![5, 40],
            core_counts: vec![2],
            tasks_per_point: 8,
            explore_seeds: 6,
        }
    }

    #[test]
    fn sound_bounds_dominate_the_observed_worst_case() {
        let points = run(&tiny());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.samples > 0, "no sample generated at {}%", p.pct);
            // Sound single-task bounds order: R_het~ ≤ oblivious.
            assert!(p.het <= p.oblivious + 1e-9);
            // The observed worst case never exceeds the sound bounds on
            // average (they bound every schedule).
            assert!(p.worst <= p.oblivious + 1e-9);
        }
    }

    #[test]
    fn render_has_the_violation_column() {
        let text = render(&run(&tiny()));
        assert!(text.contains("naive-violated"));
        assert!(text.contains("m = 2"));
    }
}
