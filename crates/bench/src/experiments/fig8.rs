//! Figure 8 — occurrence percentages of the Theorem 1 scenarios.
//!
//! Classify randomly generated transformed tasks by the scenario their
//! `R_het` analysis lands in, per core count and offload fraction. The
//! paper's trends: scenario 1 dominates below ~8% offload; scenario 2.2
//! takes over as `C_off` reaches the critical path; scenario 2.1 grows
//! with `C_off` — earlier on larger hosts because `R_hom(G_par)` shrinks
//! with `m`.

use hetrta_engine::{CellKind, Engine, GeneratorPreset, SweepSpec};
use hetrta_gen::series::fraction_sweep_fine;
use hetrta_gen::NfjParams;

use crate::table::{pct, Table};

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Host core counts (paper plots m = 2 and 8; evaluates 2, 4, 8, 16).
    pub core_counts: Vec<u64>,
    /// Offload fractions to sweep (paper: 0.12% … 50%).
    pub fractions: Vec<f64>,
    /// DAGs per sweep point (paper: 100).
    pub tasks_per_point: usize,
    /// Generator parameters (paper: large tasks, n ∈ [100, 250]).
    pub params: NfjParams,
    /// Base RNG seed.
    pub seed: u64,
}

impl Config {
    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        Config {
            core_counts: vec![2, 4, 8, 16],
            fractions: fraction_sweep_fine(),
            tasks_per_point: 100,
            params: NfjParams::large_tasks().with_node_range(100, 250),
            seed: 0x8008_0001,
        }
    }

    /// Scaled-down configuration.
    #[must_use]
    pub fn quick() -> Self {
        Config {
            core_counts: vec![2, 8],
            fractions: vec![0.0012, 0.02, 0.10, 0.25, 0.50],
            tasks_per_point: 20,
            params: NfjParams::large_tasks().with_node_range(60, 120),
            seed: 0x8008_0002,
        }
    }
}

/// Scenario shares at one sweep point (fractions in `[0, 1]`, summing to 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Host core count.
    pub m: u64,
    /// Target `C_off / vol(τ)`.
    pub fraction: f64,
    /// Share of Scenario 1.
    pub s1: f64,
    /// Share of Scenario 2.1.
    pub s21: f64,
    /// Share of Scenario 2.2.
    pub s22: f64,
}

/// Full results of the Figure 8 experiment.
#[derive(Debug, Clone)]
pub struct Results {
    /// All sweep points.
    pub points: Vec<Point>,
}

/// The engine sweep specification equivalent to `config`.
#[must_use]
pub fn sweep_spec(config: &Config) -> SweepSpec {
    SweepSpec::fractions(
        GeneratorPreset::Custom(config.params.clone()),
        config.core_counts.clone(),
        config.fractions.clone(),
        config.tasks_per_point,
        config.seed,
    )
}

/// Runs the experiment on the batch-analysis engine (all cores; each task
/// is transformed once and classified per core count via the engine's
/// content-addressed cache).
///
/// # Panics
///
/// Panics if generation fails for a configuration (deterministic).
#[must_use]
pub fn run(config: &Config) -> Results {
    run_on(&Engine::new(0), config)
}

/// Runs the experiment on an existing engine (sharing its caches).
///
/// # Panics
///
/// Panics if generation fails for a configuration (deterministic).
#[must_use]
pub fn run_on(engine: &Engine, config: &Config) -> Results {
    let out = engine.run(&sweep_spec(config)).expect("sweep succeeds");
    let points = out
        .aggregate
        .cells
        .iter()
        .map(|cell| {
            let CellKind::Task(t) = &cell.kind else {
                unreachable!("fraction sweeps produce task cells")
            };
            let (s1, s21, s22) = t.scenario_shares(cell.samples);
            Point {
                m: cell.m,
                fraction: cell.grid_value,
                s1,
                s21,
                s22,
            }
        })
        .collect();
    Results { points }
}

impl Results {
    /// Renders one table per core count.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 8: occurrence percentage of Theorem 1 scenarios\n\n");
        let mut ms: Vec<u64> = self.points.iter().map(|p| p.m).collect();
        ms.sort_unstable();
        ms.dedup();
        for m in ms {
            out.push_str(&format!("panel m = {m}\n"));
            let mut table = Table::new(vec![
                "C_off/vol".into(),
                "scenario 1".into(),
                "scenario 2.1".into(),
                "scenario 2.2".into(),
            ]);
            for p in self.points.iter().filter(|p| p.m == m) {
                table.row(vec![pct(p.fraction), pct(p.s1), pct(p.s21), pct(p.s22)]);
            }
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_and_follow_paper_trends() {
        let r = run(&Config::quick());
        for p in &r.points {
            assert!((p.s1 + p.s21 + p.s22 - 1.0).abs() < 1e-9);
        }
        // Scenario 1 dominates at tiny offload fractions…
        let tiny = r
            .points
            .iter()
            .find(|p| p.m == 2 && p.fraction == 0.0012)
            .unwrap();
        assert!(tiny.s1 > 0.5, "s1 = {} at 0.12%", tiny.s1);
        // …and scenario 2.1 dominates at 50%.
        let big = r
            .points
            .iter()
            .find(|p| p.m == 2 && p.fraction == 0.50)
            .unwrap();
        assert!(big.s21 > 0.5, "s21 = {} at 50%", big.s21);
    }

    #[test]
    fn larger_hosts_reach_scenario_21_earlier() {
        let r = run(&Config::quick());
        let at = |m: u64, f: f64| {
            r.points
                .iter()
                .find(|p| p.m == m && p.fraction == f)
                .unwrap()
        };
        // paper: occurrences of 2.1 start earlier for bigger m
        assert!(at(8, 0.10).s21 >= at(2, 0.10).s21);
    }

    #[test]
    fn render_contains_scenarios() {
        let text = run(&Config::quick()).render();
        assert!(text.contains("scenario 2.1"));
        assert!(text.contains("panel m = 8"));
    }
}
