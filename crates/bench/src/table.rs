//! ASCII table rendering for experiment results.

/// A simple right-aligned ASCII table.
///
/// # Examples
///
/// ```
/// use hetrta_bench::table::Table;
///
/// let mut t = Table::new(vec!["m".into(), "R_hom".into()]);
/// t.row(vec!["2".into(), "13".into()]);
/// let text = t.render();
/// assert!(text.contains("m"));
/// assert!(text.contains("13"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals (e.g. `0.125` →
/// `"12.50%"`).
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats a signed percentage value with two decimals (e.g. `-3.4` →
/// `"-3.40%"`).
#[must_use]
pub fn signed_pct(value: f64) -> String {
    format!("{value:+.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "long_header".into()]);
        t.row(vec!["12345".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.125), "12.50%");
        assert_eq!(signed_pct(-3.4), "-3.40%");
        assert_eq!(signed_pct(5.0), "+5.00%");
    }
}
