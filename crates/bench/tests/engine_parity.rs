//! The engine-backed experiments produce exactly what the serial
//! reference loops produce — same generated tasks, same classification,
//! same floating-point aggregation.

use hetrta_bench::experiments::{fig8, fig9};
use hetrta_bench::stats::summarize;
use hetrta_core::{r_het, transform, HeterogeneousAnalysis, Scenario};
use hetrta_engine::Engine;
use hetrta_gen::series::BatchSpec;

/// The pre-engine fig8 inner loop, kept as the serial reference.
fn serial_fig8(config: &fig8::Config) -> Vec<fig8::Point> {
    let spec = BatchSpec::new(config.params.clone(), config.tasks_per_point, config.seed);
    let mut points = Vec::new();
    for &m in &config.core_counts {
        for &fraction in &config.fractions {
            let (mut s1, mut s21, mut s22) = (0usize, 0usize, 0usize);
            for i in 0..spec.tasks_per_point {
                let task = spec.task(i, fraction).expect("generation succeeds");
                let t = transform(&task).expect("transformation succeeds");
                match r_het(&t, m).expect("m > 0").scenario() {
                    Scenario::OffNotOnCriticalPath => s1 += 1,
                    Scenario::OffOnCriticalPathDominant => s21 += 1,
                    Scenario::OffOnCriticalPathDominated => s22 += 1,
                }
            }
            let n = spec.tasks_per_point as f64;
            points.push(fig8::Point {
                m,
                fraction,
                s1: s1 as f64 / n,
                s21: s21 as f64 / n,
                s22: s22 as f64 / n,
            });
        }
    }
    points
}

/// The pre-engine fig9 inner loop, kept as the serial reference.
fn serial_fig9(config: &fig9::Config) -> Vec<fig9::Point> {
    let spec = BatchSpec::new(config.params.clone(), config.tasks_per_point, config.seed);
    let mut points = Vec::new();
    for &m in &config.core_counts {
        for &fraction in &config.fractions {
            let changes: Vec<f64> = (0..spec.tasks_per_point)
                .map(|i| {
                    let task = spec.task(i, fraction).expect("generation succeeds");
                    let report = HeterogeneousAnalysis::run(&task, m).expect("analysis succeeds");
                    report.improvement_percent()
                })
                .collect();
            let s = summarize(&changes);
            points.push(fig9::Point {
                m,
                fraction,
                mean_change: s.mean,
                max_change: s.max,
            });
        }
    }
    points
}

fn small_fig8_config() -> fig8::Config {
    let mut c = fig8::Config::quick();
    c.tasks_per_point = 8;
    c.fractions = vec![0.02, 0.25];
    c
}

fn small_fig9_config() -> fig9::Config {
    let mut c = fig9::Config::quick();
    c.tasks_per_point = 8;
    c.fractions = vec![0.02, 0.30];
    c
}

#[test]
fn fig8_engine_equals_serial_reference() {
    let config = small_fig8_config();
    let serial = serial_fig8(&config);
    let engine = fig8::run(&config).points;
    assert_eq!(engine, serial, "engine fig8 diverges from the serial loop");
}

#[test]
fn fig9_engine_equals_serial_reference_bitwise() {
    let config = small_fig9_config();
    let serial = serial_fig9(&config);
    let engine = fig9::run(&config).points;
    assert_eq!(engine.len(), serial.len());
    for (e, s) in engine.iter().zip(&serial) {
        assert_eq!((e.m, e.fraction), (s.m, s.fraction));
        // Bitwise, not approximate: the engine mirrors the serial
        // reduction order exactly.
        assert_eq!(e.mean_change.to_bits(), s.mean_change.to_bits());
        assert_eq!(e.max_change.to_bits(), s.max_change.to_bits());
    }
}

#[test]
fn shared_engine_reuses_transformations_across_experiments() {
    // fig8 and fig9 on the same engine and generator/seed settings: the
    // second experiment's transformations are already memoized.
    let engine = Engine::new(0);
    let mut fig8_config = small_fig8_config();
    fig8_config.seed = 777;
    let mut fig9_config = small_fig9_config();
    fig9_config.seed = 777;
    fig9_config.fractions = fig8_config.fractions.clone();
    fig9_config.core_counts = fig8_config.core_counts.clone();
    fig9_config.params = fig8_config.params.clone();

    let _ = fig8::run_on(&engine, &fig8_config);
    let before = engine.caches().transform_counters();
    let _ = fig9::run_on(&engine, &fig9_config);
    let after = engine.caches().transform_counters();
    assert_eq!(
        after.misses, before.misses,
        "identical workloads must not transform anything anew"
    );
}
