//! The engine-backed experiments produce exactly what the serial
//! reference loops produce — same generated inputs, same classification,
//! same floating-point aggregation. Every serial loop below is a verbatim
//! copy of the corresponding pre-registry implementation.

use hetrta_bench::experiments::{conditional, fig6, fig7, fig8, fig9, suspension};
use hetrta_bench::stats::summarize;
use hetrta_core::{r_het, r_hom_dag, transform, HeterogeneousAnalysis, Scenario};
use hetrta_engine::Engine;
use hetrta_exact::solve;
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::series::BatchSpec;
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::metrics::percentage_change;
use hetrta_sim::policy::BreadthFirst;
use hetrta_sim::{explore_worst_case, simulate, Platform};
use hetrta_suspend::BaselineComparison;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-engine fig8 inner loop, kept as the serial reference.
fn serial_fig8(config: &fig8::Config) -> Vec<fig8::Point> {
    let spec = BatchSpec::new(config.params.clone(), config.tasks_per_point, config.seed);
    let mut points = Vec::new();
    for &m in &config.core_counts {
        for &fraction in &config.fractions {
            let (mut s1, mut s21, mut s22) = (0usize, 0usize, 0usize);
            for i in 0..spec.tasks_per_point {
                let task = spec.task(i, fraction).expect("generation succeeds");
                let t = transform(&task).expect("transformation succeeds");
                match r_het(&t, m).expect("m > 0").scenario() {
                    Scenario::OffNotOnCriticalPath => s1 += 1,
                    Scenario::OffOnCriticalPathDominant => s21 += 1,
                    Scenario::OffOnCriticalPathDominated => s22 += 1,
                }
            }
            let n = spec.tasks_per_point as f64;
            points.push(fig8::Point {
                m,
                fraction,
                s1: s1 as f64 / n,
                s21: s21 as f64 / n,
                s22: s22 as f64 / n,
            });
        }
    }
    points
}

/// The pre-engine fig9 inner loop, kept as the serial reference.
fn serial_fig9(config: &fig9::Config) -> Vec<fig9::Point> {
    let spec = BatchSpec::new(config.params.clone(), config.tasks_per_point, config.seed);
    let mut points = Vec::new();
    for &m in &config.core_counts {
        for &fraction in &config.fractions {
            let changes: Vec<f64> = (0..spec.tasks_per_point)
                .map(|i| {
                    let task = spec.task(i, fraction).expect("generation succeeds");
                    let report = HeterogeneousAnalysis::run(&task, m).expect("analysis succeeds");
                    report.improvement_percent()
                })
                .collect();
            let s = summarize(&changes);
            points.push(fig9::Point {
                m,
                fraction,
                mean_change: s.mean,
                max_change: s.max,
            });
        }
    }
    points
}

/// The pre-registry fig6 inner loop, kept as the serial reference.
fn serial_fig6(config: &fig6::Config) -> Vec<fig6::Point> {
    let spec = BatchSpec::new(config.params.clone(), config.tasks_per_point, config.seed);
    let mut points = Vec::new();
    for &m in &config.core_counts {
        for &fraction in &config.fractions {
            let mut sum_orig = 0.0;
            let mut sum_trans = 0.0;
            for i in 0..spec.tasks_per_point {
                let task = spec.task(i, fraction).expect("generation succeeds");
                let t = transform(&task).expect("transformation succeeds");
                let platform = Platform::with_accelerator(m as usize);
                let orig = simulate(
                    task.dag(),
                    Some(task.offloaded()),
                    platform,
                    &mut BreadthFirst::new(),
                )
                .expect("simulation succeeds");
                let trans = simulate(
                    t.transformed(),
                    Some(task.offloaded()),
                    platform,
                    &mut BreadthFirst::new(),
                )
                .expect("simulation succeeds");
                sum_orig += orig.makespan().as_f64();
                sum_trans += trans.makespan().as_f64();
            }
            let n = spec.tasks_per_point as f64;
            let (avg_original, avg_transformed) = (sum_orig / n, sum_trans / n);
            points.push(fig6::Point {
                m,
                fraction,
                avg_original,
                avg_transformed,
                change_percent: percentage_change(avg_original, avg_transformed),
            });
        }
    }
    points
}

/// The pre-registry fig7 inner loop, kept as the serial reference.
fn serial_fig7(config: &fig7::Config) -> Vec<fig7::Point> {
    let mut points = Vec::new();
    for panel in &config.panels {
        let m = panel.m;
        let spec = BatchSpec::new(panel.params.clone(), config.tasks_per_point, config.seed);
        for &fraction in &config.fractions {
            let mut hom_incs = Vec::new();
            let mut het_incs = Vec::new();
            for i in 0..config.tasks_per_point {
                let task = spec.task(i, fraction).expect("generation succeeds");
                let sol = solve(task.dag(), Some(task.offloaded()), m, &config.solver)
                    .expect("solver runs");
                if !sol.is_optimal() {
                    continue; // paper: skip instances the oracle cannot close
                }
                let opt = sol.makespan().as_f64();
                if opt == 0.0 {
                    continue;
                }
                let hom = r_hom_dag(task.dag(), m).expect("m > 0").to_f64();
                let t = transform(&task).expect("transformation succeeds");
                let het = r_het(&t, m).expect("m > 0").value().to_f64();
                hom_incs.push(100.0 * (hom - opt) / opt);
                het_incs.push(100.0 * (het - opt) / opt);
            }
            points.push(fig7::Point {
                m,
                fraction,
                hom_increment: summarize(&hom_incs).mean,
                het_increment: summarize(&het_incs).mean,
                solved: hom_incs.len(),
            });
        }
    }
    points
}

/// The pre-registry conditional ablation loop, kept as the serial
/// reference (seed derivation, skip rules and accumulation order intact).
fn serial_conditional(config: &conditional::Config) -> Vec<conditional::Point> {
    let mut points = Vec::new();
    for &m in &config.core_counts {
        for &p_cond in &config.cond_shares {
            let mut params = hetrta_cond::CondGenParams::small();
            params.p_cond = p_cond;
            params.p_par = (0.65 - p_cond).max(0.1);
            let mut flat_sum = 0.0;
            let mut dp_sum = 0.0;
            let mut realizations = 0.0;
            let mut samples = 0usize;
            for seed in 0..config.exprs_per_point as u64 {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ ((p_cond * 1000.0) as u64) << 20 ^ (m << 40));
                let Ok(e) = hetrta_cond::generate_cond(&params, &mut rng) else {
                    continue;
                };
                let Ok(exact) = hetrta_cond::r_cond_exact(&e, m, config.realization_cap) else {
                    continue;
                };
                let dp = hetrta_cond::r_cond(&e, m).expect("valid expression");
                let flat = hetrta_cond::r_parallel_flattening(&e, m).expect("valid expression");
                if exact.is_zero() {
                    continue;
                }
                flat_sum += (flat.to_f64() / dp.to_f64() - 1.0) * 100.0;
                dp_sum += (dp.to_f64() / exact.to_f64() - 1.0) * 100.0;
                realizations += e.realization_count() as f64;
                samples += 1;
            }
            let d = samples.max(1) as f64;
            points.push(conditional::Point {
                p_cond,
                m,
                flat_overhead: flat_sum / d,
                dp_overhead: dp_sum / d,
                realizations: realizations / d,
                samples,
            });
        }
    }
    points
}

/// The pre-registry suspension-baseline loop, kept as the serial
/// reference.
fn serial_suspension(config: &suspension::Config) -> Vec<suspension::Point> {
    let mut points = Vec::new();
    for &m in &config.core_counts {
        for &pct in &config.percents {
            let f = f64::from(pct) / 100.0;
            let mut oblivious = 0.0;
            let mut barrier = 0.0;
            let mut het = 0.0;
            let mut naive = 0.0;
            let mut worst = 0.0;
            let mut violations = 0usize;
            let mut count = 0usize;
            for seed in 0..config.tasks_per_point as u64 {
                let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(pct) << 24) ^ (m << 48));
                let Ok(dag) = generate_nfj(&NfjParams::small_tasks(), &mut rng) else {
                    continue;
                };
                let Ok(task) = make_hetero_task(
                    dag,
                    OffloadSelection::AnyInterior,
                    CoffSizing::VolumeFraction(f),
                    &mut rng,
                ) else {
                    continue;
                };
                let c = BaselineComparison::compute(&task, m).expect("analysis succeeds");
                let w = explore_worst_case(
                    task.dag(),
                    Some(task.offloaded()),
                    Platform::with_accelerator(m as usize),
                    config.explore_seeds,
                )
                .expect("simulation succeeds")
                .makespan();
                oblivious += c.oblivious.to_f64();
                barrier += c.phase_barrier.to_f64();
                het += c.r_het_tight.to_f64();
                naive += c.naive_unsound.to_f64();
                worst += w.as_f64();
                if w.to_rational() > c.naive_unsound {
                    violations += 1;
                }
                count += 1;
            }
            let n = count.max(1) as f64;
            points.push(suspension::Point {
                m,
                pct,
                oblivious: oblivious / n,
                barrier: barrier / n,
                het: het / n,
                naive: naive / n,
                worst: worst / n,
                violations,
                samples: count,
            });
        }
    }
    points
}

fn small_fig8_config() -> fig8::Config {
    let mut c = fig8::Config::quick();
    c.tasks_per_point = 8;
    c.fractions = vec![0.02, 0.25];
    c
}

fn small_fig9_config() -> fig9::Config {
    let mut c = fig9::Config::quick();
    c.tasks_per_point = 8;
    c.fractions = vec![0.02, 0.30];
    c
}

#[test]
fn fig8_engine_equals_serial_reference() {
    let config = small_fig8_config();
    let serial = serial_fig8(&config);
    let engine = fig8::run(&config).points;
    assert_eq!(engine, serial, "engine fig8 diverges from the serial loop");
}

#[test]
fn fig9_engine_equals_serial_reference_bitwise() {
    let config = small_fig9_config();
    let serial = serial_fig9(&config);
    let engine = fig9::run(&config).points;
    assert_eq!(engine.len(), serial.len());
    for (e, s) in engine.iter().zip(&serial) {
        assert_eq!((e.m, e.fraction), (s.m, s.fraction));
        // Bitwise, not approximate: the engine mirrors the serial
        // reduction order exactly.
        assert_eq!(e.mean_change.to_bits(), s.mean_change.to_bits());
        assert_eq!(e.max_change.to_bits(), s.max_change.to_bits());
    }
}

#[test]
fn fig6_engine_equals_serial_reference_bitwise() {
    let mut config = fig6::Config::quick();
    config.tasks_per_point = 6;
    config.fractions = vec![0.05, 0.40];
    let serial = serial_fig6(&config);
    let engine = fig6::run(&config).points;
    assert_eq!(engine.len(), serial.len());
    for (e, s) in engine.iter().zip(&serial) {
        assert_eq!((e.m, e.fraction), (s.m, s.fraction));
        assert_eq!(e.avg_original.to_bits(), s.avg_original.to_bits());
        assert_eq!(e.avg_transformed.to_bits(), s.avg_transformed.to_bits());
        assert_eq!(e.change_percent.to_bits(), s.change_percent.to_bits());
    }
}

#[test]
fn fig7_engine_equals_serial_reference_bitwise() {
    let config = fig7::Config {
        panels: vec![fig7::Panel {
            m: 2,
            params: NfjParams::small_tasks().with_node_range(3, 12),
        }],
        fractions: vec![0.10, 0.40],
        tasks_per_point: 6,
        solver: hetrta_exact::SolverConfig::default(),
        seed: 0x7007_0002,
    };
    let serial = serial_fig7(&config);
    let engine = fig7::run(&config).points;
    assert_eq!(engine.len(), serial.len());
    for (e, s) in engine.iter().zip(&serial) {
        assert_eq!((e.m, e.fraction), (s.m, s.fraction));
        assert_eq!(e.solved, s.solved, "solved counts diverge at {e:?}");
        assert!(e.solved > 0, "a trivial panel must close instances");
        assert_eq!(e.hom_increment.to_bits(), s.hom_increment.to_bits());
        assert_eq!(e.het_increment.to_bits(), s.het_increment.to_bits());
    }
}

#[test]
fn conditional_engine_equals_serial_reference_bitwise() {
    let config = conditional::Config {
        cond_shares: vec![0.2, 0.4],
        core_counts: vec![2],
        exprs_per_point: 10,
        realization_cap: 512,
    };
    let serial = serial_conditional(&config);
    let engine = conditional::run(&config);
    assert_eq!(engine.len(), serial.len());
    for (e, s) in engine.iter().zip(&serial) {
        assert_eq!((e.m, e.p_cond), (s.m, s.p_cond));
        assert_eq!(e.samples, s.samples, "inclusion rules diverge at {e:?}");
        assert_eq!(e.flat_overhead.to_bits(), s.flat_overhead.to_bits());
        assert_eq!(e.dp_overhead.to_bits(), s.dp_overhead.to_bits());
        assert_eq!(e.realizations.to_bits(), s.realizations.to_bits());
    }
}

#[test]
fn suspension_engine_equals_serial_reference_bitwise() {
    let config = suspension::Config {
        percents: vec![5, 30],
        core_counts: vec![2],
        tasks_per_point: 6,
        explore_seeds: 6,
    };
    let serial = serial_suspension(&config);
    let engine = suspension::run(&config);
    assert_eq!(engine.len(), serial.len());
    for (e, s) in engine.iter().zip(&serial) {
        assert_eq!((e.m, e.pct), (s.m, s.pct));
        assert_eq!(e.samples, s.samples);
        assert_eq!(e.violations, s.violations);
        assert_eq!(e.oblivious.to_bits(), s.oblivious.to_bits());
        assert_eq!(e.barrier.to_bits(), s.barrier.to_bits());
        assert_eq!(e.het.to_bits(), s.het.to_bits());
        assert_eq!(e.naive.to_bits(), s.naive.to_bits());
        assert_eq!(e.worst.to_bits(), s.worst.to_bits());
    }
}

#[test]
fn shared_engine_reuses_transformations_across_experiments() {
    // fig8 and fig9 on the same engine and generator/seed settings: the
    // second experiment's transformations are already memoized.
    let engine = Engine::new(0);
    let mut fig8_config = small_fig8_config();
    fig8_config.seed = 777;
    let mut fig9_config = small_fig9_config();
    fig9_config.seed = 777;
    fig9_config.fractions = fig8_config.fractions.clone();
    fig9_config.core_counts = fig8_config.core_counts.clone();
    fig9_config.params = fig8_config.params.clone();

    let _ = fig8::run_on(&engine, &fig8_config);
    let before = engine.caches().transform_counters();
    let _ = fig9::run_on(&engine, &fig9_config);
    let after = engine.caches().transform_counters();
    assert_eq!(
        after.misses, before.misses,
        "identical workloads must not transform anything anew"
    );
}

#[test]
fn streaming_session_equals_the_serial_reference_bitwise() {
    // The experiments consume `Engine::run`, which is now a thin wrapper
    // over submit+wait. Drive the same fig8 spec through the *streaming*
    // session path — consuming every event — and pin the final aggregate
    // to the serial loop bitwise, so the API redesign provably changed
    // nothing about the numbers.
    use hetrta_engine::{SessionConfig, SweepEvent};

    let config = small_fig8_config();
    let serial = serial_fig8(&config);

    let engine = Engine::new(2);
    let handle = engine
        .submit_with(&fig8::sweep_spec(&config), SessionConfig::with_partials(4))
        .expect("submit");
    let mut finished_jobs = 0usize;
    let mut partials = 0usize;
    while let Some(event) = handle.next_event() {
        match event {
            SweepEvent::JobFinished { .. } => finished_jobs += 1,
            SweepEvent::PartialAggregate { .. } => partials += 1,
            _ => {}
        }
    }
    let out = handle.wait().expect("streamed sweep");
    assert_eq!(finished_jobs, out.stats.jobs);
    assert!(partials > 0, "partial aggregates streamed");

    assert_eq!(out.aggregate.cells.len(), serial.len());
    for (cell, point) in out.aggregate.cells.iter().zip(&serial) {
        let hetrta_engine::CellKind::Task(t) = &cell.kind else {
            panic!("task cell")
        };
        let (s1, s21, s22) = t.scenario_shares(cell.samples);
        assert_eq!((cell.m, cell.grid_value), (point.m, point.fraction));
        assert_eq!(s1.to_bits(), point.s1.to_bits());
        assert_eq!(s21.to_bits(), point.s21.to_bits());
        assert_eq!(s22.to_bits(), point.s22.to_bits());
    }
}
