//! Ready-queue scheduling policies.
//!
//! All policies are *work-conserving*: the engine never leaves a host core
//! idle while the ready queue is non-empty. A policy only decides **which**
//! ready node a free core takes next.

use hetrta_dag::algo::CriticalPath;
use hetrta_dag::{Dag, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Context handed to a policy when it must pick a ready node.
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// The graph being executed.
    pub dag: &'a Dag,
    /// Current simulation time (ticks).
    pub now: u64,
}

/// A ready-queue discipline.
///
/// The engine maintains the ready queue as a vector ordered by *readiness
/// time* (FIFO arrival order, ties broken deterministically); `choose`
/// returns the index of the node a free core should execute next.
///
/// Implementations must return an index `< ready.len()`; the engine panics
/// otherwise (a policy bug, not a recoverable condition).
pub trait Policy {
    /// Picks the index of the next node to run from the ready queue.
    fn choose(&mut self, ready: &[NodeId], ctx: &PolicyContext<'_>) -> usize;

    /// Human-readable policy name (used in traces and reports).
    fn name(&self) -> &'static str;

    /// Called once before a simulation so stateful policies can
    /// precompute per-graph data or reset seeds.
    fn prepare(&mut self, dag: &Dag) {
        let _ = dag;
    }
}

/// The GOMP-like work-conserving **breadth-first** scheduler assumed by the
/// paper's evaluation (§5.2): ready nodes are served strictly in the order
/// they became ready (FIFO).
#[derive(Debug, Clone, Default)]
pub struct BreadthFirst;

impl BreadthFirst {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        BreadthFirst
    }
}

impl Policy for BreadthFirst {
    fn choose(&mut self, _ready: &[NodeId], _ctx: &PolicyContext<'_>) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "breadth-first"
    }
}

/// LIFO ("depth-first") discipline: always run the most recently released
/// node, emulating depth-first task exploration in untied OpenMP runtimes.
#[derive(Debug, Clone, Default)]
pub struct DepthFirst;

impl DepthFirst {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        DepthFirst
    }
}

impl Policy for DepthFirst {
    fn choose(&mut self, ready: &[NodeId], _ctx: &PolicyContext<'_>) -> usize {
        ready.len() - 1
    }

    fn name(&self) -> &'static str {
        "depth-first"
    }
}

/// Critical-path-first: always run the ready node with the longest
/// remaining chain (`tail` length). A strong heuristic that list-scheduling
/// literature calls HLF/CP; used as the incumbent seed of the exact solver
/// and as an ablation point against breadth-first.
#[derive(Debug, Clone, Default)]
pub struct CriticalPathFirst {
    tails: Vec<u64>,
}

impl CriticalPathFirst {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        CriticalPathFirst { tails: Vec::new() }
    }
}

impl Policy for CriticalPathFirst {
    fn prepare(&mut self, dag: &Dag) {
        let cp = CriticalPath::of(dag);
        self.tails = dag.node_ids().map(|v| cp.tail(v).get()).collect();
    }

    fn choose(&mut self, ready: &[NodeId], _ctx: &PolicyContext<'_>) -> usize {
        ready
            .iter()
            .enumerate()
            .max_by_key(|(i, v)| {
                (
                    self.tails.get(v.index()).copied().unwrap_or(0),
                    usize::MAX - i,
                )
            })
            .map(|(i, _)| i)
            .expect("engine never calls choose with an empty queue")
    }

    fn name(&self) -> &'static str {
        "critical-path-first"
    }
}

/// Seeded random tie-breaking: picks a uniformly random ready node. Running
/// many seeds explores the space of work-conserving schedules to probe
/// worst-case behaviour (the anomaly of the paper's Figure 1(c) is found
/// this way).
#[derive(Debug, Clone)]
pub struct RandomTieBreak {
    seed: u64,
    rng: StdRng,
}

impl RandomTieBreak {
    /// Creates the policy with a seed (re-applied at every `prepare`).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomTieBreak {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomTieBreak {
    fn prepare(&mut self, _dag: &Dag) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn choose(&mut self, ready: &[NodeId], _ctx: &PolicyContext<'_>) -> usize {
        self.rng.gen_range(0..ready.len())
    }

    fn name(&self) -> &'static str {
        "random-tie-break"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::Ticks;

    fn ctx_dag() -> Dag {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::new(5));
        let b = dag.add_node(Ticks::new(1));
        let c = dag.add_node(Ticks::new(9));
        dag.add_edge(a, b).unwrap();
        dag.add_edge(a, c).unwrap();
        dag
    }

    #[test]
    fn breadth_first_picks_head() {
        let dag = ctx_dag();
        let ready = vec![NodeId::from_index(1), NodeId::from_index(2)];
        let ctx = PolicyContext { dag: &dag, now: 0 };
        assert_eq!(BreadthFirst::new().choose(&ready, &ctx), 0);
        assert_eq!(BreadthFirst::new().name(), "breadth-first");
    }

    #[test]
    fn depth_first_picks_tail() {
        let dag = ctx_dag();
        let ready = vec![NodeId::from_index(1), NodeId::from_index(2)];
        let ctx = PolicyContext { dag: &dag, now: 0 };
        assert_eq!(DepthFirst::new().choose(&ready, &ctx), 1);
    }

    #[test]
    fn critical_path_first_prefers_long_tail() {
        let dag = ctx_dag();
        let mut p = CriticalPathFirst::new();
        p.prepare(&dag);
        // node 2 has tail 9, node 1 tail 1
        let ready = vec![NodeId::from_index(1), NodeId::from_index(2)];
        let ctx = PolicyContext { dag: &dag, now: 0 };
        assert_eq!(p.choose(&ready, &ctx), 1);
        // first-index tie-break
        let ready_same = vec![NodeId::from_index(1), NodeId::from_index(1)];
        assert_eq!(p.choose(&ready_same, &ctx), 0);
    }

    #[test]
    fn random_policy_is_reproducible_after_prepare() {
        let dag = ctx_dag();
        let ready: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
        let ctx = PolicyContext { dag: &dag, now: 0 };
        let mut p1 = RandomTieBreak::new(42);
        let mut p2 = RandomTieBreak::new(42);
        p1.prepare(&dag);
        p2.prepare(&dag);
        let picks1: Vec<usize> = (0..10).map(|_| p1.choose(&ready, &ctx)).collect();
        let picks2: Vec<usize> = (0..10).map(|_| p2.choose(&ready, &ctx)).collect();
        assert_eq!(picks1, picks2);
        assert!(picks1.iter().all(|&i| i < 3));
    }
}
