//! # hetrta-sim — heterogeneous DAG execution simulator
//!
//! Discrete-event simulation of a DAG task on a platform with `m` identical
//! host cores plus one accelerator device, under *work-conserving*
//! scheduling. This is the experimental substrate of §5.2 of
//! *Serrano & Quiñones, DAC 2018*: the paper "simulate\[s\] the execution of
//! the original and transformed DAG tasks, assuming the work-conserving
//! breadth-first scheduler implemented in GOMP" — exactly the
//! [`policy::BreadthFirst`] policy here.
//!
//! * [`Platform`] — core count + whether an accelerator exists;
//! * [`policy`] — pluggable ready-queue disciplines (breadth-first /
//!   depth-first / critical-path-first / seeded-random for worst-case
//!   exploration);
//! * [`simulate`] — the engine; produces a [`SimResult`] with makespan and
//!   the full per-node schedule;
//! * [`trace`] — schedule validation (precedence, capacity,
//!   work-conservation) and ASCII Gantt rendering;
//! * [`explore_worst_case`] — max makespan over a set of policies and
//!   random tie-break seeds (used to probe the tightness of the analytical
//!   bounds).
//!
//! ## Example
//!
//! ```
//! use hetrta_dag::{DagBuilder, Ticks};
//! use hetrta_sim::{policy::BreadthFirst, simulate, Platform};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let a = b.node("a", Ticks::new(1));
//! let x = b.node("x", Ticks::new(3));
//! let y = b.node("y", Ticks::new(3));
//! let z = b.node("z", Ticks::new(1));
//! b.edges([(a, x), (a, y), (x, z), (y, z)])?;
//! let dag = b.build()?;
//!
//! let result = simulate(&dag, None, Platform::host_only(2), &mut BreadthFirst::new())?;
//! assert_eq!(result.makespan(), Ticks::new(5)); // a; x ∥ y; z
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
pub mod metrics;
pub mod policy;
pub mod sporadic;
pub mod trace;

pub use engine::{
    explore_worst_case, simulate, simulate_hetero_task, simulate_makespan, simulate_multi,
    Interval, Platform, Resource, SimResult, SimWorkspace,
};
pub use error::SimError;
