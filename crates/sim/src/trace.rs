//! Schedule validation and Gantt rendering.

use std::collections::HashMap;

use hetrta_dag::{Dag, NodeId, Ticks};

use crate::{Interval, Resource, SimResult};

/// A violated schedule property (validation failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleViolation(pub String);

impl core::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "schedule violation: {}", self.0)
    }
}

impl std::error::Error for ScheduleViolation {}

macro_rules! ensure {
    ($cond:expr, $($msg:tt)+) => {
        if !$cond {
            return Err(ScheduleViolation(format!($($msg)+)));
        }
    };
}

/// Validates that `result` is a correct, work-conserving, non-preemptive
/// schedule of `dag`:
///
/// 1. every node executes exactly once, for exactly its WCET;
/// 2. precedence: no node starts before all its predecessors finish;
/// 3. capacity: host cores and accelerators each run at most one node at
///    any instant (half-open interval semantics);
/// 4. offloaded nodes ran on accelerators and no other node did;
/// 5. work conservation: whenever a host node waits (`ready < start`),
///    **all** host cores are busy throughout `[ready, start)`;
/// 6. zero-WCET nodes completed instantly at their ready time.
///
/// # Errors
///
/// Returns the first violated property with an explanatory message.
pub fn validate_schedule(
    dag: &Dag,
    offloaded: Option<NodeId>,
    result: &SimResult,
) -> Result<(), ScheduleViolation> {
    match offloaded {
        Some(off) => validate_schedule_multi(dag, &[off], result),
        None => validate_schedule_multi(dag, &[], result),
    }
}

/// Multi-offload variant of [`validate_schedule`].
///
/// # Errors
///
/// Returns the first violated property with an explanatory message.
pub fn validate_schedule_multi(
    dag: &Dag,
    offloaded: &[NodeId],
    result: &SimResult,
) -> Result<(), ScheduleViolation> {
    let intervals = result.intervals();
    ensure!(
        intervals.len() == dag.node_count(),
        "schedule has {} intervals for {} nodes",
        intervals.len(),
        dag.node_count()
    );
    let mut by_node: HashMap<NodeId, &Interval> = HashMap::new();
    for i in intervals {
        ensure!(
            by_node.insert(i.node, i).is_none(),
            "node {} executed twice",
            i.node
        );
        ensure!(
            i.finish == i.start + dag.wcet(i.node),
            "node {} ran for {} instead of {}",
            i.node,
            i.finish.get() - i.start.get(),
            dag.wcet(i.node)
        );
        ensure!(
            i.ready <= i.start,
            "node {} started before it was ready",
            i.node
        );
        if dag.wcet(i.node).is_zero() {
            ensure!(
                i.resource == Resource::Instant && i.start == i.ready,
                "zero-WCET node {} did not complete instantly",
                i.node
            );
        }
    }
    // Precedence.
    for (f, t) in dag.edges() {
        let (fi, ti) = (by_node[&f], by_node[&t]);
        ensure!(
            fi.finish <= ti.start,
            "precedence ({f}, {t}) violated: {} > {}",
            fi.finish,
            ti.start
        );
    }
    // Offload placement.
    for i in intervals {
        match i.resource {
            Resource::Accelerator(_) => ensure!(
                offloaded.contains(&i.node),
                "node {} ran on an accelerator but is not offloaded",
                i.node
            ),
            Resource::HostCore(_) => ensure!(
                !offloaded.contains(&i.node),
                "offloaded node {} ran on a host core",
                i.node
            ),
            Resource::Instant => {}
        }
    }
    // Capacity per resource.
    let mut per_resource: HashMap<Resource, Vec<&Interval>> = HashMap::new();
    for i in intervals {
        if i.resource != Resource::Instant && i.start != i.finish {
            per_resource.entry(i.resource).or_default().push(i);
        }
    }
    for (res, mut ivs) in per_resource {
        ivs.sort_by_key(|i| i.start);
        for w in ivs.windows(2) {
            ensure!(
                w[0].finish <= w[1].start,
                "{res:?} overbooked: {} and {} overlap",
                w[0].node,
                w[1].node
            );
        }
    }
    // Work conservation: while any host node waits, every core is busy.
    let cores = result.platform().cores();
    let host_busy: Vec<(Ticks, Ticks)> = intervals
        .iter()
        .filter(|i| matches!(i.resource, Resource::HostCore(_)))
        .map(|i| (i.start, i.finish))
        .collect();
    for i in intervals {
        if matches!(i.resource, Resource::HostCore(_)) && i.ready < i.start {
            // every instant in [ready, start) must have `cores` busy cores
            let mut events: Vec<(Ticks, i64)> = Vec::new();
            for &(s, f) in &host_busy {
                let s = s.max(i.ready);
                let f = f.min(i.start);
                if s < f {
                    events.push((s, 1));
                    events.push((f, -1));
                }
            }
            events.sort();
            let mut busy = 0i64;
            let mut cursor = i.ready;
            for (t, d) in events {
                if t > cursor {
                    ensure!(
                        busy as usize >= cores,
                        "node {} waited during [{cursor}, {t}) with only {busy}/{cores} busy cores",
                        i.node
                    );
                    cursor = t;
                }
                busy += d;
            }
            ensure!(
                cursor >= i.start || (busy as usize) >= cores,
                "node {} waited with idle cores at the tail of its wait window",
                i.node
            );
        }
    }
    Ok(())
}

/// Renders the schedule as an ASCII Gantt chart (one row per resource,
/// one column per `scale` ticks).
///
/// Intended for examples and debugging; rows are labeled `core N` /
/// `accel`, and each node is drawn as a run of its label's first
/// characters.
#[must_use]
pub fn gantt(dag: &Dag, result: &SimResult, scale: u64) -> String {
    let scale = scale.max(1);
    let width = (result.makespan().get().div_ceil(scale)) as usize;
    let mut rows: Vec<(String, Vec<char>)> = Vec::new();
    for c in 0..result.platform().cores() {
        rows.push((format!("core {c}"), vec!['.'; width]));
    }
    let accel_row = rows.len();
    for d in 0..result.platform().accelerators() {
        let label = if result.platform().accelerators() == 1 {
            "accel ".to_owned()
        } else {
            format!("accel {d}")
        };
        rows.push((label, vec!['.'; width]));
    }
    for i in result.intervals() {
        let row = match i.resource {
            Resource::HostCore(c) => c,
            Resource::Accelerator(d) => accel_row + d,
            Resource::Instant => continue,
        };
        let label = dag.label(i.node);
        let tag: Vec<char> = if label.is_empty() {
            format!("{}", i.node).chars().collect()
        } else {
            label.chars().collect()
        };
        let (s, f) = (
            (i.start.get() / scale) as usize,
            (i.finish.get().div_ceil(scale)) as usize,
        );
        for (k, cell) in (s..f.min(width)).enumerate() {
            rows[row].1[cell] = *tag.get(k % tag.len()).unwrap_or(&'#');
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "t = 0 .. {} (1 col = {} ticks)\n",
        result.makespan(),
        scale
    ));
    for (label, cells) in rows {
        out.push_str(&format!(
            "{label:>8} |{}|\n",
            cells.into_iter().collect::<String>()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BreadthFirst;
    use crate::{simulate, Platform};
    use hetrta_dag::DagBuilder;

    fn sample() -> (Dag, NodeId) {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("voff", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        (b.build().unwrap(), voff)
    }

    #[test]
    fn valid_schedules_pass() {
        let (dag, voff) = sample();
        for m in 1..=4 {
            let r = simulate(
                &dag,
                Some(voff),
                Platform::with_accelerator(m),
                &mut BreadthFirst::new(),
            )
            .unwrap();
            validate_schedule(&dag, Some(voff), &r).unwrap();
            let rh =
                simulate(&dag, None, Platform::host_only(m), &mut BreadthFirst::new()).unwrap();
            validate_schedule(&dag, None, &rh).unwrap();
        }
    }

    #[test]
    fn tampered_offload_detected() {
        let (dag, voff) = sample();
        let r = simulate(
            &dag,
            Some(voff),
            Platform::with_accelerator(2),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        // claim no node is offloaded: accelerator interval becomes illegal
        let err = validate_schedule(&dag, None, &r).unwrap_err();
        assert!(err.to_string().contains("accelerator"));
    }

    #[test]
    fn mismatched_graph_detected() {
        let (dag, voff) = sample();
        let r = simulate(
            &dag,
            Some(voff),
            Platform::with_accelerator(2),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        let mut other = DagBuilder::new();
        other.node("only", Ticks::ONE);
        let other = other.build().unwrap();
        assert!(validate_schedule(&other, None, &r).is_err());
    }

    #[test]
    fn gantt_renders_all_resources() {
        let (dag, voff) = sample();
        let r = simulate(
            &dag,
            Some(voff),
            Platform::with_accelerator(2),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        let chart = gantt(&dag, &r, 1);
        assert!(chart.contains("core 0"));
        assert!(chart.contains("core 1"));
        assert!(chart.contains("accel"));
        // v3 runs for 6 ticks: its label pattern appears
        assert!(chart.contains("v3"));
    }

    #[test]
    fn gantt_scale_shrinks_width() {
        let (dag, voff) = sample();
        let r = simulate(
            &dag,
            Some(voff),
            Platform::with_accelerator(2),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        let wide = gantt(&dag, &r, 1);
        let narrow = gantt(&dag, &r, 4);
        assert!(narrow.len() < wide.len());
    }
}
