//! Sporadic task-*set* simulation (extension).
//!
//! The paper simulates a single DAG job in isolation (§5.2). Real systems
//! run several sporadic tasks that compete for the host cores and for the
//! accelerator. This module simulates the **synchronous periodic** arrival
//! pattern — every task releases a job at time 0 and then strictly
//! periodically — of a set of [`HeteroDagTask`]s under global
//! fixed-priority or EDF scheduling, and reports per-job response times and
//! deadline misses.
//!
//! It is the empirical counterpart of the `hetrta-sched` schedulability
//! tests: a set deemed schedulable by a *sound* test must never miss a
//! deadline here (the synchronous periodic pattern is one legal sporadic
//! arrival sequence, so a miss disproves soundness; the converse does not
//! hold).
//!
//! ## Model
//!
//! * `m` identical host cores plus a pool of accelerator devices
//!   ([`Platform`]);
//! * node-level execution: every node runs for exactly its WCET;
//! * host scheduling is global and work-conserving across all active jobs;
//!   priorities are per-*job* (task priority under FP, absolute deadline
//!   under EDF), ties broken by earlier release, then task index;
//!   within a job, ready nodes are ordered breadth-first (readiness order,
//!   the GOMP discipline of the single-task simulator);
//! * host nodes are preemptible at any integer instant
//!   ([`Preemption::Preemptive`]) or run to completion once started
//!   ([`Preemption::NonPreemptive`]); preemption overhead is zero;
//! * offloaded nodes are **never** preempted: accelerators drain a
//!   priority-ordered queue one node at a time (FIFO per priority level) —
//!   device contention between tasks is therefore visible in the results;
//! * zero-WCET nodes (e.g. `v_sync`) complete instantly without occupying
//!   any resource.
//!
//! ## Example
//!
//! ```
//! use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
//! use hetrta_sim::sporadic::{simulate_sporadic, Discipline, SporadicConfig};
//! use hetrta_sim::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mk = |c_off: u64, period: u64| -> Result<HeteroDagTask, Box<dyn std::error::Error>> {
//!     let mut b = DagBuilder::new();
//!     let a = b.node("a", Ticks::new(1));
//!     let k = b.node("k", Ticks::new(c_off));
//!     let z = b.node("z", Ticks::new(1));
//!     b.edges([(a, k), (k, z)])?;
//!     Ok(HeteroDagTask::new(b.build()?, k, Ticks::new(period), Ticks::new(period))?)
//! };
//! let tasks = vec![mk(3, 10)?, mk(4, 20)?];
//!
//! let config = SporadicConfig::new(Platform::with_accelerator(2), Ticks::new(40))
//!     .discipline(Discipline::FixedPriority);
//! let result = simulate_sporadic(&tasks, &config)?;
//! assert!(!result.any_deadline_miss());
//! assert_eq!(result.jobs_of_task(0).count(), 4); // releases at 0, 10, 20, 30
//! # Ok(())
//! # }
//! ```

use std::cmp::Ordering;

use hetrta_dag::{HeteroDagTask, NodeId, Ticks};

use crate::{Platform, SimError};

/// Which global scheduling discipline orders competing jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Discipline {
    /// Global fixed-priority: the position of a task in the input slice is
    /// its priority (index 0 = highest). Use
    /// [`deadline_monotonic_order`] to sort a set first.
    FixedPriority,
    /// Global EDF: jobs are ordered by absolute deadline.
    EarliestDeadlineFirst,
}

/// Whether host nodes may be preempted by higher-priority jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Preemption {
    /// A higher-priority ready node preempts the lowest-priority running
    /// host node (zero cost; the classical global scheduling model that
    /// the analytical tests assume).
    Preemptive,
    /// Nodes run to completion once dispatched (the single-task
    /// simulator's behaviour); exposes priority-inversion blocking that
    /// preemptive analyses do not cover.
    NonPreemptive,
}

/// Configuration of a sporadic task-set simulation.
#[derive(Debug, Clone, Copy)]
pub struct SporadicConfig {
    platform: Platform,
    horizon: Ticks,
    discipline: Discipline,
    preemption: Preemption,
    offload_on_host: bool,
}

impl SporadicConfig {
    /// A preemptive global-FP configuration releasing jobs in `[0, horizon)`.
    #[must_use]
    pub fn new(platform: Platform, horizon: Ticks) -> Self {
        SporadicConfig {
            platform,
            horizon,
            discipline: Discipline::FixedPriority,
            preemption: Preemption::Preemptive,
            offload_on_host: false,
        }
    }

    /// Selects the global scheduling discipline.
    #[must_use]
    pub fn discipline(mut self, d: Discipline) -> Self {
        self.discipline = d;
        self
    }

    /// Selects host-node preemptibility.
    #[must_use]
    pub fn preemption(mut self, p: Preemption) -> Self {
        self.preemption = p;
        self
    }

    /// Runs every offloaded node on the **host** instead of the device —
    /// the homogeneous baseline (no accelerator required).
    #[must_use]
    pub fn offload_on_host(mut self, yes: bool) -> Self {
        self.offload_on_host = yes;
        self
    }

    /// The simulated platform.
    #[must_use]
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Jobs are released at every `k·T_i < horizon`.
    #[must_use]
    pub fn horizon(&self) -> Ticks {
        self.horizon
    }
}

/// The outcome of one job (one release of one task).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobOutcome {
    /// Index of the task in the input slice.
    pub task: usize,
    /// Zero-based job number (release at `job · T`).
    pub job: u64,
    /// Release time.
    pub release: Ticks,
    /// Absolute deadline (`release + D`).
    pub deadline: Ticks,
    /// Completion time of the job's sink, if it completed before the
    /// simulation was cut off.
    pub finish: Option<Ticks>,
}

impl JobOutcome {
    /// Response time `finish − release`, if the job completed.
    #[must_use]
    pub fn response_time(&self) -> Option<Ticks> {
        self.finish.map(|f| f - self.release)
    }

    /// `true` if the job demonstrably missed its deadline: it either
    /// finished after it, or was still incomplete when the simulation
    /// stopped past it.
    #[must_use]
    pub fn missed(&self, cutoff: Ticks) -> bool {
        match self.finish {
            Some(f) => f > self.deadline,
            None => cutoff > self.deadline,
        }
    }
}

/// Result of a sporadic task-set simulation.
#[derive(Debug, Clone)]
pub struct SporadicSimResult {
    jobs: Vec<JobOutcome>,
    cutoff: Ticks,
    segments: Vec<ExecSegment>,
}

impl SporadicSimResult {
    /// All job outcomes, ordered by (release, task).
    #[must_use]
    pub fn jobs(&self) -> &[JobOutcome] {
        &self.jobs
    }

    /// Outcomes of one task's jobs.
    pub fn jobs_of_task(&self, task: usize) -> impl Iterator<Item = &JobOutcome> {
        self.jobs.iter().filter(move |j| j.task == task)
    }

    /// The instant the simulation stopped. All releases happened strictly
    /// before the configured horizon; jobs were allowed to run on until
    /// this (later) cutoff, so an incomplete job with a deadline before
    /// the cutoff is a genuine miss.
    #[must_use]
    pub fn cutoff(&self) -> Ticks {
        self.cutoff
    }

    /// `true` if any job demonstrably missed its deadline.
    #[must_use]
    pub fn any_deadline_miss(&self) -> bool {
        self.jobs.iter().any(|j| j.missed(self.cutoff))
    }

    /// Jobs that demonstrably missed their deadline.
    pub fn misses(&self) -> impl Iterator<Item = &JobOutcome> {
        self.jobs.iter().filter(move |j| j.missed(self.cutoff))
    }

    /// Largest observed response time of `task` across completed jobs;
    /// `None` if no job of the task completed.
    #[must_use]
    pub fn max_response_time(&self, task: usize) -> Option<Ticks> {
        self.jobs_of_task(task)
            .filter_map(JobOutcome::response_time)
            .max()
    }

    /// Every contiguous execution segment recorded during the run,
    /// ordered by start time. Preempted nodes contribute one segment per
    /// contiguous slice; zero-WCET nodes contribute none.
    #[must_use]
    pub fn segments(&self) -> &[ExecSegment] {
        &self.segments
    }

    /// Response-time statistics of `task` over its completed jobs, or
    /// `None` if no job completed.
    #[must_use]
    pub fn response_stats(&self, task: usize) -> Option<ResponseStats> {
        let rts: Vec<Ticks> = self
            .jobs_of_task(task)
            .filter_map(JobOutcome::response_time)
            .collect();
        if rts.is_empty() {
            return None;
        }
        let sum: u64 = rts.iter().map(|r| r.get()).sum();
        Some(ResponseStats {
            completed: rts.len(),
            min: *rts.iter().min().expect("non-empty"),
            max: *rts.iter().max().expect("non-empty"),
            mean: sum as f64 / rts.len() as f64,
        })
    }
}

/// Which resource class an execution segment ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SegmentResource {
    /// One of the `m` host cores.
    Host,
    /// One of the accelerator devices.
    Device,
}

/// One contiguous execution segment of a node (preemption splits a node
/// into several segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExecSegment {
    /// Index of the task in the input slice.
    pub task: usize,
    /// Zero-based job number.
    pub job: u64,
    /// The node that executed.
    pub node: NodeId,
    /// Segment start.
    pub start: Ticks,
    /// Segment end (exclusive).
    pub end: Ticks,
    /// Where it ran.
    pub resource: SegmentResource,
}

/// Aggregate response-time statistics of one task's completed jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseStats {
    /// Number of completed jobs.
    pub completed: usize,
    /// Smallest observed response time.
    pub min: Ticks,
    /// Largest observed response time.
    pub max: Ticks,
    /// Mean observed response time.
    pub mean: f64,
}

/// Sorts task indices by constrained deadline (deadline-monotonic priority
/// order: shortest deadline first, ties by period then input order).
///
/// Returns a permutation: `order[0]` is the index of the highest-priority
/// task. Reorder the slice with this before a
/// [`Discipline::FixedPriority`] simulation or a fixed-priority
/// schedulability test.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
/// use hetrta_sim::sporadic::deadline_monotonic_order;
///
/// # fn mk(d: u64) -> HeteroDagTask {
/// #     let mut b = DagBuilder::new();
/// #     let a = b.node("a", Ticks::new(1));
/// #     let k = b.node("k", Ticks::new(1));
/// #     b.edge(a, k).unwrap();
/// #     HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(d), Ticks::new(d)).unwrap()
/// # }
/// let tasks = vec![mk(30), mk(10), mk(20)];
/// assert_eq!(deadline_monotonic_order(&tasks), vec![1, 2, 0]);
/// ```
#[must_use]
pub fn deadline_monotonic_order(tasks: &[HeteroDagTask]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| (tasks[i].deadline(), tasks[i].period(), i));
    order
}

/// The hyperperiod (LCM of all periods), or `None` if the set is empty, a
/// period is zero, or the LCM overflows `u64`.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
/// use hetrta_sim::sporadic::hyperperiod;
///
/// # fn mk(t: u64) -> HeteroDagTask {
/// #     let mut b = DagBuilder::new();
/// #     let a = b.node("a", Ticks::new(1));
/// #     let k = b.node("k", Ticks::new(1));
/// #     b.edge(a, k).unwrap();
/// #     HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(t), Ticks::new(t)).unwrap()
/// # }
/// let tasks = vec![mk(6), mk(10)];
/// assert_eq!(hyperperiod(&tasks), Some(Ticks::new(30)));
/// ```
#[must_use]
pub fn hyperperiod(tasks: &[HeteroDagTask]) -> Option<Ticks> {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    if tasks.is_empty() {
        return None;
    }
    let mut l: u64 = 1;
    for t in tasks {
        let p = t.period().get();
        if p == 0 {
            return None;
        }
        l = l.checked_div(gcd(l, p))?.checked_mul(p)?;
    }
    Some(Ticks::new(l))
}

/// Validates the recorded execution segments of a simulation against the
/// task set and configuration:
///
/// * every completed job's nodes executed for exactly their WCET, split
///   across one or more segments (exactly one under
///   [`Preemption::NonPreemptive`]);
/// * host segments never overlap on more than `m` cores, device segments
///   never on more than the accelerator count;
/// * precedence: within a job, no node starts before all its
///   predecessors' last segments end;
/// * placement: offloaded nodes run on the device (unless
///   `offload_on_host`), everything else on the host.
///
/// Returns a human-readable description of the first violation. Used by
/// the test suite to certify the simulator itself; exported so downstream
/// users can assert their own runs.
///
/// # Errors
///
/// A description of the first violated property.
pub fn validate_segments(
    tasks: &[HeteroDagTask],
    result: &SporadicSimResult,
    config: &SporadicConfig,
) -> Result<(), String> {
    use std::collections::HashMap;

    // Group segments per (task, job, node).
    let mut per_node: HashMap<(usize, u64, NodeId), Vec<&ExecSegment>> = HashMap::new();
    for s in result.segments() {
        if s.start >= s.end {
            return Err(format!("empty segment {s:?}"));
        }
        per_node.entry((s.task, s.job, s.node)).or_default().push(s);
    }

    for job in result.jobs().iter().filter(|j| j.finish.is_some()) {
        let dag = tasks[job.task].dag();
        let offloaded = tasks[job.task].offloaded();
        for v in dag.node_ids() {
            let wcet = dag.wcet(v);
            let segs = per_node
                .get(&(job.task, job.job, v))
                .map_or(&[][..], Vec::as_slice);
            let total: u64 = segs.iter().map(|s| (s.end - s.start).get()).sum();
            if total != wcet.get() {
                return Err(format!(
                    "task {} job {} node {v}: executed {total} of WCET {wcet}",
                    job.task, job.job
                ));
            }
            if config.preemption == Preemption::NonPreemptive && segs.len() > 1 {
                return Err(format!(
                    "task {} job {} node {v}: {} segments under non-preemptive dispatch",
                    job.task,
                    job.job,
                    segs.len()
                ));
            }
            let expect_device = v == offloaded && !config.offload_on_host;
            for s in segs {
                let on_device = s.resource == SegmentResource::Device;
                if on_device != expect_device {
                    return Err(format!("task {} node {v}: wrong resource {s:?}", job.task));
                }
            }
            // Precedence: first start ≥ every predecessor's last end.
            if let Some(first) = segs.iter().map(|s| s.start).min() {
                for &p in dag.predecessors(v) {
                    if dag.wcet(p).is_zero() {
                        continue; // instant nodes leave no segment
                    }
                    let p_end = per_node
                        .get(&(job.task, job.job, p))
                        .and_then(|ss| ss.iter().map(|s| s.end).max());
                    if let Some(p_end) = p_end {
                        if first < p_end {
                            return Err(format!(
                                "task {} job {}: {v} starts {first} before pred {p} ends {p_end}",
                                job.task, job.job
                            ));
                        }
                    }
                }
            }
        }
    }

    // Capacity: sweep over segment boundaries.
    for (res, cap) in [
        (SegmentResource::Host, config.platform.cores()),
        (SegmentResource::Device, config.platform.accelerators()),
    ] {
        let mut events: Vec<(u64, i64)> = Vec::new();
        for s in result.segments().iter().filter(|s| s.resource == res) {
            events.push((s.start.get(), 1));
            events.push((s.end.get(), -1));
        }
        events.sort_unstable();
        let mut load = 0i64;
        for (t, d) in events {
            load += d;
            if load > cap as i64 {
                return Err(format!("{res:?} overloaded ({load} > {cap}) at t = {t}"));
            }
        }
    }
    Ok(())
}

/// Priority key of a job: smaller sorts first (runs earlier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct JobKey {
    /// FP: task rank; EDF: absolute deadline.
    primary: u64,
    release: u64,
    task: usize,
    job: u64,
}

/// One ready (or preempted) host node of a live job.
#[derive(Debug, Clone, Copy)]
struct ReadyNode {
    key: JobKey,
    /// Readiness order within the job (breadth-first tie-break).
    seq: u64,
    job_slot: usize,
    node: NodeId,
    remaining: u64,
}

impl ReadyNode {
    fn order(&self) -> (JobKey, u64, u32) {
        (self.key, self.seq, self.node.index() as u32)
    }
}

/// A node currently executing on a host core or device.
#[derive(Debug, Clone, Copy)]
struct RunningNode {
    entry: ReadyNode,
    /// When the current execution segment started (for segment recording).
    started_at: u64,
}

/// Live state of one released job.
#[derive(Debug)]
struct JobState {
    task: usize,
    job: u64,
    key: JobKey,
    remaining_preds: Vec<usize>,
    unfinished: usize,
    /// Monotone counter ordering node readiness within the job.
    next_seq: u64,
}

/// Simulates the synchronous periodic execution of `tasks` and reports all
/// job outcomes.
///
/// Every task releases jobs at `0, T, 2T, …` strictly below
/// `config.horizon()`; released jobs then run to completion (the returned
/// [`SporadicSimResult::cutoff`] is the instant the last one finished),
/// unless the backlog diverges, in which case the run is cut off at a
/// safety limit and unfinished jobs are reported as incomplete — under a
/// work-conserving scheduler that only happens for genuinely overloaded
/// sets, whose jobs past their deadline count as misses anyway.
///
/// # Errors
///
/// - [`SimError::ZeroCores`] if the platform has no host core;
/// - [`SimError::NoAccelerator`] if any task offloads and the platform has
///   no device (unless `offload_on_host` is set);
/// - [`SimError::Dag`] if a task's period is zero (wrapped as a
///   structural error) or a graph is cyclic.
pub fn simulate_sporadic(
    tasks: &[HeteroDagTask],
    config: &SporadicConfig,
) -> Result<SporadicSimResult, SimError> {
    simulate_sporadic_with_offsets(tasks, &[], config)
}

/// Like [`simulate_sporadic`] but with per-task **release offsets**: task
/// `i` releases at `offsets[i], offsets[i] + T, …` (a missing entry means
/// offset 0). Offsets must be below the task's period.
///
/// Synchronous release (all offsets zero) is *not* always the worst case
/// under global multiprocessor scheduling, so sound tests should also
/// survive asynchronous patterns — the empirical harnesses sweep a few.
///
/// # Errors
///
/// As [`simulate_sporadic`]; additionally [`SimError::Dag`] if an offset
/// is not below the task's period.
pub fn simulate_sporadic_with_offsets(
    tasks: &[HeteroDagTask],
    offsets: &[Ticks],
    config: &SporadicConfig,
) -> Result<SporadicSimResult, SimError> {
    if config.platform.cores() == 0 {
        return Err(SimError::ZeroCores);
    }
    for (i, t) in tasks.iter().enumerate() {
        if offsets.get(i).copied().unwrap_or(Ticks::ZERO) >= t.period() {
            return Err(SimError::Dag(hetrta_dag::DagError::Empty));
        }
    }
    if !config.offload_on_host && !config.platform.has_accelerator() {
        if let Some(t) = tasks.first() {
            return Err(SimError::NoAccelerator(t.offloaded()));
        }
    }
    for t in tasks {
        if t.period().is_zero() {
            return Err(SimError::Dag(hetrta_dag::DagError::Empty));
        }
    }

    // FP rank = index in the input slice.
    let horizon = config.horizon.get();
    // Safety cutoff: generous; only reached under divergent overload.
    let total_vol: u64 = tasks.iter().map(|t| t.volume().get()).sum();
    let max_d: u64 = tasks.iter().map(|t| t.deadline().get()).max().unwrap_or(0);
    let hard_stop = horizon
        .saturating_add(max_d)
        .saturating_add(total_vol.saturating_mul(horizon.max(1)).min(u64::MAX / 2));

    let mut sim = Sim {
        tasks,
        config,
        jobs: Vec::new(),
        outcomes: Vec::new(),
        ready_host: Vec::new(),
        ready_dev: Vec::new(),
        running_host: Vec::new(),
        running_dev: Vec::new(),
        next_release: tasks
            .iter()
            .enumerate()
            .map(|(i, _)| (offsets.get(i).copied().unwrap_or(Ticks::ZERO).get(), i))
            .collect(),
        offsets,
        segments: Vec::new(),
    };
    sim.next_release.sort();

    let mut now: u64 = 0;
    loop {
        // 1. Release all jobs due now.
        while let Some(&(t, i)) = sim.next_release.first() {
            if t != now || t >= horizon {
                break;
            }
            sim.next_release.remove(0);
            sim.release_job(i, now);
            let next = t + tasks[i].period().get();
            if next < horizon {
                sim.next_release.push((next, i));
                sim.next_release.sort_unstable();
            }
        }

        // 2. Dispatch devices (non-preemptive, priority order).
        sim.ready_dev.sort_unstable_by_key(|a| a.order());
        while sim.running_dev.len() < sim.device_capacity() && !sim.ready_dev.is_empty() {
            let entry = sim.ready_dev.remove(0);
            sim.running_dev.push(RunningNode {
                entry,
                started_at: now,
            });
        }

        // 3. Dispatch host cores.
        let m = config.platform.cores();
        match config.preemption {
            Preemption::Preemptive => {
                // Pool running + ready, keep the m best running; close the
                // execution segment of anything preempted.
                let mut pool: Vec<(ReadyNode, Option<u64>)> = sim
                    .running_host
                    .drain(..)
                    .map(|r| (r.entry, Some(r.started_at)))
                    .collect();
                pool.extend(sim.ready_host.drain(..).map(|e| (e, None)));
                pool.sort_unstable_by_key(|(a, _)| a.order());
                for (i, (entry, started)) in pool.into_iter().enumerate() {
                    if i < m {
                        sim.running_host.push(RunningNode {
                            entry,
                            started_at: started.unwrap_or(now),
                        });
                    } else {
                        if let Some(s) = started {
                            sim.record_segment(&entry, s, now, SegmentResource::Host);
                        }
                        sim.ready_host.push(entry);
                    }
                }
            }
            Preemption::NonPreemptive => {
                sim.ready_host.sort_unstable_by_key(|a| a.order());
                while sim.running_host.len() < m && !sim.ready_host.is_empty() {
                    let entry = sim.ready_host.remove(0);
                    sim.running_host.push(RunningNode {
                        entry,
                        started_at: now,
                    });
                }
            }
        }

        // 4. Advance to the next event.
        let next_finish = sim
            .running_host
            .iter()
            .chain(sim.running_dev.iter())
            .map(|r| r.entry.remaining)
            .min();
        let next_rel = sim
            .next_release
            .first()
            .map(|&(t, _)| t.saturating_sub(now));
        let delta = match (next_finish, next_rel) {
            (Some(f), Some(r)) => f.min(r),
            (Some(f), None) => f,
            (None, Some(r)) => r,
            (None, None) => break, // idle and no more releases: done
        };
        debug_assert!(delta > 0, "zero-delta step would not make progress");
        now += delta;
        if now > hard_stop {
            now -= delta;
            break;
        }

        // 5. Complete nodes that finished at `now`.
        sim.advance_and_complete(delta, now);
    }

    let mut outcomes = std::mem::take(&mut sim.outcomes);
    // Unfinished jobs (divergent overload only).
    for j in &sim.jobs {
        if j.unfinished > 0 {
            outcomes.push(JobOutcome {
                task: j.task,
                job: j.job,
                release: Ticks::new(j.key.release),
                deadline: Ticks::new(j.key.release + tasks[j.task].deadline().get()),
                finish: None,
            });
        }
    }
    outcomes.sort_by_key(|j| (j.release, j.task, j.job));
    let mut segments = std::mem::take(&mut sim.segments);
    segments.sort_by_key(|s| (s.start, s.task, s.job, s.node));
    Ok(SporadicSimResult {
        jobs: outcomes,
        cutoff: Ticks::new(now),
        segments,
    })
}

struct Sim<'a> {
    tasks: &'a [HeteroDagTask],
    config: &'a SporadicConfig,
    /// Live jobs (slots are never reused; finished jobs keep `unfinished == 0`).
    jobs: Vec<JobState>,
    outcomes: Vec<JobOutcome>,
    ready_host: Vec<ReadyNode>,
    ready_dev: Vec<ReadyNode>,
    running_host: Vec<RunningNode>,
    running_dev: Vec<RunningNode>,
    /// Pending (time, task) releases, sorted ascending.
    next_release: Vec<(u64, usize)>,
    /// Per-task release offsets (missing entries mean zero).
    offsets: &'a [Ticks],
    /// Recorded execution segments.
    segments: Vec<ExecSegment>,
}

impl Sim<'_> {
    fn device_capacity(&self) -> usize {
        if self.config.offload_on_host {
            0
        } else {
            self.config.platform.accelerators()
        }
    }

    fn job_key(&self, task: usize, release: u64, job: u64) -> JobKey {
        let primary = match self.config.discipline {
            Discipline::FixedPriority => task as u64,
            Discipline::EarliestDeadlineFirst => release + self.tasks[task].deadline().get(),
        };
        JobKey {
            primary,
            release,
            task,
            job,
        }
    }

    fn release_job(&mut self, task: usize, now: u64) {
        let t = &self.tasks[task];
        let dag = t.dag();
        let n = dag.node_count();
        let offset = self.offsets.get(task).copied().unwrap_or(Ticks::ZERO).get();
        let job_no = (now - offset) / t.period().get();
        let key = self.job_key(task, now, job_no);
        let slot = self.jobs.len();
        self.jobs.push(JobState {
            task,
            job: job_no,
            key,
            remaining_preds: (0..n)
                .map(|i| dag.in_degree(NodeId::from_index(i)))
                .collect(),
            unfinished: n,
            next_seq: 0,
        });
        if n == 0 {
            self.jobs[slot].unfinished = 0;
            self.finish_job(slot, now);
            return;
        }
        for v in dag.sources() {
            self.node_ready(slot, v, now);
        }
    }

    /// A node of job `slot` became ready at `now`.
    fn node_ready(&mut self, slot: usize, v: NodeId, now: u64) {
        let task = self.jobs[slot].task;
        let t = &self.tasks[task];
        let wcet = t.dag().wcet(v).get();
        if wcet == 0 {
            self.complete_node(slot, v, now);
            return;
        }
        let seq = self.jobs[slot].next_seq;
        self.jobs[slot].next_seq += 1;
        let entry = ReadyNode {
            key: self.jobs[slot].key,
            seq,
            job_slot: slot,
            node: v,
            remaining: wcet,
        };
        if !self.config.offload_on_host && v == t.offloaded() {
            self.ready_dev.push(entry);
        } else {
            self.ready_host.push(entry);
        }
    }

    /// Subtracts `delta` from every running node and completes the ones
    /// that reach zero.
    fn record_segment(&mut self, entry: &ReadyNode, start: u64, end: u64, res: SegmentResource) {
        debug_assert!(start < end, "empty execution segment");
        let job = &self.jobs[entry.job_slot];
        self.segments.push(ExecSegment {
            task: job.task,
            job: job.job,
            node: entry.node,
            start: Ticks::new(start),
            end: Ticks::new(end),
            resource: res,
        });
    }

    fn advance_and_complete(&mut self, delta: u64, now: u64) {
        let mut done: Vec<(usize, NodeId)> = Vec::new();
        let mut finished_segments: Vec<(ReadyNode, u64, SegmentResource)> = Vec::new();
        for (list, res) in [
            (&mut self.running_host, SegmentResource::Host),
            (&mut self.running_dev, SegmentResource::Device),
        ] {
            list.retain_mut(|r| {
                r.entry.remaining -= delta;
                if r.entry.remaining == 0 {
                    done.push((r.entry.job_slot, r.entry.node));
                    finished_segments.push((r.entry, r.started_at, res));
                    false
                } else {
                    true
                }
            });
        }
        for (entry, started, res) in finished_segments {
            self.record_segment(&entry, started, now, res);
        }
        // Deterministic completion order: by job key then node id.
        done.sort_by(|a, b| {
            let ka = (self.jobs[a.0].key, a.1.index());
            let kb = (self.jobs[b.0].key, b.1.index());
            ka.cmp(&kb)
        });
        for (slot, v) in done {
            self.complete_node(slot, v, now);
        }
    }

    fn complete_node(&mut self, slot: usize, v: NodeId, now: u64) {
        let task = self.jobs[slot].task;
        self.jobs[slot].unfinished -= 1;
        let succs: Vec<NodeId> = self.tasks[task].dag().successors(v).to_vec();
        for s in succs {
            self.jobs[slot].remaining_preds[s.index()] -= 1;
            if self.jobs[slot].remaining_preds[s.index()] == 0 {
                self.node_ready(slot, s, now);
            }
        }
        if self.jobs[slot].unfinished == 0 {
            self.finish_job(slot, now);
        }
    }

    fn finish_job(&mut self, slot: usize, now: u64) {
        let j = &self.jobs[slot];
        self.outcomes.push(JobOutcome {
            task: j.task,
            job: j.job,
            release: Ticks::new(j.key.release),
            deadline: Ticks::new(j.key.release + self.tasks[j.task].deadline().get()),
            finish: Some(Ticks::new(now)),
        });
    }
}

impl PartialOrd for ReadyNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.order().cmp(&other.order()))
    }
}
impl PartialEq for ReadyNode {
    fn eq(&self, other: &Self) -> bool {
        self.order() == other.order()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::DagBuilder;

    /// `a(1) → k(c_off) → z(1)` with period = deadline = `t`.
    fn chain_task(c_off: u64, t: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(1));
        let k = b.node("k", Ticks::new(c_off));
        let z = b.node("z", Ticks::new(1));
        b.edges([(a, k), (k, z)]).unwrap();
        HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(t), Ticks::new(t)).unwrap()
    }

    /// Fork-join: `src(1) → {p1(w), p2(w), k(c_off)} → sink(1)`.
    fn forkjoin_task(w: u64, c_off: u64, t: u64, d: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::new(1));
        let sink = b.node("sink", Ticks::new(1));
        let k = b.node("k", Ticks::new(c_off));
        b.edges([(src, k), (k, sink)]).unwrap();
        for i in 0..2 {
            let p = b.node(format!("p{i}"), Ticks::new(w));
            b.edges([(src, p), (p, sink)]).unwrap();
        }
        HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(t), Ticks::new(d)).unwrap()
    }

    #[test]
    fn single_task_single_job_matches_single_task_simulator() {
        let task = forkjoin_task(3, 2, 100, 100);
        let config = SporadicConfig::new(Platform::with_accelerator(2), Ticks::new(1));
        let r = simulate_sporadic(std::slice::from_ref(&task), &config).unwrap();
        assert_eq!(r.jobs().len(), 1);
        // src(1); p1 ∥ p2 (3) with k(2) on the device; sink(1): makespan 5.
        assert_eq!(r.jobs()[0].response_time(), Some(Ticks::new(5)));
        assert!(!r.any_deadline_miss());
    }

    #[test]
    fn releases_cover_the_horizon() {
        let tasks = vec![chain_task(2, 10), chain_task(2, 15)];
        let config = SporadicConfig::new(Platform::with_accelerator(2), Ticks::new(30));
        let r = simulate_sporadic(&tasks, &config).unwrap();
        assert_eq!(r.jobs_of_task(0).count(), 3); // 0, 10, 20
        assert_eq!(r.jobs_of_task(1).count(), 2); // 0, 15
        assert!(!r.any_deadline_miss());
    }

    #[test]
    fn overload_misses_are_detected() {
        // Two chains needing the single host core 2 ticks each + exclusive
        // device 8 ticks, period 10: the low-priority task cannot make it.
        let tasks = vec![chain_task(8, 10), chain_task(8, 10)];
        let config = SporadicConfig::new(Platform::with_accelerator(1), Ticks::new(10));
        let r = simulate_sporadic(&tasks, &config).unwrap();
        assert!(r.any_deadline_miss());
        // The high-priority task is fine.
        assert!(r.jobs_of_task(0).all(|j| !j.missed(r.cutoff())));
        assert!(r.jobs_of_task(1).any(|j| j.missed(r.cutoff())));
    }

    #[test]
    fn fp_priority_order_matters() {
        // One core; task 0 hogs it. Swapping the order swaps the victim.
        let heavy = forkjoin_task(4, 1, 12, 12);
        let light = chain_task(1, 12);
        let config = SporadicConfig::new(Platform::with_accelerator(1), Ticks::new(12));
        let r0 = simulate_sporadic(&[heavy.clone(), light.clone()], &config).unwrap();
        let r1 = simulate_sporadic(&[light, heavy], &config).unwrap();
        let heavy_rt_as_hp = r0.max_response_time(0).unwrap();
        let heavy_rt_as_lp = r1.max_response_time(1).unwrap();
        assert!(heavy_rt_as_hp <= heavy_rt_as_lp);
    }

    #[test]
    fn edf_meets_what_fp_misses_here() {
        // Classic: FP with the "wrong" static order misses, EDF adapts.
        // Task 0 (low rate, long deadline) listed first = top FP priority.
        let slow = forkjoin_task(5, 1, 40, 40);
        let fast = chain_task(2, 8);
        let platform = Platform::with_accelerator(1);
        let fp =
            SporadicConfig::new(platform, Ticks::new(40)).discipline(Discipline::FixedPriority);
        let edf = SporadicConfig::new(platform, Ticks::new(40))
            .discipline(Discipline::EarliestDeadlineFirst);
        let r_fp = simulate_sporadic(&[slow.clone(), fast.clone()], &fp).unwrap();
        let r_edf = simulate_sporadic(&[slow, fast], &edf).unwrap();
        let fast_fp = r_fp.max_response_time(1).unwrap();
        let fast_edf = r_edf.max_response_time(1).unwrap();
        assert!(fast_edf <= fast_fp, "EDF {fast_edf} > FP {fast_fp}");
    }

    #[test]
    fn preemptive_no_worse_than_nonpreemptive_for_high_priority() {
        let hp = chain_task(1, 20);
        let lp = forkjoin_task(9, 1, 20, 20);
        let platform = Platform::with_accelerator(1);
        // Release the LP work first is impossible under synchronous
        // arrivals, but non-preemptive dispatch can still block the HP
        // task's later nodes behind LP nodes.
        let pre = SporadicConfig::new(platform, Ticks::new(20));
        let non = pre.preemption(Preemption::NonPreemptive);
        let r_pre = simulate_sporadic(&[hp.clone(), lp.clone()], &pre).unwrap();
        let r_non = simulate_sporadic(&[hp, lp], &non).unwrap();
        assert!(r_pre.max_response_time(0).unwrap() <= r_non.max_response_time(0).unwrap());
    }

    #[test]
    fn shared_device_serializes_offloads() {
        // Two tasks whose offloads overlap; one device: second waits.
        let tasks = vec![chain_task(5, 50), chain_task(5, 50)];
        let one_dev = SporadicConfig::new(Platform::with_accelerator(4), Ticks::new(1));
        let two_dev = SporadicConfig::new(Platform::new(4, 2), Ticks::new(1));
        let r1 = simulate_sporadic(&tasks, &one_dev).unwrap();
        let r2 = simulate_sporadic(&tasks, &two_dev).unwrap();
        let worst1 = r1.max_response_time(1).unwrap();
        let worst2 = r2.max_response_time(1).unwrap();
        assert!(
            worst2 < worst1,
            "extra device should help: {worst2} vs {worst1}"
        );
        assert_eq!(worst1, Ticks::new(12)); // 1 + wait 5 + 5 + 1
        assert_eq!(worst2, Ticks::new(7)); // 1 + 5 + 1
    }

    #[test]
    fn offload_on_host_needs_no_accelerator() {
        let tasks = vec![chain_task(3, 10)];
        let config =
            SporadicConfig::new(Platform::host_only(2), Ticks::new(10)).offload_on_host(true);
        let r = simulate_sporadic(&tasks, &config).unwrap();
        assert_eq!(r.jobs()[0].response_time(), Some(Ticks::new(5)));
    }

    #[test]
    fn missing_accelerator_is_an_error() {
        let tasks = vec![chain_task(3, 10)];
        let config = SporadicConfig::new(Platform::host_only(2), Ticks::new(10));
        assert!(matches!(
            simulate_sporadic(&tasks, &config),
            Err(SimError::NoAccelerator(_))
        ));
    }

    #[test]
    fn zero_cores_is_an_error() {
        let tasks = vec![chain_task(3, 10)];
        let config = SporadicConfig::new(Platform::new(0, 1), Ticks::new(10));
        assert_eq!(
            simulate_sporadic(&tasks, &config).unwrap_err(),
            SimError::ZeroCores
        );
    }

    #[test]
    fn empty_task_set_is_empty_result() {
        let config = SporadicConfig::new(Platform::with_accelerator(2), Ticks::new(100));
        let r = simulate_sporadic(&[], &config).unwrap();
        assert!(r.jobs().is_empty());
        assert!(!r.any_deadline_miss());
    }

    #[test]
    fn response_times_never_exceed_isolated_bound_plus_interference_window() {
        // Sanity: with plenty of cores and devices there is no contention,
        // so every job's response time equals the isolated makespan.
        let tasks = vec![forkjoin_task(3, 2, 20, 20), forkjoin_task(4, 3, 20, 20)];
        let config = SporadicConfig::new(Platform::new(8, 2), Ticks::new(60));
        let r = simulate_sporadic(&tasks, &config).unwrap();
        for j in r.jobs() {
            let iso = if j.task == 0 { 5 } else { 6 };
            assert_eq!(j.response_time(), Some(Ticks::new(iso)));
        }
    }

    #[test]
    fn deadline_monotonic_order_sorts_by_deadline() {
        let tasks = vec![
            forkjoin_task(1, 1, 50, 40),
            forkjoin_task(1, 1, 50, 10),
            forkjoin_task(1, 1, 50, 25),
        ];
        assert_eq!(deadline_monotonic_order(&tasks), vec![1, 2, 0]);
    }

    #[test]
    fn hyperperiod_basics() {
        assert_eq!(hyperperiod(&[]), None);
        let tasks = vec![chain_task(1, 4), chain_task(1, 6)];
        assert_eq!(hyperperiod(&tasks), Some(Ticks::new(12)));
    }

    #[test]
    fn offsets_shift_releases() {
        let tasks = vec![chain_task(2, 10), chain_task(2, 10)];
        let config = SporadicConfig::new(Platform::new(2, 2), Ticks::new(20));
        let r =
            simulate_sporadic_with_offsets(&tasks, &[Ticks::ZERO, Ticks::new(5)], &config).unwrap();
        let releases: Vec<u64> = r.jobs_of_task(1).map(|j| j.release.get()).collect();
        assert_eq!(releases, vec![5, 15]);
        // Job numbering starts at 0 despite the offset.
        assert_eq!(
            r.jobs_of_task(1).map(|j| j.job).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert!(!r.any_deadline_miss());
    }

    #[test]
    fn offset_at_or_past_period_is_rejected() {
        let tasks = vec![chain_task(2, 10)];
        let config = SporadicConfig::new(Platform::with_accelerator(2), Ticks::new(20));
        assert!(simulate_sporadic_with_offsets(&tasks, &[Ticks::new(10)], &config).is_err());
    }

    #[test]
    fn async_release_can_change_response_times() {
        // One core: offsetting the second task away from the first's
        // release avoids the head-of-line contention of the synchronous
        // pattern.
        let tasks = vec![chain_task(4, 20), chain_task(4, 20)];
        let config = SporadicConfig::new(Platform::with_accelerator(1), Ticks::new(20));
        let sync = simulate_sporadic(&tasks, &config).unwrap();
        let async_ =
            simulate_sporadic_with_offsets(&tasks, &[Ticks::ZERO, Ticks::new(10)], &config)
                .unwrap();
        let rt_sync = sync.max_response_time(1).unwrap();
        let rt_async = async_.max_response_time(1).unwrap();
        assert!(
            rt_async < rt_sync,
            "offset should relieve device contention"
        );
    }

    #[test]
    fn segments_validate_across_modes_and_platforms() {
        let tasks = vec![
            forkjoin_task(3, 2, 12, 12),
            chain_task(4, 9),
            forkjoin_task(2, 5, 15, 15),
        ];
        for cores in [1usize, 2, 4] {
            for devices in [1usize, 3] {
                for pre in [Preemption::Preemptive, Preemption::NonPreemptive] {
                    for disc in [Discipline::FixedPriority, Discipline::EarliestDeadlineFirst] {
                        let config =
                            SporadicConfig::new(Platform::new(cores, devices), Ticks::new(36))
                                .preemption(pre)
                                .discipline(disc);
                        let r = simulate_sporadic(&tasks, &config).unwrap();
                        validate_segments(&tasks, &r, &config).unwrap_or_else(|e| {
                            panic!("m={cores} d={devices} {pre:?} {disc:?}: {e}")
                        });
                    }
                }
            }
        }
    }

    #[test]
    fn preemption_splits_segments() {
        // One core: the low-priority fork-join work is preempted by the
        // high-priority task's next release.
        let tasks = vec![chain_task(1, 6), forkjoin_task(7, 1, 40, 40)];
        let config = SporadicConfig::new(Platform::with_accelerator(1), Ticks::new(24));
        let r = simulate_sporadic(&tasks, &config).unwrap();
        validate_segments(&tasks, &r, &config).unwrap();
        // Some node of task 1 must have been split.
        let mut per_node = std::collections::HashMap::new();
        for s in r.segments().iter().filter(|s| s.task == 1) {
            *per_node.entry((s.job, s.node)).or_insert(0) += 1;
        }
        assert!(
            per_node.values().any(|&n| n > 1),
            "expected at least one preemption"
        );
    }

    #[test]
    fn segments_are_sorted_and_cover_wcet() {
        let tasks = vec![forkjoin_task(3, 2, 20, 20)];
        let config = SporadicConfig::new(Platform::with_accelerator(2), Ticks::new(20));
        let r = simulate_sporadic(&tasks, &config).unwrap();
        assert!(r.segments().windows(2).all(|w| w[0].start <= w[1].start));
        let total: u64 = r.segments().iter().map(|s| (s.end - s.start).get()).sum();
        assert_eq!(total, tasks[0].volume().get());
        // The offloaded node ran on the device.
        let k = tasks[0].offloaded();
        assert!(r
            .segments()
            .iter()
            .any(|s| s.node == k && s.resource == SegmentResource::Device));
    }

    #[test]
    fn response_stats_aggregate_correctly() {
        let tasks = vec![chain_task(2, 10), chain_task(6, 15)];
        let config = SporadicConfig::new(Platform::with_accelerator(1), Ticks::new(30));
        let r = simulate_sporadic(&tasks, &config).unwrap();
        let stats = r.response_stats(0).unwrap();
        assert_eq!(stats.completed, 3);
        assert!(stats.min <= stats.max);
        assert!(stats.mean >= stats.min.get() as f64);
        assert!(stats.mean <= stats.max.get() as f64);
        assert_eq!(r.response_stats(99), None);
    }

    #[test]
    fn jobs_sorted_by_release_then_task() {
        let tasks = vec![chain_task(1, 7), chain_task(1, 5)];
        let config = SporadicConfig::new(Platform::with_accelerator(2), Ticks::new(35));
        let r = simulate_sporadic(&tasks, &config).unwrap();
        assert!(r
            .jobs()
            .windows(2)
            .all(|w| (w[0].release, w[0].task) <= (w[1].release, w[1].task)));
        // 35/7 = 5 jobs + 35/5 = 7 jobs
        assert_eq!(r.jobs().len(), 12);
    }
}
