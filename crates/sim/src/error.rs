//! Simulator errors.

use core::fmt;

use hetrta_dag::{DagError, NodeId};

/// Errors produced by the execution simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The platform must have at least one host core.
    ZeroCores,
    /// The DAG is structurally unusable (wrapped cause).
    Dag(DagError),
    /// An offloaded node was designated but the platform has no accelerator.
    NoAccelerator(NodeId),
    /// The simulation stalled with unfinished nodes — indicates a cycle or
    /// an internal bug; reported rather than asserted so that fuzzed inputs
    /// fail cleanly.
    Stalled {
        /// Number of nodes that never became ready.
        unfinished: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ZeroCores => write!(f, "platform must have at least one host core"),
            SimError::Dag(e) => write!(f, "invalid task graph: {e}"),
            SimError::NoAccelerator(v) => {
                write!(
                    f,
                    "node {v} is offloaded but the platform has no accelerator"
                )
            }
            SimError::Stalled { unfinished } => {
                write!(f, "simulation stalled with {unfinished} unfinished nodes")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Dag(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for SimError {
    fn from(e: DagError) -> Self {
        SimError::Dag(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::ZeroCores.to_string(),
            "platform must have at least one host core"
        );
        assert!(SimError::NoAccelerator(NodeId::from_index(3))
            .to_string()
            .contains("n3"));
        assert!(SimError::Stalled { unfinished: 2 }
            .to_string()
            .contains('2'));
    }

    #[test]
    fn error_source() {
        use std::error::Error;
        assert!(SimError::from(DagError::Empty).source().is_some());
        assert!(SimError::ZeroCores.source().is_none());
    }
}
