//! Derived schedule metrics.

use hetrta_dag::{Dag, Rational, Ticks};

use crate::{Resource, SimResult};

/// Aggregate metrics of one simulated schedule.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScheduleMetrics {
    /// Total schedule length.
    pub makespan: Ticks,
    /// Work executed on host cores (sum of host interval lengths).
    pub host_work: Ticks,
    /// Work executed on the accelerator.
    pub accelerator_work: Ticks,
    /// Average host-core utilization over the makespan, in `[0, 1]`.
    pub host_utilization: f64,
    /// Speedup w.r.t. fully sequential execution: `vol(G) / makespan`.
    pub speedup: f64,
    /// Total host idle time (core-ticks with no work while the task ran).
    pub host_idle: Ticks,
}

/// Computes [`ScheduleMetrics`] for a simulation result.
///
/// # Examples
///
/// ```
/// use hetrta_dag::{DagBuilder, Ticks};
/// use hetrta_sim::{metrics::metrics_of, policy::BreadthFirst, simulate, Platform};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new();
/// let f = b.node("f", Ticks::new(2));
/// let x = b.node("x", Ticks::new(4));
/// let y = b.node("y", Ticks::new(4));
/// let j = b.node("j", Ticks::new(2));
/// b.edges([(f, x), (f, y), (x, j), (y, j)])?;
/// let dag = b.build()?;
/// let r = simulate(&dag, None, Platform::host_only(2), &mut BreadthFirst::new())?;
/// let m = metrics_of(&dag, &r);
/// assert_eq!(m.makespan, Ticks::new(8));
/// assert_eq!(m.host_work, Ticks::new(12));
/// assert!((m.speedup - 1.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn metrics_of(dag: &Dag, result: &SimResult) -> ScheduleMetrics {
    let makespan = result.makespan();
    let mut host_work = Ticks::ZERO;
    let mut accelerator_work = Ticks::ZERO;
    for i in result.intervals() {
        let len = i.finish - i.start;
        match i.resource {
            Resource::HostCore(_) => host_work += len,
            Resource::Accelerator(_) => accelerator_work += len,
            Resource::Instant => {}
        }
    }
    let cores = result.platform().cores() as u64;
    let capacity = makespan * cores;
    let host_utilization = if capacity.is_zero() {
        0.0
    } else {
        Rational::new(host_work.get() as i128, capacity.get() as i128).to_f64()
    };
    let speedup = if makespan.is_zero() {
        1.0
    } else {
        dag.volume().as_f64() / makespan.as_f64()
    };
    ScheduleMetrics {
        makespan,
        host_work,
        accelerator_work,
        host_utilization,
        speedup,
        host_idle: capacity - host_work,
    }
}

/// Percentage change of `a` with respect to `b`: `100·(a − b)/b`.
///
/// The paper uses this metric in Figures 6 and 9 ("the percentage change
/// computes the relative change of two values from the same variable").
/// Returns 0 when `b` is zero.
///
/// # Examples
///
/// ```
/// use hetrta_sim::metrics::percentage_change;
///
/// assert_eq!(percentage_change(12.0, 10.0), 20.0);
/// assert_eq!(percentage_change(8.0, 10.0), -20.0);
/// ```
#[must_use]
pub fn percentage_change(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        100.0 * (a - b) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BreadthFirst;
    use crate::{simulate, Platform};
    use hetrta_dag::DagBuilder;

    #[test]
    fn hetero_metrics_split_work() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let k = b.node("k", Ticks::new(6));
        let h = b.node("h", Ticks::new(6));
        let z = b.node("z", Ticks::new(2));
        b.edges([(a, k), (a, h), (k, z), (h, z)]).unwrap();
        let dag = b.build().unwrap();
        let r = simulate(
            &dag,
            Some(k),
            Platform::with_accelerator(1),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        let m = metrics_of(&dag, &r);
        assert_eq!(m.accelerator_work, Ticks::new(6));
        assert_eq!(m.host_work, Ticks::new(10));
        assert_eq!(m.makespan, Ticks::new(10)); // a(2), h ∥ k (6), z(2)
        assert_eq!(m.host_idle, Ticks::ZERO);
        assert!((m.host_utilization - 1.0).abs() < 1e-9);
        assert!((m.speedup - 1.6).abs() < 1e-9);
    }

    #[test]
    fn idle_time_accounts_for_unused_capacity() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(4));
        let z = b.node("z", Ticks::new(4));
        b.edge(a, z).unwrap();
        let dag = b.build().unwrap();
        let r = simulate(&dag, None, Platform::host_only(2), &mut BreadthFirst::new()).unwrap();
        let m = metrics_of(&dag, &r);
        assert_eq!(m.makespan, Ticks::new(8));
        assert_eq!(m.host_idle, Ticks::new(8)); // second core never used
        assert!((m.host_utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_metrics_are_neutral() {
        let dag = Dag::new();
        let r = simulate(&dag, None, Platform::host_only(2), &mut BreadthFirst::new()).unwrap();
        let m = metrics_of(&dag, &r);
        assert_eq!(m.makespan, Ticks::ZERO);
        assert_eq!(m.host_utilization, 0.0);
        assert_eq!(m.speedup, 1.0);
    }

    #[test]
    fn percentage_change_edge_cases() {
        assert_eq!(percentage_change(5.0, 0.0), 0.0);
        assert_eq!(percentage_change(10.0, 10.0), 0.0);
        assert!(percentage_change(24.8, 20.0) > 0.0);
    }

    use hetrta_dag::Dag;
}
