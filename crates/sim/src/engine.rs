//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hetrta_dag::{Dag, DagError, HeteroDagTask, NodeId, Ticks};

use crate::policy::{Policy, PolicyContext};
use crate::SimError;

/// The simulated platform: `m` identical host cores plus zero or more
/// accelerator devices.
///
/// The paper's platform is `Platform::with_accelerator(m)` (one device);
/// multi-device platforms support the paper's future-work direction
/// "(ii) more devices in the heterogeneous architecture".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Platform {
    cores: usize,
    accelerators: usize,
}

impl Platform {
    /// A homogeneous host with `cores` cores and no accelerator.
    #[must_use]
    pub fn host_only(cores: usize) -> Self {
        Platform {
            cores,
            accelerators: 0,
        }
    }

    /// The paper's platform: `cores` host cores plus one accelerator.
    #[must_use]
    pub fn with_accelerator(cores: usize) -> Self {
        Platform {
            cores,
            accelerators: 1,
        }
    }

    /// A general platform with `cores` host cores and `accelerators`
    /// identical devices.
    #[must_use]
    pub fn new(cores: usize, accelerators: usize) -> Self {
        Platform {
            cores,
            accelerators,
        }
    }

    /// Number of host cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Number of accelerator devices.
    #[must_use]
    pub fn accelerators(&self) -> usize {
        self.accelerators
    }

    /// `true` if the platform has at least one accelerator device.
    #[must_use]
    pub fn has_accelerator(&self) -> bool {
        self.accelerators > 0
    }
}

/// Where a node executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Resource {
    /// A host core (0-based index).
    HostCore(usize),
    /// An accelerator device (0-based index; the paper's single device is
    /// index 0).
    Accelerator(usize),
    /// Completed instantaneously (zero-WCET nodes such as `v_sync` and
    /// dummy terminals occupy no resource).
    Instant,
}

/// One executed node: `[start, finish)` on a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Interval {
    /// The node that executed.
    pub node: NodeId,
    /// Start time.
    pub start: Ticks,
    /// Finish time (`start + C_v`).
    pub finish: Ticks,
    /// Where it ran.
    pub resource: Resource,
    /// When the node's last predecessor finished (readiness time).
    pub ready: Ticks,
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    makespan: Ticks,
    intervals: Vec<Interval>,
    policy: &'static str,
    platform: Platform,
}

impl SimResult {
    /// The makespan (response time of the single job instance).
    #[must_use]
    pub fn makespan(&self) -> Ticks {
        self.makespan
    }

    /// Per-node execution intervals, ordered by start time (ties by node).
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The interval of a specific node, if it executed.
    #[must_use]
    pub fn interval_of(&self, node: NodeId) -> Option<&Interval> {
        self.intervals.iter().find(|i| i.node == node)
    }

    /// Name of the policy that produced this schedule.
    #[must_use]
    pub fn policy(&self) -> &'static str {
        self.policy
    }

    /// The platform the schedule ran on.
    #[must_use]
    pub fn platform(&self) -> Platform {
        self.platform
    }
}

/// Simulates the execution of `dag` on `platform` under `policy`, with one
/// optional offloaded node (the paper's model).
///
/// * `offloaded` — the node executing on the accelerator (`None` simulates
///   fully homogeneous execution, e.g. the `R_hom` baseline);
/// * every node executes for exactly its WCET (the paper's §5.2 setting);
/// * scheduling is non-preemptive and work-conserving: a free core
///   immediately takes a ready node, chosen by `policy`;
/// * an offloaded node starts the moment its predecessors finish whenever a
///   device is free (with a single offloaded node it therefore never
///   waits);
/// * zero-WCET nodes complete instantly without occupying a core
///   (synchronization points are dependency constructs, not work).
///
/// # Errors
///
/// - [`SimError::ZeroCores`] if the platform has no host core;
/// - [`SimError::NoAccelerator`] if `offloaded` is set on a host-only
///   platform;
/// - [`SimError::Dag`] if `offloaded` is not a node of `dag`;
/// - [`SimError::Stalled`] if the graph has a cycle.
pub fn simulate(
    dag: &Dag,
    offloaded: Option<NodeId>,
    platform: Platform,
    policy: &mut dyn Policy,
) -> Result<SimResult, SimError> {
    match offloaded {
        Some(off) => simulate_multi(dag, &[off], platform, policy),
        None => simulate_multi(dag, &[], platform, policy),
    }
}

/// Simulates `dag` with a *set* of offloaded nodes sharing the platform's
/// accelerator pool (extension of the paper's model; its future work (i)
/// and (ii)).
///
/// Offloaded nodes that become ready while every device is busy queue in
/// FIFO readiness order (ties broken by node id) — the device pool is
/// work-conserving just like the host.
///
/// # Errors
///
/// As [`simulate`], plus [`SimError::NoAccelerator`] if `offloaded` is
/// non-empty and the platform has no device.
pub fn simulate_multi(
    dag: &Dag,
    offloaded: &[NodeId],
    platform: Platform,
    policy: &mut dyn Policy,
) -> Result<SimResult, SimError> {
    let mut ws = SimWorkspace::new();
    run_event_loop(&mut ws, dag, offloaded, platform, policy)?;
    let makespan = ws
        .intervals
        .iter()
        .map(|i| i.finish)
        .max()
        .unwrap_or(Ticks::ZERO);
    let mut intervals = std::mem::take(&mut ws.intervals);
    intervals.sort_by_key(|i| (i.start, i.node));
    Ok(SimResult {
        makespan,
        intervals,
        policy: policy.name(),
        platform,
    })
}

/// Simulates `dag` and returns only the makespan, reusing `ws` for every
/// queue, heap and per-node array — the steady-state allocation count of a
/// warm workspace is zero, which is what the batch engine's per-worker
/// workspaces rely on.
///
/// Produces exactly the makespan [`simulate`] would report for the same
/// arguments (pinned by tests).
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_makespan(
    ws: &mut SimWorkspace,
    dag: &Dag,
    offloaded: Option<NodeId>,
    platform: Platform,
    policy: &mut dyn Policy,
) -> Result<Ticks, SimError> {
    let storage;
    let offloaded: &[NodeId] = match offloaded {
        Some(off) => {
            storage = [off];
            &storage
        }
        None => &[],
    };
    run_event_loop(ws, dag, offloaded, platform, policy)?;
    Ok(ws
        .intervals
        .iter()
        .map(|i| i.finish)
        .max()
        .unwrap_or(Ticks::ZERO))
}

/// Reusable scratch state of the simulation event loop: per-node arrays,
/// ready queues, resource heaps, and the interval log.
///
/// One workspace serves any number of sequential simulations of any
/// graphs/platforms; each run resets (but does not reallocate) the
/// buffers. Owned per worker thread by batch engines so steady-state
/// sweeps do near-zero heap allocation per simulated task.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    is_offloaded: Vec<bool>,
    remaining_preds: Vec<u32>,
    ready_time: Vec<Ticks>,
    intervals: Vec<Interval>,
    finished: usize,
    free_cores: BinaryHeap<Reverse<usize>>,
    free_accels: BinaryHeap<Reverse<usize>>,
    running: BinaryHeap<Reverse<(u64, u32, ResourceKey)>>,
    ready_host: Vec<NodeId>,
    ready_accel: Vec<NodeId>,
}

impl SimWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    fn reset(&mut self, dag: &Dag, offloaded: &[NodeId], platform: Platform) {
        let n = dag.node_count();
        self.is_offloaded.clear();
        self.is_offloaded.resize(n, false);
        for &off in offloaded {
            self.is_offloaded[off.index()] = true;
        }
        self.remaining_preds.clear();
        self.remaining_preds
            .extend((0..n).map(|i| dag.in_degree(NodeId::from_index(i)) as u32));
        self.ready_time.clear();
        self.ready_time.resize(n, Ticks::ZERO);
        self.intervals.clear();
        self.intervals.reserve(n);
        self.finished = 0;
        self.free_cores.clear();
        self.free_cores.extend((0..platform.cores()).map(Reverse));
        self.free_accels.clear();
        self.free_accels
            .extend((0..platform.accelerators()).map(Reverse));
        self.running.clear();
        self.ready_host.clear();
        self.ready_accel.clear();
    }
}

/// Runs the event loop into `ws` (validation, policy preparation, reset,
/// execution, stall check). `ws.intervals` holds every executed interval
/// in completion order afterwards.
fn run_event_loop(
    ws: &mut SimWorkspace,
    dag: &Dag,
    offloaded: &[NodeId],
    platform: Platform,
    policy: &mut dyn Policy,
) -> Result<(), SimError> {
    if platform.cores() == 0 {
        return Err(SimError::ZeroCores);
    }
    for &off in offloaded {
        if !dag.contains_node(off) {
            return Err(SimError::Dag(DagError::UnknownNode(off)));
        }
        if !platform.has_accelerator() {
            return Err(SimError::NoAccelerator(off));
        }
    }
    policy.prepare(dag);

    let n = dag.node_count();
    ws.reset(dag, offloaded, platform);
    let mut engine = EngineRun { dag, ws };

    let mut now = Ticks::ZERO;
    for v in dag.sources() {
        engine.release(v, now);
    }

    loop {
        // Start device work (FIFO over the device-ready queue).
        while !engine.ws.ready_accel.is_empty() && !engine.ws.free_accels.is_empty() {
            let v = engine.ws.ready_accel.remove(0);
            let Reverse(dev) = engine.ws.free_accels.pop().expect("checked non-empty");
            engine.start(v, now, ResourceKey::Accel(dev));
        }
        // Start host work while cores are free (work conservation).
        while !engine.ws.ready_host.is_empty() && !engine.ws.free_cores.is_empty() {
            let ctx = PolicyContext {
                dag,
                now: now.get(),
            };
            let idx = policy.choose(&engine.ws.ready_host, &ctx);
            assert!(
                idx < engine.ws.ready_host.len(),
                "policy {} returned out-of-range index",
                policy.name()
            );
            let v = engine.ws.ready_host.remove(idx);
            let Reverse(core) = engine.ws.free_cores.pop().expect("checked non-empty");
            engine.start(v, now, ResourceKey::Host(core));
        }

        let Some(Reverse((finish, vi, res))) = engine.ws.running.pop() else {
            break;
        };
        now = Ticks::new(finish);
        match res {
            ResourceKey::Host(core) => engine.ws.free_cores.push(Reverse(core)),
            ResourceKey::Accel(dev) => engine.ws.free_accels.push(Reverse(dev)),
        }
        engine.ws.finished += 1;
        let v = NodeId::from_index(vi as usize);
        for &s in dag.successors(v) {
            engine.ws.remaining_preds[s.index()] -= 1;
            if engine.ws.remaining_preds[s.index()] == 0 {
                engine.release(s, now);
            }
        }
    }

    if ws.finished != n {
        return Err(SimError::Stalled {
            unfinished: n - ws.finished,
        });
    }
    Ok(())
}

/// Internal ordering key so simultaneous completions resolve
/// deterministically (host cores before accelerators, then node id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ResourceKey {
    Host(usize),
    Accel(usize),
}

struct EngineRun<'a, 'w> {
    dag: &'a Dag,
    ws: &'w mut SimWorkspace,
}

impl EngineRun<'_, '_> {
    fn start(&mut self, v: NodeId, now: Ticks, key: ResourceKey) {
        let finish = now + self.dag.wcet(v);
        self.ws
            .running
            .push(Reverse((finish.get(), v.index() as u32, key)));
        let resource = match key {
            ResourceKey::Host(c) => Resource::HostCore(c),
            ResourceKey::Accel(d) => Resource::Accelerator(d),
        };
        self.ws.intervals.push(Interval {
            node: v,
            start: now,
            finish,
            resource,
            ready: self.ws.ready_time[v.index()],
        });
    }

    /// A node became ready: dispatch to a device queue, instant-complete,
    /// or queue for the host.
    fn release(&mut self, v: NodeId, now: Ticks) {
        self.ws.ready_time[v.index()] = now;
        let wcet = self.dag.wcet(v);
        if wcet.is_zero() {
            self.ws.intervals.push(Interval {
                node: v,
                start: now,
                finish: now,
                resource: Resource::Instant,
                ready: now,
            });
            self.ws.finished += 1;
            for i in 0..self.dag.successors(v).len() {
                let s = self.dag.successors(v)[i];
                self.ws.remaining_preds[s.index()] -= 1;
                if self.ws.remaining_preds[s.index()] == 0 {
                    self.release(s, now);
                }
            }
        } else if self.ws.is_offloaded[v.index()] {
            self.ws.ready_accel.push(v);
        } else {
            self.ws.ready_host.push(v);
        }
    }
}

/// Simulates a [`HeteroDagTask`] on `cores` host cores plus the accelerator.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_hetero_task(
    task: &HeteroDagTask,
    cores: usize,
    policy: &mut dyn Policy,
) -> Result<SimResult, SimError> {
    simulate(
        task.dag(),
        Some(task.offloaded()),
        Platform::with_accelerator(cores),
        policy,
    )
}

/// Runs the deterministic policies plus `random_seeds` seeded random
/// tie-breakers and returns the schedule with the **largest** makespan —
/// an empirical lower bound on the true worst case over work-conserving
/// schedulers, used to probe the tightness of `R_hom` / `R_het`.
///
/// # Errors
///
/// See [`simulate`].
pub fn explore_worst_case(
    dag: &Dag,
    offloaded: Option<NodeId>,
    platform: Platform,
    random_seeds: u64,
) -> Result<SimResult, SimError> {
    use crate::policy::{BreadthFirst, CriticalPathFirst, DepthFirst, RandomTieBreak};
    let mut worst = simulate(dag, offloaded, platform, &mut BreadthFirst::new())?;
    for result in [
        simulate(dag, offloaded, platform, &mut DepthFirst::new())?,
        simulate(dag, offloaded, platform, &mut CriticalPathFirst::new())?,
    ] {
        if result.makespan() > worst.makespan() {
            worst = result;
        }
    }
    for seed in 0..random_seeds {
        let result = simulate(dag, offloaded, platform, &mut RandomTieBreak::new(seed))?;
        if result.makespan() > worst.makespan() {
            worst = result;
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BreadthFirst, CriticalPathFirst, DepthFirst};
    use hetrta_dag::DagBuilder;

    /// Figure 1(a) of the paper with the reconstructed WCETs
    /// (C1=1, C2=4, C3=6, C4=2, C5=1, C_off=4).
    fn figure1() -> (Dag, [NodeId; 6]) {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        (b.build().unwrap(), [v1, v2, v3, v4, v5, voff])
    }

    #[test]
    fn chain_runs_sequentially() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let c = b.node("c", Ticks::new(3));
        b.edge(a, c).unwrap();
        let dag = b.build().unwrap();
        let r = simulate(&dag, None, Platform::host_only(4), &mut BreadthFirst::new()).unwrap();
        assert_eq!(r.makespan(), Ticks::new(5));
        assert_eq!(r.interval_of(a).unwrap().start, Ticks::ZERO);
        assert_eq!(r.interval_of(c).unwrap().start, Ticks::new(2));
    }

    #[test]
    fn parallel_branches_use_both_cores() {
        let mut b = DagBuilder::new();
        let f = b.node("f", Ticks::ONE);
        let x = b.node("x", Ticks::new(3));
        let y = b.node("y", Ticks::new(3));
        let j = b.node("j", Ticks::ONE);
        b.edges([(f, x), (f, y), (x, j), (y, j)]).unwrap();
        let dag = b.build().unwrap();
        let r = simulate(&dag, None, Platform::host_only(2), &mut BreadthFirst::new()).unwrap();
        assert_eq!(r.makespan(), Ticks::new(5));
        let (ix, iy) = (r.interval_of(x).unwrap(), r.interval_of(y).unwrap());
        assert_eq!(ix.start, iy.start);
        assert_ne!(ix.resource, iy.resource);
        let r1 = simulate(&dag, None, Platform::host_only(1), &mut BreadthFirst::new()).unwrap();
        assert_eq!(r1.makespan(), Ticks::new(8));
    }

    #[test]
    fn figure1_breadth_first_hits_worst_case_12() {
        let (dag, [_, _, _, _, _, voff]) = figure1();
        let r = simulate(
            &dag,
            Some(voff),
            Platform::with_accelerator(2),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        assert_eq!(r.makespan(), Ticks::new(12));
        assert_eq!(
            r.interval_of(voff).unwrap().resource,
            Resource::Accelerator(0)
        );
    }

    #[test]
    fn figure1_critical_path_first_achieves_8() {
        let (dag, [_, _, _, _, _, voff]) = figure1();
        let r = simulate(
            &dag,
            Some(voff),
            Platform::with_accelerator(2),
            &mut CriticalPathFirst::new(),
        )
        .unwrap();
        assert_eq!(r.makespan(), Ticks::new(8));
    }

    #[test]
    fn figure1_worst_case_exploration_bounded_by_r_hom() {
        let (dag, [_, _, _, _, _, voff]) = figure1();
        let worst =
            explore_worst_case(&dag, Some(voff), Platform::with_accelerator(2), 200).unwrap();
        assert!(worst.makespan() >= Ticks::new(12));
        assert!(worst.makespan() <= Ticks::new(13));
    }

    #[test]
    fn offloaded_node_starts_immediately_when_ready() {
        let (dag, [v1, _, _, v4, _, voff]) = figure1();
        let r = simulate(
            &dag,
            Some(voff),
            Platform::with_accelerator(1),
            &mut DepthFirst::new(),
        )
        .unwrap();
        let ioff = r.interval_of(voff).unwrap();
        let iv4 = r.interval_of(v4).unwrap();
        assert_eq!(ioff.start, iv4.finish);
        let _ = v1;
    }

    #[test]
    fn homogeneous_execution_puts_offloaded_on_host() {
        let (dag, [_, _, _, _, _, voff]) = figure1();
        let r = simulate(&dag, None, Platform::host_only(2), &mut BreadthFirst::new()).unwrap();
        assert!(matches!(
            r.interval_of(voff).unwrap().resource,
            Resource::HostCore(_)
        ));
        assert!(r.makespan() <= Ticks::new(13));
    }

    #[test]
    fn zero_wcet_nodes_complete_instantly_without_core() {
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ZERO);
        let a = b.node("a", Ticks::new(2));
        let c = b.node("c", Ticks::new(2));
        b.edges([(src, a), (src, c)]).unwrap();
        b.allow_multiple_sources_and_sinks();
        let dag = b.build().unwrap();
        let r = simulate(&dag, None, Platform::host_only(1), &mut BreadthFirst::new()).unwrap();
        assert_eq!(r.interval_of(src).unwrap().resource, Resource::Instant);
        assert_eq!(r.makespan(), Ticks::new(4));
    }

    #[test]
    fn chained_zero_wcet_nodes_cascade() {
        let mut b = DagBuilder::new();
        let s0 = b.node("s0", Ticks::ZERO);
        let s1 = b.node("s1", Ticks::ZERO);
        let a = b.node("a", Ticks::new(3));
        b.edges([(s0, s1), (s1, a)]).unwrap();
        let dag = b.build().unwrap();
        let r = simulate(&dag, None, Platform::host_only(1), &mut BreadthFirst::new()).unwrap();
        assert_eq!(r.makespan(), Ticks::new(3));
        assert_eq!(r.interval_of(a).unwrap().start, Ticks::ZERO);
    }

    #[test]
    fn errors_are_reported() {
        let (dag, [_, _, _, _, _, voff]) = figure1();
        assert_eq!(
            simulate(&dag, None, Platform::host_only(0), &mut BreadthFirst::new()).unwrap_err(),
            SimError::ZeroCores
        );
        assert_eq!(
            simulate(
                &dag,
                Some(voff),
                Platform::host_only(2),
                &mut BreadthFirst::new()
            )
            .unwrap_err(),
            SimError::NoAccelerator(voff)
        );
        let bogus = NodeId::from_index(400);
        assert!(matches!(
            simulate(
                &dag,
                Some(bogus),
                Platform::with_accelerator(2),
                &mut BreadthFirst::new()
            ),
            Err(SimError::Dag(DagError::UnknownNode(_)))
        ));
    }

    #[test]
    fn cycle_stalls_cleanly() {
        let mut dag = Dag::new();
        let a = dag.add_node(Ticks::ONE);
        let b = dag.add_node(Ticks::ONE);
        dag.add_edge(a, b).unwrap();
        dag.add_edge(b, a).unwrap();
        assert!(matches!(
            simulate(&dag, None, Platform::host_only(1), &mut BreadthFirst::new()),
            Err(SimError::Stalled { unfinished: 2 })
        ));
    }

    #[test]
    fn empty_dag_has_zero_makespan() {
        let dag = Dag::new();
        let r = simulate(&dag, None, Platform::host_only(1), &mut BreadthFirst::new()).unwrap();
        assert_eq!(r.makespan(), Ticks::ZERO);
        assert!(r.intervals().is_empty());
    }

    #[test]
    fn intervals_sorted_and_complete() {
        let (dag, _) = figure1();
        let r = simulate(&dag, None, Platform::host_only(3), &mut BreadthFirst::new()).unwrap();
        assert_eq!(r.intervals().len(), dag.node_count());
        assert!(r.intervals().windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(r.platform(), Platform::host_only(3));
        assert_eq!(r.policy(), "breadth-first");
    }

    #[test]
    fn more_cores_never_needed_beyond_width() {
        let (dag, _) = figure1();
        let r4 = simulate(&dag, None, Platform::host_only(4), &mut BreadthFirst::new()).unwrap();
        let r16 = simulate(
            &dag,
            None,
            Platform::host_only(16),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        assert_eq!(r4.makespan(), r16.makespan());
        assert_eq!(r16.makespan(), Ticks::new(8));
    }

    // ---- multi-offload / multi-device (extension) ----

    /// src → {k1, k2, h} → sink with k1, k2 offloaded.
    fn two_kernel_dag() -> (Dag, [NodeId; 5]) {
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ONE);
        let k1 = b.node("k1", Ticks::new(6));
        let k2 = b.node("k2", Ticks::new(6));
        let h = b.node("h", Ticks::new(4));
        let sink = b.node("sink", Ticks::ONE);
        b.edges([
            (src, k1),
            (src, k2),
            (src, h),
            (k1, sink),
            (k2, sink),
            (h, sink),
        ])
        .unwrap();
        (b.build().unwrap(), [src, k1, k2, h, sink])
    }

    #[test]
    fn single_device_serializes_two_kernels() {
        let (dag, [_, k1, k2, _, _]) = two_kernel_dag();
        let r = simulate_multi(
            &dag,
            &[k1, k2],
            Platform::with_accelerator(1),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        // k1 runs 1..7, k2 queues and runs 7..13, sink at 13..14.
        assert_eq!(r.makespan(), Ticks::new(14));
        assert_eq!(r.interval_of(k2).unwrap().start, Ticks::new(7));
        assert_eq!(
            r.interval_of(k2).unwrap().resource,
            Resource::Accelerator(0)
        );
    }

    #[test]
    fn two_devices_run_kernels_in_parallel() {
        let (dag, [_, k1, k2, _, _]) = two_kernel_dag();
        let r = simulate_multi(
            &dag,
            &[k1, k2],
            Platform::new(1, 2),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        // both kernels run 1..7 on different devices; sink at 7..8
        assert_eq!(r.makespan(), Ticks::new(8));
        let (i1, i2) = (r.interval_of(k1).unwrap(), r.interval_of(k2).unwrap());
        assert_eq!(i1.start, i2.start);
        assert_ne!(i1.resource, i2.resource);
    }

    #[test]
    fn device_queue_is_work_conserving_fifo() {
        let (dag, [_, k1, k2, h, _]) = two_kernel_dag();
        let r = simulate_multi(
            &dag,
            &[k1, k2],
            Platform::with_accelerator(2),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        // the device never idles while a kernel waits
        let i1 = r.interval_of(k1).unwrap();
        let i2 = r.interval_of(k2).unwrap();
        assert_eq!(i2.start, i1.finish);
        // host node unaffected
        assert_eq!(r.interval_of(h).unwrap().resource, Resource::HostCore(0));
    }

    #[test]
    fn workspace_makespan_matches_simulate() {
        // One warm workspace across graphs, platforms and policies must
        // reproduce the makespan of the allocating path exactly.
        let (fig, [_, _, _, _, _, voff]) = figure1();
        let (two, [_, k1, _, _, _]) = two_kernel_dag();
        let mut ws = SimWorkspace::new();
        for m in [1usize, 2, 4] {
            for (dag, off) in [
                (&fig, Some(voff)),
                (&fig, None),
                (&two, Some(k1)),
                (&two, None),
            ] {
                let platform = if off.is_some() {
                    Platform::with_accelerator(m)
                } else {
                    Platform::host_only(m)
                };
                let full = simulate(dag, off, platform, &mut BreadthFirst::new()).unwrap();
                let fast = simulate_makespan(&mut ws, dag, off, platform, &mut BreadthFirst::new())
                    .unwrap();
                assert_eq!(full.makespan(), fast);
                let fast_dfs =
                    simulate_makespan(&mut ws, dag, off, platform, &mut DepthFirst::new()).unwrap();
                let full_dfs = simulate(dag, off, platform, &mut DepthFirst::new()).unwrap();
                assert_eq!(full_dfs.makespan(), fast_dfs);
            }
        }
    }

    #[test]
    fn workspace_errors_match_simulate() {
        let (dag, [_, _, _, _, _, voff]) = figure1();
        let mut ws = SimWorkspace::new();
        assert_eq!(
            simulate_makespan(
                &mut ws,
                &dag,
                None,
                Platform::host_only(0),
                &mut BreadthFirst::new()
            )
            .unwrap_err(),
            SimError::ZeroCores
        );
        assert_eq!(
            simulate_makespan(
                &mut ws,
                &dag,
                Some(voff),
                Platform::host_only(2),
                &mut BreadthFirst::new()
            )
            .unwrap_err(),
            SimError::NoAccelerator(voff)
        );
    }

    #[test]
    fn empty_offload_set_equals_homogeneous() {
        let (dag, _) = two_kernel_dag();
        let a =
            simulate_multi(&dag, &[], Platform::host_only(2), &mut BreadthFirst::new()).unwrap();
        let b = simulate(&dag, None, Platform::host_only(2), &mut BreadthFirst::new()).unwrap();
        assert_eq!(a.makespan(), b.makespan());
    }
}
