//! Soundness of the analytical bounds against simulated execution.
//!
//! These are the load-bearing correctness tests of the whole reproduction:
//! for randomly generated tasks and every scheduling policy,
//!
//! * the homogeneous bound `R_hom(τ)` (Eq. 1) dominates any work-conserving
//!   schedule of `τ` — both fully on the host and with `v_off` on the
//!   accelerator;
//! * the heterogeneous bound `R_het(τ')` (Theorem 1) dominates any
//!   work-conserving schedule of the transformed task `τ'`;
//! * simulated makespans never drop below the trivial lower bounds.

use hetrta_core::{r_het, r_hom_dag, transform};
use hetrta_dag::{HeteroDagTask, Rational, Ticks};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::policy::{BreadthFirst, CriticalPathFirst, DepthFirst, Policy, RandomTieBreak};
use hetrta_sim::trace::validate_schedule;
use hetrta_sim::{explore_worst_case, simulate, Platform};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_task(seed: u64, fraction: f64) -> HeteroDagTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(&NfjParams::small_tasks(), &mut rng).expect("generation succeeds");
    if dag.node_count() < 3 {
        return random_task(seed.wrapping_add(0x9e37_79b9), fraction);
    }
    make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(fraction),
        &mut rng,
    )
    .expect("offload assignment succeeds")
}

fn policies(seed: u64) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(BreadthFirst::new()),
        Box::new(DepthFirst::new()),
        Box::new(CriticalPathFirst::new()),
        Box::new(RandomTieBreak::new(seed)),
        Box::new(RandomTieBreak::new(seed.wrapping_mul(31).wrapping_add(7))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn r_hom_bounds_homogeneous_execution(seed in 0u64..4000, pct in 1u32..70, m in 1usize..17) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let bound = r_hom_dag(task.dag(), m as u64).unwrap();
        for mut p in policies(seed) {
            let r = simulate(task.dag(), None, Platform::host_only(m), p.as_mut()).unwrap();
            prop_assert!(
                r.makespan().to_rational() <= bound,
                "{}: makespan {} > R_hom {}", p.name(), r.makespan(), bound
            );
            validate_schedule(task.dag(), None, &r).unwrap();
        }
    }

    #[test]
    fn r_hom_bounds_heterogeneous_execution_of_original(seed in 0u64..4000, pct in 1u32..70, m in 1usize..17) {
        // Offloading can only reduce host interference; R_hom(τ) stays sound
        // for the *untransformed* heterogeneous execution (paper §3.2).
        let task = random_task(seed, f64::from(pct) / 100.0);
        let bound = r_hom_dag(task.dag(), m as u64).unwrap();
        for mut p in policies(seed) {
            let r = simulate(
                task.dag(), Some(task.offloaded()), Platform::with_accelerator(m), p.as_mut(),
            ).unwrap();
            prop_assert!(
                r.makespan().to_rational() <= bound,
                "{}: het makespan {} > R_hom {}", p.name(), r.makespan(), bound
            );
            validate_schedule(task.dag(), Some(task.offloaded()), &r).unwrap();
        }
    }

    #[test]
    fn r_het_bounds_transformed_execution(seed in 0u64..4000, pct in 1u32..70, m in 1usize..17) {
        // The paper's Theorem 1: R_het(τ') dominates every work-conserving
        // schedule of the transformed task on m cores + accelerator.
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).unwrap();
        let bound = r_het(&t, m as u64).unwrap();
        for mut p in policies(seed) {
            let r = simulate(
                t.transformed(), Some(task.offloaded()), Platform::with_accelerator(m), p.as_mut(),
            ).unwrap();
            prop_assert!(
                r.makespan().to_rational() <= bound.value(),
                "{} ({}): makespan {} > R_het {}",
                p.name(), bound.scenario(), r.makespan(), bound.value()
            );
            // the capped variant must also stay sound
            prop_assert!(r.makespan().to_rational() <= bound.tight_value());
            validate_schedule(t.transformed(), Some(task.offloaded()), &r).unwrap();
        }
    }

    #[test]
    fn makespan_at_least_trivial_lower_bounds(seed in 0u64..4000, pct in 1u32..70, m in 1usize..9) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).unwrap();
        for (dag, off) in [
            (task.dag(), Some(task.offloaded())),
            (t.transformed(), Some(task.offloaded())),
        ] {
            let cp = hetrta_dag::algo::CriticalPath::of(dag).length();
            let host_vol = dag.volume() - task.c_off();
            let lb = cp.max(host_vol.div_ceil(m as u64));
            let r = simulate(dag, off, Platform::with_accelerator(m), &mut BreadthFirst::new())
                .unwrap();
            prop_assert!(r.makespan() >= lb, "makespan {} < lower bound {lb}", r.makespan());
        }
    }

    #[test]
    fn worst_case_exploration_stays_under_r_hom(seed in 0u64..800, pct in 1u32..70) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let m = 2usize;
        let worst = explore_worst_case(
            task.dag(), Some(task.offloaded()), Platform::with_accelerator(m), 20,
        ).unwrap();
        let bound = r_hom_dag(task.dag(), m as u64).unwrap();
        prop_assert!(worst.makespan().to_rational() <= bound);
    }

    #[test]
    fn transformed_never_slower_than_serial(seed in 0u64..2000, pct in 1u32..70) {
        let task = random_task(seed, f64::from(pct) / 100.0);
        let t = transform(&task).unwrap();
        let r = simulate(
            t.transformed(), Some(task.offloaded()), Platform::with_accelerator(1),
            &mut BreadthFirst::new(),
        ).unwrap();
        // Even one host core + accelerator never exceeds fully serial volume.
        prop_assert!(r.makespan() <= task.volume());
        let _ = Rational::ZERO;
        let _ = Ticks::ZERO;
    }
}
