//! Cross-validation of the two simulators: a single job in the sporadic
//! task-set simulator must behave exactly like the single-task engine
//! under the same (breadth-first, work-conserving) discipline.

use hetrta_dag::{HeteroDagTask, Ticks};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::policy::BreadthFirst;
use hetrta_sim::sporadic::{simulate_sporadic, Preemption, SporadicConfig};
use hetrta_sim::{simulate, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_task(seed: u64, fraction: f64) -> Option<HeteroDagTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(&NfjParams::small_tasks(), &mut rng).ok()?;
    let t = make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(fraction),
        &mut rng,
    )
    .ok()?;
    // Huge period so exactly one job releases.
    let vol = t.volume();
    HeteroDagTask::new(t.dag().clone(), t.offloaded(), vol + vol, vol + vol).ok()
}

#[test]
fn single_job_matches_engine_with_accelerator() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let Some(task) = random_task(seed, 0.3) else {
            continue;
        };
        for m in [1usize, 2, 4, 8] {
            let engine = simulate(
                task.dag(),
                Some(task.offloaded()),
                Platform::with_accelerator(m),
                &mut BreadthFirst::new(),
            )
            .unwrap();
            for pre in [Preemption::Preemptive, Preemption::NonPreemptive] {
                let config =
                    SporadicConfig::new(Platform::with_accelerator(m), Ticks::ONE).preemption(pre);
                let run = simulate_sporadic(std::slice::from_ref(&task), &config).unwrap();
                assert_eq!(
                    run.jobs()[0].response_time(),
                    Some(engine.makespan()),
                    "seed {seed}, m {m}, {pre:?}"
                );
            }
            checked += 1;
        }
    }
    assert!(checked >= 150, "only {checked} configurations checked");
}

#[test]
fn single_job_matches_engine_homogeneous() {
    let mut checked = 0;
    for seed in 100..140u64 {
        let Some(task) = random_task(seed, 0.2) else {
            continue;
        };
        for m in [2usize, 4] {
            let engine = simulate(
                task.dag(),
                None,
                Platform::host_only(m),
                &mut BreadthFirst::new(),
            )
            .unwrap();
            let config =
                SporadicConfig::new(Platform::host_only(m), Ticks::ONE).offload_on_host(true);
            let run = simulate_sporadic(std::slice::from_ref(&task), &config).unwrap();
            assert_eq!(
                run.jobs()[0].response_time(),
                Some(engine.makespan()),
                "seed {seed}, m {m}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 60);
}

#[test]
fn sporadic_single_job_bounded_by_r_hom_and_r_het() {
    // Response-time bounds hold in the multi-task simulator too (single
    // job, so the single-task theorems apply; het bound on the
    // transformed deployment).
    for seed in 200..240u64 {
        let Some(task) = random_task(seed, 0.35) else {
            continue;
        };
        for m in [2u64, 8] {
            let r_hom = hetrta_core::r_hom(&task.as_homogeneous(), m).unwrap();
            let config = SporadicConfig::new(Platform::host_only(m as usize), Ticks::ONE)
                .offload_on_host(true);
            let run = simulate_sporadic(std::slice::from_ref(&task), &config).unwrap();
            let observed = run.jobs()[0].response_time().unwrap();
            assert!(observed.to_rational() <= r_hom, "seed {seed}, m {m}");

            let t = hetrta_core::transform(&task).unwrap();
            let r_het = hetrta_core::r_het(&t, m).unwrap().tight_value();
            let tt = HeteroDagTask::new(
                t.transformed().clone(),
                t.offloaded(),
                task.period(),
                task.deadline(),
            )
            .unwrap();
            let config = SporadicConfig::new(Platform::with_accelerator(m as usize), Ticks::ONE);
            let run = simulate_sporadic(std::slice::from_ref(&tt), &config).unwrap();
            let observed = run.jobs()[0].response_time().unwrap();
            assert!(observed.to_rational() <= r_het, "seed {seed}, m {m} (het)");
        }
    }
}
