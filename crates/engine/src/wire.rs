//! Wire codecs for the engine's session types — [`SweepSpec`],
//! [`SweepEvent`] and [`AggregateUpdate`] — over the checksummed frame
//! layer of `hetrta-api` ([`hetrta_api::wire`]).
//!
//! The payloads are deliberately textual, in the bit-exact style of
//! [`AnalysisOutcome::encode`](hetrta_api::AnalysisOutcome::encode):
//! every `f64` travels as its sixteen-hex-digit bit pattern (so a
//! decoded aggregate is *bitwise* the encoder's — the determinism
//! contract survives the network), `Option`s travel as `-`, and any
//! defect decodes to a typed [`WireError`] rather than a panic or
//! silent garbage. The frame layer around the payload contributes the
//! magic, version and FNV checksum.

use std::time::Duration;

use hetrta_api::wire::{
    self, fbits, malformed, opt_fbits, parse_fbits, parse_num, parse_opt_fbits, Tokens, WireError,
};
use hetrta_cond::CondGenParams;
use hetrta_gen::NfjParams;
use hetrta_sched::taskset::TaskSetParams;

use crate::aggregate::{
    AccuracySummary, AggregateUpdate, AnytimeCellSummary, CellKind, CellSummary, CondCellSummary,
    SampledCellSummary, SetCellSummary, SuspendCellSummary, SweepAggregate, TaskCellSummary,
};
use crate::session::SweepEvent;
use crate::spec::{AnalysisSelection, GeneratorPreset, SweepGrid, SweepSpec};

/// Frame kind tag of an encoded [`AggregateUpdate`].
pub const KIND_AGGREGATE: u8 = 0x11;

// ---------------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------------

fn encode_nfj(p: &NfjParams) -> String {
    format!(
        "{}:{}:{}:{}:{}:{}:{}:{}",
        fbits(p.p_par()),
        p.n_par(),
        p.max_depth(),
        p.n_min(),
        p.n_max(),
        p.c_min(),
        p.c_max(),
        p.max_attempts()
    )
}

fn decode_nfj(fields: &[&str]) -> Result<NfjParams, WireError> {
    if fields.len() != 8 {
        return Err(malformed(format!(
            "generator parameters need 8 fields, got {}",
            fields.len()
        )));
    }
    Ok(NfjParams::new(
        parse_num(fields[1], "n_par")?,
        parse_num(fields[2], "max_depth")?,
        parse_num(fields[3], "n_min")?,
        parse_num(fields[4], "n_max")?,
    )
    .with_p_par(parse_fbits(fields[0])?)
    .with_wcet_range(
        parse_num(fields[5], "c_min")?,
        parse_num(fields[6], "c_max")?,
    )
    .with_max_attempts(parse_num(fields[7], "max_attempts")?))
}

fn encode_preset(preset: &GeneratorPreset) -> String {
    match preset {
        GeneratorPreset::Small => "small".into(),
        GeneratorPreset::Large => "large".into(),
        GeneratorPreset::LargePaper => "paper".into(),
        GeneratorPreset::LargeGraphs(n) => format!("graphs:{n}"),
        GeneratorPreset::Custom(p) => format!("custom:{}", encode_nfj(p)),
    }
}

fn decode_preset(s: &str) -> Result<GeneratorPreset, WireError> {
    let fields: Vec<&str> = s.split(':').collect();
    match fields[0] {
        "small" => Ok(GeneratorPreset::Small),
        "large" => Ok(GeneratorPreset::Large),
        "paper" => Ok(GeneratorPreset::LargePaper),
        "graphs" if fields.len() == 2 => {
            Ok(GeneratorPreset::LargeGraphs(parse_num(fields[1], "n_max")?))
        }
        "custom" => Ok(GeneratorPreset::Custom(decode_nfj(&fields[1..])?)),
        other => Err(malformed(format!("unknown generator preset `{other}`"))),
    }
}

fn encode_u64_list(values: &[u64]) -> String {
    let strings: Vec<String> = values.iter().map(u64::to_string).collect();
    strings.join(",")
}

fn decode_u64_list(s: &str, what: &str) -> Result<Vec<u64>, WireError> {
    s.split(',').map(|t| parse_num(t, what)).collect()
}

fn encode_f64_list(values: &[f64]) -> String {
    let strings: Vec<String> = values.iter().map(|v| fbits(*v)).collect();
    strings.join(",")
}

fn decode_f64_list(s: &str) -> Result<Vec<f64>, WireError> {
    s.split(',').map(parse_fbits).collect()
}

fn encode_set_template(t: &TaskSetParams) -> String {
    format!(
        "{}:{}:{}:{}:{}:{}:{}",
        t.n_tasks,
        fbits(t.total_util),
        fbits(t.util_cap),
        encode_nfj(&t.nfj),
        fbits(t.offload_fraction.0),
        fbits(t.offload_fraction.1),
        fbits(t.deadline_ratio)
    )
}

fn decode_set_template(s: &str) -> Result<TaskSetParams, WireError> {
    let fields: Vec<&str> = s.split(':').collect();
    if fields.len() != 14 {
        return Err(malformed(format!(
            "set template needs 14 fields, got {}",
            fields.len()
        )));
    }
    Ok(TaskSetParams {
        n_tasks: parse_num(fields[0], "n_tasks")?,
        total_util: parse_fbits(fields[1])?,
        util_cap: parse_fbits(fields[2])?,
        nfj: decode_nfj(&fields[3..11])?,
        offload_fraction: (parse_fbits(fields[11])?, parse_fbits(fields[12])?),
        deadline_ratio: parse_fbits(fields[13])?,
    })
}

fn encode_cond_template(t: &CondGenParams) -> String {
    format!(
        "{}:{}:{}:{}:{}:{}",
        fbits(t.p_par),
        fbits(t.p_cond),
        t.n_par,
        t.max_depth,
        t.c_min,
        t.c_max
    )
}

fn decode_cond_template(s: &str) -> Result<CondGenParams, WireError> {
    let fields: Vec<&str> = s.split(':').collect();
    if fields.len() != 6 {
        return Err(malformed(format!(
            "cond template needs 6 fields, got {}",
            fields.len()
        )));
    }
    Ok(CondGenParams {
        p_par: parse_fbits(fields[0])?,
        p_cond: parse_fbits(fields[1])?,
        n_par: parse_num(fields[2], "n_par")?,
        max_depth: parse_num(fields[3], "max_depth")?,
        c_min: parse_num(fields[4], "c_min")?,
        c_max: parse_num(fields[5], "c_max")?,
    })
}

/// Encodes a [`SweepSpec`] as fixed-order `key value` lines, floats as
/// bit patterns, so a daemon re-expands exactly the sweep the client
/// validated locally.
#[must_use]
pub fn encode_spec(spec: &SweepSpec) -> String {
    let (grid_tag, grid_values) = match &spec.grid {
        SweepGrid::OffloadFractions(v) => ("fractions", v),
        SweepGrid::SampledFractions(v) => ("sampled", v),
        SweepGrid::NormalizedUtilizations(v) => ("utils", v),
        SweepGrid::CondShares(v) => ("shares", v),
    };
    let keys: Vec<&str> = spec.analyses.keys().iter().map(|k| k.as_ref()).collect();
    let mut out = String::new();
    out.push_str(&format!("preset {}\n", encode_preset(&spec.preset)));
    out.push_str(&format!("cores {}\n", encode_u64_list(&spec.core_counts)));
    out.push_str(&format!(
        "grid {grid_tag} {}\n",
        encode_f64_list(grid_values)
    ));
    out.push_str(&format!("per-point {}\n", spec.jobs_per_point));
    out.push_str(&format!("seeds {}\n", encode_u64_list(&spec.seeds)));
    out.push_str(&format!("analyses {}\n", keys.join(",")));
    out.push_str(&format!(
        "set-template {}\n",
        spec.set_template
            .as_ref()
            .map_or_else(|| "-".into(), encode_set_template)
    ));
    out.push_str(&format!(
        "cond-template {}\n",
        spec.cond_template
            .as_ref()
            .map_or_else(|| "-".into(), encode_cond_template)
    ));
    out.push_str(&format!("n-tasks {}\n", spec.n_tasks));
    out.push_str(&format!(
        "exact-budget {}\n",
        spec.exact_node_budget
            .map_or_else(|| "-".into(), |b| b.to_string())
    ));
    out.push_str(&format!("realization-cap {}\n", spec.realization_cap));
    out.push_str(&format!(
        "sim-transformed {}\n",
        u8::from(spec.sim_transformed)
    ));
    out.push_str(&format!("explore-seeds {}\n", spec.explore_seeds));
    out.push_str(&format!("sample-budget {}\n", spec.sample_budget));
    out.push_str(&format!("sample-seed {}\n", spec.sample_seed));
    out
}

/// Decodes one [`encode_spec`] text.
///
/// # Errors
///
/// [`WireError::Malformed`] naming the offending line or field; nothing
/// panics on untrusted input.
pub fn decode_spec(text: &str) -> Result<SweepSpec, WireError> {
    let mut lines = text.lines();
    let mut field = |key: &str| -> Result<String, WireError> {
        let line = lines
            .next()
            .ok_or_else(|| malformed(format!("spec truncated before `{key}`")))?;
        let rest = line
            .strip_prefix(key)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| malformed(format!("expected `{key} …`, got `{line}`")))?;
        Ok(rest.to_string())
    };

    let preset = decode_preset(&field("preset")?)?;
    let core_counts = decode_u64_list(&field("cores")?, "core count")?;
    let grid_field = field("grid")?;
    let (grid_tag, grid_rest) = grid_field
        .split_once(' ')
        .ok_or_else(|| malformed(format!("grid line `{grid_field}` has no values")))?;
    let grid_values = decode_f64_list(grid_rest)?;
    let grid = match grid_tag {
        "fractions" => SweepGrid::OffloadFractions(grid_values),
        "sampled" => SweepGrid::SampledFractions(grid_values),
        "utils" => SweepGrid::NormalizedUtilizations(grid_values),
        "shares" => SweepGrid::CondShares(grid_values),
        other => return Err(malformed(format!("unknown grid kind `{other}`"))),
    };
    let jobs_per_point = parse_num(&field("per-point")?, "jobs per point")?;
    let seeds = decode_u64_list(&field("seeds")?, "seed")?;
    let analyses = AnalysisSelection::from_keys(
        field("analyses")?
            .split(',')
            .filter(|t| !t.is_empty())
            .map(str::to_string),
    );
    let set_template = match field("set-template")?.as_str() {
        "-" => None,
        packed => Some(decode_set_template(packed)?),
    };
    let cond_template = match field("cond-template")?.as_str() {
        "-" => None,
        packed => Some(decode_cond_template(packed)?),
    };
    let n_tasks = parse_num(&field("n-tasks")?, "n_tasks")?;
    let exact_node_budget = match field("exact-budget")?.as_str() {
        "-" => None,
        n => Some(parse_num(n, "exact budget")?),
    };
    let realization_cap = parse_num(&field("realization-cap")?, "realization cap")?;
    let sim_transformed = match field("sim-transformed")?.as_str() {
        "0" => false,
        "1" => true,
        other => {
            return Err(malformed(format!(
                "sim-transformed must be 0/1, got `{other}`"
            )))
        }
    };
    let explore_seeds = parse_num(&field("explore-seeds")?, "explore seeds")?;
    let sample_budget = parse_num(&field("sample-budget")?, "sample budget")?;
    let sample_seed = parse_num(&field("sample-seed")?, "sample seed")?;
    if let Some(extra) = lines.next() {
        if !extra.trim().is_empty() {
            return Err(malformed(format!("trailing spec line `{extra}`")));
        }
    }
    Ok(SweepSpec {
        preset,
        core_counts,
        grid,
        jobs_per_point,
        seeds,
        analyses,
        set_template,
        cond_template,
        n_tasks,
        exact_node_budget,
        realization_cap,
        sim_transformed,
        explore_seeds,
        sample_budget,
        sample_seed,
    })
}

// ---------------------------------------------------------------------------
// Cells and aggregate updates
// ---------------------------------------------------------------------------

fn encode_cell(cell: &CellSummary) -> String {
    let mut out = format!("{} {} {} ", cell.m, fbits(cell.grid_value), cell.samples);
    match &cell.kind {
        CellKind::Task(t) => {
            let accuracy = t.accuracy.as_ref().map_or_else(
                || "-".into(),
                |a| {
                    format!(
                        "{}:{}:{}",
                        fbits(a.mean_hom_increment),
                        fbits(a.mean_het_increment),
                        a.solved
                    )
                },
            );
            let suspend = t.suspend.as_ref().map_or_else(
                || "-".into(),
                |s| {
                    format!(
                        "{}:{}:{}:{}:{}:{}",
                        fbits(s.mean_oblivious),
                        fbits(s.mean_barrier),
                        fbits(s.mean_het_tight),
                        fbits(s.mean_naive),
                        s.mean_worst_observed.map_or_else(|| "-".into(), fbits),
                        s.naive_violations
                    )
                },
            );
            let sampled = t.sampled.as_ref().map_or_else(
                || "-".into(),
                |s| {
                    format!(
                        "{}:{}:{}:{}:{}",
                        fbits(s.mean),
                        fbits(s.mean_ci_half),
                        s.min,
                        s.max,
                        s.total_samples
                    )
                },
            );
            let anytime = t.anytime.as_ref().map_or_else(
                || "-".into(),
                |a| {
                    format!(
                        "{}:{}:{}",
                        fbits(a.mean_lower),
                        fbits(a.mean_upper),
                        a.optimal
                    )
                },
            );
            out.push_str(&format!(
                "task {} {} {} {} {} {} {} {} {} {} {} {} {} {accuracy} {suspend} {sampled} {anytime}",
                t.scenario_counts[0],
                t.scenario_counts[1],
                t.scenario_counts[2],
                fbits(t.mean_improvement),
                fbits(t.max_improvement),
                fbits(t.mean_r_het),
                fbits(t.mean_r_hom),
                t.schedulable_het,
                t.schedulable_hom,
                opt_fbits(t.mean_sim_makespan),
                opt_fbits(t.mean_sim_transformed),
                t.exact_solved,
                opt_fbits(t.mean_exact_makespan),
            ));
        }
        CellKind::Set(s) => {
            out.push_str("set");
            for count in s.accepted {
                out.push_str(&format!(" {count}"));
            }
        }
        CellKind::Cond(c) => {
            out.push_str(&format!(
                "cond {} {} {} {}",
                c.included,
                fbits(c.mean_flat_overhead),
                fbits(c.mean_dp_overhead),
                fbits(c.mean_realizations)
            ));
        }
    }
    out
}

fn decode_colon_accuracy(s: &str) -> Result<Option<AccuracySummary>, WireError> {
    if s == "-" {
        return Ok(None);
    }
    let fields: Vec<&str> = s.split(':').collect();
    if fields.len() != 3 {
        return Err(malformed(format!("accuracy pack `{s}` needs 3 fields")));
    }
    Ok(Some(AccuracySummary {
        mean_hom_increment: parse_fbits(fields[0])?,
        mean_het_increment: parse_fbits(fields[1])?,
        solved: parse_num(fields[2], "accuracy solved")?,
    }))
}

fn decode_colon_suspend(s: &str) -> Result<Option<SuspendCellSummary>, WireError> {
    if s == "-" {
        return Ok(None);
    }
    let fields: Vec<&str> = s.split(':').collect();
    if fields.len() != 6 {
        return Err(malformed(format!("suspend pack `{s}` needs 6 fields")));
    }
    Ok(Some(SuspendCellSummary {
        mean_oblivious: parse_fbits(fields[0])?,
        mean_barrier: parse_fbits(fields[1])?,
        mean_het_tight: parse_fbits(fields[2])?,
        mean_naive: parse_fbits(fields[3])?,
        mean_worst_observed: parse_opt_fbits(fields[4])?,
        naive_violations: parse_num(fields[5], "naive violations")?,
    }))
}

fn decode_colon_sampled(s: &str) -> Result<Option<SampledCellSummary>, WireError> {
    if s == "-" {
        return Ok(None);
    }
    let fields: Vec<&str> = s.split(':').collect();
    if fields.len() != 5 {
        return Err(malformed(format!("sampled pack `{s}` needs 5 fields")));
    }
    Ok(Some(SampledCellSummary {
        mean: parse_fbits(fields[0])?,
        mean_ci_half: parse_fbits(fields[1])?,
        min: parse_num(fields[2], "sampled min")?,
        max: parse_num(fields[3], "sampled max")?,
        total_samples: parse_num(fields[4], "sampled total")?,
    }))
}

fn decode_colon_anytime(s: &str) -> Result<Option<AnytimeCellSummary>, WireError> {
    if s == "-" {
        return Ok(None);
    }
    let fields: Vec<&str> = s.split(':').collect();
    if fields.len() != 3 {
        return Err(malformed(format!("anytime pack `{s}` needs 3 fields")));
    }
    Ok(Some(AnytimeCellSummary {
        mean_lower: parse_fbits(fields[0])?,
        mean_upper: parse_fbits(fields[1])?,
        optimal: parse_num(fields[2], "anytime optimal")?,
    }))
}

fn decode_cell(tokens: &mut Tokens<'_>) -> Result<CellSummary, WireError> {
    let m = parse_num(tokens.next()?, "core count")?;
    let grid_value = parse_fbits(tokens.next()?)?;
    let samples = parse_num(tokens.next()?, "samples")?;
    let kind = match tokens.next()? {
        "task" => CellKind::Task(TaskCellSummary {
            scenario_counts: [
                parse_num(tokens.next()?, "scenario count")?,
                parse_num(tokens.next()?, "scenario count")?,
                parse_num(tokens.next()?, "scenario count")?,
            ],
            mean_improvement: parse_fbits(tokens.next()?)?,
            max_improvement: parse_fbits(tokens.next()?)?,
            mean_r_het: parse_fbits(tokens.next()?)?,
            mean_r_hom: parse_fbits(tokens.next()?)?,
            schedulable_het: parse_num(tokens.next()?, "schedulable count")?,
            schedulable_hom: parse_num(tokens.next()?, "schedulable count")?,
            mean_sim_makespan: parse_opt_fbits(tokens.next()?)?,
            mean_sim_transformed: parse_opt_fbits(tokens.next()?)?,
            exact_solved: parse_num(tokens.next()?, "exact solved")?,
            mean_exact_makespan: parse_opt_fbits(tokens.next()?)?,
            accuracy: decode_colon_accuracy(tokens.next()?)?,
            suspend: decode_colon_suspend(tokens.next()?)?,
            sampled: decode_colon_sampled(tokens.next()?)?,
            anytime: decode_colon_anytime(tokens.next()?)?,
        }),
        "set" => {
            let mut accepted = [0usize; 6];
            for slot in &mut accepted {
                *slot = parse_num(tokens.next()?, "acceptance count")?;
            }
            CellKind::Set(SetCellSummary { accepted })
        }
        "cond" => CellKind::Cond(CondCellSummary {
            included: parse_num(tokens.next()?, "included count")?,
            mean_flat_overhead: parse_fbits(tokens.next()?)?,
            mean_dp_overhead: parse_fbits(tokens.next()?)?,
            mean_realizations: parse_fbits(tokens.next()?)?,
        }),
        other => return Err(malformed(format!("unknown cell kind `{other}`"))),
    };
    Ok(CellSummary {
        m,
        grid_value,
        samples,
        kind,
    })
}

/// Encodes an [`AggregateUpdate`] as a header line plus one line per
/// carried cell — the keyframe/delta structure survives the wire, so
/// remote consumers reassemble with the same
/// [`AggregateView`](crate::AggregateView) local ones use.
#[must_use]
pub fn encode_update(update: &AggregateUpdate) -> String {
    let mut out = String::new();
    match update {
        AggregateUpdate::Keyframe { seq, aggregate } => {
            out.push_str(&format!("keyframe {seq} {}\n", aggregate.cells.len()));
            for cell in &aggregate.cells {
                out.push_str(&encode_cell(cell));
                out.push('\n');
            }
        }
        AggregateUpdate::Delta { seq, changed } => {
            out.push_str(&format!("delta {seq} {}\n", changed.len()));
            for (index, cell) in changed {
                out.push_str(&format!("{index} "));
                out.push_str(&encode_cell(cell));
                out.push('\n');
            }
        }
    }
    out
}

/// Decodes one [`encode_update`] text.
///
/// # Errors
///
/// [`WireError::Malformed`] naming the defect; decoded floats are
/// bitwise the encoder's.
pub fn decode_update(text: &str) -> Result<AggregateUpdate, WireError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed("empty aggregate update"))?;
    let mut head = Tokens::new(header, "update header");
    let tag = head.next()?;
    let seq = parse_num(head.next()?, "sequence number")?;
    let count: usize = parse_num(head.next()?, "cell count")?;
    head.finish()?;
    let mut cell_line = |what: &'static str| -> Result<Tokens<'_>, WireError> {
        lines
            .next()
            .map(|line| Tokens::new(line, what))
            .ok_or_else(|| malformed(format!("update truncated: missing {what} line")))
    };
    let update = match tag {
        "keyframe" => {
            let mut cells = Vec::with_capacity(count);
            for _ in 0..count {
                let mut tokens = cell_line("keyframe cell")?;
                cells.push(decode_cell(&mut tokens)?);
                tokens.finish()?;
            }
            AggregateUpdate::Keyframe {
                seq,
                aggregate: SweepAggregate { cells },
            }
        }
        "delta" => {
            let mut changed = Vec::with_capacity(count);
            for _ in 0..count {
                let mut tokens = cell_line("delta cell")?;
                let index = parse_num(tokens.next()?, "cell index")?;
                changed.push((index, decode_cell(&mut tokens)?));
                tokens.finish()?;
            }
            AggregateUpdate::Delta { seq, changed }
        }
        other => return Err(malformed(format!("unknown update tag `{other}`"))),
    };
    if let Some(extra) = lines.next() {
        if !extra.trim().is_empty() {
            return Err(malformed(format!("trailing update line `{extra}`")));
        }
    }
    Ok(update)
}

impl AggregateUpdate {
    /// Encodes this update as one checksummed wire frame
    /// ([`KIND_AGGREGATE`]).
    #[must_use]
    pub fn encode_frame(&self) -> Vec<u8> {
        wire::encode_frame(KIND_AGGREGATE, encode_update(self).as_bytes())
    }

    /// Decodes one [`AggregateUpdate::encode_frame`] frame. Corruption,
    /// truncation, version bumps, wrong frame kinds and unparseable
    /// payloads all map to typed [`WireError`]s.
    ///
    /// # Errors
    ///
    /// Every defect maps to its [`WireError`] variant; nothing panics.
    pub fn decode_frame(buf: &[u8]) -> Result<AggregateUpdate, WireError> {
        let (kind, payload) = wire::decode_frame(buf)?;
        if kind != KIND_AGGREGATE {
            return Err(malformed(format!(
                "frame kind {kind:#04x} is not an aggregate update"
            )));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| malformed("aggregate payload is not utf-8"))?;
        decode_update(text)
    }
}

// ---------------------------------------------------------------------------
// SweepEvent
// ---------------------------------------------------------------------------

/// Encodes a [`SweepEvent`] (first token is the event tag; a
/// `PartialAggregate` carries its update text on the following lines).
#[must_use]
pub fn encode_event(event: &SweepEvent) -> String {
    match event {
        SweepEvent::JobStarted { index } => format!("started {index}"),
        SweepEvent::JobFinished {
            index,
            cell,
            key,
            cache_hit,
            wall_time,
        } => format!(
            "finished {index} {cell} {key:032x} {} {}",
            u8::from(*cache_hit),
            wall_time.as_nanos()
        ),
        SweepEvent::PartialAggregate {
            completed,
            total,
            update,
        } => format!("partial {completed} {total}\n{}", encode_update(update)),
        SweepEvent::SweepFinished {
            completed,
            cancelled,
            events_dropped,
        } => format!("done {completed} {} {events_dropped}", u8::from(*cancelled)),
    }
}

/// Decodes one [`encode_event`] text.
///
/// # Errors
///
/// [`WireError::Malformed`] naming the defect; nothing panics.
pub fn decode_event(text: &str) -> Result<SweepEvent, WireError> {
    let (first, rest) = match text.split_once('\n') {
        Some((first, rest)) => (first, rest),
        None => (text, ""),
    };
    let mut tokens = Tokens::new(first, "event");
    let event = match tokens.next()? {
        "started" => SweepEvent::JobStarted {
            index: parse_num(tokens.next()?, "job index")?,
        },
        "finished" => SweepEvent::JobFinished {
            index: parse_num(tokens.next()?, "job index")?,
            cell: parse_num(tokens.next()?, "cell index")?,
            key: {
                let hex = tokens.next()?;
                if hex.len() != 32 {
                    return Err(malformed(format!(
                        "content key `{hex}` is not 32 hex digits"
                    )));
                }
                u128::from_str_radix(hex, 16)
                    .map_err(|_| malformed(format!("unparseable content key `{hex}`")))?
            },
            cache_hit: match tokens.next()? {
                "0" => false,
                "1" => true,
                other => return Err(malformed(format!("cache-hit bit `{other}` is not 0/1"))),
            },
            wall_time: {
                let nanos: u64 = parse_num(tokens.next()?, "wall time")?;
                Duration::from_nanos(nanos)
            },
        },
        "partial" => {
            let completed = parse_num(tokens.next()?, "completed count")?;
            let total = parse_num(tokens.next()?, "total count")?;
            tokens.finish()?;
            return Ok(SweepEvent::PartialAggregate {
                completed,
                total,
                update: decode_update(rest)?,
            });
        }
        "done" => SweepEvent::SweepFinished {
            completed: parse_num(tokens.next()?, "completed count")?,
            cancelled: match tokens.next()? {
                "0" => false,
                "1" => true,
                other => return Err(malformed(format!("cancelled bit `{other}` is not 0/1"))),
            },
            events_dropped: parse_num(tokens.next()?, "dropped count")?,
        },
        other => return Err(malformed(format!("unknown event tag `{other}`"))),
    };
    tokens.finish()?;
    if !rest.trim().is_empty() {
        return Err(malformed("trailing lines after a single-line event"));
    }
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GeneratorPreset;
    use crate::AggregateView;

    fn task_cell(m: u64, grid: f64, full: bool) -> CellSummary {
        CellSummary {
            m,
            grid_value: grid,
            samples: 17,
            kind: CellKind::Task(TaskCellSummary {
                scenario_counts: [3, 9, 5],
                mean_improvement: 12.75,
                max_improvement: 31.0 + f64::EPSILON,
                mean_r_het: 0.1 + 0.2,
                mean_r_hom: 991.25,
                schedulable_het: 15,
                schedulable_hom: 11,
                mean_sim_makespan: full.then_some(812.0),
                mean_sim_transformed: None,
                exact_solved: 4,
                mean_exact_makespan: full.then_some(790.5),
                accuracy: full.then_some(AccuracySummary {
                    mean_hom_increment: 8.125,
                    mean_het_increment: 2.5,
                    solved: 4,
                }),
                suspend: full.then_some(SuspendCellSummary {
                    mean_oblivious: 1000.0,
                    mean_barrier: 950.0,
                    mean_het_tight: 900.0,
                    mean_naive: 870.0,
                    mean_worst_observed: full.then_some(905.0),
                    naive_violations: 2,
                }),
                sampled: full.then_some(SampledCellSummary {
                    mean: 810.5,
                    mean_ci_half: 3.25,
                    min: 780,
                    max: 860,
                    total_samples: 1088,
                }),
                anytime: full.then_some(AnytimeCellSummary {
                    mean_lower: 781.0,
                    mean_upper: 812.5,
                    optimal: 9,
                }),
            }),
        }
    }

    fn sample_specs() -> Vec<SweepSpec> {
        vec![
            SweepSpec::fractions(
                GeneratorPreset::Small,
                vec![2, 8],
                vec![0.05, 0.30],
                8,
                0xDAC_2018,
            ),
            SweepSpec::suspension(vec![4], vec![10.0, 20.0], 6, 1),
            SweepSpec::acceptance(
                TaskSetParams::small(5, 2.0),
                vec![4, 16],
                vec![0.3, 0.5, 0.7],
                5,
                10,
                3,
            ),
            SweepSpec::conditional(CondGenParams::small(), vec![2], vec![0.25, 0.4], 12, 512),
            SweepSpec::fractions(
                GeneratorPreset::Custom(
                    NfjParams::new(5, 4, 10, 50)
                        .with_p_par(0.65)
                        .with_wcet_range(3, 77)
                        .with_max_attempts(12345),
                ),
                vec![2],
                vec![0.1],
                4,
                7,
            ),
        ]
    }

    #[test]
    fn spec_roundtrips_reencode_identically() {
        for spec in sample_specs() {
            let text = encode_spec(&spec);
            let back = decode_spec(&text).unwrap_or_else(|e| panic!("{e} for:\n{text}"));
            // SweepSpec has no PartialEq; re-encoding is the bitwise
            // equality witness (every float travels as its bit pattern).
            assert_eq!(encode_spec(&back), text);
            // And the decoded spec expands to the same job count.
            assert_eq!(back.job_count(), spec.job_count());
        }
    }

    #[test]
    fn decoded_spec_produces_identical_aggregate() {
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 4, 11);
        let engine = crate::Engine::new(2);
        let local = engine.run(&spec).unwrap();
        let remote = engine
            .run(&decode_spec(&encode_spec(&spec)).unwrap())
            .unwrap();
        assert_eq!(local.aggregate, remote.aggregate);
    }

    #[test]
    fn malformed_specs_error_typed() {
        let good = encode_spec(&sample_specs()[0]);
        for bad in [
            String::new(),
            "preset frob\ncores 2".to_string(),
            good.replace("per-point 8", "per-point eight"),
            good.replace("cores 2,8", "cores 2,borked"),
            good.replace("grid fractions", "grid pentagons"),
            good.replace("sim-transformed 0", "sim-transformed maybe"),
            format!("{good}surprise extra line\n"),
        ] {
            assert!(
                matches!(decode_spec(&bad), Err(WireError::Malformed(_))),
                "decoded unexpectedly:\n{bad}"
            );
        }
    }

    #[test]
    fn update_roundtrips_bitwise() {
        let keyframe = AggregateUpdate::Keyframe {
            seq: 0,
            aggregate: SweepAggregate {
                cells: vec![
                    task_cell(2, 0.05, true),
                    task_cell(8, 0.30, false),
                    CellSummary {
                        m: 4,
                        grid_value: 0.5,
                        samples: 9,
                        kind: CellKind::Set(SetCellSummary {
                            accepted: [9, 7, 5, 3, 1, 0],
                        }),
                    },
                    CellSummary {
                        m: 2,
                        grid_value: 0.25,
                        samples: 6,
                        kind: CellKind::Cond(CondCellSummary {
                            included: 5,
                            mean_flat_overhead: 14.5,
                            mean_dp_overhead: 3.25,
                            mean_realizations: 12.0,
                        }),
                    },
                ],
            },
        };
        let delta = AggregateUpdate::Delta {
            seq: 3,
            changed: vec![
                (1, task_cell(8, 0.30, true)),
                (3, task_cell(2, 0.25, false)),
            ],
        };
        for update in [keyframe, delta] {
            let text = encode_update(&update);
            assert_eq!(decode_update(&text).unwrap(), update, "text:\n{text}");
            let frame = update.encode_frame();
            assert_eq!(AggregateUpdate::decode_frame(&frame).unwrap(), update);
        }
    }

    #[test]
    fn corrupt_and_version_bumped_update_frames_error_typed() {
        let update = AggregateUpdate::Keyframe {
            seq: 0,
            aggregate: SweepAggregate {
                cells: vec![task_cell(2, 0.1, true)],
            },
        };
        let frame = update.encode_frame();

        let mut corrupt = frame.clone();
        let mid = frame.len() / 2;
        corrupt[mid] ^= 0x40;
        assert_eq!(
            AggregateUpdate::decode_frame(&corrupt),
            Err(WireError::Checksum)
        );

        let mut bumped = frame.clone();
        bumped[5] = bumped[5].wrapping_add(3);
        assert!(matches!(
            AggregateUpdate::decode_frame(&bumped),
            Err(WireError::Version { .. })
        ));

        assert_eq!(
            AggregateUpdate::decode_frame(&frame[..frame.len() - 2]),
            Err(WireError::Truncated)
        );

        let alien = wire::encode_frame(0x66, b"keyframe 0 0\n");
        assert!(matches!(
            AggregateUpdate::decode_frame(&alien),
            Err(WireError::Malformed(_))
        ));

        for text in [
            "keyframe 0 2\n",                // promises cells it lacks
            "keyframe zero 0\n",             // unparseable seq
            "delta 1 1\nnotanindex 2 x 3\n", // garbage delta line
            "hologram 1 0\n",                // unknown tag
        ] {
            assert!(
                matches!(decode_update(text), Err(WireError::Malformed(_))),
                "decoded unexpectedly: {text:?}"
            );
        }
    }

    #[test]
    fn events_roundtrip_and_remote_view_reassembles() {
        let events = vec![
            SweepEvent::JobStarted { index: 7 },
            SweepEvent::JobFinished {
                index: 7,
                cell: 2,
                key: 0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233,
                cache_hit: true,
                wall_time: Duration::from_nanos(123_456_789),
            },
            SweepEvent::PartialAggregate {
                completed: 12,
                total: 48,
                update: AggregateUpdate::Delta {
                    seq: 4,
                    changed: vec![(0, task_cell(2, 0.05, false))],
                },
            },
            SweepEvent::SweepFinished {
                completed: 48,
                cancelled: false,
                events_dropped: 3,
            },
        ];
        for event in &events {
            let text = encode_event(event);
            assert_eq!(&decode_event(&text).unwrap(), event, "text:\n{text}");
        }

        // End to end: a real sweep's partial updates survive the text
        // codec transparently — a view fed decoded updates reconstructs
        // bitwise the same snapshots as a view fed the originals.
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.1, 0.3], 4, 5);
        let engine = crate::Engine::new(2);
        let handle = engine
            .submit_with(
                &spec,
                crate::SessionConfig {
                    job_events: false,
                    partial_every: Some(1),
                    keyframe_every: 4,
                    ..crate::SessionConfig::default()
                },
            )
            .unwrap();
        let mut local_view = AggregateView::new();
        let mut remote_view = AggregateView::new();
        let mut partials = 0usize;
        while let Some(event) = handle.next_event() {
            if let SweepEvent::PartialAggregate { update, .. } = event {
                let decoded = decode_update(&encode_update(&update)).unwrap();
                assert_eq!(decoded, update);
                local_view.apply(&update);
                remote_view.apply(&decoded);
                assert_eq!(remote_view.snapshot(), local_view.snapshot());
                partials += 1;
            }
        }
        handle.wait().unwrap();
        assert!(partials > 0, "the sweep must have streamed partials");
        assert!(remote_view.snapshot().is_some(), "view ends in sync");
    }

    #[test]
    fn malformed_events_error_typed() {
        for text in [
            "",
            "exploded 1",
            "started",
            "started x",
            "finished 1 2 deadbeef 1 5", // short key
            "finished 1 2",              // truncated
            "done 4 maybe 0",
            "done 4 1", // missing drop count
            "started 1 extra",
            "started 1\ntrailing line",
        ] {
            assert!(
                matches!(decode_event(text), Err(WireError::Malformed(_))),
                "decoded unexpectedly: {text:?}"
            );
        }
    }
}
