//! Content-addressed memoization of analysis results.
//!
//! The unit of caching is a *structural hash* of the analyzed content — DAG
//! shape, node WCETs, offloaded node, period and deadline, plus the analysis
//! registry key and the parameter digest the analysis declares through
//! [`Analysis::cache_params`](hetrta_api::Analysis::cache_params). Two jobs
//! that analyze structurally identical inputs under the same parameters
//! share one computation, whichever worker gets there first; everyone else
//! gets a clone of the memoized value.
//!
//! Caches are **bounded**: each [`MemoCache`] is a sharded LRU with a
//! configurable capacity, so a long-lived engine sweeping millions of
//! mostly-unique jobs keeps a flat memory profile instead of growing
//! linearly with distinct content.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use hetrta_api::AnalysisInput;
use hetrta_dag::{Dag, HeteroDagTask};
use hetrta_obs::Counter;

/// 128-bit FNV-1a, the workspace's convention for deterministic content
/// hashes (64-bit would start colliding around a few billion distinct
/// entries; sweeps reach millions).
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl ContentHasher {
    /// Creates a hasher with the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        ContentHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= u128::from(byte);
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    /// Feeds a 64-bit word (little-endian).
    pub fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Feeds a length-prefixed string.
    pub fn write_str(&mut self, text: &str) {
        self.write_u64(text.len() as u64);
        for byte in text.bytes() {
            self.write_u8(byte);
        }
    }

    /// Returns the accumulated digest.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Structural hash of a DAG: node count, per-node WCET and adjacency.
///
/// Labels are deliberately excluded — two tasks that differ only in node
/// names analyze identically. Node *numbering* is part of the content: the
/// generators number nodes canonically, so structurally equal generated
/// tasks hash equal.
pub fn hash_dag(h: &mut ContentHasher, dag: &Dag) {
    h.write_u64(dag.node_count() as u64);
    for v in dag.node_ids() {
        h.write_u64(dag.wcet(v).get());
        let succs = dag.successors(v);
        h.write_u64(succs.len() as u64);
        for &s in succs {
            h.write_u64(s.index() as u64);
        }
    }
}

/// Content hash of a bare DAG (structure + WCETs, no timing parameters) —
/// the key of `m`-independent derived data shared across tasks that wrap
/// the same graph.
#[must_use]
pub fn hash_dag_only(dag: &Dag) -> u128 {
    let mut h = ContentHasher::new();
    hash_dag(&mut h, dag);
    h.finish()
}

/// Content hash of a heterogeneous task (structure + timing parameters).
#[must_use]
pub fn hash_task(task: &HeteroDagTask) -> u128 {
    let mut h = ContentHasher::new();
    hash_dag(&mut h, task.dag());
    h.write_u64(task.offloaded().index() as u64);
    h.write_u64(task.period().get());
    h.write_u64(task.deadline().get());
    h.finish()
}

/// Content hash of a task *set* (order-sensitive: priority order is part of
/// the schedulability question).
#[must_use]
pub fn hash_task_set(tasks: &[HeteroDagTask]) -> u128 {
    let mut h = ContentHasher::new();
    h.write_u64(tasks.len() as u64);
    for t in tasks {
        let th = hash_task(t);
        h.write_u64(th as u64);
        h.write_u64((th >> 64) as u64);
    }
    h.finish()
}

/// Content hash of a conditional expression (structure + leaf WCETs, via
/// the expression's canonical `Debug` rendering).
#[must_use]
pub fn hash_cond_expr(expr: &hetrta_cond::CondExpr) -> u128 {
    let mut h = ContentHasher::new();
    h.write_str(&format!("{expr:?}"));
    h.finish()
}

/// Domain-separated content hash of any analysis input.
#[must_use]
pub fn hash_input(input: &AnalysisInput) -> u128 {
    let (tag, inner) = match input {
        AnalysisInput::Task(t) => (1u8, hash_task(t)),
        AnalysisInput::TaskSet(s) => (2, hash_task_set(s)),
        AnalysisInput::Cond(e) => (3, hash_cond_expr(e)),
    };
    let mut h = ContentHasher::new();
    h.write_u8(tag);
    h.write_u64(inner as u64);
    h.write_u64((inner >> 64) as u64);
    h.finish()
}

/// Extends a content hash with analysis parameters, yielding a cache key.
#[must_use]
pub fn key_with_params(content: u128, tag: u8, m: u64) -> u128 {
    let mut h = ContentHasher::new();
    h.write_u64(content as u64);
    h.write_u64((content >> 64) as u64);
    h.write_u8(tag);
    h.write_u64(m);
    h.finish()
}

/// The result-cache key of one `(content, analysis, parameters)` triple.
#[must_use]
pub fn result_key(content: u128, analysis_key: &str, param_digest: u64) -> u128 {
    let mut h = ContentHasher::new();
    h.write_u64(content as u64);
    h.write_u64((content >> 64) as u64);
    h.write_str(analysis_key);
    h.write_u64(param_digest);
    h.finish()
}

/// Running hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (includes the rare concurrent
    /// double-compute of the same key).
    pub misses: u64,
}

impl CacheCounters {
    /// Hits as a fraction of all lookups (`0` for an untouched cache).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference `self - earlier` (for per-run snapshots on a
    /// long-lived cache).
    #[must_use]
    pub fn since(&self, earlier: CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// One LRU shard: the value map plus a stamp-ordered eviction index.
#[derive(Debug)]
struct Shard<V> {
    map: HashMap<u128, (V, u64)>,
    order: BTreeMap<u64, u128>,
    clock: u64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Bumps `key` to most-recently-used.
    fn touch(&mut self, key: u128) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some((_, entry_stamp)) = self.map.get_mut(&key) {
            self.order.remove(entry_stamp);
            *entry_stamp = stamp;
            self.order.insert(stamp, key);
        }
    }

    /// Inserts (or replaces) `key`, then evicts least-recently-used
    /// entries down to `cap`.
    fn insert(&mut self, key: u128, value: V, cap: usize) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some((_, old)) = self.map.insert(key, (value, stamp)) {
            self.order.remove(&old);
        }
        self.order.insert(stamp, key);
        while self.map.len() > cap {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            let victim = self.order.remove(&oldest).expect("indexed key");
            self.map.remove(&victim);
        }
    }
}

/// A sharded, size-capped, content-addressed LRU memo table.
///
/// Values are cloned out; computation runs *outside* the shard lock, so two
/// workers racing on the same fresh key may both compute (both counted as
/// misses) — the table stays consistent because the value for a key is a
/// pure function of the key's content. Capacity is enforced per shard
/// (`capacity / 32`, at least 1), evicting least-recently-used entries.
#[derive(Debug)]
pub struct MemoCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    hits: Counter,
    misses: Counter,
    per_shard_cap: usize,
}

const SHARDS: usize = 32;

impl<V: Clone> MemoCache<V> {
    /// Creates an effectively unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        MemoCache::bounded(usize::MAX)
    }

    /// Creates a cache holding at most (approximately) `capacity` entries,
    /// enforced per shard: each of the 32 shards keeps at most
    /// `max(capacity / 32, 1)` entries.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            hits: Counter::detached(),
            misses: Counter::detached(),
            per_shard_cap: (capacity / SHARDS).max(1),
        }
    }

    /// Replaces the hit/miss cells with externally owned counters
    /// (typically handles from a
    /// [`MetricsRegistry`](hetrta_obs::MetricsRegistry), so the cache's
    /// activity shows up in engine-wide metrics snapshots). Call before
    /// first use: prior counts do not carry over.
    pub(crate) fn bind_counters(&mut self, hits: Counter, misses: Counter) {
        self.hits = hits;
        self.misses = misses;
    }

    fn shard(&self, key: u128) -> &Mutex<Shard<V>> {
        // High bits select the shard; FNV mixes enough for that.
        &self.shards[(key >> 96) as usize % SHARDS]
    }

    /// Looks up `key`, computing and memoizing with `compute` on a miss.
    /// Returns the value and whether it was a hit.
    pub fn get_or_compute(&self, key: u128, compute: impl FnOnce() -> V) -> (V, bool) {
        {
            let mut shard = self.shard(key).lock().expect("cache shard");
            if let Some((v, _)) = shard.map.get(&key) {
                let v = v.clone();
                shard.touch(key);
                self.hits.incr();
                return (v, true);
            }
        }
        self.misses.incr();
        let value = compute();
        let mut shard = self.shard(key).lock().expect("cache shard");
        if let Some((v, _)) = shard.map.get(&key) {
            // A sibling raced us to the computation; keep its value.
            let v = v.clone();
            shard.touch(key);
            return (v, false);
        }
        shard.insert(key, value.clone(), self.per_shard_cap);
        (value, false)
    }

    /// Counted lookup: bumps the entry to most-recently-used and the
    /// hit/miss counters, but never computes.
    #[must_use]
    pub fn get(&self, key: u128) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("cache shard");
        match shard.map.get(&key) {
            Some((v, _)) => {
                let v = v.clone();
                shard.touch(key);
                self.hits.incr();
                Some(v)
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Quiet lookup: no counter movement, but the entry is still bumped to
    /// most-recently-used — served entries must not age out of a bounded
    /// cache just because they were read quietly.
    #[must_use]
    pub fn peek(&self, key: u128) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("cache shard");
        let value = shard.map.get(&key).map(|(v, _)| v.clone());
        if value.is_some() {
            shard.touch(key);
        }
        value
    }

    /// Stores `key → value` (replacing any earlier entry), evicting
    /// least-recently-used entries beyond the capacity.
    pub fn insert(&self, key: u128, value: V) {
        self.shard(key)
            .lock()
            .expect("cache shard")
            .insert(key, value, self.per_shard_cap);
    }

    /// Credits `n` hits observed through [`MemoCache::peek`].
    pub fn note_hits(&self, n: u64) {
        self.hits.add(n);
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").map.len())
            .sum()
    }

    /// `true` if nothing is memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized entry (the hit/miss counters keep running; use
    /// [`CacheCounters::since`] for per-scope accounting).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard");
            shard.map.clear();
            shard.order.clear();
        }
    }

    /// Snapshot of the hit/miss counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }
}

impl<V: Clone> Default for MemoCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::{DagBuilder, Ticks};

    fn sample_task(wcet_kernel: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let pre = b.node("pre", Ticks::new(2));
        let kernel = b.node("kernel", Ticks::new(wcet_kernel));
        let post = b.node("post", Ticks::new(2));
        b.edges([(pre, kernel), (kernel, post)]).unwrap();
        HeteroDagTask::new(b.build().unwrap(), kernel, Ticks::new(50), Ticks::new(50)).unwrap()
    }

    #[test]
    fn equal_content_hashes_equal() {
        assert_eq!(hash_task(&sample_task(9)), hash_task(&sample_task(9)));
        assert_ne!(hash_task(&sample_task(9)), hash_task(&sample_task(10)));
    }

    #[test]
    fn params_change_the_key() {
        let c = hash_task(&sample_task(9));
        assert_ne!(key_with_params(c, 0, 2), key_with_params(c, 0, 4));
        assert_ne!(key_with_params(c, 0, 2), key_with_params(c, 1, 2));
        assert_ne!(result_key(c, "het", 1), result_key(c, "hom", 1));
        assert_ne!(result_key(c, "het", 1), result_key(c, "het", 2));
    }

    #[test]
    fn input_hashes_are_domain_separated() {
        let task = sample_task(9);
        let single = hash_input(&AnalysisInput::Task(task.clone()));
        let set = hash_input(&AnalysisInput::TaskSet(vec![task]));
        assert_ne!(single, set);
    }

    #[test]
    fn memo_hits_after_first_compute() {
        let cache: MemoCache<u64> = MemoCache::new();
        let (v1, hit1) = cache.get_or_compute(42, || 7);
        let (v2, hit2) = cache.get_or_compute(42, || unreachable!("memoized"));
        assert_eq!((v1, hit1), (7, false));
        assert_eq!((v2, hit2), (7, true));
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn peek_get_insert_semantics() {
        let cache: MemoCache<u64> = MemoCache::new();
        assert_eq!(cache.peek(1), None);
        assert_eq!(cache.counters(), CacheCounters::default());
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.counters().misses, 1);
        cache.insert(1, 10);
        assert_eq!(cache.peek(1), Some(10));
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1 });
        cache.note_hits(3);
        assert_eq!(cache.counters().hits, 4);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        let cache: MemoCache<u64> = MemoCache::bounded(32);
        for key in 0..10_000u128 {
            cache.insert(key << 96 | key, key as u64); // spread across shards
        }
        assert!(cache.len() <= 32, "cache grew to {}", cache.len());

        // Single-shard LRU order: the recently-touched entry survives.
        let cache: MemoCache<u64> = MemoCache::bounded(SHARDS * 2); // 2 per shard
        cache.insert(1, 1); // shard 0
        cache.insert(2, 2); // shard 0
        assert_eq!(cache.get(1), Some(1)); // bump 1 to MRU
        cache.insert(3, 3); // shard 0 → evicts 2 (LRU)
        assert_eq!(cache.peek(1), Some(1));
        assert_eq!(cache.peek(2), None);
        assert_eq!(cache.peek(3), Some(3));
    }

    #[test]
    fn counter_snapshots_subtract() {
        let a = CacheCounters {
            hits: 10,
            misses: 4,
        };
        let b = CacheCounters { hits: 7, misses: 1 };
        assert_eq!(a.since(b), CacheCounters { hits: 3, misses: 3 });
        assert!((a.hit_rate() - 10.0 / 14.0).abs() < 1e-12);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }
}
