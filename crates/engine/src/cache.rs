//! Content-addressed memoization of analysis results.
//!
//! The unit of caching is a *structural hash* of the analyzed content — DAG
//! shape, node WCETs, offloaded node, period and deadline, plus the analysis
//! parameters (core count, analysis kind). Two jobs that analyze
//! structurally identical tasks under the same parameters share one
//! computation, whichever worker gets there first; everyone else gets a
//! clone of the memoized value. Sweeps with repeated generator seeds, or
//! spec cells that revisit the same `(seed, fraction)` task under several
//! core counts, hit the cache instead of re-running the analysis.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hetrta_dag::{Dag, HeteroDagTask};

/// 128-bit FNV-1a, the workspace's convention for deterministic content
/// hashes (64-bit would start colliding around a few billion distinct
/// entries; sweeps reach millions).
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl ContentHasher {
    /// Creates a hasher with the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        ContentHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= u128::from(byte);
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    /// Feeds a 64-bit word (little-endian).
    pub fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Returns the accumulated digest.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Structural hash of a DAG: node count, per-node WCET and adjacency.
///
/// Labels are deliberately excluded — two tasks that differ only in node
/// names analyze identically. Node *numbering* is part of the content: the
/// generators number nodes canonically, so structurally equal generated
/// tasks hash equal.
pub fn hash_dag(h: &mut ContentHasher, dag: &Dag) {
    h.write_u64(dag.node_count() as u64);
    for v in dag.node_ids() {
        h.write_u64(dag.wcet(v).get());
        let succs = dag.successors(v);
        h.write_u64(succs.len() as u64);
        for &s in succs {
            h.write_u64(s.index() as u64);
        }
    }
}

/// Content hash of a heterogeneous task (structure + timing parameters).
#[must_use]
pub fn hash_task(task: &HeteroDagTask) -> u128 {
    let mut h = ContentHasher::new();
    hash_dag(&mut h, task.dag());
    h.write_u64(task.offloaded().index() as u64);
    h.write_u64(task.period().get());
    h.write_u64(task.deadline().get());
    h.finish()
}

/// Content hash of a task *set* (order-sensitive: priority order is part of
/// the schedulability question).
#[must_use]
pub fn hash_task_set(tasks: &[HeteroDagTask]) -> u128 {
    let mut h = ContentHasher::new();
    h.write_u64(tasks.len() as u64);
    for t in tasks {
        let th = hash_task(t);
        h.write_u64(th as u64);
        h.write_u64((th >> 64) as u64);
    }
    h.finish()
}

/// Extends a content hash with analysis parameters, yielding a cache key.
#[must_use]
pub fn key_with_params(content: u128, tag: u8, m: u64) -> u128 {
    let mut h = ContentHasher::new();
    h.write_u64(content as u64);
    h.write_u64((content >> 64) as u64);
    h.write_u8(tag);
    h.write_u64(m);
    h.finish()
}

/// Running hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (includes the rare concurrent
    /// double-compute of the same key).
    pub misses: u64,
}

impl CacheCounters {
    /// Hits as a fraction of all lookups (`0` for an untouched cache).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter difference `self - earlier` (for per-run snapshots on a
    /// long-lived cache).
    #[must_use]
    pub fn since(&self, earlier: CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// A sharded, content-addressed memo table.
///
/// Values are cloned out; computation runs *outside* the shard lock, so two
/// workers racing on the same fresh key may both compute (both counted as
/// misses) — the table stays consistent because the value for a key is a
/// pure function of the key's content.
#[derive(Debug)]
pub struct MemoCache<V> {
    shards: Vec<Mutex<HashMap<u128, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

const SHARDS: usize = 32;

impl<V: Clone> MemoCache<V> {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, V>> {
        // High bits select the shard; FNV mixes enough for that.
        &self.shards[(key >> 96) as usize % SHARDS]
    }

    /// Looks up `key`, computing and memoizing with `compute` on a miss.
    /// Returns the value and whether it was a hit.
    pub fn get_or_compute(&self, key: u128, compute: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.shard(key).lock().expect("cache shard").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (v.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        let mut shard = self.shard(key).lock().expect("cache shard");
        let stored = shard.entry(key).or_insert_with(|| value.clone());
        (stored.clone(), false)
    }

    /// Number of memoized entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// `true` if nothing is memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<V: Clone> Default for MemoCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::{DagBuilder, Ticks};

    fn sample_task(wcet_kernel: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let pre = b.node("pre", Ticks::new(2));
        let kernel = b.node("kernel", Ticks::new(wcet_kernel));
        let post = b.node("post", Ticks::new(2));
        b.edges([(pre, kernel), (kernel, post)]).unwrap();
        HeteroDagTask::new(b.build().unwrap(), kernel, Ticks::new(50), Ticks::new(50)).unwrap()
    }

    #[test]
    fn equal_content_hashes_equal() {
        assert_eq!(hash_task(&sample_task(9)), hash_task(&sample_task(9)));
        assert_ne!(hash_task(&sample_task(9)), hash_task(&sample_task(10)));
    }

    #[test]
    fn params_change_the_key() {
        let c = hash_task(&sample_task(9));
        assert_ne!(key_with_params(c, 0, 2), key_with_params(c, 0, 4));
        assert_ne!(key_with_params(c, 0, 2), key_with_params(c, 1, 2));
    }

    #[test]
    fn memo_hits_after_first_compute() {
        let cache: MemoCache<u64> = MemoCache::new();
        let (v1, hit1) = cache.get_or_compute(42, || 7);
        let (v2, hit2) = cache.get_or_compute(42, || unreachable!("memoized"));
        assert_eq!((v1, hit1), (7, false));
        assert_eq!((v2, hit2), (7, true));
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn counter_snapshots_subtract() {
        let a = CacheCounters {
            hits: 10,
            misses: 4,
        };
        let b = CacheCounters { hits: 7, misses: 1 };
        assert_eq!(a.since(b), CacheCounters { hits: 3, misses: 3 });
        assert!((a.hit_rate() - 10.0 / 14.0).abs() < 1e-12);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }
}
