//! # hetrta-engine — parallel batch-analysis engine with content-addressed
//! # result caching
//!
//! The per-task analyses of this workspace (transformation + Theorem 1,
//! Eq. 1, simulation, bounded exact solving) and the task-set acceptance
//! tests are all pure functions of their inputs, and evaluation sweeps run
//! them over thousands of independently generated inputs. This crate is the
//! production path for those sweeps:
//!
//! * a declarative [`SweepSpec`] (generator preset × core counts ×
//!   utilization/fraction grid × seeds × analysis kinds) expands into
//!   independent [`Job`]s;
//! * a **work-stealing worker pool** ([`pool`]) runs the jobs: a shared
//!   injector queue feeds per-worker deques, idle workers steal from
//!   siblings, and results stream through a channel into an aggregator;
//! * a **content-addressed memo cache** ([`cache`]) keyed by a structural
//!   hash of the DAG + analysis parameters ensures repeated content —
//!   repeated seeds, the same task under several core counts — is analyzed
//!   once, with hit/miss counters surfaced in [`EngineStats`];
//! * the [`SweepAggregate`] is **bit-deterministic**: expansion order, not
//!   completion order, drives every floating-point reduction, so one
//!   thread and N threads produce identical aggregates.
//!
//! ## Example
//!
//! ```
//! use hetrta_engine::{Engine, GeneratorPreset, SweepSpec};
//!
//! # fn main() -> Result<(), hetrta_engine::EngineError> {
//! // A small Figure-8-style sweep: 2 core counts × 2 offload fractions,
//! // 8 tasks per point.
//! let spec = SweepSpec::fractions(
//!     GeneratorPreset::Small,
//!     vec![2, 8],
//!     vec![0.05, 0.30],
//!     8,
//!     0xDAC_2018,
//! );
//! let engine = Engine::new(0); // all cores
//! let out = engine.run(&spec)?;
//! assert_eq!(out.aggregate.cells.len(), 4);
//! assert_eq!(out.stats.jobs, 32);
//! // The transformation of each task is shared across core counts:
//! assert!(out.stats.transform_cache.hits > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod cache;
mod engine;
pub mod job;
pub mod pool;
pub mod spec;

pub use aggregate::{CellKind, CellSummary, SetCellSummary, SweepAggregate, TaskCellSummary};
pub use cache::CacheCounters;
pub use engine::{Engine, EngineCaches, EngineError, EngineOutput, EngineStats};
pub use job::{ExactSummary, HetSummary, Job, JobMetrics, JobPayload, JobResult};
pub use spec::{AnalysisSelection, CellInfo, GeneratorPreset, SweepGrid, SweepSpec};

// The acceptance-test order of set sweeps is the serial path's.
pub use hetrta_sched::acceptance::TestKind;
