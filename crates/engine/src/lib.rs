//! # hetrta-engine — registry-driven parallel batch-analysis engine with
//! # content-addressed result caching
//!
//! The analyses of this workspace are pure functions of their inputs, and
//! evaluation sweeps run them over thousands of independently generated
//! inputs. This crate is the production path for those sweeps:
//!
//! * a declarative [`SweepSpec`] (generator preset × core counts × grid ×
//!   seeds × analysis registry keys) expands into independent [`Job`]s;
//!   grids cover offload fractions (Figures 6–9), normalized utilizations
//!   (acceptance tests), per-job sampled fractions (suspension baselines)
//!   and conditional shares;
//! * every job resolves its analyses through the
//!   [`AnalysisRegistry`] of `hetrta-api` — `"het"`, `"hom"`, `"sim"`,
//!   `"exact"`, `"cond"`, `"suspend"`, `"acceptance"`, or any custom
//!   [`Analysis`] registered by the application;
//! * a **work-stealing worker pool** ([`pool`]) runs the jobs — heaviest
//!   analysis kinds first, so one expensive solve does not tail the sweep;
//! * five bounded, sharded-LRU **memo caches** ([`cache`]) serve repeated
//!   content: analysis results by content hash × key × parameter digest,
//!   Algorithm 1 transformations and per-DAG derived data (critical path,
//!   volume) across core counts and analysis kinds,
//!   a job-identity → content-hash memo so repeated-seed jobs never
//!   regenerate their DAG just to compute the lookup key, and the
//!   materialized inputs themselves so a recipe revisited under new
//!   parameters skips generation too;
//! * the [`SweepAggregate`] is **bit-deterministic**: expansion order, not
//!   completion order, drives every floating-point reduction, so one
//!   thread and N threads produce identical aggregates;
//! * sweeps are **observable sessions** ([`session`]): [`Engine::submit`]
//!   returns a [`SweepHandle`] with a typed [`SweepEvent`] stream, live
//!   statistics, and cancellation — [`Engine::run`] is submit + wait;
//! * the caches can persist to **disk** ([`disk`], via
//!   [`EngineBuilder::with_cache_dir`]), so a second process running the
//!   same spec replays every result instead of recomputing.
//!
//! ## Example
//!
//! ```
//! use hetrta_engine::{Engine, GeneratorPreset, SweepSpec};
//!
//! # fn main() -> Result<(), hetrta_engine::EngineError> {
//! // A small Figure-8-style sweep: 2 core counts × 2 offload fractions,
//! // 8 tasks per point.
//! let spec = SweepSpec::fractions(
//!     GeneratorPreset::Small,
//!     vec![2, 8],
//!     vec![0.05, 0.30],
//!     8,
//!     0xDAC_2018,
//! );
//! let engine = Engine::new(0); // all cores
//! let out = engine.run(&spec)?;
//! assert_eq!(out.aggregate.cells.len(), 4);
//! assert_eq!(out.stats.jobs, 32);
//! // The transformation of each task is shared across core counts:
//! assert!(out.stats.transform_cache.hits > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod cache;
pub mod disk;
mod engine;
pub mod job;
pub mod journal;
pub mod pool;
pub mod session;
pub mod spec;
pub mod wire;

pub use aggregate::{
    AccuracySummary, AggregateUpdate, AggregateView, Aggregator, CellKind, CellSummary,
    CondCellSummary, SetCellSummary, SuspendCellSummary, SweepAggregate, TaskCellSummary,
};
pub use cache::CacheCounters;
pub use disk::{DiskCache, GcStats, ReadPin};
pub use engine::{
    CostModel, Engine, EngineBuilder, EngineCaches, EngineError, EngineOutput, EngineStats,
    InjectionOrder, DEFAULT_CACHE_CAPACITY, INPUT_CACHE_CAP,
};
pub use job::{Job, JobInput, JobMetrics, JobPayload, JobResult};
pub use journal::{spec_hash, JournalConfig, JournalOutcome, SweepJournal};
pub use session::{SessionConfig, SweepCancelToken, SweepEvent, SweepHandle};
pub use spec::{AnalysisSelection, CellInfo, CellShape, GeneratorPreset, SweepGrid, SweepSpec};

// The observability layer the engine reports through: re-exported whole
// (as `obs`) plus the handful of types engine signatures mention.
pub use hetrta_obs as obs;
pub use hetrta_obs::{
    MetricsRegistry, MetricsSnapshot, NoopRecorder, Recorder, SpanRecord, TraceRecorder,
};

// The fault-injection plane the engine's robustness hooks consume.
pub use hetrta_fault::{FaultEvent, FaultPlan};

// The unified analysis API the engine schedules over.
pub use hetrta_api::{
    Analysis, AnalysisContext, AnalysisInput, AnalysisOutcome, AnalysisParams, AnalysisRegistry,
    AnalysisRequest, ApiError, CondOutcome, HetOutcome, SimOutcome, SuspendOutcome,
};

/// Backwards-compatible name of [`hetrta_api::HetOutcome`].
pub type HetSummary = hetrta_api::HetOutcome;
/// Backwards-compatible name of [`hetrta_api::ExactOutcome`].
pub type ExactSummary = hetrta_api::ExactOutcome;

// The acceptance-test order of set sweeps is the serial path's.
pub use hetrta_sched::acceptance::TestKind;
