//! Independent units of work and their execution against the caches.

use std::sync::Arc;

use hetrta_core::federated::{federated_partition, AnalysisKind};
use hetrta_core::{r_het, r_hom_dag, transform, Scenario, TransformedTask};
use hetrta_dag::HeteroDagTask;
use hetrta_exact::{solve, SolverConfig, MAX_NODES_SUPPORTED};
use hetrta_gen::series::BatchSpec;
use hetrta_sched::model::{AnalysisModel, DeviceModel};
use hetrta_sched::taskset::{generate_task_set, sort_deadline_monotonic, TaskSetParams};
use hetrta_sched::{gedf_test, gfp_test};
use hetrta_sim::policy::BreadthFirst;
use hetrta_sim::{simulate, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{hash_task, hash_task_set, key_with_params};
use crate::spec::AnalysisSelection;
use crate::EngineCaches;

/// Cache key tags, one per memoized computation kind.
const TAG_TRANSFORM: u8 = 0;
const TAG_HET: u8 = 1;
const TAG_HOM: u8 = 2;
const TAG_SIM: u8 = 3;
const TAG_EXACT: u8 = 4;
const TAG_SET: u8 = 5;

/// One independent unit of work.
#[derive(Debug, Clone)]
pub struct Job {
    /// Position in the spec's expansion order (the determinism anchor).
    pub index: usize,
    /// Index of the sweep cell this job contributes to.
    pub cell: usize,
    /// What to compute.
    pub payload: JobPayload,
}

/// The two job shapes a [`SweepSpec`](crate::SweepSpec) expands into.
#[derive(Debug, Clone)]
pub enum JobPayload {
    /// Generate task `task_index` of `batch` at `fraction` and analyze it
    /// on `m` cores.
    Task {
        /// Reproducible batch the task is drawn from.
        batch: Arc<BatchSpec>,
        /// Target `C_off/vol`.
        fraction: f64,
        /// Index within the batch.
        task_index: usize,
        /// Host core count.
        m: u64,
        /// Which analyses to run.
        analyses: AnalysisSelection,
        /// Optional bounded-solver node budget.
        exact_node_budget: Option<u64>,
    },
    /// Generate one task set and run the six acceptance tests.
    Set {
        /// Task-set template (total utilization overwritten per point).
        template: Arc<TaskSetParams>,
        /// Tasks per set.
        n_tasks: usize,
        /// Host core count.
        cores: u64,
        /// Normalized utilization `U/m` of this point.
        normalized_util: f64,
        /// Fully derived RNG seed for this set.
        seed: u64,
    },
}

/// Everything the heterogeneous analysis of one task produces, reduced to
/// the values sweeps aggregate. Field-for-field this mirrors the accessors
/// of [`hetrta_core::AnalysisReport`]; parity is covered by the
/// `engine_parity` integration tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HetSummary {
    /// `R_het(τ')` (Theorem 1).
    pub r_het: f64,
    /// `R_hom(τ)` (Eq. 1 on the original DAG).
    pub r_hom_original: f64,
    /// `R_hom(τ')` (Eq. 1 on the transformed DAG).
    pub r_hom_transformed: f64,
    /// Which Theorem 1 scenario applied.
    pub scenario: Scenario,
    /// `100·(R_hom − R_het)/R_het` (the Figure 9 metric).
    pub improvement_percent: f64,
    /// `R_het(τ') ≤ D`.
    pub schedulable_het: bool,
    /// `R_hom(τ) ≤ D`.
    pub schedulable_hom: bool,
}

/// Outcome of the bounded exact solver on one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactSummary {
    /// Minimum makespan found.
    pub makespan: u64,
    /// Whether the solver proved optimality within its budget.
    pub optimal: bool,
}

/// Metrics of one per-task job (fields are `None` when the corresponding
/// analysis was not selected, or — for `exact` — not solvable within the
/// budget/size limits).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TaskPointMetrics {
    /// `R_hom(τ)` when only the homogeneous analysis was requested.
    pub r_hom: Option<f64>,
    /// Heterogeneous analysis summary.
    pub het: Option<HetSummary>,
    /// Simulated makespan (breadth-first, `m` hosts + accelerator).
    pub sim_makespan: Option<u64>,
    /// Bounded exact solve.
    pub exact: Option<ExactSummary>,
}

/// Metrics of one task-set job: accept bit per test, in
/// [`hetrta_sched::acceptance::TestKind::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetPointMetrics {
    /// GFP-hom, GFP-het, GEDF-hom, GEDF-het, FED-hom, FED-het.
    pub accepted: [bool; 6],
}

/// What a job computed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobMetrics {
    /// Per-task analysis metrics.
    Task(TaskPointMetrics),
    /// Task-set acceptance bits.
    Set(SetPointMetrics),
}

/// A finished job, streamed to the aggregator.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's expansion index.
    pub index: usize,
    /// The cell it contributes to.
    pub cell: usize,
    /// Worker that executed it.
    pub worker: usize,
    /// Whether the job's primary result came out of the memo cache.
    pub cache_hit: bool,
    /// Metrics, or the failure message.
    pub metrics: Result<JobMetrics, String>,
}

/// Values stored in the shared result cache.
#[derive(Debug, Clone)]
pub(crate) enum CachedValue {
    Het(HetSummary),
    Hom(f64),
    Sim(u64),
    Exact(Option<ExactSummary>),
    Set([bool; 6]),
    Failed(String),
}

/// Executes one job against the shared caches.
pub(crate) fn execute(caches: &EngineCaches, job: &Job, worker: usize) -> JobResult {
    let (metrics, cache_hit) = match &job.payload {
        JobPayload::Task {
            batch,
            fraction,
            task_index,
            m,
            analyses,
            exact_node_budget,
        } => execute_task(
            caches,
            batch,
            *fraction,
            *task_index,
            *m,
            *analyses,
            *exact_node_budget,
        ),
        JobPayload::Set {
            template,
            n_tasks,
            cores,
            normalized_util,
            seed,
        } => execute_set(caches, template, *n_tasks, *cores, *normalized_util, *seed),
    };
    JobResult {
        index: job.index,
        cell: job.cell,
        worker,
        cache_hit,
        metrics,
    }
}

fn execute_task(
    caches: &EngineCaches,
    batch: &BatchSpec,
    fraction: f64,
    task_index: usize,
    m: u64,
    analyses: AnalysisSelection,
    exact_node_budget: Option<u64>,
) -> (Result<JobMetrics, String>, bool) {
    let task = match batch.task(task_index, fraction) {
        Ok(t) => t,
        Err(e) => return (Err(format!("generation failed: {e}")), false),
    };
    let content = hash_task(&task);
    let mut metrics = TaskPointMetrics::default();
    let mut all_hits = true;

    if analyses.het {
        let key = key_with_params(content, TAG_HET, m);
        let (value, hit) = caches
            .results
            .get_or_compute(key, || het_summary(caches, &task, content, m));
        all_hits &= hit;
        match value {
            CachedValue::Het(h) => metrics.het = Some(h),
            CachedValue::Failed(e) => return (Err(e), false),
            _ => unreachable!("het key yields het value"),
        }
    }
    if analyses.hom {
        let key = key_with_params(content, TAG_HOM, m);
        let (value, hit) = caches
            .results
            .get_or_compute(key, || match r_hom_dag(task.dag(), m) {
                Ok(r) => CachedValue::Hom(r.to_f64()),
                Err(e) => CachedValue::Failed(format!("R_hom failed: {e}")),
            });
        all_hits &= hit;
        match value {
            CachedValue::Hom(r) => metrics.r_hom = Some(r),
            CachedValue::Failed(e) => return (Err(e), false),
            _ => unreachable!("hom key yields hom value"),
        }
    }
    if analyses.sim {
        let key = key_with_params(content, TAG_SIM, m);
        let (value, hit) = caches.results.get_or_compute(key, || {
            let platform = Platform::with_accelerator(m as usize);
            match simulate(
                task.dag(),
                Some(task.offloaded()),
                platform,
                &mut BreadthFirst::new(),
            ) {
                Ok(r) => CachedValue::Sim(r.makespan().get()),
                Err(e) => CachedValue::Failed(format!("simulation failed: {e}")),
            }
        });
        all_hits &= hit;
        match value {
            CachedValue::Sim(ms) => metrics.sim_makespan = Some(ms),
            CachedValue::Failed(e) => return (Err(e), false),
            _ => unreachable!("sim key yields sim value"),
        }
    }
    if analyses.exact {
        // The budget changes what "unsolved" means, so it is part of the
        // content address (u64::MAX stands for the solver default).
        let budget_key = exact_node_budget.unwrap_or(u64::MAX);
        let key = key_with_params(
            key_with_params(content, TAG_EXACT, m),
            TAG_EXACT,
            budget_key,
        );
        let (value, hit) = caches.results.get_or_compute(key, || {
            if task.dag().node_count() > MAX_NODES_SUPPORTED {
                return CachedValue::Exact(None);
            }
            let mut config = SolverConfig::default();
            if let Some(budget) = exact_node_budget {
                config.max_nodes = budget;
            }
            match solve(task.dag(), Some(task.offloaded()), m, &config) {
                Ok(sol) => CachedValue::Exact(Some(ExactSummary {
                    makespan: sol.makespan().get(),
                    optimal: sol.is_optimal(),
                })),
                // A budget/size refusal is data ("unsolved"), not a failure.
                Err(_) => CachedValue::Exact(None),
            }
        });
        all_hits &= hit;
        match value {
            CachedValue::Exact(e) => metrics.exact = e,
            CachedValue::Failed(e) => return (Err(e), false),
            _ => unreachable!("exact key yields exact value"),
        }
    }

    (Ok(JobMetrics::Task(metrics)), all_hits)
}

/// Computes the heterogeneous summary, reusing the memoized transformation
/// when any previous job (e.g. the same task under another core count)
/// already produced it.
fn het_summary(caches: &EngineCaches, task: &HeteroDagTask, content: u128, m: u64) -> CachedValue {
    let transform_key = key_with_params(content, TAG_TRANSFORM, 0);
    let (transformed, _hit) = caches
        .transform
        .get_or_compute(transform_key, || transform(task).map_err(|e| e.to_string()));
    let transformed: TransformedTask = match transformed {
        Ok(t) => t,
        Err(e) => return CachedValue::Failed(format!("transformation failed: {e}")),
    };
    let het = match r_het(&transformed, m) {
        Ok(h) => h,
        Err(e) => return CachedValue::Failed(format!("R_het failed: {e}")),
    };
    let r_hom_original = match r_hom_dag(task.dag(), m) {
        Ok(r) => r,
        Err(e) => return CachedValue::Failed(format!("R_hom failed: {e}")),
    };
    let r_hom_transformed = het.r_hom_transformed();
    let deadline = task.deadline().to_rational();
    let r_het_value = het.value();
    // improvement_percent mirrors AnalysisReport::improvement_percent
    // operation-for-operation so engine and serial sweeps agree bitwise.
    let het_f = r_het_value.to_f64();
    let improvement = if het_f == 0.0 {
        0.0
    } else {
        100.0 * (r_hom_original.to_f64() - het_f) / het_f
    };
    CachedValue::Het(HetSummary {
        r_het: het_f,
        r_hom_original: r_hom_original.to_f64(),
        r_hom_transformed: r_hom_transformed.to_f64(),
        scenario: het.scenario(),
        improvement_percent: improvement,
        schedulable_het: r_het_value <= deadline,
        schedulable_hom: r_hom_original <= deadline,
    })
}

fn execute_set(
    caches: &EngineCaches,
    template: &TaskSetParams,
    n_tasks: usize,
    cores: u64,
    normalized_util: f64,
    seed: u64,
) -> (Result<JobMetrics, String>, bool) {
    // Generation mirrors hetrta_sched::acceptance::acceptance_sweep.
    let mut params = template.clone();
    params.n_tasks = n_tasks;
    params.total_util = normalized_util * cores as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = match generate_task_set(&params, &mut rng) {
        Ok(s) => s,
        Err(e) => return (Err(format!("task-set generation failed: {e}")), false),
    };
    sort_deadline_monotonic(&mut set);

    let content = hash_task_set(&set);
    let key = key_with_params(content, TAG_SET, cores);
    let (value, hit) = caches
        .results
        .get_or_compute(key, || set_verdicts(&set, cores));
    match value {
        CachedValue::Set(accepted) => (Ok(JobMetrics::Set(SetPointMetrics { accepted })), hit),
        CachedValue::Failed(e) => (Err(e), false),
        _ => unreachable!("set key yields set value"),
    }
}

/// Runs the six acceptance tests of the serial sweep, in
/// [`hetrta_sched::acceptance::TestKind::ALL`] order.
fn set_verdicts(set: &[HeteroDagTask], cores: u64) -> CachedValue {
    let het = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);
    let mut accepted = [false; 6];
    let outcome: Result<(), String> = (|| {
        accepted[0] = gfp_test(set, cores, AnalysisModel::Homogeneous)
            .map_err(|e| e.to_string())?
            .is_schedulable();
        accepted[1] = gfp_test(set, cores, het)
            .map_err(|e| e.to_string())?
            .is_schedulable();
        accepted[2] = gedf_test(set, cores, AnalysisModel::Homogeneous)
            .map_err(|e| e.to_string())?
            .is_schedulable();
        accepted[3] = gedf_test(set, cores, het)
            .map_err(|e| e.to_string())?
            .is_schedulable();
        accepted[4] = federated_partition(set, cores, AnalysisKind::Homogeneous)
            .map_err(|e| e.to_string())?
            .is_schedulable();
        accepted[5] = federated_partition(set, cores, AnalysisKind::Heterogeneous)
            .map_err(|e| e.to_string())?
            .is_schedulable();
        Ok(())
    })();
    match outcome {
        Ok(()) => CachedValue::Set(accepted),
        Err(e) => CachedValue::Failed(format!("acceptance tests failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GeneratorPreset, SweepSpec};

    #[test]
    fn task_job_executes_and_caches() {
        let caches = EngineCaches::default();
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 1, 7);
        let (_, jobs) = spec.expand();
        let first = execute(&caches, &jobs[0], 0);
        assert!(!first.cache_hit);
        let metrics = first.metrics.expect("job succeeds");
        let JobMetrics::Task(t) = &metrics else {
            panic!("task job")
        };
        let het = t.het.expect("het selected");
        assert!(het.r_het <= het.r_hom_transformed + 1e-9);

        // Same job again: fully served from cache, same values.
        let again = execute(&caches, &jobs[0], 1);
        assert!(again.cache_hit);
        assert_eq!(again.metrics.expect("job succeeds"), metrics);
    }

    #[test]
    fn transform_is_shared_across_core_counts() {
        let caches = EngineCaches::default();
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2, 4, 8], vec![0.2], 1, 7);
        let (_, jobs) = spec.expand();
        for job in &jobs {
            let r = execute(&caches, job, 0);
            assert!(r.metrics.is_ok());
        }
        let counters = caches.transform.counters();
        assert_eq!(counters.misses, 1, "one DAG, one transformation");
        assert_eq!(counters.hits, 2, "reused for the other two core counts");
    }

    #[test]
    fn all_analyses_fill_all_metrics() {
        let caches = EngineCaches::default();
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.25], 1, 3)
            .with_analyses(crate::AnalysisSelection::all());
        let (_, jobs) = spec.expand();
        let r = execute(&caches, &jobs[0], 0);
        let JobMetrics::Task(t) = r.metrics.expect("job succeeds") else {
            panic!("task job")
        };
        assert!(t.r_hom.is_some());
        assert!(t.het.is_some());
        assert!(t.sim_makespan.is_some());
        // exact may be None only for oversized DAGs; small preset fits.
        let exact = t.exact.expect("small task solves");
        let sim = t.sim_makespan.unwrap();
        assert!(
            exact.makespan <= sim,
            "exact optimum cannot exceed a simulated schedule"
        );
    }
}
