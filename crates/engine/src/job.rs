//! Independent units of work and their execution against the caches.
//!
//! A job is a recipe for an input ([`JobInput`]) plus an ordered list of
//! analysis registry keys to run on it. Execution is layered over three
//! memo caches:
//!
//! 1. an **identity memo** mapping the job's input *recipe* to the content
//!    hash of the input it generates — so a repeated-seed job whose results
//!    are already cached never rebuilds the DAG just to compute the lookup
//!    key;
//! 2. the **result cache**, keyed by content hash × registry key × the
//!    parameter digest the analysis declares;
//! 3. the **transformation memo**, shared through the
//!    [`AnalysisContext`] seam so Algorithm 1 runs once per distinct DAG
//!    regardless of core count or analysis kind.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hetrta_api::{
    Analysis, AnalysisContext, AnalysisInput, AnalysisOutcome, AnalysisParams, AnalysisRegistry,
    AnalysisRequest, DerivedData,
};
use hetrta_cond::{generate_cond, CondGenParams};
use hetrta_core::TransformedTask;
use hetrta_dag::HeteroDagTask;
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::series::BatchSpec;
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_obs::{span, Recorder};
use hetrta_sched::taskset::{generate_task_set, sort_deadline_monotonic, TaskSetParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{
    hash_dag_only, hash_input, hash_task, key_with_params, result_key, ContentHasher,
};
use crate::EngineCaches;

/// Cache-key tag of the transformation memo.
const TAG_TRANSFORM: u8 = 0xF0;

/// Cache-key tag of the derived-data memo.
const TAG_DERIVED: u8 = 0xF1;

/// One independent unit of work.
#[derive(Debug, Clone)]
pub struct Job {
    /// Position in the spec's expansion order (the determinism anchor).
    pub index: usize,
    /// Index of the sweep cell this job contributes to.
    pub cell: usize,
    /// What to compute.
    pub payload: JobPayload,
}

/// What one job computes: an input recipe, the registry keys to run on it,
/// and the analysis parameters.
#[derive(Debug, Clone)]
pub struct JobPayload {
    /// How to obtain the input.
    pub input: JobInput,
    /// Registry keys of the analyses to run, in outcome order.
    pub analyses: Arc<[Arc<str>]>,
    /// Parameters handed to every analysis.
    pub params: AnalysisParams,
}

/// A recipe for one analysis input.
#[derive(Debug, Clone)]
pub enum JobInput {
    /// Task `task_index` of a reproducible batch at offload `fraction`.
    BatchTask {
        /// Reproducible batch the task is drawn from.
        batch: Arc<BatchSpec>,
        /// Target `C_off/vol`.
        fraction: f64,
        /// Index within the batch.
        task_index: usize,
    },
    /// One independently sampled task from a fully derived seed;
    /// generation failures *decline* the sample instead of failing the job
    /// (the suspension-baseline convention).
    SampledTask {
        /// DAG generator parameters.
        params: Arc<NfjParams>,
        /// Target `C_off/vol`.
        fraction: f64,
        /// Fully derived RNG seed.
        seed: u64,
    },
    /// One generated task set, sorted deadline-monotonically.
    TaskSet {
        /// Task-set template (total utilization overwritten per point).
        template: Arc<TaskSetParams>,
        /// Tasks per set.
        n_tasks: usize,
        /// Host core count (scales the total utilization).
        cores: u64,
        /// Normalized utilization `U/m` of this point.
        normalized_util: f64,
        /// Fully derived RNG seed for this set.
        seed: u64,
    },
    /// One generated conditional expression; generation failures decline
    /// the sample.
    CondExpr {
        /// Conditional-generator parameters.
        params: Arc<CondGenParams>,
        /// Fully derived RNG seed.
        seed: u64,
    },
}

impl JobInput {
    /// Hash of the input *recipe* — what to generate, not the generated
    /// content. Keyed on generator parameters and derivation scalars, so
    /// two jobs that would generate identical inputs share one identity.
    #[must_use]
    pub fn identity_hash(&self) -> u128 {
        let mut h = ContentHasher::new();
        match self {
            JobInput::BatchTask {
                batch,
                fraction,
                task_index,
            } => {
                h.write_u8(1);
                h.write_str(&format!("{:?}", batch.params));
                h.write_u64(batch.base_seed);
                h.write_str(&format!("{:?}", batch.selection));
                h.write_u64(fraction.to_bits());
                h.write_u64(*task_index as u64);
            }
            JobInput::SampledTask {
                params,
                fraction,
                seed,
            } => {
                h.write_u8(2);
                h.write_str(&format!("{params:?}"));
                h.write_u64(fraction.to_bits());
                h.write_u64(*seed);
            }
            JobInput::TaskSet {
                template,
                n_tasks,
                cores,
                normalized_util,
                seed,
            } => {
                h.write_u8(3);
                h.write_str(&format!("{template:?}"));
                h.write_u64(*n_tasks as u64);
                h.write_u64(*cores);
                h.write_u64(normalized_util.to_bits());
                h.write_u64(*seed);
            }
            JobInput::CondExpr { params, seed } => {
                h.write_u8(4);
                h.write_str(&format!("{params:?}"));
                h.write_u64(*seed);
            }
        }
        h.finish()
    }

    /// Materializes the input. `Ok(None)` means the generator declined the
    /// sample (sweeps skip it, mirroring the serial loops); `Err` is a
    /// hard job failure.
    fn materialize(&self) -> Result<Option<AnalysisInput>, String> {
        match self {
            JobInput::BatchTask {
                batch,
                fraction,
                task_index,
            } => match batch.task(*task_index, *fraction) {
                Ok(task) => Ok(Some(AnalysisInput::Task(task))),
                Err(e) => Err(format!("generation failed: {e}")),
            },
            JobInput::SampledTask {
                params,
                fraction,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let Ok(dag) = generate_nfj(params, &mut rng) else {
                    return Ok(None);
                };
                match make_hetero_task(
                    dag,
                    OffloadSelection::AnyInterior,
                    CoffSizing::VolumeFraction(*fraction),
                    &mut rng,
                ) {
                    Ok(task) => Ok(Some(AnalysisInput::Task(task))),
                    Err(_) => Ok(None),
                }
            }
            JobInput::TaskSet {
                template,
                n_tasks,
                cores,
                normalized_util,
                seed,
            } => {
                // Generation mirrors hetrta_sched::acceptance::acceptance_sweep.
                let mut params = (**template).clone();
                params.n_tasks = *n_tasks;
                params.total_util = normalized_util * *cores as f64;
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut set = generate_task_set(&params, &mut rng)
                    .map_err(|e| format!("task-set generation failed: {e}"))?;
                sort_deadline_monotonic(&mut set);
                Ok(Some(AnalysisInput::TaskSet(set)))
            }
            JobInput::CondExpr { params, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                match generate_cond(params, &mut rng) {
                    Ok(expr) => Ok(Some(AnalysisInput::Cond(expr))),
                    Err(_) => Ok(None),
                }
            }
        }
    }
}

/// What a job computed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobMetrics {
    /// Outcomes of the selected analyses, in selection order.
    Outcomes(Vec<AnalysisOutcome>),
    /// The generator declined the sample; serial reference loops skip
    /// these, and so does aggregation.
    Skipped,
}

/// A finished job, streamed to the aggregator (and, through session
/// events, to observers).
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's expansion index.
    pub index: usize,
    /// The cell it contributes to.
    pub cell: usize,
    /// Worker that executed it.
    pub worker: usize,
    /// Stable content key of the job's input recipe ([`JobInput::identity_hash`]).
    pub identity: u128,
    /// Whether the job was served entirely from the memo caches (memory
    /// or disk).
    pub cache_hit: bool,
    /// Wall-clock execution time on the worker.
    pub wall_time: Duration,
    /// Measured wall time of each analysis that was actually *computed*
    /// (cache-served analyses are not timed) — the feed of the engine's
    /// per-key cost EWMAs.
    pub timings: Vec<(Arc<str>, Duration)>,
    /// Metrics, or the failure message.
    pub metrics: Result<JobMetrics, String>,
}

/// The engine's [`AnalysisContext`]: Algorithm 1 transformations and the
/// per-DAG derived data (critical path, volume) are memoized by content,
/// shared across core counts and analysis kinds. The transformation is
/// closure-free (per-node reach sets), so memoizing the result alone is
/// enough — no reachability closure is cached.
struct EngineContext<'a> {
    caches: &'a EngineCaches,
    recorder: &'a dyn Recorder,
}

impl AnalysisContext for EngineContext<'_> {
    fn transform(&self, task: &HeteroDagTask) -> Result<TransformedTask, String> {
        let key = key_with_params(hash_task(task), TAG_TRANSFORM, 0);
        let (value, _hit) = self.caches.transform.get_or_compute(key, || {
            // Span only on actual computes: memo hits cost no clock reads.
            let _span = span!(self.recorder, "ctx.transform");
            hetrta_core::transform(task).map_err(|e| e.to_string())
        });
        value
    }

    fn derived(&self, task: &HeteroDagTask) -> Result<Arc<DerivedData>, String> {
        // Keyed by the graph alone: tasks differing only in period or
        // deadline share one entry.
        let key = key_with_params(hash_dag_only(task.dag()), TAG_DERIVED, 0);
        let (value, _hit) = self.caches.derived.get_or_compute(key, || {
            let _span = span!(self.recorder, "ctx.derived");
            DerivedData::compute(task.dag()).map(Arc::new)
        });
        value
    }
}

/// Executes one job against the shared caches.
pub(crate) fn execute(
    caches: &EngineCaches,
    registry: &AnalysisRegistry,
    job: &Job,
    worker: usize,
    recorder: &dyn Recorder,
) -> JobResult {
    let started = Instant::now();
    let identity = job.payload.input.identity_hash();
    let mut timings = Vec::new();
    let (metrics, cache_hit) = match execute_payload(
        caches,
        registry,
        &job.payload,
        identity,
        &mut timings,
        recorder,
    ) {
        Ok((metrics, cache_hit)) => (Ok(metrics), cache_hit),
        Err(message) => (Err(message), false),
    };
    JobResult {
        index: job.index,
        cell: job.cell,
        worker,
        identity,
        cache_hit,
        wall_time: started.elapsed(),
        timings,
        metrics,
    }
}

fn execute_payload(
    caches: &EngineCaches,
    registry: &AnalysisRegistry,
    payload: &JobPayload,
    identity: u128,
    timings: &mut Vec<(Arc<str>, Duration)>,
    recorder: &dyn Recorder,
) -> Result<(JobMetrics, bool), String> {
    let analyses: Vec<&dyn Analysis> = payload
        .analyses
        .iter()
        .map(|key| registry.get(key).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    // Fast path: a previously seen recipe whose results are all cached
    // (in memory or on disk) is served without regenerating the input.
    match caches.identity_lookup(identity) {
        Some(None) => return Ok((JobMetrics::Skipped, true)),
        Some(Some(content)) => {
            if let Some(outcomes) = cached_outcomes(caches, content, &analyses, &payload.params)? {
                return Ok((JobMetrics::Outcomes(outcomes), true));
            }
        }
        None => {}
    }

    // Input-materialization memo: a recipe already generated for another
    // grid cell (a different core count, say) is reused instead of
    // regenerated — generation is often the dominant per-job cost for
    // large DAGs.
    let input = match caches.inputs.get(identity) {
        Some(input) => Some(input),
        None => {
            let _span = span!(recorder, "materialize");
            let input = payload.input.materialize()?;
            if let Some(input) = &input {
                caches.inputs.insert(identity, input.clone());
            }
            input
        }
    };
    let Some(input) = input else {
        caches.identity_store(identity, None);
        return Ok((JobMetrics::Skipped, false));
    };
    let content = hash_input(&input);
    caches.identity_store(identity, Some(content));

    let request = AnalysisRequest {
        input,
        params: payload.params.clone(),
    };
    let ctx = EngineContext { caches, recorder };
    let mut outcomes = Vec::with_capacity(analyses.len());
    let mut all_hits = true;
    for (analysis, key_arc) in analyses.iter().zip(payload.analyses.iter()) {
        let key = result_key(
            content,
            analysis.key(),
            analysis.cache_params(&request.params),
        );
        let mut measured = None;
        let (value, hit) = caches.result_get_or_compute(key, || {
            let _span = span!(recorder, "analysis", key = analysis.key());
            let t0 = Instant::now();
            let value = analysis.run(&request, &ctx).map_err(|e| e.to_string());
            measured = Some(t0.elapsed());
            value
        });
        if let Some(elapsed) = measured {
            timings.push((Arc::clone(key_arc), elapsed));
        }
        all_hits &= hit;
        outcomes.push(value?);
    }
    Ok((JobMetrics::Outcomes(outcomes), all_hits))
}

/// Assembles every selected outcome from the result cache, or `None` when
/// at least one is missing (the job then takes the slow path).
fn cached_outcomes(
    caches: &EngineCaches,
    content: u128,
    analyses: &[&dyn Analysis],
    params: &AnalysisParams,
) -> Result<Option<Vec<AnalysisOutcome>>, String> {
    let mut outcomes = Vec::with_capacity(analyses.len());
    for analysis in analyses {
        let key = result_key(content, analysis.key(), analysis.cache_params(params));
        match caches.peek_result(key) {
            Some(Ok(outcome)) => outcomes.push(outcome),
            Some(Err(message)) => return Err(message),
            None => return Ok(None),
        }
    }
    caches.results.note_hits(outcomes.len() as u64);
    Ok(Some(outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GeneratorPreset, SweepSpec};
    use hetrta_api::HetOutcome;

    fn registry() -> AnalysisRegistry {
        AnalysisRegistry::builtin()
    }

    fn het_of(metrics: &JobMetrics) -> HetOutcome {
        let JobMetrics::Outcomes(outcomes) = metrics else {
            panic!("outcomes")
        };
        let AnalysisOutcome::Het(h) = outcomes
            .iter()
            .find(|o| o.key() == "het")
            .expect("het selected")
        else {
            panic!("het outcome")
        };
        *h
    }

    #[test]
    fn task_job_executes_and_caches() {
        let caches = EngineCaches::default();
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 1, 7);
        let (_, jobs) = spec.expand();
        let first = execute(&caches, &registry(), &jobs[0], 0, &hetrta_obs::NOOP);
        assert!(!first.cache_hit);
        let metrics = first.metrics.expect("job succeeds");
        let het = het_of(&metrics);
        assert!(het.r_het <= het.r_hom_transformed + 1e-9);

        // Same job again: fully served from cache, same values — without
        // regenerating the input (the identity memo answers first).
        let identity_before = caches.identity.counters();
        let again = execute(&caches, &registry(), &jobs[0], 1, &hetrta_obs::NOOP);
        assert!(again.cache_hit);
        assert_eq!(again.metrics.expect("job succeeds"), metrics);
        let identity_after = caches.identity.counters();
        assert_eq!(identity_after.hits, identity_before.hits + 1);
    }

    #[test]
    fn transform_is_shared_across_core_counts() {
        let caches = EngineCaches::default();
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2, 4, 8], vec![0.2], 1, 7);
        let (_, jobs) = spec.expand();
        for job in &jobs {
            let r = execute(&caches, &registry(), job, 0, &hetrta_obs::NOOP);
            assert!(r.metrics.is_ok());
        }
        let counters = caches.transform.counters();
        assert_eq!(counters.misses, 1, "one DAG, one transformation");
        assert_eq!(counters.hits, 2, "reused for the other two core counts");
    }

    #[test]
    fn all_analyses_fill_all_outcomes() {
        let caches = EngineCaches::default();
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.25], 1, 3)
            .with_analyses(crate::AnalysisSelection::all());
        let (_, jobs) = spec.expand();
        let r = execute(&caches, &registry(), &jobs[0], 0, &hetrta_obs::NOOP);
        let JobMetrics::Outcomes(outcomes) = r.metrics.expect("job succeeds") else {
            panic!("outcomes")
        };
        assert_eq!(outcomes.len(), 4);
        // Outcome order follows selection order.
        let keys: Vec<&str> = outcomes.iter().map(AnalysisOutcome::key).collect();
        assert_eq!(keys, vec!["hom", "het", "sim", "exact"]);
        let AnalysisOutcome::Sim(sim) = &outcomes[2] else {
            panic!("sim outcome")
        };
        // exact may be None only for oversized DAGs; small preset fits.
        let AnalysisOutcome::Exact(Some(exact)) = &outcomes[3] else {
            panic!("small task solves")
        };
        assert!(
            exact.makespan <= sim.makespan,
            "exact optimum cannot exceed a simulated schedule"
        );
    }

    #[test]
    fn unknown_registry_key_is_a_job_error_listing_valid_keys() {
        let caches = EngineCaches::default();
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 1, 7);
        let (_, jobs) = spec.expand();
        let mut job = jobs[0].clone();
        job.payload.analyses = Arc::from(vec![Arc::<str>::from("frob")]);
        let r = execute(&caches, &registry(), &job, 0, &hetrta_obs::NOOP);
        let err = r.metrics.unwrap_err();
        assert!(err.contains("unknown analysis kind `frob`"), "{err}");
        assert!(err.contains("valid keys"), "{err}");
    }

    #[test]
    fn declined_samples_are_skipped_and_memoized() {
        let caches = EngineCaches::default();
        // An impossible sampled task: fraction ~1.0 is invalid for sizing,
        // but grid validation is bypassed by constructing the input
        // directly; use a generator that cannot produce 3 nodes instead.
        let params = Arc::new(hetrta_gen::NfjParams::small_tasks().with_node_range(1, 1));
        let job = Job {
            index: 0,
            cell: 0,
            payload: JobPayload {
                input: JobInput::SampledTask {
                    params,
                    fraction: 0.2,
                    seed: 5,
                },
                analyses: crate::AnalysisSelection::from_keys(["suspend"]).to_shared(),
                params: AnalysisParams::new(2),
            },
        };
        let first = execute(&caches, &registry(), &job, 0, &hetrta_obs::NOOP);
        assert_eq!(
            first.metrics.expect("skip is not an error"),
            JobMetrics::Skipped
        );
        assert!(!first.cache_hit);
        let again = execute(&caches, &registry(), &job, 0, &hetrta_obs::NOOP);
        assert_eq!(
            again.metrics.expect("skip is not an error"),
            JobMetrics::Skipped
        );
        assert!(again.cache_hit, "the declined sample is memoized");
    }

    #[test]
    fn identity_memo_spans_structurally_equal_recipes() {
        // Two distinct Arc instances describing the same batch share one
        // identity, so the second job is a pure cache hit.
        let caches = EngineCaches::default();
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 9);
        let (_, jobs_a) = spec.expand();
        let (_, jobs_b) = spec.expand();
        let a = execute(&caches, &registry(), &jobs_a[0], 0, &hetrta_obs::NOOP);
        let b = execute(&caches, &registry(), &jobs_b[0], 0, &hetrta_obs::NOOP);
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert_eq!(a.metrics.unwrap(), b.metrics.unwrap());
    }
}
