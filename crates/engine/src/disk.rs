//! Disk-persistent layer under the in-memory result caches.
//!
//! The unit of persistence is one cache entry per file, addressed by the
//! same stable 128-bit content keys the in-memory [`MemoCache`]s use —
//! `results/` holds analysis outcomes keyed by content hash × registry key
//! × parameter digest, `identity/` holds the job-recipe → content-hash
//! memo (including "the generator declined this sample"). Because keys are
//! content hashes, entries never go stale with respect to their inputs;
//! the only invalidation is the format version in each file's magic line,
//! which a newer build bumps to orphan old entries.
//!
//! Robustness contract: a corrupt, truncated, stale-versioned, or
//! concurrently half-written entry **reads as a miss** (the engine
//! recomputes and rewrites it), and write failures are counted, never
//! fatal — a full disk degrades to an in-memory-only engine.
//!
//! Layout under the cache directory:
//!
//! ```text
//! <dir>/results/<hh>/<032x key>    one analysis outcome per file
//! <dir>/identity/<hh>/<032x key>   recipe → content hash (or "skip")
//! ```
//!
//! where `<hh>` is the top byte of the key in hex (256-way fan-out) and
//! each file is `magic line \n payload \n fnv64(payload)`.
//! Writes go through a temp file + atomic rename, so concurrent engines
//! sharing a directory never observe torn entries.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

use hetrta_api::AnalysisOutcome;
use hetrta_fault::FaultPlan;
use hetrta_obs::{span, Counter, MetricsRegistry, NoopRecorder, Recorder};

use crate::cache::CacheCounters;

/// First line of every entry file; bumping the version orphans (never
/// misreads) entries written by older builds.
const MAGIC: &str = "hetrta-cache v1";

/// Identity-entry payload for a declined sample.
const SKIP: &str = "skip";

/// FNV-1a over the payload bytes — the per-entry corruption check.
fn fnv64(payload: &str) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in payload.bytes() {
        state ^= u64::from(byte);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// A disk-persistent, content-addressed cache directory shared by every
/// engine (and every process) pointed at it.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    hits: Counter,
    misses: Counter,
    write_errors: Counter,
    tmp_counter: AtomicU64,
    recorder: Arc<dyn Recorder>,
    /// Entry paths with reads in flight in this process (refcounted); gc
    /// skips them so a reader never loses its file mid-read.
    pins: Mutex<HashMap<PathBuf, usize>>,
    /// Deterministic fault injection (`--chaos`): `disk.write.enospc`,
    /// `disk.write.torn` and `disk.read.bitflip` sites. `None` in
    /// production.
    fault: Option<Arc<FaultPlan>>,
    /// Emits the operator-facing degradation warning once per handle.
    write_warn: Once,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// A human-readable message when the directory (or its `results/` and
    /// `identity/` namespaces) cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskCache, String> {
        let root = dir.into();
        for namespace in ["results", "identity"] {
            let path = root.join(namespace);
            std::fs::create_dir_all(&path)
                .map_err(|e| format!("cannot create cache dir {}: {e}", path.display()))?;
        }
        Ok(DiskCache {
            root,
            hits: Counter::detached(),
            misses: Counter::detached(),
            write_errors: Counter::detached(),
            tmp_counter: AtomicU64::new(0),
            recorder: Arc::new(NoopRecorder),
            pins: Mutex::new(HashMap::new()),
            fault: None,
            write_warn: Once::new(),
        })
    }

    /// Rebinds this cache's counters onto `metrics` (as `disk.hits`,
    /// `disk.misses`, `disk.write_failed`) and routes `disk.read` /
    /// `disk.write` / `disk.gc` spans to `recorder`.
    ///
    /// Called by the engine builder before the cache is shared; counts
    /// are zero at that point, so the swap is lossless.
    pub(crate) fn bind_observability(
        &mut self,
        metrics: &MetricsRegistry,
        recorder: Arc<dyn Recorder>,
    ) {
        self.hits = metrics.counter("disk.hits");
        self.misses = metrics.counter("disk.misses");
        self.write_errors = metrics.counter("disk.write_failed");
        self.recorder = recorder;
    }

    /// Arms deterministic fault injection on this cache's read and write
    /// paths (sites `disk.write.enospc`, `disk.write.torn`,
    /// `disk.read.bitflip`). Wired by
    /// [`EngineBuilder::with_fault_plan`](crate::EngineBuilder::with_fault_plan).
    pub(crate) fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault = Some(plan);
    }

    /// The directory this cache persists into.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Hit/miss counters of disk probes (lifetime of this handle).
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    /// Entries that failed to persist (full disk, permissions); reads are
    /// unaffected and the engine falls through to in-memory results —
    /// mirrored as the `disk.write_failed` metric.
    #[must_use]
    pub fn write_failed(&self) -> u64 {
        self.write_errors.get()
    }

    fn entry_path(&self, namespace: &str, key: u128) -> PathBuf {
        self.root
            .join(namespace)
            .join(format!("{:02x}", (key >> 120) as u8))
            .join(format!("{key:032x}"))
    }

    /// Reads and verifies one entry's payload; `None` on any defect.
    ///
    /// Does **not** count: a checksum-valid payload can still fail to
    /// decode, so hit/miss accounting happens in the typed loaders once
    /// the full decode has succeeded or failed.
    ///
    /// The entry is pinned for the duration of the read, so a concurrent
    /// [`DiskCache::gc`] on this handle never deletes a file out from
    /// under an in-flight reader.
    fn read_payload(&self, namespace: &str, key: u128) -> Option<String> {
        let _span = span!(self.recorder.as_ref(), "disk.read", ns = namespace);
        let path = self.entry_path(namespace, key);
        let _pin = self.pin(path.clone());
        let text = std::fs::read_to_string(path).ok().map(|text| {
            // Injected read corruption: flip one bit of the entry before
            // verification — it must read as a miss, never as data.
            let bits = match self.fault.as_deref() {
                Some(plan) if !text.is_empty() => plan.fires("disk.read.bitflip"),
                _ => None,
            };
            let Some(bits) = bits else { return text };
            let mut bytes = text.into_bytes();
            let index = (bits as usize) % bytes.len();
            bytes[index] ^= 1 << ((bits >> 32) % 8);
            String::from_utf8_lossy(&bytes).into_owned()
        });
        text.as_deref().and_then(verify_entry).map(str::to_owned)
    }

    /// Refcounts `path` into the pin registry; the returned guard
    /// releases it on drop.
    fn pin(&self, path: PathBuf) -> ReadPin<'_> {
        *self
            .pins
            .lock()
            .expect("disk pin registry")
            .entry(path.clone())
            .or_insert(0) += 1;
        ReadPin { cache: self, path }
    }

    /// Paths currently pinned by in-flight reads.
    fn pinned_paths(&self) -> std::collections::HashSet<PathBuf> {
        self.pins
            .lock()
            .expect("disk pin registry")
            .keys()
            .cloned()
            .collect()
    }

    /// Pins the `results/` entry of `key` until the returned guard drops,
    /// protecting it from [`DiskCache::gc`] on this handle. For daemons
    /// whose sweeps hold references to cached results while a background
    /// gc sweeps the directory.
    #[must_use]
    pub fn begin_read(&self, key: u128) -> ReadPin<'_> {
        self.pin(self.entry_path("results", key))
    }

    /// Persists one entry atomically (temp file + rename); failures are
    /// counted and swallowed.
    fn write_payload(&self, namespace: &str, key: u128, payload: &str) {
        let _span = span!(self.recorder.as_ref(), "disk.write", ns = namespace);
        let path = self.entry_path(namespace, key);
        let mut content = format!("{MAGIC}\n{payload}\n{:016x}\n", fnv64(payload));
        // Injected torn write: commit a truncated entry, as a crash
        // straddling write and rename could — it must later read as a
        // miss and be recomputed, never misread.
        if let Some(bits) = self
            .fault
            .as_deref()
            .and_then(|p| p.fires("disk.write.torn"))
        {
            content.truncate(1 + (bits as usize) % content.len());
        }
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let written = if self
            .fault
            .as_deref()
            .is_some_and(|p| p.fires("disk.write.enospc").is_some())
        {
            Err(std::io::Error::other("injected ENOSPC (chaos)"))
        } else {
            path.parent()
                .map_or(Ok(()), std::fs::create_dir_all)
                .and_then(|()| std::fs::write(&tmp, content))
                .and_then(|()| std::fs::rename(&tmp, &path))
        };
        if let Err(error) = written {
            let _ = std::fs::remove_file(&tmp);
            self.write_errors.incr();
            let _span = span!(self.recorder.as_ref(), "disk.write_failed", ns = namespace);
            self.write_warn.call_once(|| {
                eprintln!(
                    "hetrta: disk cache write failed ({error}) at {}; \
                     continuing with in-memory results (disk.write_failed counts)",
                    path.display()
                );
            });
        }
    }

    /// Loads a persisted analysis outcome, or `None` (miss / unreadable /
    /// corrupt / stale format).
    #[must_use]
    pub fn load_result(&self, key: u128) -> Option<AnalysisOutcome> {
        let decoded = self
            .read_payload("results", key)
            .and_then(|payload| AnalysisOutcome::decode(&payload));
        if decoded.is_some() {
            self.hits.incr();
        } else {
            self.misses.incr();
        }
        decoded
    }

    /// Persists one analysis outcome.
    pub fn store_result(&self, key: u128, outcome: &AnalysisOutcome) {
        self.write_payload("results", key, &outcome.encode());
    }

    /// Loads a persisted identity entry: `Some(None)` for a memoized
    /// declined sample, `Some(Some(content))` for a content hash, `None`
    /// for a miss.
    #[must_use]
    pub fn load_identity(&self, key: u128) -> Option<Option<u128>> {
        let decoded = self.read_payload("identity", key).and_then(|payload| {
            if payload == SKIP {
                return Some(None);
            }
            match u128::from_str_radix(&payload, 16) {
                Ok(content) if payload.len() == 32 => Some(Some(content)),
                _ => None,
            }
        });
        if decoded.is_some() {
            self.hits.incr();
        } else {
            self.misses.incr();
        }
        decoded
    }

    /// Persists one identity entry.
    pub fn store_identity(&self, key: u128, content: Option<u128>) {
        let payload = match content {
            None => SKIP.to_owned(),
            Some(c) => format!("{c:032x}"),
        };
        self.write_payload("identity", key, &payload);
    }

    /// Bounds the cache directory to (approximately) `max_bytes`, deleting
    /// the **oldest-mtime result entries first** until the total size fits.
    ///
    /// The identity memo (`identity/`) is never touched: its entries are a
    /// few dozen bytes each, and deleting one mid-sweep would force a
    /// running engine to regenerate an input it believes is memoized. When
    /// the identity namespace alone exceeds the bound, gc reports
    /// `remaining_bytes > max_bytes` instead of violating that invariant.
    ///
    /// Concurrent engines are safe: a deleted entry simply reads as a miss
    /// and is recomputed and rewritten. Half-written `*.tmp.*` files are
    /// ignored (and never counted), and entries with reads in flight in
    /// this process (pinned via [`DiskCache::begin_read`] or an internal
    /// load) are skipped — counted in [`GcStats::pinned_entries`] — so gc
    /// never races its own readers.
    ///
    /// # Errors
    ///
    /// A human-readable message when a namespace directory cannot be read;
    /// failures to delete individual entries are counted, not fatal.
    pub fn gc(&self, max_bytes: u64) -> Result<GcStats, String> {
        let _span = span!(self.recorder.as_ref(), "disk.gc", max_bytes = max_bytes);
        let identity_bytes: u64 = self.scan_entries("identity")?.iter().map(|e| e.bytes).sum();
        let mut results = self.scan_entries("results")?;
        // Oldest first; path disambiguates equal timestamps so the sweep
        // order is deterministic.
        results.sort_by(|a, b| (a.mtime, &a.path).cmp(&(b.mtime, &b.path)));
        // Snapshot the pin registry once: an entry pinned now stays
        // untouchable for this whole sweep (a pin acquired later pins a
        // file this sweep already decided to keep or already deleted —
        // the reader of a deleted file sees an ordinary miss).
        let pinned = self.pinned_paths();
        let mut remaining: u64 = identity_bytes + results.iter().map(|e| e.bytes).sum::<u64>();
        let scanned_bytes = remaining;
        let mut stats = GcStats {
            scanned_bytes,
            remaining_bytes: remaining,
            deleted_entries: 0,
            deleted_bytes: 0,
            pinned_entries: 0,
        };
        for entry in &results {
            if remaining <= max_bytes {
                break;
            }
            if pinned.contains(&entry.path) {
                stats.pinned_entries += 1;
                continue;
            }
            if std::fs::remove_file(&entry.path).is_ok() {
                remaining -= entry.bytes;
                stats.deleted_entries += 1;
                stats.deleted_bytes += entry.bytes;
            }
        }
        stats.remaining_bytes = remaining;
        Ok(stats)
    }

    /// Every committed entry file of `namespace` with its size and mtime.
    fn scan_entries(&self, namespace: &str) -> Result<Vec<DiskEntry>, String> {
        let root = self.root.join(namespace);
        let mut entries = Vec::new();
        let shards = std::fs::read_dir(&root)
            .map_err(|e| format!("cannot read cache dir {}: {e}", root.display()))?;
        for shard in shards.flatten() {
            let Ok(files) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                // Committed entries are exactly 32 hex chars; anything else
                // (in-flight `*.tmp.*` files) is skipped.
                let name = file.file_name();
                let name = name.to_string_lossy();
                if name.len() != 32 || !name.bytes().all(|b| b.is_ascii_hexdigit()) {
                    continue;
                }
                let Ok(meta) = file.metadata() else { continue };
                let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                entries.push(DiskEntry {
                    path: file.path(),
                    bytes: meta.len(),
                    mtime,
                });
            }
        }
        Ok(entries)
    }
}

/// One committed cache entry on disk (gc bookkeeping).
#[derive(Debug, Clone)]
struct DiskEntry {
    path: PathBuf,
    bytes: u64,
    mtime: std::time::SystemTime,
}

/// What one [`DiskCache::gc`] sweep did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Total committed bytes found (results + identity).
    pub scanned_bytes: u64,
    /// Result entries deleted.
    pub deleted_entries: u64,
    /// Bytes reclaimed.
    pub deleted_bytes: u64,
    /// Committed bytes left after the sweep.
    pub remaining_bytes: u64,
    /// Result entries spared because a read was in flight on them.
    pub pinned_entries: u64,
}

/// A pin on one cache entry: while it lives, [`DiskCache::gc`] on the
/// same handle will not delete the entry. Obtained via
/// [`DiskCache::begin_read`]; released on drop.
#[derive(Debug)]
pub struct ReadPin<'a> {
    cache: &'a DiskCache,
    path: PathBuf,
}

impl Drop for ReadPin<'_> {
    fn drop(&mut self) {
        let mut pins = self.cache.pins.lock().expect("disk pin registry");
        if let Some(count) = pins.get_mut(&self.path) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.path);
            }
        }
    }
}

/// Validates `magic \n payload \n checksum` and returns the payload.
fn verify_entry(text: &str) -> Option<&str> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return None;
    }
    let payload = lines.next()?;
    let checksum = lines.next()?;
    if lines.next().is_some() || u64::from_str_radix(checksum, 16) != Ok(fnv64(payload)) {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_api::SimOutcome;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hetrta-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn outcome() -> AnalysisOutcome {
        AnalysisOutcome::Sim(SimOutcome {
            makespan: 17,
            transformed_makespan: Some(12),
        })
    }

    #[test]
    fn result_roundtrip_across_handles() {
        let dir = temp_dir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.load_result(42), None);
        cache.store_result(42, &outcome());
        assert_eq!(cache.load_result(42), Some(outcome()));
        // A second handle on the same directory (≈ a second process).
        let other = DiskCache::open(&dir).unwrap();
        assert_eq!(other.load_result(42), Some(outcome()));
        assert_eq!(other.counters().hits, 1);
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identity_roundtrip_including_skips() {
        let dir = temp_dir("identity");
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.load_identity(7), None);
        cache.store_identity(7, Some(0xFEED_F00D));
        cache.store_identity(8, None);
        assert_eq!(cache.load_identity(7), Some(Some(0xFEED_F00D)));
        assert_eq!(cache.load_identity(8), Some(None));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_and_stale_versions_read_as_misses() {
        let dir = temp_dir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store_result(1, &outcome());
        let path = cache.entry_path("results", 1);

        // Flipped payload byte: checksum rejects it.
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, good.replace("17", "99")).unwrap();
        assert_eq!(cache.load_result(1), None);

        // Truncation.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_eq!(cache.load_result(1), None);

        // Stale format version.
        std::fs::write(&path, good.replace(MAGIC, "hetrta-cache v0")).unwrap();
        assert_eq!(cache.load_result(1), None);

        // Garbage.
        std::fs::write(&path, b"\x00\xFF not a cache entry").unwrap();
        assert_eq!(cache.load_result(1), None);

        // Checksum-valid but grammatically stale payload.
        let payload = "frobnicate 1 2 3";
        std::fs::write(
            &path,
            format!("{MAGIC}\n{payload}\n{:016x}\n", fnv64(payload)),
        )
        .unwrap();
        assert_eq!(cache.load_result(1), None);
        assert_eq!(cache.counters().hits, 0, "no defect may count as a hit");

        // Rewriting repairs the entry.
        cache.store_result(1, &outcome());
        assert_eq!(cache.load_result(1), Some(outcome()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_respects_the_bound_and_spares_the_identity_memo() {
        let dir = temp_dir("gc");
        let cache = DiskCache::open(&dir).unwrap();
        // Identity memo entries (must survive any sweep) …
        cache.store_identity(1, Some(0xAA));
        cache.store_identity(2, None);
        // … and ten result entries, written oldest-first.
        for key in 0..10u128 {
            cache.store_result(key << 96 | 0x100 | key, &outcome());
        }
        let before = cache.gc(u64::MAX).unwrap();
        assert_eq!(before.deleted_entries, 0, "roomy bound deletes nothing");
        let entry_bytes = before.scanned_bytes / 12; // rough per-entry size

        // Bound to roughly half: the sweep must delete oldest-first until
        // the total fits, and the bound must hold afterwards.
        let bound = before.scanned_bytes / 2;
        let stats = cache.gc(bound).unwrap();
        assert!(stats.deleted_entries > 0);
        assert!(
            stats.remaining_bytes <= bound,
            "remaining {} > bound {bound}",
            stats.remaining_bytes
        );
        assert_eq!(
            stats.remaining_bytes,
            before.scanned_bytes - stats.deleted_bytes
        );
        // Oldest result entries went first; the newest still loads.
        assert_eq!(cache.load_result(9 << 96 | 0x100 | 9), Some(outcome()));
        assert_eq!(cache.load_result(0x100), None, "oldest entry swept");
        // The identity memo is untouched even by a zero-byte bound.
        let zero = cache.gc(0).unwrap();
        assert_eq!(cache.load_identity(1), Some(Some(0xAA)));
        assert_eq!(cache.load_identity(2), Some(None));
        assert!(
            zero.remaining_bytes >= 2 * entry_bytes / 2,
            "identity bytes remain counted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_ignores_inflight_tmp_files() {
        let dir = temp_dir("gc-tmp");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store_result(7, &outcome());
        // A concurrent writer's half-written file must be neither counted
        // nor deleted.
        let tmp = cache.entry_path("results", 7).with_extension("tmp.999.0");
        std::fs::write(&tmp, "half-written").unwrap();
        let stats = cache.gc(0).unwrap();
        assert_eq!(stats.deleted_entries, 1);
        assert!(tmp.exists(), "tmp files are not gc'd");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_skips_entries_with_reads_in_flight() {
        let dir = temp_dir("gc-pins");
        let cache = DiskCache::open(&dir).unwrap();
        for key in 0..4u128 {
            cache.store_result(key, &outcome());
        }
        // Pin two entries as an in-flight reader would, then demand a
        // zero-byte bound: everything unpinned goes, the pinned survive.
        let pin_a = cache.begin_read(0);
        let pin_b = cache.begin_read(2);
        let stats = cache.gc(0).unwrap();
        assert_eq!(stats.pinned_entries, 2);
        assert_eq!(stats.deleted_entries, 2);
        assert_eq!(cache.load_result(0), Some(outcome()), "pinned survives");
        assert_eq!(cache.load_result(2), Some(outcome()), "pinned survives");
        assert_eq!(cache.load_result(1), None, "unpinned swept");
        drop(pin_a);
        drop(pin_b);
        // Pins released: the next sweep reclaims them.
        let stats = cache.gc(0).unwrap();
        assert_eq!(stats.pinned_entries, 0);
        assert_eq!(cache.load_result(0), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_pins_are_refcounted() {
        let dir = temp_dir("gc-refcount");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store_result(5, &outcome());
        let first = cache.begin_read(5);
        let second = cache.begin_read(5);
        drop(first);
        // One pin remains: still protected.
        cache.gc(0).unwrap();
        assert_eq!(cache.load_result(5), Some(outcome()));
        drop(second);
        cache.gc(0).unwrap();
        assert_eq!(cache.load_result(5), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_directory_fails_open() {
        let err = DiskCache::open("/proc/definitely-not-writable/hetrta").unwrap_err();
        assert!(err.contains("cannot create cache dir"), "{err}");
    }

    #[test]
    fn injected_write_failure_degrades_gracefully() {
        let dir = temp_dir("enospc");
        let mut cache = DiskCache::open(&dir).unwrap();
        // Every write hits an injected ENOSPC; reads stay healthy.
        cache.set_fault_plan(Arc::new(
            FaultPlan::with_rate(0xE205, 1, 1).restrict_to(["disk.write.enospc"]),
        ));
        cache.store_result(42, &outcome());
        cache.store_identity(7, Some(0xFEED));
        assert_eq!(cache.write_failed(), 2, "every failure is counted");
        assert_eq!(cache.load_result(42), None, "nothing was persisted");
        assert_eq!(cache.load_identity(7), None);
        // No half-written tmp litter survives a failed write.
        let tmp_litter = std::fs::read_dir(dir.join("results"))
            .unwrap()
            .flatten()
            .flat_map(|shard| std::fs::read_dir(shard.path()).into_iter().flatten())
            .count();
        assert_eq!(tmp_litter, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_reads_as_a_miss() {
        let dir = temp_dir("torn");
        let mut cache = DiskCache::open(&dir).unwrap();
        cache.set_fault_plan(Arc::new(
            FaultPlan::with_rate(0x70B2, 1, 1).restrict_to(["disk.write.torn"]),
        ));
        cache.store_result(42, &outcome());
        // The torn entry committed (no write error) but must never
        // decode; the engine recomputes and rewrites.
        assert_eq!(cache.write_failed(), 0);
        assert_eq!(cache.load_result(42), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_bitflip_reads_as_a_miss() {
        let dir = temp_dir("bitflip");
        let mut cache = DiskCache::open(&dir).unwrap();
        cache.store_result(42, &outcome());
        assert_eq!(cache.load_result(42), Some(outcome()), "healthy first");
        cache.set_fault_plan(Arc::new(
            FaultPlan::with_rate(0xB17F, 1, 1).restrict_to(["disk.read.bitflip"]),
        ));
        assert_eq!(cache.load_result(42), None, "flipped bit fails checksum");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_falls_through_to_memory_when_every_write_fails() {
        use crate::spec::{GeneratorPreset, SweepSpec};
        use crate::EngineBuilder;

        let dir = temp_dir("fall-through");
        let plan = Arc::new(FaultPlan::with_rate(0xDE6A, 1, 1).restrict_to(["disk.write.enospc"]));
        let engine = EngineBuilder::new()
            .threads(2)
            .with_cache_dir(&dir)
            .with_fault_plan(Arc::clone(&plan))
            .build()
            .unwrap();
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 3, 5);
        let out = engine.run(&spec).unwrap();
        // The sweep succeeded purely in memory, failures were counted
        // and surfaced through both the metric and the fault counters.
        let healthy = crate::Engine::new(2).run(&spec).unwrap();
        assert_eq!(out.aggregate, healthy.aggregate);
        let snapshot = engine.metrics().snapshot();
        let failed = snapshot.counter("disk.write_failed").unwrap_or(0);
        assert!(failed > 0, "writes must have failed");
        assert_eq!(
            snapshot.counter("fault.disk.write.enospc"),
            Some(failed),
            "every failure was an injected one"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
