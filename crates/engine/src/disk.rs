//! Disk-persistent layer under the in-memory result caches.
//!
//! The unit of persistence is one cache entry per file, addressed by the
//! same stable 128-bit content keys the in-memory [`MemoCache`]s use —
//! `results/` holds analysis outcomes keyed by content hash × registry key
//! × parameter digest, `identity/` holds the job-recipe → content-hash
//! memo (including "the generator declined this sample"). Because keys are
//! content hashes, entries never go stale with respect to their inputs;
//! the only invalidation is the format version in each file's magic line,
//! which a newer build bumps to orphan old entries.
//!
//! Robustness contract: a corrupt, truncated, stale-versioned, or
//! concurrently half-written entry **reads as a miss** (the engine
//! recomputes and rewrites it), and write failures are counted, never
//! fatal — a full disk degrades to an in-memory-only engine.
//!
//! Layout under the cache directory:
//!
//! ```text
//! <dir>/results/<hh>/<032x key>    one analysis outcome per file
//! <dir>/identity/<hh>/<032x key>   recipe → content hash (or "skip")
//! ```
//!
//! where `<hh>` is the top byte of the key in hex (256-way fan-out) and
//! each file is `magic line \n payload \n fnv64(payload)`.
//! Writes go through a temp file + atomic rename, so concurrent engines
//! sharing a directory never observe torn entries.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use hetrta_api::AnalysisOutcome;

use crate::cache::CacheCounters;

/// First line of every entry file; bumping the version orphans (never
/// misreads) entries written by older builds.
const MAGIC: &str = "hetrta-cache v1";

/// Identity-entry payload for a declined sample.
const SKIP: &str = "skip";

/// FNV-1a over the payload bytes — the per-entry corruption check.
fn fnv64(payload: &str) -> u64 {
    let mut state: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in payload.bytes() {
        state ^= u64::from(byte);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

/// A disk-persistent, content-addressed cache directory shared by every
/// engine (and every process) pointed at it.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    write_errors: AtomicU64,
    tmp_counter: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// A human-readable message when the directory (or its `results/` and
    /// `identity/` namespaces) cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskCache, String> {
        let root = dir.into();
        for namespace in ["results", "identity"] {
            let path = root.join(namespace);
            std::fs::create_dir_all(&path)
                .map_err(|e| format!("cannot create cache dir {}: {e}", path.display()))?;
        }
        Ok(DiskCache {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The directory this cache persists into.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Hit/miss counters of disk probes (lifetime of this handle).
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Entries that failed to persist (full disk, permissions); reads are
    /// unaffected.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    fn entry_path(&self, namespace: &str, key: u128) -> PathBuf {
        self.root
            .join(namespace)
            .join(format!("{:02x}", (key >> 120) as u8))
            .join(format!("{key:032x}"))
    }

    /// Reads and verifies one entry's payload; `None` on any defect.
    fn read_payload(&self, namespace: &str, key: u128) -> Option<String> {
        let text = std::fs::read_to_string(self.entry_path(namespace, key)).ok();
        let payload = text.as_deref().and_then(verify_entry);
        if payload.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        payload.map(str::to_owned)
    }

    /// Persists one entry atomically (temp file + rename); failures are
    /// counted and swallowed.
    fn write_payload(&self, namespace: &str, key: u128, payload: &str) {
        let path = self.entry_path(namespace, key);
        let content = format!("{MAGIC}\n{payload}\n{:016x}\n", fnv64(payload));
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let written = path
            .parent()
            .map_or(Ok(()), std::fs::create_dir_all)
            .and_then(|()| std::fs::write(&tmp, content))
            .and_then(|()| std::fs::rename(&tmp, &path));
        if written.is_err() {
            let _ = std::fs::remove_file(&tmp);
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Loads a persisted analysis outcome, or `None` (miss / unreadable /
    /// corrupt / stale format).
    #[must_use]
    pub fn load_result(&self, key: u128) -> Option<AnalysisOutcome> {
        let payload = self.read_payload("results", key)?;
        let decoded = AnalysisOutcome::decode(&payload);
        if decoded.is_none() {
            // Checksum passed but the payload grammar did not: a stale
            // encoding. Count the probe back down to a miss.
            self.hits.fetch_sub(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        decoded
    }

    /// Persists one analysis outcome.
    pub fn store_result(&self, key: u128, outcome: &AnalysisOutcome) {
        self.write_payload("results", key, &outcome.encode());
    }

    /// Loads a persisted identity entry: `Some(None)` for a memoized
    /// declined sample, `Some(Some(content))` for a content hash, `None`
    /// for a miss.
    #[must_use]
    pub fn load_identity(&self, key: u128) -> Option<Option<u128>> {
        let payload = self.read_payload("identity", key)?;
        if payload == SKIP {
            return Some(None);
        }
        match u128::from_str_radix(&payload, 16) {
            Ok(content) if payload.len() == 32 => Some(Some(content)),
            _ => {
                self.hits.fetch_sub(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists one identity entry.
    pub fn store_identity(&self, key: u128, content: Option<u128>) {
        let payload = match content {
            None => SKIP.to_owned(),
            Some(c) => format!("{c:032x}"),
        };
        self.write_payload("identity", key, &payload);
    }
}

/// Validates `magic \n payload \n checksum` and returns the payload.
fn verify_entry(text: &str) -> Option<&str> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return None;
    }
    let payload = lines.next()?;
    let checksum = lines.next()?;
    if lines.next().is_some() || u64::from_str_radix(checksum, 16) != Ok(fnv64(payload)) {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_api::SimOutcome;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hetrta-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn outcome() -> AnalysisOutcome {
        AnalysisOutcome::Sim(SimOutcome {
            makespan: 17,
            transformed_makespan: Some(12),
        })
    }

    #[test]
    fn result_roundtrip_across_handles() {
        let dir = temp_dir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.load_result(42), None);
        cache.store_result(42, &outcome());
        assert_eq!(cache.load_result(42), Some(outcome()));
        // A second handle on the same directory (≈ a second process).
        let other = DiskCache::open(&dir).unwrap();
        assert_eq!(other.load_result(42), Some(outcome()));
        assert_eq!(other.counters().hits, 1);
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identity_roundtrip_including_skips() {
        let dir = temp_dir("identity");
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.load_identity(7), None);
        cache.store_identity(7, Some(0xFEED_F00D));
        cache.store_identity(8, None);
        assert_eq!(cache.load_identity(7), Some(Some(0xFEED_F00D)));
        assert_eq!(cache.load_identity(8), Some(None));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_and_stale_versions_read_as_misses() {
        let dir = temp_dir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store_result(1, &outcome());
        let path = cache.entry_path("results", 1);

        // Flipped payload byte: checksum rejects it.
        let good = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, good.replace("17", "99")).unwrap();
        assert_eq!(cache.load_result(1), None);

        // Truncation.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert_eq!(cache.load_result(1), None);

        // Stale format version.
        std::fs::write(&path, good.replace(MAGIC, "hetrta-cache v0")).unwrap();
        assert_eq!(cache.load_result(1), None);

        // Garbage.
        std::fs::write(&path, b"\x00\xFF not a cache entry").unwrap();
        assert_eq!(cache.load_result(1), None);

        // Checksum-valid but grammatically stale payload.
        let payload = "frobnicate 1 2 3";
        std::fs::write(
            &path,
            format!("{MAGIC}\n{payload}\n{:016x}\n", fnv64(payload)),
        )
        .unwrap();
        assert_eq!(cache.load_result(1), None);
        assert_eq!(cache.counters().hits, 0, "no defect may count as a hit");

        // Rewriting repairs the entry.
        cache.store_result(1, &outcome());
        assert_eq!(cache.load_result(1), Some(outcome()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_directory_fails_open() {
        let err = DiskCache::open("/proc/definitely-not-writable/hetrta").unwrap_err();
        assert!(err.contains("cannot create cache dir"), "{err}");
    }
}
