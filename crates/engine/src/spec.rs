//! Declarative sweep specifications and their expansion into jobs.

use std::sync::Arc;

use hetrta_api::{AnalysisParams, AnalysisRegistry};
use hetrta_cond::CondGenParams;
use hetrta_gen::series::BatchSpec;
use hetrta_gen::NfjParams;
use hetrta_sched::taskset::TaskSetParams;

use crate::job::{Job, JobInput, JobPayload};
use crate::EngineError;

/// Which DAG generator feeds the sweep (paper §5.1 presets or custom
/// parameters).
#[derive(Debug, Clone)]
pub enum GeneratorPreset {
    /// The paper's *small tasks* preset.
    Small,
    /// The paper's *large tasks* preset.
    Large,
    /// Large tasks constrained to the paper's evaluation range
    /// `n ∈ [100, 250]` (Figures 8–9).
    LargePaper,
    /// The large-graph tier (an order of magnitude beyond the paper):
    /// nested fork-join DAGs of up to the given number of nodes, accepted
    /// from a quarter of it upward — see
    /// [`NfjParams::large_graphs`]. Reached from the CLI via
    /// `hetrta engine sweep --n-max N`.
    LargeGraphs(usize),
    /// Explicit generator parameters.
    Custom(NfjParams),
}

impl GeneratorPreset {
    /// Resolves to concrete generator parameters.
    #[must_use]
    pub fn params(&self) -> NfjParams {
        match self {
            GeneratorPreset::Small => NfjParams::small_tasks(),
            GeneratorPreset::Large => NfjParams::large_tasks(),
            GeneratorPreset::LargePaper => NfjParams::large_tasks().with_node_range(100, 250),
            GeneratorPreset::LargeGraphs(n_max) => NfjParams::large_graphs(*n_max),
            GeneratorPreset::Custom(p) => p.clone(),
        }
    }
}

/// An ordered selection of analysis registry keys (replaces the former
/// per-kind boolean struct).
///
/// Any key of the engine's [`AnalysisRegistry`] is selectable; the builtin
/// keys are `het`, `hom`, `sim`, `exact`, `cond`, `suspend` and
/// `acceptance`. Selection order is outcome order in
/// [`JobMetrics::Outcomes`](crate::JobMetrics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisSelection {
    keys: Vec<Arc<str>>,
}

impl AnalysisSelection {
    /// A selection of the given keys, first occurrence wins on duplicates.
    pub fn from_keys<I, S>(keys: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Arc<str>>,
    {
        let mut out: Vec<Arc<str>> = Vec::new();
        for key in keys {
            let key = key.into();
            if !out.iter().any(|k| **k == *key) {
                out.push(key);
            }
        }
        AnalysisSelection { keys: out }
    }

    /// Only the heterogeneous analysis (Figures 8–9 workloads).
    #[must_use]
    pub fn het_only() -> Self {
        AnalysisSelection::from_keys(["het"])
    }

    /// The four per-task analyses: `hom`, `het`, `sim`, `exact`.
    #[must_use]
    pub fn all() -> Self {
        AnalysisSelection::from_keys(["hom", "het", "sim", "exact"])
    }

    /// `true` if no analysis is selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// `true` if `key` is selected.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.keys.iter().any(|k| **k == *key)
    }

    /// The selected keys, in order.
    #[must_use]
    pub fn keys(&self) -> &[Arc<str>] {
        &self.keys
    }

    /// The selection as a shared slice (cheap to clone into every job).
    #[must_use]
    pub fn to_shared(&self) -> Arc<[Arc<str>]> {
        self.keys.clone().into()
    }

    /// Parses a comma-separated list of registry keys (`"hom,het,sim"`),
    /// validated against the builtin [`AnalysisRegistry`]. Selections for
    /// an engine with custom registrations should use
    /// [`AnalysisSelection::parse_with`] and that engine's registry.
    ///
    /// # Errors
    ///
    /// A message naming the offending token and listing every valid key,
    /// or `"no analysis kinds selected"` for an empty list.
    pub fn parse(list: &str) -> Result<Self, String> {
        AnalysisSelection::parse_with(list, &AnalysisRegistry::builtin())
    }

    /// Like [`AnalysisSelection::parse`], but validated against an
    /// arbitrary registry (so custom-registered keys are selectable).
    ///
    /// # Errors
    ///
    /// A message naming the offending token and listing every valid key
    /// of `registry`, or `"no analysis kinds selected"`.
    pub fn parse_with(list: &str, registry: &AnalysisRegistry) -> Result<Self, String> {
        let mut keys: Vec<&str> = Vec::new();
        for token in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if !registry.contains(token) {
                return Err(format!(
                    "unknown analysis kind `{token}` (valid keys: {})",
                    registry.keys().join(", ")
                ));
            }
            if !keys.contains(&token) {
                keys.push(token);
            }
        }
        if keys.is_empty() {
            return Err("no analysis kinds selected".into());
        }
        Ok(AnalysisSelection::from_keys(keys))
    }
}

/// The swept dimension, which also determines how job inputs are produced.
#[derive(Debug, Clone)]
pub enum SweepGrid {
    /// Offload fractions `C_off/vol`; each job draws one task from a
    /// reproducible [`BatchSpec`] batch (Figures 6–9 shape).
    OffloadFractions(Vec<f64>),
    /// Offload fractions with per-job independent sampling: each job
    /// generates its own task from a derived seed and *declines* the
    /// sample when generation fails (the suspension-baseline shape).
    SampledFractions(Vec<f64>),
    /// Normalized utilizations `U/m`; each job generates one task *set*
    /// (acceptance-test shape).
    NormalizedUtilizations(Vec<f64>),
    /// Conditional shares `p_cond`; each job generates one conditional
    /// expression with that branching probability.
    CondShares(Vec<f64>),
}

impl SweepGrid {
    /// The grid values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        match self {
            SweepGrid::OffloadFractions(v)
            | SweepGrid::SampledFractions(v)
            | SweepGrid::NormalizedUtilizations(v)
            | SweepGrid::CondShares(v) => v,
        }
    }
}

/// How cells of a sweep aggregate (decided by the grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellShape {
    /// Per-task metrics ([`CellKind::Task`](crate::CellKind)).
    Task,
    /// Acceptance-test counts ([`CellKind::Set`](crate::CellKind)).
    Set,
    /// Conditional-bound overheads ([`CellKind::Cond`](crate::CellKind)).
    Cond,
}

/// Replication offset of a base seed for per-job sampled grids
/// (suspension, conditional): base seed 0 reproduces the serial ablation
/// streams exactly (parity-pinned), while any other base seed is
/// decorrelated through SplitMix64 so nearby replications do not share
/// samples (the same concern `point_seed` solves for acceptance sweeps).
fn replication_offset(base_seed: u64) -> u64 {
    if base_seed == 0 {
        return 0;
    }
    hetrta_sched::acceptance::splitmix64(base_seed)
}

/// One sweep cell: a `(core count, grid value)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellInfo {
    /// Host core count `m`.
    pub m: u64,
    /// Offload fraction, normalized utilization, or conditional share,
    /// depending on the grid.
    pub grid_value: f64,
}

/// A declarative batch sweep: generator preset × core counts × grid ×
/// seeds × analysis keys, expanded by the engine into independent jobs.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// DAG generator for per-task sweeps (ignored by utilization grids,
    /// whose generator lives in [`SweepSpec::set_template`], and by
    /// conditional grids, which use [`SweepSpec::cond_template`]).
    pub preset: GeneratorPreset,
    /// Host core counts to sweep.
    pub core_counts: Vec<u64>,
    /// The swept dimension.
    pub grid: SweepGrid,
    /// Jobs (tasks, sets, or expressions) per sweep point and seed.
    pub jobs_per_point: usize,
    /// Base seeds; every seed is an independent replication of the whole
    /// sweep. Repeating a seed exercises the result cache.
    pub seeds: Vec<u64>,
    /// Registry keys of the analyses each job runs.
    pub analyses: AnalysisSelection,
    /// Task-set template for utilization grids.
    pub set_template: Option<TaskSetParams>,
    /// Conditional-generator template for `p_cond` grids (the share and
    /// the complementary `p_par` are overwritten per grid point).
    pub cond_template: Option<CondGenParams>,
    /// Tasks per generated set (utilization grids).
    pub n_tasks: usize,
    /// Node-exploration budget for the bounded exact solver (`None` =
    /// solver default).
    pub exact_node_budget: Option<u64>,
    /// Enumeration cap for conditional realizations.
    pub realization_cap: usize,
    /// Also simulate the transformed task `τ'` (Figure 6 sweeps).
    pub sim_transformed: bool,
    /// Random tie-break seeds for the suspension worst-case exploration
    /// (`0` = skip).
    pub explore_seeds: u64,
    /// Sample budget of the `sampled` analysis (simulations per job).
    pub sample_budget: usize,
    /// Base seed of the `sampled` analysis. Part of the spec (not derived
    /// per worker), so local and distributed runs draw identical samples.
    pub sample_seed: u64,
}

impl SweepSpec {
    fn base(preset: GeneratorPreset, core_counts: Vec<u64>, grid: SweepGrid) -> Self {
        SweepSpec {
            preset,
            core_counts,
            grid,
            jobs_per_point: 1,
            seeds: vec![0],
            analyses: AnalysisSelection::het_only(),
            set_template: None,
            cond_template: None,
            n_tasks: 0,
            exact_node_budget: None,
            realization_cap: 4096,
            sim_transformed: false,
            explore_seeds: 0,
            sample_budget: 64,
            sample_seed: 0,
        }
    }

    /// A per-task sweep over offload fractions (the Figure 8/9 shape).
    #[must_use]
    pub fn fractions(
        preset: GeneratorPreset,
        core_counts: Vec<u64>,
        fractions: Vec<f64>,
        tasks_per_point: usize,
        seed: u64,
    ) -> Self {
        let mut spec = SweepSpec::base(preset, core_counts, SweepGrid::OffloadFractions(fractions));
        spec.jobs_per_point = tasks_per_point;
        spec.seeds = vec![seed];
        spec
    }

    /// A Figure 6-style simulation sweep: breadth-first makespans of the
    /// original *and* the transformed task per offload fraction.
    #[must_use]
    pub fn simulation_impact(
        preset: GeneratorPreset,
        core_counts: Vec<u64>,
        fractions: Vec<f64>,
        tasks_per_point: usize,
        seed: u64,
    ) -> Self {
        let mut spec = SweepSpec::fractions(preset, core_counts, fractions, tasks_per_point, seed);
        spec.analyses = AnalysisSelection::from_keys(["sim"]);
        spec.sim_transformed = true;
        spec
    }

    /// A Figure 7-style exact-accuracy sweep: the bounded exact optimum
    /// next to `R_hom` and `R_het`, so cells report the analytical bounds'
    /// percentage increment over solved instances.
    #[must_use]
    pub fn exact_accuracy(
        preset: GeneratorPreset,
        core_counts: Vec<u64>,
        fractions: Vec<f64>,
        tasks_per_point: usize,
        seed: u64,
    ) -> Self {
        let mut spec = SweepSpec::fractions(preset, core_counts, fractions, tasks_per_point, seed);
        spec.analyses = AnalysisSelection::from_keys(["exact", "hom", "het"]);
        spec
    }

    /// A task-set acceptance sweep over normalized utilizations, matching
    /// [`hetrta_sched::acceptance::acceptance_sweep`] seeding exactly (the
    /// serial reference path).
    #[must_use]
    pub fn acceptance(
        template: TaskSetParams,
        core_counts: Vec<u64>,
        normalized_utils: Vec<f64>,
        n_tasks: usize,
        sets_per_point: usize,
        seed: u64,
    ) -> Self {
        let mut spec = SweepSpec::base(
            GeneratorPreset::Small,
            core_counts,
            SweepGrid::NormalizedUtilizations(normalized_utils),
        );
        spec.jobs_per_point = sets_per_point;
        spec.seeds = vec![seed];
        spec.analyses = AnalysisSelection::from_keys(["acceptance"]);
        spec.set_template = Some(template);
        spec.n_tasks = n_tasks;
        spec
    }

    /// A suspension-baseline sweep over offload fractions, matching the
    /// serial baseline ablation's independent per-job sampling and seed
    /// derivation exactly (generation failures decline the sample).
    #[must_use]
    pub fn suspension(
        core_counts: Vec<u64>,
        fractions: Vec<f64>,
        tasks_per_point: usize,
        explore_seeds: u64,
    ) -> Self {
        let mut spec = SweepSpec::base(
            GeneratorPreset::Small,
            core_counts,
            SweepGrid::SampledFractions(fractions),
        );
        spec.jobs_per_point = tasks_per_point;
        spec.analyses = AnalysisSelection::from_keys(["suspend"]);
        spec.explore_seeds = explore_seeds;
        spec
    }

    /// A conditional-bound sweep over branching shares `p_cond`, matching
    /// the serial conditional ablation's generator and seed derivation.
    #[must_use]
    pub fn conditional(
        template: CondGenParams,
        core_counts: Vec<u64>,
        cond_shares: Vec<f64>,
        exprs_per_point: usize,
        realization_cap: usize,
    ) -> Self {
        let mut spec = SweepSpec::base(
            GeneratorPreset::Small,
            core_counts,
            SweepGrid::CondShares(cond_shares),
        );
        spec.jobs_per_point = exprs_per_point;
        spec.analyses = AnalysisSelection::from_keys(["cond"]);
        spec.cond_template = Some(template);
        spec.realization_cap = realization_cap;
        spec
    }

    /// Overrides the analysis selection.
    #[must_use]
    pub fn with_analyses(mut self, analyses: AnalysisSelection) -> Self {
        self.analyses = analyses;
        self
    }

    /// Replaces the replication seeds.
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// The input kind this spec's grid produces for every job.
    #[must_use]
    pub fn input_kind(&self) -> hetrta_api::InputKind {
        match &self.grid {
            SweepGrid::NormalizedUtilizations(_) => hetrta_api::InputKind::TaskSet,
            SweepGrid::CondShares(_) => hetrta_api::InputKind::Cond,
            SweepGrid::OffloadFractions(_) | SweepGrid::SampledFractions(_) => {
                hetrta_api::InputKind::Task
            }
        }
    }

    /// How this spec's cells aggregate.
    #[must_use]
    pub fn cell_shape(&self) -> CellShape {
        match &self.grid {
            SweepGrid::NormalizedUtilizations(_) => CellShape::Set,
            SweepGrid::CondShares(_) => CellShape::Cond,
            SweepGrid::OffloadFractions(_) | SweepGrid::SampledFractions(_) => CellShape::Task,
        }
    }

    /// The per-job analysis parameters this spec implies for core count
    /// `m`.
    #[must_use]
    pub fn analysis_params(&self, m: u64) -> AnalysisParams {
        AnalysisParams {
            m,
            exact_node_budget: self.exact_node_budget,
            realization_cap: self.realization_cap,
            sim_transformed: self.sim_transformed,
            explore_seeds: self.explore_seeds,
            sample_budget: self.sample_budget,
            sample_seed: self.sample_seed,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidSpec`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), EngineError> {
        let fail = |msg: &str| Err(EngineError::InvalidSpec(msg.into()));
        if self.core_counts.is_empty() {
            return fail("no core counts");
        }
        if self.core_counts.contains(&0) {
            return fail("core count 0");
        }
        if self.grid.values().is_empty() {
            return fail("empty sweep grid");
        }
        if self.jobs_per_point == 0 {
            return fail("jobs_per_point is 0");
        }
        if self.seeds.is_empty() {
            return fail("no seeds");
        }
        if self.analyses.is_empty() {
            return fail("no analyses selected");
        }
        if self.sample_budget == 0 {
            return fail("sample budget is 0");
        }
        match &self.grid {
            SweepGrid::OffloadFractions(fs) => {
                if fs.iter().any(|&f| !(0.0 < f && f < 1.0)) {
                    return fail("offload fractions must lie in (0, 1)");
                }
            }
            SweepGrid::SampledFractions(fs) => {
                if fs.iter().any(|&f| !(0.0 < f && f < 1.0)) {
                    return fail("offload fractions must lie in (0, 1)");
                }
                // The serial ablation derives seeds (and sizes C_off) from
                // integer percentages; anything else would be analyzed at a
                // different fraction than the cell label claims.
                if fs
                    .iter()
                    .any(|&f| ((f * 100.0).round() / 100.0 - f).abs() > 1e-12)
                {
                    return fail("sampled fractions must be whole percentages (e.g. 0.05)");
                }
            }
            SweepGrid::NormalizedUtilizations(us) => {
                if us.iter().any(|&u| !(u > 0.0 && u.is_finite())) {
                    return fail("normalized utilizations must be positive and finite");
                }
                if self.set_template.is_none() {
                    return fail("utilization grid needs a task-set template");
                }
                if self.n_tasks == 0 {
                    return fail("utilization grid needs n_tasks > 0");
                }
            }
            SweepGrid::CondShares(ps) => {
                if ps.iter().any(|&p| !(0.0 < p && p < 1.0)) {
                    return fail("conditional shares must lie in (0, 1)");
                }
                if self.cond_template.is_none() {
                    return fail("conditional grid needs a generator template");
                }
            }
        }
        Ok(())
    }

    /// Total jobs this spec expands into.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.core_counts.len() * self.grid.values().len() * self.seeds.len() * self.jobs_per_point
    }

    /// Expands the spec into its cells and independent jobs.
    ///
    /// Expansion order is the determinism contract: cells iterate core
    /// counts then grid values; jobs within a cell iterate seeds then the
    /// per-point index. Aggregation replays results in exactly this order,
    /// so the aggregate is identical for any worker count.
    #[must_use]
    pub fn expand(&self) -> (Vec<CellInfo>, Vec<Job>) {
        let mut cells = Vec::new();
        let mut jobs = Vec::new();
        let analyses = self.analyses.to_shared();
        let push = |cells: &mut Vec<CellInfo>,
                    jobs: &mut Vec<Job>,
                    m: u64,
                    grid_value: f64,
                    inputs: Vec<JobInput>| {
            let cell = cells.len();
            cells.push(CellInfo { m, grid_value });
            for input in inputs {
                jobs.push(Job {
                    index: jobs.len(),
                    cell,
                    payload: JobPayload {
                        input,
                        analyses: Arc::clone(&analyses),
                        params: self.analysis_params(m),
                    },
                });
            }
        };
        match &self.grid {
            SweepGrid::OffloadFractions(fractions) => {
                let batches: Vec<Arc<BatchSpec>> = self
                    .seeds
                    .iter()
                    .map(|&seed| {
                        Arc::new(BatchSpec::new(
                            self.preset.params(),
                            self.jobs_per_point,
                            seed,
                        ))
                    })
                    .collect();
                for &m in &self.core_counts {
                    for &fraction in fractions {
                        let inputs = batches
                            .iter()
                            .flat_map(|batch| {
                                (0..self.jobs_per_point).map(move |task_index| {
                                    JobInput::BatchTask {
                                        batch: Arc::clone(batch),
                                        fraction,
                                        task_index,
                                    }
                                })
                            })
                            .collect();
                        push(&mut cells, &mut jobs, m, fraction, inputs);
                    }
                }
            }
            SweepGrid::SampledFractions(fractions) => {
                let params = Arc::new(self.preset.params());
                for &m in &self.core_counts {
                    for &fraction in fractions {
                        // The serial baseline ablation derives seeds from
                        // the integer offload percentage (parity-tested).
                        let pct = (fraction * 100.0).round() as u32;
                        let fraction_used = f64::from(pct) / 100.0;
                        let inputs = self
                            .seeds
                            .iter()
                            .flat_map(|&base_seed| {
                                let params = &params;
                                (0..self.jobs_per_point).map(move |s| {
                                    let raw = replication_offset(base_seed).wrapping_add(s as u64);
                                    JobInput::SampledTask {
                                        params: Arc::clone(params),
                                        fraction: fraction_used,
                                        seed: raw ^ (u64::from(pct) << 24) ^ (m << 48),
                                    }
                                })
                            })
                            .collect();
                        push(&mut cells, &mut jobs, m, fraction, inputs);
                    }
                }
            }
            SweepGrid::NormalizedUtilizations(utils) => {
                let template = Arc::new(
                    self.set_template
                        .clone()
                        .expect("validated utilization grid"),
                );
                for &m in &self.core_counts {
                    for (pi, &nu) in utils.iter().enumerate() {
                        let inputs = self
                            .seeds
                            .iter()
                            .flat_map(|&base_seed| {
                                let template = &template;
                                (0..self.jobs_per_point).map(move |s| {
                                    // Shared derivation with the serial
                                    // acceptance_sweep (parity-tested); the
                                    // SplitMix64 step inside decorrelates
                                    // nearby base seeds across replications.
                                    let seed =
                                        hetrta_sched::acceptance::point_seed(base_seed, pi, s);
                                    JobInput::TaskSet {
                                        template: Arc::clone(template),
                                        n_tasks: self.n_tasks,
                                        cores: m,
                                        normalized_util: nu,
                                        seed,
                                    }
                                })
                            })
                            .collect();
                        push(&mut cells, &mut jobs, m, nu, inputs);
                    }
                }
            }
            SweepGrid::CondShares(shares) => {
                let template = self.cond_template.expect("validated conditional grid");
                for &m in &self.core_counts {
                    for &share in shares {
                        // Mirrors the conditional ablation: the share sets
                        // p_cond, and p_par yields the remainder of the
                        // expansion probability (floored at 0.1).
                        let mut params = template;
                        params.p_cond = share;
                        params.p_par = (0.65 - share).max(0.1);
                        let params = Arc::new(params);
                        let inputs = self
                            .seeds
                            .iter()
                            .flat_map(|&base_seed| {
                                let params = &params;
                                (0..self.jobs_per_point).map(move |s| {
                                    let raw = replication_offset(base_seed).wrapping_add(s as u64);
                                    JobInput::CondExpr {
                                        params: Arc::clone(params),
                                        seed: raw ^ (((share * 1000.0) as u64) << 20) ^ (m << 40),
                                    }
                                })
                            })
                            .collect();
                        push(&mut cells, &mut jobs, m, share, inputs);
                    }
                }
            }
        }
        (cells, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::fractions(GeneratorPreset::Small, vec![2, 4], vec![0.1, 0.3], 5, 99)
    }

    #[test]
    fn expansion_counts_and_order() {
        let s = spec();
        let (cells, jobs) = s.expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(jobs.len(), s.job_count());
        assert_eq!(jobs.len(), 20);
        // Jobs are cell-contiguous in expansion order.
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
            assert_eq!(job.cell, i / 5);
        }
        assert_eq!(
            cells[0],
            CellInfo {
                m: 2,
                grid_value: 0.1
            }
        );
        assert_eq!(
            cells[3],
            CellInfo {
                m: 4,
                grid_value: 0.3
            }
        );
    }

    #[test]
    fn repeated_seeds_multiply_jobs() {
        let s = spec().with_seeds(vec![7, 7]);
        assert_eq!(s.job_count(), 40);
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(spec().validate().is_ok());
        let mut bad = spec();
        bad.core_counts.clear();
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.core_counts = vec![0];
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.grid = SweepGrid::OffloadFractions(vec![1.5]);
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.jobs_per_point = 0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.seeds.clear();
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.analyses = AnalysisSelection::from_keys(Vec::<&str>::new());
        assert!(bad.validate().is_err(), "empty selection");
        let mut bad = spec();
        bad.grid = SweepGrid::NormalizedUtilizations(vec![0.5]);
        assert!(bad.validate().is_err(), "utilization grid without template");
        let mut bad = spec();
        bad.grid = SweepGrid::CondShares(vec![0.2]);
        assert!(bad.validate().is_err(), "cond grid without template");
        let mut bad = SweepSpec::suspension(vec![2], vec![0.125], 2, 0);
        assert!(
            bad.validate().is_err(),
            "sampled fractions must be whole percents"
        );
        bad.grid = SweepGrid::SampledFractions(vec![0.05]);
        assert!(bad.validate().is_ok());
    }

    #[test]
    fn analysis_selection_parses() {
        assert_eq!(
            AnalysisSelection::parse("het").unwrap(),
            AnalysisSelection::het_only()
        );
        assert_eq!(
            AnalysisSelection::parse("hom,het,sim,exact").unwrap(),
            AnalysisSelection::all()
        );
        // Any registry key is accepted, including the new kinds.
        for key in ["cond", "suspend", "acceptance"] {
            assert!(AnalysisSelection::parse(key).is_ok(), "{key}");
        }
        // Duplicates collapse; order is preserved.
        assert_eq!(
            AnalysisSelection::parse("sim,het,sim")
                .unwrap()
                .keys()
                .len(),
            2
        );
        let err = AnalysisSelection::parse("frob").unwrap_err();
        assert!(err.contains("unknown analysis kind `frob`"), "{err}");
        assert!(err.contains("valid keys"), "{err}");
        assert!(err.contains("acceptance"), "{err}");
        assert!(AnalysisSelection::parse("").is_err());
    }

    #[test]
    fn acceptance_seed_parity_shape() {
        let template = TaskSetParams::small(3, 1.0);
        let s = SweepSpec::acceptance(template, vec![2], vec![0.2, 0.6], 3, 4, 42);
        let (cells, jobs) = s.expand();
        assert_eq!(cells.len(), 2);
        assert_eq!(jobs.len(), 8);
        // Seeds come from the shared serial-path derivation.
        use hetrta_sched::acceptance::point_seed;
        let JobInput::TaskSet { seed, .. } = &jobs[0].payload.input else {
            panic!("set job")
        };
        assert_eq!(*seed, point_seed(42, 0, 0));
        let JobInput::TaskSet { seed, .. } = &jobs[4 + 1].payload.input else {
            panic!("set job")
        };
        assert_eq!(*seed, point_seed(42, 1, 1));
    }

    #[test]
    fn nearby_base_seeds_do_not_collide() {
        // Replications with base seeds 0 and 1 must generate disjoint
        // per-set seed multisets (the review-caught XOR-overlap bug).
        let template = TaskSetParams::small(3, 1.0);
        let s = SweepSpec::acceptance(template, vec![2], vec![0.5], 3, 4, 0).with_seeds(vec![0, 1]);
        let (_, jobs) = s.expand();
        let seeds: std::collections::BTreeSet<u64> = jobs
            .iter()
            .map(|j| {
                let JobInput::TaskSet { seed, .. } = &j.payload.input else {
                    panic!("set job")
                };
                *seed
            })
            .collect();
        assert_eq!(seeds.len(), jobs.len(), "all derived seeds distinct");
    }

    #[test]
    fn suspension_seed_derivation_matches_serial_loop() {
        let s = SweepSpec::suspension(vec![2, 8], vec![0.05, 0.45], 3, 30);
        let (cells, jobs) = s.expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(jobs.len(), 12);
        let JobInput::SampledTask { seed, fraction, .. } = &jobs[0].payload.input else {
            panic!("sampled job")
        };
        // Serial derivation: s ^ (pct << 24) ^ (m << 48) with pct = 5.
        assert_eq!(*seed, (5u64 << 24) ^ (2u64 << 48));
        assert_eq!(*fraction, 0.05);
        let JobInput::SampledTask { seed, .. } = &jobs[11].payload.input else {
            panic!("sampled job")
        };
        assert_eq!(*seed, 2 ^ (45u64 << 24) ^ (8u64 << 48));
    }

    #[test]
    fn sampled_replications_with_nearby_base_seeds_are_decorrelated() {
        // base seed 0 is the serial stream; base seed 1 must not overlap
        // it (the SampledFractions/CondShares analogue of the acceptance
        // grid's SplitMix64 derivation).
        for grid_seeds in [
            SweepSpec::suspension(vec![2], vec![0.05], 16, 0).with_seeds(vec![0, 1]),
            SweepSpec::conditional(CondGenParams::small(), vec![2], vec![0.2], 16, 512)
                .with_seeds(vec![0, 1]),
        ] {
            let (_, jobs) = grid_seeds.expand();
            let seeds: std::collections::BTreeSet<u64> = jobs
                .iter()
                .map(|j| match &j.payload.input {
                    JobInput::SampledTask { seed, .. } | JobInput::CondExpr { seed, .. } => *seed,
                    other => panic!("unexpected input {other:?}"),
                })
                .collect();
            assert_eq!(seeds.len(), jobs.len(), "replication streams overlap");
        }
    }

    #[test]
    fn conditional_expansion_derives_template_and_seed() {
        let s = SweepSpec::conditional(CondGenParams::small(), vec![2], vec![0.3], 2, 512);
        assert!(s.validate().is_ok());
        let (cells, jobs) = s.expand();
        assert_eq!(cells.len(), 1);
        assert_eq!(jobs.len(), 2);
        let JobInput::CondExpr { params, seed } = &jobs[1].payload.input else {
            panic!("cond job")
        };
        assert_eq!(params.p_cond, 0.3);
        assert!((params.p_par - 0.35).abs() < 1e-12);
        assert_eq!(*seed, 1 ^ (((0.3 * 1000.0) as u64) << 20) ^ (2u64 << 40));
    }

    #[test]
    fn preset_constructors_select_the_right_analyses() {
        let fig6 = SweepSpec::simulation_impact(GeneratorPreset::Small, vec![2], vec![0.2], 2, 1);
        assert!(fig6.sim_transformed);
        assert!(fig6.analyses.contains("sim") && !fig6.analyses.contains("het"));
        assert_eq!(fig6.cell_shape(), CellShape::Task);
        let fig7 = SweepSpec::exact_accuracy(GeneratorPreset::Small, vec![2], vec![0.2], 2, 1);
        for key in ["exact", "hom", "het"] {
            assert!(fig7.analyses.contains(key), "{key}");
        }
        let cond = SweepSpec::conditional(CondGenParams::small(), vec![2], vec![0.2], 2, 512);
        assert_eq!(cond.cell_shape(), CellShape::Cond);
        let susp = SweepSpec::suspension(vec![2], vec![0.2], 2, 0);
        assert!(susp.analyses.contains("suspend"));
        assert_eq!(susp.cell_shape(), CellShape::Task);
    }
}
