//! Declarative sweep specifications and their expansion into jobs.

use std::sync::Arc;

use hetrta_gen::series::BatchSpec;
use hetrta_gen::NfjParams;
use hetrta_sched::taskset::TaskSetParams;

use crate::job::{Job, JobPayload};
use crate::EngineError;

/// Which DAG generator feeds the sweep (paper §5.1 presets or custom
/// parameters).
#[derive(Debug, Clone)]
pub enum GeneratorPreset {
    /// The paper's *small tasks* preset.
    Small,
    /// The paper's *large tasks* preset.
    Large,
    /// Large tasks constrained to the paper's evaluation range
    /// `n ∈ [100, 250]` (Figures 8–9).
    LargePaper,
    /// Explicit generator parameters.
    Custom(NfjParams),
}

impl GeneratorPreset {
    /// Resolves to concrete generator parameters.
    #[must_use]
    pub fn params(&self) -> NfjParams {
        match self {
            GeneratorPreset::Small => NfjParams::small_tasks(),
            GeneratorPreset::Large => NfjParams::large_tasks(),
            GeneratorPreset::LargePaper => NfjParams::large_tasks().with_node_range(100, 250),
            GeneratorPreset::Custom(p) => p.clone(),
        }
    }
}

/// Which analyses each per-task job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisSelection {
    /// Eq. 1 (`R_hom`) on the original DAG.
    pub hom: bool,
    /// Algorithm 1 + Theorem 1 (`R_het`, scenario, improvement).
    pub het: bool,
    /// Work-conserving breadth-first simulation (paper §5.2).
    pub sim: bool,
    /// Bounded exact minimum-makespan solve (paper §5.3).
    pub exact: bool,
}

impl AnalysisSelection {
    /// Only the heterogeneous analysis (Figures 8–9 workloads).
    #[must_use]
    pub fn het_only() -> Self {
        AnalysisSelection {
            hom: false,
            het: true,
            sim: false,
            exact: false,
        }
    }

    /// Every analysis kind.
    #[must_use]
    pub fn all() -> Self {
        AnalysisSelection {
            hom: true,
            het: true,
            sim: true,
            exact: true,
        }
    }

    /// `true` if no analysis is selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !(self.hom || self.het || self.sim || self.exact)
    }

    /// Parses a comma-separated list (`"hom,het,sim,exact"`).
    ///
    /// # Errors
    ///
    /// Returns the offending token on unknown analysis names.
    pub fn parse(list: &str) -> Result<Self, String> {
        let mut sel = AnalysisSelection {
            hom: false,
            het: false,
            sim: false,
            exact: false,
        };
        for token in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match token {
                "hom" => sel.hom = true,
                "het" => sel.het = true,
                "sim" => sel.sim = true,
                "exact" => sel.exact = true,
                other => return Err(format!("unknown analysis kind `{other}`")),
            }
        }
        if sel.is_empty() {
            return Err("no analysis kinds selected".into());
        }
        Ok(sel)
    }
}

/// The swept dimension.
#[derive(Debug, Clone)]
pub enum SweepGrid {
    /// Offload fractions `C_off/vol`; each job generates and analyzes one
    /// heterogeneous task (Figures 6–9 shape).
    OffloadFractions(Vec<f64>),
    /// Normalized utilizations `U/m`; each job generates one task *set* and
    /// runs the six acceptance tests (GFP/GEDF/federated × hom/het).
    NormalizedUtilizations(Vec<f64>),
}

impl SweepGrid {
    /// The grid values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        match self {
            SweepGrid::OffloadFractions(v) | SweepGrid::NormalizedUtilizations(v) => v,
        }
    }
}

/// One sweep cell: a `(core count, grid value)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellInfo {
    /// Host core count `m`.
    pub m: u64,
    /// Offload fraction or normalized utilization, depending on the grid.
    pub grid_value: f64,
}

/// A declarative batch sweep: generator preset × core counts × grid ×
/// seeds × analyses, expanded by the engine into independent jobs.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// DAG generator for per-task sweeps (ignored by utilization grids,
    /// whose generator lives in [`SweepSpec::set_template`]).
    pub preset: GeneratorPreset,
    /// Host core counts to sweep.
    pub core_counts: Vec<u64>,
    /// The swept dimension.
    pub grid: SweepGrid,
    /// Tasks (fraction grid) or task sets (utilization grid) per sweep
    /// point and seed.
    pub jobs_per_point: usize,
    /// Base seeds; every seed is an independent replication of the whole
    /// sweep. Repeating a seed exercises the result cache.
    pub seeds: Vec<u64>,
    /// Analyses run by per-task jobs (utilization grids always run the six
    /// acceptance tests).
    pub analyses: AnalysisSelection,
    /// Task-set template for utilization grids.
    pub set_template: Option<TaskSetParams>,
    /// Tasks per generated set (utilization grids).
    pub n_tasks: usize,
    /// Node-exploration budget for the bounded exact solver (`None` =
    /// solver default).
    pub exact_node_budget: Option<u64>,
}

impl SweepSpec {
    /// A per-task sweep over offload fractions (the Figure 8/9 shape).
    #[must_use]
    pub fn fractions(
        preset: GeneratorPreset,
        core_counts: Vec<u64>,
        fractions: Vec<f64>,
        tasks_per_point: usize,
        seed: u64,
    ) -> Self {
        SweepSpec {
            preset,
            core_counts,
            grid: SweepGrid::OffloadFractions(fractions),
            jobs_per_point: tasks_per_point,
            seeds: vec![seed],
            analyses: AnalysisSelection::het_only(),
            set_template: None,
            n_tasks: 0,
            exact_node_budget: None,
        }
    }

    /// A task-set acceptance sweep over normalized utilizations, matching
    /// [`hetrta_sched::acceptance::acceptance_sweep`] seeding exactly (the
    /// serial reference path).
    #[must_use]
    pub fn acceptance(
        template: TaskSetParams,
        core_counts: Vec<u64>,
        normalized_utils: Vec<f64>,
        n_tasks: usize,
        sets_per_point: usize,
        seed: u64,
    ) -> Self {
        SweepSpec {
            preset: GeneratorPreset::Small,
            core_counts,
            grid: SweepGrid::NormalizedUtilizations(normalized_utils),
            jobs_per_point: sets_per_point,
            seeds: vec![seed],
            analyses: AnalysisSelection::het_only(),
            set_template: Some(template),
            n_tasks,
            exact_node_budget: None,
        }
    }

    /// Overrides the analysis selection (per-task sweeps).
    #[must_use]
    pub fn with_analyses(mut self, analyses: AnalysisSelection) -> Self {
        self.analyses = analyses;
        self
    }

    /// Replaces the replication seeds.
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidSpec`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), EngineError> {
        let fail = |msg: &str| Err(EngineError::InvalidSpec(msg.into()));
        if self.core_counts.is_empty() {
            return fail("no core counts");
        }
        if self.core_counts.contains(&0) {
            return fail("core count 0");
        }
        if self.grid.values().is_empty() {
            return fail("empty sweep grid");
        }
        if self.jobs_per_point == 0 {
            return fail("jobs_per_point is 0");
        }
        if self.seeds.is_empty() {
            return fail("no seeds");
        }
        match &self.grid {
            SweepGrid::OffloadFractions(fs) => {
                if fs.iter().any(|&f| !(0.0 < f && f < 1.0)) {
                    return fail("offload fractions must lie in (0, 1)");
                }
                if self.analyses.is_empty() {
                    return fail("no analyses selected");
                }
            }
            SweepGrid::NormalizedUtilizations(us) => {
                if us.iter().any(|&u| !(u > 0.0 && u.is_finite())) {
                    return fail("normalized utilizations must be positive and finite");
                }
                if self.set_template.is_none() {
                    return fail("utilization grid needs a task-set template");
                }
                if self.n_tasks == 0 {
                    return fail("utilization grid needs n_tasks > 0");
                }
            }
        }
        Ok(())
    }

    /// Total jobs this spec expands into.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.core_counts.len() * self.grid.values().len() * self.seeds.len() * self.jobs_per_point
    }

    /// Expands the spec into its cells and independent jobs.
    ///
    /// Expansion order is the determinism contract: cells iterate core
    /// counts then grid values; jobs within a cell iterate seeds then the
    /// per-point index. Aggregation replays results in exactly this order,
    /// so the aggregate is identical for any worker count.
    #[must_use]
    pub fn expand(&self) -> (Vec<CellInfo>, Vec<Job>) {
        let mut cells = Vec::new();
        let mut jobs = Vec::new();
        match &self.grid {
            SweepGrid::OffloadFractions(fractions) => {
                let batches: Vec<Arc<BatchSpec>> = self
                    .seeds
                    .iter()
                    .map(|&seed| {
                        Arc::new(BatchSpec::new(
                            self.preset.params(),
                            self.jobs_per_point,
                            seed,
                        ))
                    })
                    .collect();
                for &m in &self.core_counts {
                    for &fraction in fractions {
                        let cell = cells.len();
                        cells.push(CellInfo {
                            m,
                            grid_value: fraction,
                        });
                        for batch in &batches {
                            for task_index in 0..self.jobs_per_point {
                                jobs.push(Job {
                                    index: jobs.len(),
                                    cell,
                                    payload: JobPayload::Task {
                                        batch: Arc::clone(batch),
                                        fraction,
                                        task_index,
                                        m,
                                        analyses: self.analyses,
                                        exact_node_budget: self.exact_node_budget,
                                    },
                                });
                            }
                        }
                    }
                }
            }
            SweepGrid::NormalizedUtilizations(utils) => {
                let template = Arc::new(
                    self.set_template
                        .clone()
                        .expect("validated utilization grid"),
                );
                for &m in &self.core_counts {
                    for (pi, &nu) in utils.iter().enumerate() {
                        let cell = cells.len();
                        cells.push(CellInfo { m, grid_value: nu });
                        for &base_seed in &self.seeds {
                            for s in 0..self.jobs_per_point {
                                // Shared derivation with the serial
                                // acceptance_sweep (parity-tested); the
                                // SplitMix64 step inside decorrelates
                                // nearby base seeds across replications.
                                let seed = hetrta_sched::acceptance::point_seed(base_seed, pi, s);
                                jobs.push(Job {
                                    index: jobs.len(),
                                    cell,
                                    payload: JobPayload::Set {
                                        template: Arc::clone(&template),
                                        n_tasks: self.n_tasks,
                                        cores: m,
                                        normalized_util: nu,
                                        seed,
                                    },
                                });
                            }
                        }
                    }
                }
            }
        }
        (cells, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec::fractions(GeneratorPreset::Small, vec![2, 4], vec![0.1, 0.3], 5, 99)
    }

    #[test]
    fn expansion_counts_and_order() {
        let s = spec();
        let (cells, jobs) = s.expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(jobs.len(), s.job_count());
        assert_eq!(jobs.len(), 20);
        // Jobs are cell-contiguous in expansion order.
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
            assert_eq!(job.cell, i / 5);
        }
        assert_eq!(
            cells[0],
            CellInfo {
                m: 2,
                grid_value: 0.1
            }
        );
        assert_eq!(
            cells[3],
            CellInfo {
                m: 4,
                grid_value: 0.3
            }
        );
    }

    #[test]
    fn repeated_seeds_multiply_jobs() {
        let s = spec().with_seeds(vec![7, 7]);
        assert_eq!(s.job_count(), 40);
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(spec().validate().is_ok());
        let mut bad = spec();
        bad.core_counts.clear();
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.core_counts = vec![0];
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.grid = SweepGrid::OffloadFractions(vec![1.5]);
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.jobs_per_point = 0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.seeds.clear();
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.grid = SweepGrid::NormalizedUtilizations(vec![0.5]);
        assert!(bad.validate().is_err(), "utilization grid without template");
    }

    #[test]
    fn analysis_selection_parses() {
        assert_eq!(
            AnalysisSelection::parse("het").unwrap(),
            AnalysisSelection::het_only()
        );
        assert_eq!(
            AnalysisSelection::parse("hom,het,sim,exact").unwrap(),
            AnalysisSelection::all()
        );
        assert!(AnalysisSelection::parse("frob").is_err());
        assert!(AnalysisSelection::parse("").is_err());
    }

    #[test]
    fn acceptance_seed_parity_shape() {
        let template = TaskSetParams::small(3, 1.0);
        let s = SweepSpec::acceptance(template, vec![2], vec![0.2, 0.6], 3, 4, 42);
        let (cells, jobs) = s.expand();
        assert_eq!(cells.len(), 2);
        assert_eq!(jobs.len(), 8);
        // Seeds come from the shared serial-path derivation.
        use hetrta_sched::acceptance::point_seed;
        let JobPayload::Set { seed, .. } = &jobs[0].payload else {
            panic!("set job")
        };
        assert_eq!(*seed, point_seed(42, 0, 0));
        let JobPayload::Set { seed, .. } = &jobs[4 + 1].payload else {
            panic!("set job")
        };
        assert_eq!(*seed, point_seed(42, 1, 1));
    }

    #[test]
    fn nearby_base_seeds_do_not_collide() {
        // Replications with base seeds 0 and 1 must generate disjoint
        // per-set seed multisets (the review-caught XOR-overlap bug).
        let template = TaskSetParams::small(3, 1.0);
        let s = SweepSpec::acceptance(template, vec![2], vec![0.5], 3, 4, 0).with_seeds(vec![0, 1]);
        let (_, jobs) = s.expand();
        let seeds: std::collections::BTreeSet<u64> = jobs
            .iter()
            .map(|j| {
                let JobPayload::Set { seed, .. } = &j.payload else {
                    panic!("set job")
                };
                *seed
            })
            .collect();
        assert_eq!(seeds.len(), jobs.len(), "all derived seeds distinct");
    }
}
