//! Work-stealing worker pool (std only).
//!
//! Topology: one shared **injector** queue seeded with every job, plus one
//! **local deque** per worker. Owners drain their deque FIFO (pop from the
//! front), refill in batches from the injector, and — once the injector
//! runs dry — **steal** from the back of sibling deques (the victim's
//! newest-queued job: the opposite end from the owner, minimizing
//! contention). Jobs never spawn jobs, so "everything empty" is a sound
//! termination condition.
//!
//! Results stream to the caller through an [`std::sync::mpsc`] channel in
//! completion order; every job carries its submission index so callers can
//! re-establish deterministic order regardless of scheduling.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-worker execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Jobs this worker stole from a sibling's deque.
    pub steals: u64,
    /// Wall time spent inside `exec` calls.
    pub busy: Duration,
    /// Wall time spent outside `exec` (dequeuing, stealing, waiting on
    /// the channel) between the worker's first and last activity.
    pub idle: Duration,
}

/// Resolves a requested thread count: `0` means "all available cores".
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Runs `jobs` on `threads` workers, streaming `(index, result)` pairs to
/// `consume` on the calling thread as they complete.
///
/// `consume` observes results in nondeterministic completion order; the
/// submission `index` lets the caller rebuild input order. Returns the
/// per-worker counters.
///
/// # Panics
///
/// Propagates worker panics (via [`std::thread::scope`]).
pub fn run_jobs<J, R, E, C>(jobs: Vec<J>, threads: usize, exec: E, consume: C) -> Vec<WorkerStats>
where
    J: Send,
    R: Send,
    E: Fn(usize, J) -> R + Sync,
    C: FnMut(usize, R),
{
    run_jobs_cancellable(jobs, threads, None, exec, consume)
}

/// Like [`run_jobs`], with cooperative cancellation: once `cancel` reads
/// `true`, workers stop dequeuing (jobs already executing finish and their
/// results are still delivered), so remaining jobs are simply never run.
///
/// # Panics
///
/// Propagates worker panics (via [`std::thread::scope`]).
pub fn run_jobs_cancellable<J, R, E, C>(
    jobs: Vec<J>,
    threads: usize,
    cancel: Option<&AtomicBool>,
    exec: E,
    consume: C,
) -> Vec<WorkerStats>
where
    J: Send,
    R: Send,
    E: Fn(usize, J) -> R + Sync,
    C: FnMut(usize, R),
{
    run_jobs_observed(jobs, threads, cancel, None, exec, consume)
}

/// Like [`run_jobs_cancellable`], with an observation hook: `queue_depth`
/// (when present) is called with the injector's remaining length after
/// every batch refill, letting an observer sample how fast the shared
/// queue drains. The hook runs on worker threads under no lock and must
/// be cheap.
///
/// # Panics
///
/// Propagates worker panics (via [`std::thread::scope`]).
pub fn run_jobs_observed<J, R, E, C>(
    jobs: Vec<J>,
    threads: usize,
    cancel: Option<&AtomicBool>,
    queue_depth: Option<&(dyn Fn(usize) + Sync)>,
    exec: E,
    mut consume: C,
) -> Vec<WorkerStats>
where
    J: Send,
    R: Send,
    E: Fn(usize, J) -> R + Sync,
    C: FnMut(usize, R),
{
    let n = jobs.len();
    let threads = resolve_threads(threads).max(1).min(n.max(1));
    if n == 0 {
        return vec![WorkerStats::default(); threads];
    }

    // Batch size for injector refills: big enough to amortize the injector
    // lock, small enough that late stragglers still balance via stealing.
    let batch = (n / (threads * 8)).clamp(1, 64);

    let injector: Mutex<VecDeque<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let locals: Vec<Mutex<VecDeque<(usize, J)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let mut stats = vec![WorkerStats::default(); threads];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let tx = tx.clone();
            let injector = &injector;
            let locals = &locals;
            let exec = &exec;
            handles.push(scope.spawn(move || {
                let mut local_stats = WorkerStats::default();
                let started = Instant::now();
                loop {
                    if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                        break;
                    }
                    let job = next_job(
                        worker,
                        injector,
                        locals,
                        batch,
                        queue_depth,
                        &mut local_stats,
                    );
                    let Some((index, job)) = job else { break };
                    let t0 = Instant::now();
                    let result = exec(worker, job);
                    local_stats.busy += t0.elapsed();
                    local_stats.jobs += 1;
                    if tx.send((index, result)).is_err() {
                        break; // receiver gone: caller is unwinding
                    }
                }
                local_stats.idle = started.elapsed().saturating_sub(local_stats.busy);
                local_stats
            }));
        }
        drop(tx);

        // The calling thread doubles as the streaming aggregator.
        for (index, result) in rx {
            consume(index, result);
        }

        for (worker, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(worker_stats) => stats[worker] = worker_stats,
                // Re-raise with the worker's own payload so the original
                // failure context survives to the caller.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    stats
}

/// Finds the next job for `worker`: local deque, then injector refill, then
/// stealing; `None` once every queue is empty.
fn next_job<J>(
    worker: usize,
    injector: &Mutex<VecDeque<(usize, J)>>,
    locals: &[Mutex<VecDeque<(usize, J)>>],
    batch: usize,
    queue_depth: Option<&(dyn Fn(usize) + Sync)>,
    stats: &mut WorkerStats,
) -> Option<(usize, J)> {
    if let Some(job) = locals[worker].lock().expect("local deque").pop_front() {
        return Some(job);
    }

    // Refill from the shared injector.
    {
        let mut inj = injector.lock().expect("injector");
        if !inj.is_empty() {
            let take = batch.min(inj.len());
            let mut mine = locals[worker].lock().expect("local deque");
            for _ in 0..take {
                if let Some(job) = inj.pop_front() {
                    mine.push_back(job);
                }
            }
            let remaining = inj.len();
            drop(inj);
            let popped = mine.pop_front();
            drop(mine);
            if let Some(observe) = queue_depth {
                observe(remaining);
            }
            return popped;
        }
    }

    // Steal from the *back* of a sibling (its newest-queued job — the
    // opposite end from the owner's front pops), round-robin
    // starting after our own slot to spread contention.
    let k = locals.len();
    for offset in 1..k {
        let victim = (worker + offset) % k;
        if let Some(job) = locals[victim].lock().expect("sibling deque").pop_back() {
            stats.steals += 1;
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn all_jobs_run_exactly_once() {
        let executed = AtomicU64::new(0);
        let mut seen = vec![false; 500];
        let stats = run_jobs(
            (0..500u64).collect(),
            4,
            |_, j| {
                executed.fetch_add(1, Ordering::Relaxed);
                j * 2
            },
            |index, result| {
                assert_eq!(result, index as u64 * 2);
                assert!(!seen[index], "job {index} delivered twice");
                seen[index] = true;
            },
        );
        assert_eq!(executed.load(Ordering::Relaxed), 500);
        assert!(seen.iter().all(|&s| s));
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 500);
    }

    #[test]
    fn single_thread_is_in_order() {
        let mut order = Vec::new();
        run_jobs(
            (0..50usize).collect(),
            1,
            |_, j| j,
            |index, _| order.push(index),
        );
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let stats = run_jobs(
            Vec::<u8>::new(),
            3,
            |_, j| j,
            |_, _| unreachable!("no jobs"),
        );
        assert!(stats.iter().all(|s| s.jobs == 0));
    }

    #[test]
    fn uneven_work_gets_stolen() {
        // Job 0 parks until a sibling finishes a tiny job, so the rest of
        // the sweep must be stolen while its worker is pinned — a fixed
        // spin count was optimizer- and scheduler-dependent. The deadline
        // only bounds the failure mode (total starvation) instead of a hang.
        let tiny_done = AtomicU64::new(0);
        let stats = run_jobs(
            (0..64u64).collect(),
            4,
            |_, j| {
                if j == 0 {
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
                    while tiny_done.load(Ordering::Relaxed) == 0
                        && std::time::Instant::now() < deadline
                    {
                        std::hint::spin_loop();
                    }
                } else {
                    tiny_done.fetch_add(1, Ordering::Relaxed);
                }
                j
            },
            |_, _| {},
        );
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 64);
        // No worker may have run everything while others idled.
        assert!(stats.iter().filter(|s| s.jobs > 0).count() > 1);
    }

    #[test]
    fn thread_resolution() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn cancellation_stops_dequeuing() {
        let cancel = AtomicBool::new(false);
        let mut delivered = 0usize;
        let stats = run_jobs_cancellable(
            (0..500u64).collect(),
            2,
            Some(&cancel),
            |_, j| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                j
            },
            |_, _| {
                delivered += 1;
                cancel.store(true, Ordering::Relaxed); // cancel on first result
            },
        );
        let executed: u64 = stats.iter().map(|s| s.jobs).sum();
        assert!(executed >= 1, "at least the first job ran");
        assert!(
            executed < 500,
            "cancellation must leave jobs unexecuted, ran {executed}"
        );
        assert_eq!(delivered as u64, executed, "every executed job delivers");
    }

    #[test]
    fn cancelled_before_start_runs_nothing() {
        let cancel = AtomicBool::new(true);
        let stats = run_jobs_cancellable(
            (0..64u64).collect(),
            4,
            Some(&cancel),
            |_, j| j,
            |_, _| panic!("no job may run"),
        );
        assert_eq!(stats.iter().map(|s| s.jobs).sum::<u64>(), 0);
    }
}
