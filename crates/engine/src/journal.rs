//! Durable sweep journal + resume: a write-ahead record of sweep
//! progress that makes a crash (SIGKILL, power loss, daemon restart)
//! cost only the jobs in flight, never the jobs already done.
//!
//! Built on [`hetrta_fault::RecordLog`] — append-only, FNV-64
//! checksummed records, atomic tmp+rename segment rotation, torn-tail
//! tolerant reads (the same discipline as [`crate::disk`]). Three
//! record kinds, all single-line with embedded text escaped:
//!
//! ```text
//! start <spec_hash:016x> <total_jobs> <escaped encode_spec text>
//! done <index> <cell> <identity:032x> <hit:0|1> <wall_ns> <escaped outcomes>
//! keyframe <completed> <escaped encode_update text>
//! ```
//!
//! The `start` record pins the journal to one spec (hash of the
//! bit-exact [`encode_spec`](crate::wire::encode_spec) text); `done`
//! records carry each finished job's full outcome payload so resume
//! replays it *without re-executing anything*; periodic `keyframe`
//! records (which also seal the active segment) snapshot the aggregate
//! for observers. Because the [`Aggregator`] replays expansion order at
//! finalize, a resumed sweep's aggregate is **bitwise identical** to an
//! uninterrupted run's — regardless of where the crash landed.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use hetrta_api::wire::fnv64;
use hetrta_api::AnalysisOutcome;
use hetrta_fault::{escape, unescape, RecordLog};

use crate::aggregate::{AggregateUpdate, Aggregator, SweepAggregate};
use crate::engine::{Engine, EngineError};
use crate::job::{JobMetrics, JobResult};
use crate::spec::SweepSpec;
use crate::wire::{encode_spec, encode_update};

/// Default `done`-record cadence of aggregate keyframes (each keyframe
/// also seals the active journal segment).
pub const DEFAULT_KEYFRAME_EVERY: usize = 64;

/// Where (and how) a sweep journals its progress.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Journal directory (created if needed; one sweep per directory).
    pub dir: PathBuf,
    /// Replay an existing journal and run only the remainder. Without
    /// this, a directory that already holds completed jobs is refused —
    /// resuming must be an explicit decision, not an accident.
    pub resume: bool,
    /// Keyframe (and segment-seal) cadence in completed jobs.
    pub keyframe_every: usize,
}

impl JournalConfig {
    /// A config journaling into `dir` with default cadence, not resuming.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JournalConfig {
            dir: dir.into(),
            resume: false,
            keyframe_every: DEFAULT_KEYFRAME_EVERY,
        }
    }

    /// Same config with resume enabled.
    #[must_use]
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }
}

/// The stable identity of a spec: FNV-64 of its bit-exact
/// [`encode_spec`] text (floats travel as bit patterns, so two specs
/// hash equal iff they expand to the same jobs).
#[must_use]
pub fn spec_hash(spec: &SweepSpec) -> u64 {
    fnv64(encode_spec(spec).as_bytes())
}

/// A shareable, append-side handle on one sweep's journal.
///
/// Writes are serialized internally; append failures are counted
/// ([`SweepJournal::write_failures`]) and swallowed — a full disk
/// degrades durability, never the sweep itself (mirroring the disk
/// cache's contract).
#[derive(Debug)]
pub struct SweepJournal {
    inner: Mutex<JournalInner>,
    spec_hash: u64,
    keyframe_every: usize,
    write_failures: AtomicU64,
}

#[derive(Debug)]
struct JournalInner {
    log: RecordLog,
    since_keyframe: usize,
    keyframe_seq: u64,
}

/// What replaying a journal recovered.
#[derive(Debug)]
pub struct JournalReplay {
    /// Completed jobs, reconstructed from `done` records (at most one
    /// per expansion index; duplicates from redispatch are deduped).
    pub results: Vec<JobResult>,
}

impl SweepJournal {
    /// Opens the journal at `cfg.dir` for `spec`, replaying any existing
    /// records first.
    ///
    /// A fresh directory gets a `start` record. An existing journal must
    /// match the spec's hash and job count, and — when it already holds
    /// completed jobs — requires `cfg.resume`.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cache`] for unreadable/unwritable directories or a
    /// journal that belongs to a different spec;
    /// [`EngineError::InvalidSpec`] when completed jobs exist without
    /// `cfg.resume`.
    pub fn open(
        cfg: &JournalConfig,
        spec: &SweepSpec,
        total_jobs: usize,
    ) -> Result<(SweepJournal, JournalReplay), EngineError> {
        let hash = spec_hash(spec);
        let records = RecordLog::read_all(&cfg.dir)
            .map_err(|e| EngineError::Cache(format!("sweep journal: {e}")))?;
        let mut results: Vec<Option<JobResult>> = vec![None; total_jobs];
        let mut started = false;
        for record in &records {
            match parse_record(record) {
                Some(Record::Start { hash: h, total }) => {
                    if h != hash || total != total_jobs {
                        return Err(EngineError::Cache(format!(
                            "sweep journal at {} belongs to a different sweep \
                             (journal spec {h:016x}/{total} jobs, this spec \
                             {hash:016x}/{total_jobs} jobs)",
                            cfg.dir.display()
                        )));
                    }
                    started = true;
                }
                Some(Record::Done(result)) if result.index < total_jobs => {
                    let slot = result.index;
                    results[slot] = Some(result);
                }
                // Keyframes are observer state, not replay state, and a
                // record this reader cannot parse (torn tail survivors,
                // future kinds) loses that record only.
                _ => {}
            }
        }
        let replayed: Vec<JobResult> = results.into_iter().flatten().collect();
        if !replayed.is_empty() && !cfg.resume {
            return Err(EngineError::InvalidSpec(format!(
                "journal at {} already holds {} completed job(s); \
                 pass --resume to continue it (or point --journal at a fresh directory)",
                cfg.dir.display(),
                replayed.len()
            )));
        }

        let mut log = RecordLog::open(&cfg.dir)
            .map_err(|e| EngineError::Cache(format!("sweep journal: {e}")))?;
        if !started {
            log.append(&format!(
                "start {hash:016x} {total_jobs} {}",
                escape(&encode_spec(spec))
            ))
            .map_err(|e| EngineError::Cache(format!("sweep journal: {e}")))?;
        }
        Ok((
            SweepJournal {
                inner: Mutex::new(JournalInner {
                    log,
                    since_keyframe: 0,
                    keyframe_seq: 0,
                }),
                spec_hash: hash,
                keyframe_every: cfg.keyframe_every.max(1),
                write_failures: AtomicU64::new(0),
            },
            JournalReplay { results: replayed },
        ))
    }

    /// The spec hash this journal is pinned to.
    #[must_use]
    pub fn spec_hash(&self) -> u64 {
        self.spec_hash
    }

    /// Appends one finished job. Failed jobs are *not* journaled (they
    /// fail the sweep and must re-run on resume); skipped and successful
    /// jobs are. Returns `true` when a keyframe is due.
    pub fn record_done(&self, result: &JobResult) -> bool {
        let payload = match &result.metrics {
            Ok(JobMetrics::Outcomes(outcomes)) => {
                let lines: Vec<String> = outcomes.iter().map(AnalysisOutcome::encode).collect();
                format!("ok\n{}", lines.join("\n"))
            }
            Ok(JobMetrics::Skipped) => "skip".to_owned(),
            Err(_) => return false,
        };
        let record = format!(
            "done {} {} {:032x} {} {} {}",
            result.index,
            result.cell,
            result.identity,
            u8::from(result.cache_hit),
            result.wall_time.as_nanos(),
            escape(&payload)
        );
        let mut inner = self.lock();
        if inner.log.append(&record).is_err() {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
        }
        inner.since_keyframe += 1;
        inner.since_keyframe >= self.keyframe_every
    }

    /// Appends an aggregate keyframe and seals the active segment
    /// (atomic rename), bounding how much a later torn tail can cover.
    pub fn record_keyframe(&self, completed: usize, aggregate: SweepAggregate) {
        let mut inner = self.lock();
        let seq = inner.keyframe_seq;
        inner.keyframe_seq += 1;
        inner.since_keyframe = 0;
        let update = AggregateUpdate::Keyframe { seq, aggregate };
        let record = format!("keyframe {completed} {}", escape(&encode_update(&update)));
        let ok = inner.log.append(&record).is_ok() && inner.log.seal().is_ok();
        if !ok {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends (journal handles failure of) no specific record but seals
    /// the active segment — called once when a sweep finishes so the
    /// final records are in a durable, renamed segment.
    pub fn seal(&self) {
        if self.lock().log.seal().is_err() {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Journal appends that failed (durability degraded, sweep unharmed).
    #[must_use]
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

enum Record {
    Start { hash: u64, total: usize },
    Done(JobResult),
}

/// Parses one journal record; `None` for records this build cannot read
/// (the checksum already vouched for their integrity, so unknown kinds
/// are skipped, not fatal — forward compatibility for free).
fn parse_record(record: &str) -> Option<Record> {
    let (kind, rest) = record.split_once(' ')?;
    match kind {
        "start" => {
            let mut fields = rest.splitn(3, ' ');
            let hash = u64::from_str_radix(fields.next()?, 16).ok()?;
            let total = fields.next()?.parse().ok()?;
            Some(Record::Start { hash, total })
        }
        "done" => {
            let mut fields = rest.splitn(6, ' ');
            let index = fields.next()?.parse().ok()?;
            let cell = fields.next()?.parse().ok()?;
            let identity = u128::from_str_radix(fields.next()?, 16).ok()?;
            let cache_hit = match fields.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            let wall_ns: u64 = fields.next()?.parse().ok()?;
            let payload = unescape(fields.next()?);
            let metrics = if payload == "skip" {
                JobMetrics::Skipped
            } else {
                let body = payload.strip_prefix("ok\n")?;
                let outcomes: Vec<AnalysisOutcome> = body
                    .lines()
                    .map(AnalysisOutcome::decode)
                    .collect::<Option<_>>()?;
                JobMetrics::Outcomes(outcomes)
            };
            Some(Record::Done(JobResult {
                index,
                cell,
                worker: 0,
                identity,
                cache_hit,
                wall_time: Duration::from_nanos(wall_ns),
                timings: Vec::new(),
                metrics: Ok(metrics),
            }))
        }
        _ => None,
    }
}

/// What one journaled (possibly resumed) run did.
#[derive(Debug)]
pub struct JournalOutcome {
    /// The deterministic aggregate — bitwise the uninterrupted run's.
    pub aggregate: SweepAggregate,
    /// Jobs replayed from the journal (zero re-execution).
    pub replayed: usize,
    /// Jobs executed in this process.
    pub executed: usize,
    /// The spec's total expansion.
    pub total: usize,
    /// Journal appends that failed during the run.
    pub journal_write_failures: u64,
}

impl Engine {
    /// Runs `spec` write-ahead journaled into `cfg.dir`: previously
    /// completed jobs (from an interrupted earlier run) are replayed
    /// from the journal, only the remainder executes, and the final
    /// aggregate is bitwise identical to an uninterrupted
    /// [`Engine::run`] — the expansion-order replay inside
    /// [`Aggregator`] is indifferent to where results come from.
    ///
    /// # Errors
    ///
    /// Everything [`Engine::run`] can return, plus [`EngineError::Cache`]
    /// for an unusable journal directory / spec-mismatched journal and
    /// [`EngineError::InvalidSpec`] for an unresumed non-empty journal.
    pub fn run_journaled(
        &self,
        spec: &SweepSpec,
        cfg: &JournalConfig,
    ) -> Result<JournalOutcome, EngineError> {
        self.run_journaled_with(spec, cfg, None, |_, _, _| {})
    }

    /// [`Engine::run_journaled`] with cooperative cancellation and a
    /// per-job progress hook `(completed, total, result)` — the daemon's
    /// restart-recovery path. Cancellation returns
    /// [`EngineError::Cancelled`], but everything journaled so far stays
    /// durable: a later resume continues from it.
    ///
    /// # Errors
    ///
    /// See [`Engine::run_journaled`]; plus [`EngineError::Cancelled`].
    pub fn run_journaled_with(
        &self,
        spec: &SweepSpec,
        cfg: &JournalConfig,
        cancel: Option<&AtomicBool>,
        mut progress: impl FnMut(usize, usize, &JobResult),
    ) -> Result<JournalOutcome, EngineError> {
        spec.validate()?;
        let (cells, jobs) = spec.expand();
        let total = jobs.len();
        drop(jobs);
        let (journal, replay) = SweepJournal::open(cfg, spec, total)?;

        let mut aggregator = Aggregator::new(cells, total, spec.cell_shape());
        let mut done = vec![false; total];
        let replayed = replay.results.len();
        for result in replay.results {
            done[result.index] = true;
            aggregator.accept(result);
        }
        let remainder: Vec<usize> = (0..total).filter(|&i| !done[i]).collect();
        let executed = remainder.len();

        let aggregator_cell = &mut aggregator;
        let journal_ref = &journal;
        let progress_ref = &mut progress;
        self.run_job_subset_cancellable(spec, &remainder, cancel, |result| {
            let keyframe_due = journal_ref.record_done(&result);
            let completed = aggregator_cell.received() + 1;
            progress_ref(completed, total, &result);
            aggregator_cell.accept(result);
            if keyframe_due && completed < total {
                journal_ref.record_keyframe(completed, aggregator_cell.partial());
            }
        })?;

        let completed = aggregator.received();
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) && completed < total {
            journal.seal();
            return Err(EngineError::Cancelled);
        }
        journal.seal();
        let aggregate = aggregator.finalize()?;
        Ok(JournalOutcome {
            aggregate,
            replayed,
            executed,
            total,
            journal_write_failures: journal.write_failures(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GeneratorPreset;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hetrta-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> SweepSpec {
        SweepSpec::fractions(GeneratorPreset::Small, vec![2, 4], vec![0.1, 0.3], 4, 11)
    }

    #[test]
    fn journaled_run_matches_plain_run_bitwise() {
        let dir = temp_dir("plain");
        let engine = Engine::new(2);
        let plain = engine.run(&spec()).unwrap();
        let journaled = Engine::new(2)
            .run_journaled(&spec(), &JournalConfig::new(&dir))
            .unwrap();
        assert_eq!(journaled.aggregate, plain.aggregate);
        assert_eq!(journaled.replayed, 0);
        assert_eq!(journaled.executed, journaled.total);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replays_done_jobs_and_runs_only_the_remainder() {
        let dir = temp_dir("resume");
        let engine = Engine::new(2);
        let full = engine.run(&spec()).unwrap();
        let total = spec().job_count();

        // Interrupt a journaled run after exactly 5 jobs by journaling a
        // subset directly (the deterministic stand-in for SIGKILL; the
        // CLI integration test does the real kill -9), dropping without
        // a seal — as a crash would.
        let cfg = JournalConfig::new(&dir);
        let (journal, replay) = SweepJournal::open(&cfg, &spec(), total).unwrap();
        assert!(replay.results.is_empty());
        let done: Vec<usize> = vec![0, 3, 7, 11, 15];
        engine
            .run_job_subset(&spec(), &done, |result| {
                journal.record_done(&result);
            })
            .unwrap();
        drop(journal);

        // A fresh engine (cold caches — everything must come from the
        // journal, not memory) resumes and completes the rest; a tight
        // keyframe cadence exercises mid-run keyframes + segment seals.
        let resumed = Engine::new(2)
            .run_journaled(
                &spec(),
                &JournalConfig {
                    keyframe_every: 3,
                    ..JournalConfig::new(&dir).resuming()
                },
            )
            .unwrap();
        assert_eq!(resumed.replayed, 5);
        assert_eq!(resumed.executed, total - 5);
        assert_eq!(resumed.aggregate, full.aggregate, "bitwise identical");

        // Resuming a *finished* journal (which now also holds keyframe
        // records to skip) re-executes nothing at all.
        let again = Engine::new(2)
            .run_journaled(&spec(), &JournalConfig::new(&dir).resuming())
            .unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.replayed, total);
        assert_eq!(again.aggregate, full.aggregate);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancellation_is_typed_and_leaves_the_journal_resumable() {
        let dir = temp_dir("cancel");
        let cancel = AtomicBool::new(true); // cancelled before any job runs
        let err = Engine::new(1)
            .run_journaled_with(
                &spec(),
                &JournalConfig::new(&dir),
                Some(&cancel),
                |_, _, _| {},
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Cancelled));

        // The journal survives (with its start record) and resumes fine.
        let full = Engine::new(2).run(&spec()).unwrap();
        let resumed = Engine::new(2)
            .run_journaled(&spec(), &JournalConfig::new(&dir).resuming())
            .unwrap();
        assert_eq!(resumed.aggregate, full.aggregate);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_sessions_journal_too() {
        use crate::session::SessionConfig;
        use std::sync::Arc;

        let dir = temp_dir("session");
        let engine = Engine::new(2);
        let total = spec().job_count();
        let (journal, _) = SweepJournal::open(&JournalConfig::new(&dir), &spec(), total).unwrap();
        let config = SessionConfig {
            journal: Some(Arc::new(journal)),
            ..SessionConfig::default()
        };
        let out = engine.submit_with(&spec(), config).unwrap().wait().unwrap();

        // Everything the session ran is replayable: a resume in a fresh
        // engine re-executes nothing and reproduces the aggregate.
        let resumed = Engine::new(2)
            .run_journaled(&spec(), &JournalConfig::new(&dir).resuming())
            .unwrap();
        assert_eq!(resumed.executed, 0);
        assert_eq!(resumed.replayed, total);
        assert_eq!(resumed.aggregate, out.aggregate);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unresumed_nonempty_journal_is_refused() {
        let dir = temp_dir("refuse");
        Engine::new(1)
            .run_journaled(&spec(), &JournalConfig::new(&dir))
            .unwrap();
        let err = Engine::new(1)
            .run_journaled(&spec(), &JournalConfig::new(&dir))
            .unwrap_err();
        assert!(err.to_string().contains("--resume"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_is_pinned_to_its_spec() {
        let dir = temp_dir("pin");
        Engine::new(1)
            .run_journaled(&spec(), &JournalConfig::new(&dir))
            .unwrap();
        let other = SweepSpec::fractions(GeneratorPreset::Small, vec![8], vec![0.2], 4, 12);
        let err = Engine::new(1)
            .run_journaled(&other, &JournalConfig::new(&dir).resuming())
            .unwrap_err();
        assert!(err.to_string().contains("different sweep"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_resumes_cleanly() {
        let dir = temp_dir("torn");
        Engine::new(1)
            .run_journaled(&spec(), &JournalConfig::new(&dir))
            .unwrap();
        // Tear the last bytes off the newest journal file, as a crash
        // mid-append would.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .collect();
        files.sort();
        let tail = files.last().unwrap();
        let bytes = std::fs::read(tail).unwrap();
        std::fs::write(tail, &bytes[..bytes.len().saturating_sub(9)]).unwrap();

        let full = Engine::new(2).run(&spec()).unwrap();
        let resumed = Engine::new(2)
            .run_journaled(&spec(), &JournalConfig::new(&dir).resuming())
            .unwrap();
        assert!(resumed.executed >= 1, "the torn record must re-run");
        assert_eq!(resumed.aggregate, full.aggregate);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
