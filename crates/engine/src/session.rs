//! Event-driven sweep sessions: `submit` a spec, observe a typed event
//! stream, `wait` for (or `cancel`) the deterministic result.
//!
//! A [`SweepHandle`] is the observable face of one running sweep. The
//! sweep itself executes on a background orchestrator thread (which owns
//! the work-stealing worker pool and the streaming aggregator), while the
//! handle exposes:
//!
//! * a typed [`SweepEvent`] stream — [`SweepEvent::JobStarted`],
//!   [`SweepEvent::JobFinished`] (content key, cache hit, wall time),
//!   periodic [`SweepEvent::PartialAggregate`] snapshots, and a terminal
//!   [`SweepEvent::SweepFinished`];
//! * live [`EngineStats`] snapshots while the sweep runs;
//! * [`SweepHandle::cancel`] (workers stop dequeuing; in-flight jobs
//!   finish) and [`SweepHandle::wait`] (blocks for the final
//!   [`EngineOutput`]).
//!
//! The event buffer is bounded: when a consumer falls more than
//! [`SessionConfig::max_buffered_events`] behind, the oldest events are
//! dropped (counted by [`SweepHandle::dropped_events`]) rather than
//! blocking the workers — progress consumers tolerate gaps; the final
//! aggregate never depends on the event stream.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::aggregate::AggregateUpdate;
use crate::engine::{EngineError, EngineOutput, EngineStats};
use crate::EngineCaches;

/// One observation from a running sweep, in the order the orchestrator
/// made it (worker completion order, not expansion order).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepEvent {
    /// A worker dequeued the job and is about to execute it.
    JobStarted {
        /// The job's expansion index.
        index: usize,
    },
    /// A job completed (including fully-cached and declined-sample jobs).
    JobFinished {
        /// The job's expansion index.
        index: usize,
        /// The sweep cell the job contributes to.
        cell: usize,
        /// Stable content key of the job's input recipe (the identity
        /// hash the content-addressed caches are keyed under).
        key: u128,
        /// Whether every selected analysis was served from cache (memory
        /// or disk) without recomputation.
        cache_hit: bool,
        /// Wall-clock execution time of the job on its worker.
        wall_time: Duration,
    },
    /// A deterministic-so-far snapshot of the aggregate over every job
    /// that has completed (cadence set by [`SessionConfig::partial_every`]),
    /// delta-encoded: most events carry only the cells that changed since
    /// the previous snapshot, with a periodic full keyframe (cadence set
    /// by [`SessionConfig::keyframe_every`]). Reassemble with
    /// [`AggregateView`](crate::AggregateView).
    PartialAggregate {
        /// Jobs aggregated into this snapshot.
        completed: usize,
        /// Total jobs of the sweep.
        total: usize,
        /// The delta-encoded partial aggregate (cells summarize
        /// completed jobs only).
        update: AggregateUpdate,
    },
    /// Terminal event: the sweep finished (or was cancelled); the final
    /// result is ready for [`SweepHandle::wait`].
    SweepFinished {
        /// Jobs that completed.
        completed: usize,
        /// Whether the sweep was cancelled before running every job.
        cancelled: bool,
        /// Events this session discarded because the consumer fell behind
        /// the buffer bound — a remote consumer learns its stream was
        /// lossy from the terminal event itself (which, being the last
        /// push, is never dropped).
        events_dropped: u64,
    },
}

/// Observability knobs of one submitted sweep.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Emit [`SweepEvent::JobStarted`] / [`SweepEvent::JobFinished`] per
    /// job. Disable for fire-and-wait submissions that never drain the
    /// stream ([`Engine::run`](crate::Engine::run) does).
    pub job_events: bool,
    /// Emit a [`SweepEvent::PartialAggregate`] snapshot after every `n`
    /// completed jobs (`None` = only the terminal event).
    pub partial_every: Option<usize>,
    /// Every `keyframe_every`-th partial aggregate is a full
    /// [`AggregateUpdate::Keyframe`]; the ones in between are
    /// changed-cells deltas. `1` disables delta encoding (every partial
    /// is a keyframe); the default is 16.
    pub keyframe_every: usize,
    /// Event-buffer bound; beyond it the oldest events are dropped.
    pub max_buffered_events: usize,
    /// Write-ahead journal for crash-safe resume: every finished job is
    /// recorded (with periodic aggregate keyframes) before it enters the
    /// aggregator, so a killed process resumes from the journal instead
    /// of re-running completed work. `None` = no journaling.
    pub journal: Option<Arc<crate::journal::SweepJournal>>,
}

impl Default for SessionConfig {
    /// Job events on, no partial snapshots, keyframe every 16 partials,
    /// 64Ki-event buffer, no journal.
    fn default() -> Self {
        SessionConfig {
            job_events: true,
            partial_every: None,
            keyframe_every: 16,
            max_buffered_events: 1 << 16,
            journal: None,
        }
    }
}

impl SessionConfig {
    /// No events at all — for submit-and-wait callers that never consume
    /// the stream.
    #[must_use]
    pub fn quiet() -> Self {
        SessionConfig {
            job_events: false,
            partial_every: None,
            ..SessionConfig::default()
        }
    }

    /// Job events plus a partial aggregate every `n` completed jobs.
    #[must_use]
    pub fn with_partials(n: usize) -> Self {
        SessionConfig {
            partial_every: Some(n.max(1)),
            ..SessionConfig::default()
        }
    }
}

/// Bounded MPSC event buffer (drop-oldest on overflow, never blocks
/// producers).
#[derive(Debug)]
pub(crate) struct EventQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct QueueState {
    events: VecDeque<SweepEvent>,
    closed: bool,
    dropped: u64,
}

impl EventQueue {
    pub(crate) fn new(cap: usize) -> Self {
        EventQueue {
            state: Mutex::new(QueueState {
                events: VecDeque::new(),
                closed: false,
                dropped: 0,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    pub(crate) fn push(&self, event: SweepEvent) {
        let mut state = self.state.lock().expect("event queue");
        if state.events.len() >= self.cap {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(event);
        drop(state);
        self.ready.notify_one();
    }

    /// Pushes an event built from the queue's exact drop count, with
    /// room-making and counting under the same lock — the terminal event
    /// reports every drop that preceded it, including the one its own
    /// arrival may cause.
    pub(crate) fn push_with_dropped(&self, make: impl FnOnce(u64) -> SweepEvent) {
        let mut state = self.state.lock().expect("event queue");
        if state.events.len() >= self.cap {
            state.events.pop_front();
            state.dropped += 1;
        }
        let event = make(state.dropped);
        state.events.push_back(event);
        drop(state);
        self.ready.notify_one();
    }

    pub(crate) fn close(&self) {
        self.state.lock().expect("event queue").closed = true;
        self.ready.notify_all();
    }

    fn recv(&self) -> Option<SweepEvent> {
        let mut state = self.state.lock().expect("event queue");
        loop {
            if let Some(event) = state.events.pop_front() {
                return Some(event);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("event queue");
        }
    }

    fn try_recv(&self) -> Option<SweepEvent> {
        self.state.lock().expect("event queue").events.pop_front()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.state.lock().expect("event queue").dropped
    }
}

/// Live progress counters shared between the orchestrator and the handle.
#[derive(Debug, Default)]
pub(crate) struct ProgressCounters {
    pub(crate) done: AtomicU64,
    pub(crate) cached: AtomicU64,
    pub(crate) skipped: AtomicU64,
}

/// Everything the handle needs to snapshot live [`EngineStats`].
#[derive(Debug)]
pub(crate) struct SessionShared {
    pub(crate) events: EventQueue,
    pub(crate) cancel: AtomicBool,
    pub(crate) progress: ProgressCounters,
    pub(crate) caches: Arc<EngineCaches>,
    pub(crate) baseline: crate::engine::CacheBaseline,
    pub(crate) threads: usize,
    pub(crate) total_jobs: usize,
    pub(crate) started: Instant,
}

/// A handle on one submitted sweep: event stream, live statistics,
/// cancellation, and the final result.
///
/// Dropping an unfinished handle cancels the sweep and joins the
/// orchestrator, so a `SweepHandle` never leaks a running session.
///
/// ```
/// use hetrta_engine::{Engine, GeneratorPreset, SweepSpec, SweepEvent};
///
/// # fn main() -> Result<(), hetrta_engine::EngineError> {
/// let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 4, 7);
/// let engine = Engine::new(2);
/// let handle = engine.submit(&spec)?;
/// let mut finished = 0;
/// while let Some(event) = handle.next_event() {
///     if let SweepEvent::JobFinished { cache_hit, .. } = event {
///         finished += 1;
///         let _ = cache_hit; // drive a progress UI here
///     }
/// }
/// let out = handle.wait()?; // same output `Engine::run` would produce
/// assert_eq!(finished, out.stats.jobs);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SweepHandle {
    shared: Arc<SessionShared>,
    result: Arc<Mutex<Option<Result<EngineOutput, EngineError>>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SweepHandle {
    pub(crate) fn new(
        shared: Arc<SessionShared>,
        result: Arc<Mutex<Option<Result<EngineOutput, EngineError>>>>,
        thread: std::thread::JoinHandle<()>,
    ) -> Self {
        SweepHandle {
            shared,
            result,
            thread: Some(thread),
        }
    }

    /// Blocks for the next event; `None` once the sweep has finished and
    /// every buffered event was drained.
    #[must_use]
    pub fn next_event(&self) -> Option<SweepEvent> {
        self.shared.events.recv()
    }

    /// A buffered event if one is ready (never blocks).
    #[must_use]
    pub fn try_next_event(&self) -> Option<SweepEvent> {
        self.shared.events.try_recv()
    }

    /// Events discarded because the consumer fell behind the buffer bound.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.shared.events.dropped()
    }

    /// A detached, cloneable cancellation token for this sweep. A daemon
    /// thread pumping the handle's events can hand the token to the
    /// connection's reader thread, which cancels the sweep the moment the
    /// client disconnects — without sharing the handle itself.
    #[must_use]
    pub fn cancel_token(&self) -> SweepCancelToken {
        SweepCancelToken {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Requests cancellation: workers stop dequeuing, in-flight jobs
    /// finish, and [`SweepHandle::wait`] returns
    /// [`EngineError::Cancelled`] (unless every job had already run).
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
    }

    /// Jobs completed so far out of the sweep's total.
    #[must_use]
    pub fn progress(&self) -> (usize, usize) {
        let done = usize::try_from(self.shared.progress.done.load(Ordering::Relaxed))
            .unwrap_or(usize::MAX);
        (done, self.shared.total_jobs)
    }

    /// `true` once the final result is available.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.result.lock().expect("session result").is_some()
    }

    /// A live [`EngineStats`] snapshot. While the sweep runs the
    /// per-worker vectors are empty (workers report on join); every other
    /// field is current. The final, complete statistics are in the
    /// [`EngineOutput`] returned by [`SweepHandle::wait`].
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let shared = &self.shared;
        let progress = &shared.progress;
        EngineStats {
            threads: shared.threads,
            jobs: shared.total_jobs,
            per_worker_jobs: Vec::new(),
            per_worker_steals: Vec::new(),
            cached_jobs: progress.cached.load(Ordering::Relaxed),
            skipped_jobs: progress.skipped.load(Ordering::Relaxed),
            transform_cache: shared
                .caches
                .transform_counters()
                .since(shared.baseline.transform),
            derived_cache: shared
                .caches
                .derived_counters()
                .since(shared.baseline.derived),
            result_cache: shared
                .caches
                .result_counters()
                .since(shared.baseline.results),
            identity_cache: shared
                .caches
                .identity_counters()
                .since(shared.baseline.identity),
            input_cache: shared.caches.input_counters().since(shared.baseline.inputs),
            disk_cache: shared.caches.disk_counters().since(shared.baseline.disk),
            events_dropped: shared.events.dropped(),
            elapsed: shared.started.elapsed(),
        }
    }

    /// Blocks until the sweep finishes and returns its result — exactly
    /// what [`Engine::run`](crate::Engine::run) returns (`run` *is*
    /// `submit` + `wait`).
    ///
    /// # Errors
    ///
    /// [`EngineError::Job`] if a job failed, [`EngineError::Cancelled`]
    /// if [`SweepHandle::cancel`] stopped the sweep early.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the sweep's worker threads with its
    /// original payload, so the failure context (which analysis, what
    /// invariant) is not lost behind a generic message.
    pub fn wait(mut self) -> Result<EngineOutput, EngineError> {
        if let Some(thread) = self.thread.take() {
            if let Err(payload) = thread.join() {
                std::panic::resume_unwind(payload);
            }
        }
        self.result
            .lock()
            .expect("session result")
            .take()
            .expect("finished session stores a result")
    }
}

impl Drop for SweepHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.shared.cancel.store(true, Ordering::Relaxed);
            let _ = thread.join();
        }
    }
}

/// A cloneable cancel/progress view on one sweep, detached from its
/// [`SweepHandle`] (which is `!Clone` because it owns the result and the
/// orchestrator join handle). Obtained via [`SweepHandle::cancel_token`];
/// holding a token does not keep the sweep alive.
#[derive(Debug, Clone)]
pub struct SweepCancelToken {
    shared: Arc<SessionShared>,
}

impl SweepCancelToken {
    /// Requests cancellation, exactly like [`SweepHandle::cancel`].
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
    }

    /// `true` once cancellation was requested (by any token or the handle).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancel.load(Ordering::Relaxed)
    }

    /// Jobs completed so far out of the sweep's total.
    #[must_use]
    pub fn progress(&self) -> (usize, usize) {
        let done = usize::try_from(self.shared.progress.done.load(Ordering::Relaxed))
            .unwrap_or(usize::MAX);
        (done, self.shared.total_jobs)
    }

    /// Events this session has discarded so far.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.shared.events.dropped()
    }
}
