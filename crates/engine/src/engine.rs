//! The engine facade: specs in, deterministic aggregates + run statistics
//! out — either blocking ([`Engine::run`]) or as an observable session
//! ([`Engine::submit`] → [`SweepHandle`]).

use std::cmp::Reverse;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hetrta_api::{AnalysisInput, AnalysisOutcome, AnalysisRegistry, DerivedData};
use hetrta_core::TransformedTask;
use hetrta_obs::{span, Histogram, MetricsRegistry, NoopRecorder, Recorder};

use crate::aggregate::{Aggregator, SweepAggregate};
use crate::cache::{CacheCounters, MemoCache};
use crate::disk::DiskCache;
use crate::job::{self, Job, JobMetrics, JobResult};
use crate::pool;
use crate::session::{
    EventQueue, ProgressCounters, SessionConfig, SessionShared, SweepEvent, SweepHandle,
};
use crate::spec::SweepSpec;

/// Default per-cache entry bound of [`EngineCaches`]: roomy for any
/// realistic sweep, but a hard ceiling for resident memory.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// Entry cap of the input-materialization cache. Its values are whole
/// graphs/task sets (kilobytes each, not the ~16 bytes of the other
/// caches), and its purpose is reuse *across the grid cells of one sweep*
/// — the reuse distance is one per-core-count block of recipes, far below
/// this cap — so a small LRU captures the wins while bounding memory.
pub const INPUT_CACHE_CAP: usize = 4096;

/// Shared memoization state, persistent across [`Engine::run`] calls.
///
/// Five sharded LRU caches, each bounded (default
/// [`DEFAULT_CACHE_CAPACITY`] entries):
///
/// * `transform` — content hash → Algorithm 1 transformation
///   (m-independent, so one entry serves every core count of a sweep);
/// * `derived` — DAG content hash → [`DerivedData`] (critical path,
///   volume), shared across every grid cell and analysis kind that
///   touches the same graph;
/// * `results` — content hash × registry key × parameter digest →
///   analysis outcome;
/// * `identity` — job input *recipe* → content hash, so repeated-seed jobs
///   whose results are cached never regenerate the input;
/// * `inputs` — job input recipe → the materialized input itself, so a
///   repeated recipe analyzed under *new* parameters (another core count
///   of the grid) skips DAG generation too. Unlike the other caches this
///   one holds whole graphs/task sets, so its entry bound is capped at
///   [`INPUT_CACHE_CAP`] regardless of the configured capacity — large
///   sweeps evict and regenerate instead of retaining gigabytes.
///
/// Optionally layered over a disk-persistent [`DiskCache`]
/// ([`EngineBuilder::with_cache_dir`]): memory misses probe the disk
/// before computing, and fresh results are written through, so a second
/// engine — in this process or another — replays instead of recomputing.
#[derive(Debug)]
pub struct EngineCaches {
    pub(crate) transform: MemoCache<Result<TransformedTask, String>>,
    pub(crate) derived: MemoCache<Result<Arc<DerivedData>, String>>,
    pub(crate) results: MemoCache<Result<AnalysisOutcome, String>>,
    pub(crate) identity: MemoCache<Option<u128>>,
    pub(crate) inputs: MemoCache<AnalysisInput>,
    pub(crate) disk: Option<DiskCache>,
}

impl EngineCaches {
    /// Caches bounded at (approximately) `capacity` entries each.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EngineCaches {
            transform: MemoCache::bounded(capacity),
            derived: MemoCache::bounded(capacity),
            results: MemoCache::bounded(capacity),
            identity: MemoCache::bounded(capacity),
            inputs: MemoCache::bounded(capacity.min(INPUT_CACHE_CAP)),
            disk: None,
        }
    }

    /// Bounded in-memory caches layered over a disk-persistent directory.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cache`] when the directory cannot be created.
    pub fn with_disk(capacity: usize, dir: impl Into<PathBuf>) -> Result<Self, EngineError> {
        let mut caches = EngineCaches::with_capacity(capacity);
        caches.disk = Some(DiskCache::open(dir).map_err(EngineError::Cache)?);
        Ok(caches)
    }

    /// The disk layer, when one is attached.
    #[must_use]
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// Disk-probe counters (zero when no cache directory is attached).
    #[must_use]
    pub fn disk_counters(&self) -> CacheCounters {
        self.disk
            .as_ref()
            .map_or_else(CacheCounters::default, DiskCache::counters)
    }

    /// Looks up a memoized result: memory first, then (on a memory miss)
    /// the disk layer, promoting disk hits into memory. Quiet on the
    /// in-memory counters, like [`MemoCache::peek`].
    pub(crate) fn peek_result(&self, key: u128) -> Option<Result<AnalysisOutcome, String>> {
        if let Some(value) = self.results.peek(key) {
            return Some(value);
        }
        let outcome = self.disk.as_ref()?.load_result(key)?;
        let value = Ok(outcome);
        self.results.insert(key, value.clone());
        Some(value)
    }

    /// Memory → disk → compute. Returns the value and whether it was
    /// served without computing (either layer). Freshly computed `Ok`
    /// results are persisted to the disk layer; errors never are.
    pub(crate) fn result_get_or_compute(
        &self,
        key: u128,
        compute: impl FnOnce() -> Result<AnalysisOutcome, String>,
    ) -> (Result<AnalysisOutcome, String>, bool) {
        let mut computed = false;
        let (value, memory_hit) = self.results.get_or_compute(key, || {
            if let Some(disk) = &self.disk {
                if let Some(outcome) = disk.load_result(key) {
                    return Ok(outcome);
                }
            }
            computed = true;
            compute()
        });
        if computed {
            if let (Some(disk), Ok(outcome)) = (&self.disk, &value) {
                disk.store_result(key, outcome);
            }
        }
        (value, memory_hit || !computed)
    }

    /// Identity-memo lookup with disk fallback (disk hits are promoted
    /// into memory).
    pub(crate) fn identity_lookup(&self, key: u128) -> Option<Option<u128>> {
        if let Some(value) = self.identity.get(key) {
            return Some(value);
        }
        let value = self.disk.as_ref()?.load_identity(key)?;
        self.identity.insert(key, value);
        Some(value)
    }

    /// Stores one identity entry in memory and (when attached) on disk.
    pub(crate) fn identity_store(&self, key: u128, content: Option<u128>) {
        self.identity.insert(key, content);
        if let Some(disk) = &self.disk {
            disk.store_identity(key, content);
        }
    }

    /// Transformation-cache counters (lifetime of the engine).
    #[must_use]
    pub fn transform_counters(&self) -> CacheCounters {
        self.transform.counters()
    }

    /// Derived-data-cache counters (lifetime of the engine).
    #[must_use]
    pub fn derived_counters(&self) -> CacheCounters {
        self.derived.counters()
    }

    /// Input-materialization-cache counters (lifetime of the engine).
    #[must_use]
    pub fn input_counters(&self) -> CacheCounters {
        self.inputs.counters()
    }

    /// Result-cache counters (lifetime of the engine).
    #[must_use]
    pub fn result_counters(&self) -> CacheCounters {
        self.results.counters()
    }

    /// Identity-memo counters (lifetime of the engine).
    #[must_use]
    pub fn identity_counters(&self) -> CacheCounters {
        self.identity.counters()
    }

    /// Total memoized entries across the five caches.
    #[must_use]
    pub fn resident_entries(&self) -> usize {
        self.transform.len()
            + self.derived.len()
            + self.results.len()
            + self.identity.len()
            + self.inputs.len()
    }

    /// Drops every memoized entry (a fresh scope for a long-lived engine;
    /// counters keep running).
    pub fn clear(&self) {
        self.transform.clear();
        self.derived.clear();
        self.results.clear();
        self.identity.clear();
        self.inputs.clear();
    }
}

impl Default for EngineCaches {
    /// Caches bounded at [`DEFAULT_CACHE_CAPACITY`] entries each.
    fn default() -> Self {
        EngineCaches::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

/// How the engine seeds its injector queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectionOrder {
    /// Heaviest analysis kinds first, so a single expensive job does not
    /// tail the sweep. "Heaviest" is *measured*: the engine learns a
    /// wall-clock EWMA per registry key from finished jobs (see
    /// [`CostModel`]) and falls back to the static
    /// [`Analysis::cost_hint`](hetrta_api::Analysis::cost_hint) rank for
    /// keys it has not timed yet. Aggregates are injection-order
    /// independent, so this is the default.
    #[default]
    CostDescending,
    /// Plain expansion order.
    Expansion,
}

/// Per-registry-key wall-clock cost estimates, learned from finished jobs.
///
/// Each computed (non-cached) analysis execution feeds an exponentially
/// weighted moving average of its wall time; the injector orders jobs by
/// these measurements instead of the static `cost_hint` rank once a key
/// has been observed. The model is shared across every run of an engine,
/// so a second sweep is ordered by what the first one actually measured.
#[derive(Debug, Default)]
pub struct CostModel {
    ewma_micros: Mutex<HashMap<Arc<str>, f64>>,
}

/// EWMA smoothing factor: new measurements carry 20% weight.
const EWMA_ALPHA: f64 = 0.2;

impl CostModel {
    /// Feeds one measured analysis execution.
    pub fn observe(&self, key: &Arc<str>, elapsed: Duration) {
        let micros = elapsed.as_secs_f64() * 1e6;
        let mut map = self.ewma_micros.lock().expect("cost model");
        match map.get_mut(key) {
            Some(current) => *current = EWMA_ALPHA * micros + (1.0 - EWMA_ALPHA) * *current,
            None => {
                map.insert(Arc::clone(key), micros);
            }
        }
    }

    /// The learned EWMA for `key` in microseconds, if any job timed it.
    #[must_use]
    pub fn measured_micros(&self, key: &str) -> Option<f64> {
        self.ewma_micros
            .lock()
            .expect("cost model")
            .get(key)
            .copied()
    }

    /// The ordering estimate for `key`: the measured EWMA, or the static
    /// `hint` rank as a (dimensionless, very small) prior for keys never
    /// timed — enough to order unmeasured keys among themselves exactly
    /// like the pre-measurement engine did.
    #[must_use]
    pub fn estimate_micros(&self, key: &str, hint: u8) -> f64 {
        self.measured_micros(key)
            .unwrap_or_else(|| f64::from(hint) * 1e-3)
    }
}

/// Statistics of one [`Engine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Worker threads used.
    pub threads: usize,
    /// Jobs executed (the spec's full expansion).
    pub jobs: usize,
    /// Jobs executed per worker.
    pub per_worker_jobs: Vec<u64>,
    /// Jobs each worker stole from a sibling's deque.
    pub per_worker_steals: Vec<u64>,
    /// Jobs served entirely from the memo caches.
    pub cached_jobs: u64,
    /// Jobs whose sample the generator declined (skipped by aggregation).
    pub skipped_jobs: u64,
    /// Transformation-cache activity during this run.
    pub transform_cache: CacheCounters,
    /// Derived-data-cache activity during this run (critical path,
    /// volume shared per distinct DAG).
    pub derived_cache: CacheCounters,
    /// Result-cache activity during this run.
    pub result_cache: CacheCounters,
    /// Identity-memo activity during this run.
    pub identity_cache: CacheCounters,
    /// Input-materialization-cache activity during this run.
    pub input_cache: CacheCounters,
    /// Disk-layer probe activity during this run (all zero when the
    /// engine has no cache directory).
    pub disk_cache: CacheCounters,
    /// Session events discarded by the bounded drop-oldest event buffer
    /// (a slow consumer; the sweep itself is unaffected).
    pub events_dropped: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl EngineStats {
    /// Multi-line human-readable rendering (used by the CLI and binaries).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "engine: {} jobs on {} threads in {:.2?}",
            self.jobs, self.threads, self.elapsed
        );
        let _ = writeln!(
            out,
            "  result cache:    {} hits / {} misses ({:.1}% hit rate), {} jobs fully cached",
            self.result_cache.hits,
            self.result_cache.misses,
            self.result_cache.hit_rate() * 100.0,
            self.cached_jobs,
        );
        let _ = writeln!(
            out,
            "  transform cache: {} hits / {} misses ({:.1}% hit rate)",
            self.transform_cache.hits,
            self.transform_cache.misses,
            self.transform_cache.hit_rate() * 100.0,
        );
        let _ = writeln!(
            out,
            "  derived cache:   {} hits / {} misses",
            self.derived_cache.hits, self.derived_cache.misses,
        );
        let _ = writeln!(
            out,
            "  identity memo:   {} hits / {} misses",
            self.identity_cache.hits, self.identity_cache.misses,
        );
        let _ = writeln!(
            out,
            "  input memo:      {} hits / {} misses",
            self.input_cache.hits, self.input_cache.misses,
        );
        if self.disk_cache != CacheCounters::default() {
            let _ = writeln!(
                out,
                "  disk cache:      {} hits / {} misses",
                self.disk_cache.hits, self.disk_cache.misses,
            );
        }
        if self.skipped_jobs > 0 {
            let _ = writeln!(out, "  skipped samples: {}", self.skipped_jobs);
        }
        if self.events_dropped > 0 {
            let _ = writeln!(out, "  events dropped:  {}", self.events_dropped);
        }
        for (worker, (jobs, steals)) in self
            .per_worker_jobs
            .iter()
            .zip(&self.per_worker_steals)
            .enumerate()
        {
            let _ = writeln!(out, "  worker {worker}: {jobs} jobs ({steals} stolen)");
        }
        out
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct EngineOutput {
    /// The deterministic per-cell aggregate.
    pub aggregate: SweepAggregate,
    /// Run statistics (nondeterministic: scheduling-dependent).
    pub stats: EngineStats,
}

/// Engine failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The spec is internally inconsistent (including unknown analysis
    /// registry keys).
    InvalidSpec(String),
    /// A job failed; the lowest failing expansion index is reported.
    Job {
        /// Expansion index of the failing job.
        index: usize,
        /// The job's error message.
        message: String,
    },
    /// Internal: a job result never arrived.
    Incomplete {
        /// Expansion index of the missing job.
        index: usize,
    },
    /// The sweep was cancelled through its [`SweepHandle`] before every
    /// job ran.
    Cancelled,
    /// The disk cache directory could not be opened.
    Cache(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidSpec(msg) => write!(f, "invalid sweep spec: {msg}"),
            EngineError::Job { index, message } => write!(f, "job {index} failed: {message}"),
            EngineError::Incomplete { index } => {
                write!(f, "internal: job {index} produced no result")
            }
            EngineError::Cancelled => write!(f, "sweep cancelled"),
            EngineError::Cache(msg) => write!(f, "disk cache: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Cache-counter snapshot taken when a run starts, so its statistics
/// report per-run deltas on the engine's long-lived caches.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CacheBaseline {
    pub(crate) transform: CacheCounters,
    pub(crate) derived: CacheCounters,
    pub(crate) results: CacheCounters,
    pub(crate) identity: CacheCounters,
    pub(crate) inputs: CacheCounters,
    pub(crate) disk: CacheCounters,
}

impl CacheBaseline {
    fn snapshot(caches: &EngineCaches) -> Self {
        CacheBaseline {
            transform: caches.transform.counters(),
            derived: caches.derived.counters(),
            results: caches.results.counters(),
            identity: caches.identity.counters(),
            inputs: caches.inputs.counters(),
            disk: caches.disk_counters(),
        }
    }
}

/// Builds an [`Engine`] — worker threads, registry, cache capacity,
/// injection order, and (the option only the builder offers) a
/// disk-persistent cache directory.
///
/// ```no_run
/// use hetrta_engine::EngineBuilder;
///
/// # fn main() -> Result<(), hetrta_engine::EngineError> {
/// // Results persist under .hetrta-cache: a second process running the
/// // same spec replays every analysis from disk instead of recomputing.
/// let engine = EngineBuilder::new()
///     .threads(8)
///     .with_cache_dir(".hetrta-cache")
///     .build()?;
/// # let _ = engine;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EngineBuilder {
    threads: usize,
    registry: AnalysisRegistry,
    capacity: usize,
    injection: InjectionOrder,
    cache_dir: Option<PathBuf>,
    recorder: Option<Arc<dyn Recorder>>,
    fault: Option<Arc<hetrta_fault::FaultPlan>>,
}

impl EngineBuilder {
    /// A builder with the defaults of [`Engine::new`]: all cores, the
    /// builtin registry, [`DEFAULT_CACHE_CAPACITY`], cost-descending
    /// injection, no disk layer.
    #[must_use]
    pub fn new() -> Self {
        EngineBuilder {
            threads: 0,
            registry: AnalysisRegistry::builtin(),
            capacity: DEFAULT_CACHE_CAPACITY,
            injection: InjectionOrder::default(),
            cache_dir: None,
            recorder: None,
            fault: None,
        }
    }

    /// Worker threads (`0` = all available cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The registry jobs resolve their analysis keys against.
    #[must_use]
    pub fn registry(mut self, registry: AnalysisRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Bound of each in-memory cache, in entries.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Injector seeding order.
    #[must_use]
    pub fn injection_order(mut self, injection: InjectionOrder) -> Self {
        self.injection = injection;
        self
    }

    /// Attaches a disk-persistent cache directory: analysis results (and
    /// the job-identity memo) are written under `dir` keyed by their
    /// stable content hashes, so a later engine — including one in a
    /// fresh process — replays them instead of recomputing. See
    /// [`crate::disk`] for the layout and invalidation story.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Attaches a [`Recorder`] that receives structured spans from every
    /// layer of the engine: per-job spans (with per-analysis child spans)
    /// on worker lanes, session spans on lane 0, disk-cache read/write/gc
    /// spans, and injector queue-depth samples.
    ///
    /// The default recorder is a no-op whose `enabled()` gate skips all
    /// clock reads and formatting, so an engine without one pays nothing.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use hetrta_engine::{EngineBuilder, obs::TraceRecorder};
    ///
    /// # fn main() -> Result<(), hetrta_engine::EngineError> {
    /// let recorder = Arc::new(TraceRecorder::new());
    /// let engine = EngineBuilder::new()
    ///     .threads(2)
    ///     .with_recorder(Arc::clone(&recorder) as _)
    ///     .build()?;
    /// // ... run sweeps, then export a Chrome trace for Perfetto:
    /// let trace_json = recorder.to_chrome_json();
    /// # let _ = (engine, trace_json);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Arms a deterministic [`FaultPlan`](hetrta_fault::FaultPlan) on
    /// this engine (the `--chaos SEED` plane): the disk cache's read and
    /// write paths consult it, and its `fault.*` counters are bound to
    /// the engine's metrics registry at build time. Production engines
    /// leave this unset and pay nothing.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Arc<hetrta_fault::FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cache`] when the cache directory cannot be created.
    pub fn build(self) -> Result<Engine, EngineError> {
        let mut caches = match self.cache_dir {
            None => EngineCaches::with_capacity(self.capacity),
            Some(dir) => EngineCaches::with_disk(self.capacity, dir)?,
        };
        let metrics = Arc::new(MetricsRegistry::new());
        let recorder: Arc<dyn Recorder> = self
            .recorder
            .unwrap_or_else(|| Arc::new(NoopRecorder) as Arc<dyn Recorder>);
        // Rebind every cache's counters onto the shared registry before
        // the caches are shared — counts are zero here, so nothing is
        // lost and [`EngineStats`] becomes a view over the registry.
        let bind = |m: &MetricsRegistry, name: &str| {
            (
                m.counter(&format!("{name}.hits")),
                m.counter(&format!("{name}.misses")),
            )
        };
        let (h, m) = bind(&metrics, "cache.transform");
        caches.transform.bind_counters(h, m);
        let (h, m) = bind(&metrics, "cache.derived");
        caches.derived.bind_counters(h, m);
        let (h, m) = bind(&metrics, "cache.result");
        caches.results.bind_counters(h, m);
        let (h, m) = bind(&metrics, "cache.identity");
        caches.identity.bind_counters(h, m);
        let (h, m) = bind(&metrics, "cache.input");
        caches.inputs.bind_counters(h, m);
        if let Some(disk) = &mut caches.disk {
            disk.bind_observability(&metrics, Arc::clone(&recorder));
            if let Some(plan) = &self.fault {
                disk.set_fault_plan(Arc::clone(plan));
            }
        }
        if let Some(plan) = &self.fault {
            plan.bind_observability(&metrics);
        }
        Ok(Engine {
            threads: pool::resolve_threads(self.threads),
            caches: Arc::new(caches),
            registry: Arc::new(self.registry),
            injection: self.injection,
            cost_model: Arc::new(CostModel::default()),
            metrics,
            recorder,
            active_sessions: Arc::new(AtomicUsize::new(0)),
        })
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder::new()
    }
}

/// The work-stealing, registry-driven batch-analysis engine.
///
/// Holds the worker-thread count, the [`AnalysisRegistry`] jobs resolve
/// their keys against, and the content-addressed caches; caches persist
/// across runs, so re-running a spec (or running an overlapping one) on
/// the same engine is served from memory — and, with
/// [`EngineBuilder::with_cache_dir`], across processes from disk.
///
/// Sweeps run either blocking ([`Engine::run`]) or as an observable
/// session ([`Engine::submit`] → [`SweepHandle`] with a typed event
/// stream, live statistics, and cancellation). `run` is literally
/// `submit` + [`SweepHandle::wait`], so both paths produce bitwise
/// identical aggregates.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    caches: Arc<EngineCaches>,
    registry: Arc<AnalysisRegistry>,
    injection: InjectionOrder,
    cost_model: Arc<CostModel>,
    metrics: Arc<MetricsRegistry>,
    recorder: Arc<dyn Recorder>,
    active_sessions: Arc<AtomicUsize>,
}

impl Engine {
    /// Creates an engine with `threads` workers (`0` = all available
    /// cores) over the builtin registry.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Engine::with_registry(threads, AnalysisRegistry::builtin())
    }

    /// Creates an engine over a custom registry.
    #[must_use]
    pub fn with_registry(threads: usize, registry: AnalysisRegistry) -> Self {
        EngineBuilder::new()
            .threads(threads)
            .registry(registry)
            .build()
            .expect("no cache dir, cannot fail")
    }

    /// Creates an engine whose caches are bounded at (approximately)
    /// `capacity` entries each.
    #[must_use]
    pub fn with_cache_capacity(threads: usize, capacity: usize) -> Self {
        EngineBuilder::new()
            .threads(threads)
            .cache_capacity(capacity)
            .build()
            .expect("no cache dir, cannot fail")
    }

    /// Overrides the injector seeding order.
    #[must_use]
    pub fn with_injection_order(mut self, injection: InjectionOrder) -> Self {
        self.injection = injection;
        self
    }

    /// Worker threads this engine uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine's caches (counters survive across runs).
    #[must_use]
    pub fn caches(&self) -> &EngineCaches {
        &self.caches
    }

    /// The registry jobs resolve their analysis keys against.
    #[must_use]
    pub fn registry(&self) -> &AnalysisRegistry {
        &self.registry
    }

    /// The learned per-key cost model feeding the injector order.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// The engine's metrics registry: cache hit/miss counters, pool
    /// busy/idle totals, queue-depth gauge, and per-analysis latency
    /// histograms, accumulated across every run of this engine.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The recorder structured spans are routed to (a no-op recorder
    /// unless one was attached via [`EngineBuilder::with_recorder`]).
    #[must_use]
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// Sessions currently running on this engine (submitted, not yet
    /// finished or cancelled-and-joined). A daemon draining on shutdown —
    /// or a test pinning that client disconnect really cancels its sweep —
    /// polls this to observe the count return to zero.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.active_sessions.load(Ordering::SeqCst)
    }

    /// Expands `spec`, runs every job on the worker pool, and aggregates.
    ///
    /// A thin wrapper over [`Engine::submit`] + [`SweepHandle::wait`]
    /// with events disabled — the blocking path and the streaming path
    /// are the same machinery, pinned bitwise-identical by tests.
    ///
    /// The aggregate is deterministic: same spec ⇒ identical result for
    /// any thread count, any injection order, and any cache state.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidSpec`] before any work starts (inconsistent
    /// spec or unknown registry keys, the latter listing every valid key),
    /// or [`EngineError::Job`] if a job fails.
    pub fn run(&self, spec: &SweepSpec) -> Result<EngineOutput, EngineError> {
        self.submit_with(spec, SessionConfig::quiet())?.wait()
    }

    /// Submits `spec` as an observable session with default
    /// [`SessionConfig`] (per-job events, no partial snapshots).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidSpec`] — validation happens here, before the
    /// session thread spawns, so a handle always denotes runnable work.
    pub fn submit(&self, spec: &SweepSpec) -> Result<SweepHandle, EngineError> {
        self.submit_with(spec, SessionConfig::default())
    }

    /// Submits `spec` with explicit observability knobs.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidSpec`] (see [`Engine::submit`]).
    pub fn submit_with(
        &self,
        spec: &SweepSpec,
        config: SessionConfig,
    ) -> Result<SweepHandle, EngineError> {
        let _span = span!(self.recorder.as_ref(), "sweep.submit");
        self.validate_spec(spec)?;

        let (cells, mut jobs) = spec.expand();
        let job_count = jobs.len();
        if self.injection == InjectionOrder::CostDescending {
            self.order_by_cost(&mut jobs);
        }
        let shape = spec.cell_shape();

        let shared = Arc::new(SessionShared {
            events: EventQueue::new(config.max_buffered_events),
            cancel: AtomicBool::new(false),
            progress: ProgressCounters::default(),
            caches: Arc::clone(&self.caches),
            baseline: CacheBaseline::snapshot(&self.caches),
            threads: self.threads.min(job_count.max(1)),
            total_jobs: job_count,
            started: Instant::now(),
        });
        let result = Arc::new(Mutex::new(None));

        let session = SessionTask {
            caches: Arc::clone(&self.caches),
            registry: Arc::clone(&self.registry),
            cost_model: Arc::clone(&self.cost_model),
            metrics: Arc::clone(&self.metrics),
            recorder: Arc::clone(&self.recorder),
            shared: Arc::clone(&shared),
            result: Arc::clone(&result),
            config,
            cells,
            jobs,
            shape,
            _active: ActiveGuard::enter(Arc::clone(&self.active_sessions)),
        };
        let thread = std::thread::Builder::new()
            .name("hetrta-sweep".into())
            .spawn(move || session.run())
            .expect("spawn sweep session thread");
        Ok(SweepHandle::new(shared, result, thread))
    }

    /// Validates a spec against this engine's registry: spec-internal
    /// consistency first, then every analysis key must consume the input
    /// kind this grid produces (a mismatch would deterministically fail
    /// every job, so it is refused before any work starts).
    fn validate_spec(&self, spec: &SweepSpec) -> Result<(), EngineError> {
        spec.validate()?;
        let produced = spec.input_kind();
        for key in spec.analyses.keys() {
            let analysis = self
                .registry
                .get(key)
                .map_err(|e| EngineError::InvalidSpec(e.to_string()))?;
            // A key whose input kind cannot come out of this grid would
            // deterministically fail every job; refuse before any work.
            if analysis.input_kind() != produced {
                let compatible: Vec<&str> = self
                    .registry
                    .keys()
                    .into_iter()
                    .filter(|k| {
                        self.registry
                            .get(k)
                            .is_ok_and(|a| a.input_kind() == produced)
                    })
                    .collect();
                return Err(EngineError::InvalidSpec(format!(
                    "analysis `{key}` expects a {}, but this grid produces a {} \
                     (analyses of this grid: {})",
                    analysis.input_kind().describe(),
                    produced.describe(),
                    compatible.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Runs only the jobs whose expansion index is in `indices`, streaming
    /// each finished [`JobResult`] to `sink` — the deterministic-shard
    /// building block under `hetrta engine sweep --shard i/k` and the
    /// `hetrta-dist` worker loop.
    ///
    /// Results carry the same content-addressed identity, metrics and
    /// timings a full run produces (an [`Aggregator`](crate::aggregate::Aggregator)
    /// fed subset results from *every* shard finalizes to the bitwise
    /// aggregate of a single-process run — expansion order, not arrival
    /// order, drives the reduction). `sink` runs on the calling thread;
    /// the jobs themselves run on this engine's worker pool and hit the
    /// same memo/disk caches as any other run.
    ///
    /// Returns the number of jobs run.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidSpec`] for an invalid spec, unknown analysis
    /// keys, or an index outside the spec's expansion.
    pub fn run_job_subset(
        &self,
        spec: &SweepSpec,
        indices: &[usize],
        sink: impl FnMut(JobResult),
    ) -> Result<usize, EngineError> {
        self.run_job_subset_cancellable(spec, indices, None, sink)
    }

    /// [`Engine::run_job_subset`] with cooperative cancellation: once
    /// `cancel` flips, queued jobs are skipped (in-flight jobs finish
    /// and still reach `sink`). Returns the number of jobs *selected*;
    /// callers observing a cancel decide for themselves whether a short
    /// run is an error (the journaled path turns it into
    /// [`EngineError::Cancelled`]).
    ///
    /// # Errors
    ///
    /// See [`Engine::run_job_subset`].
    pub fn run_job_subset_cancellable(
        &self,
        spec: &SweepSpec,
        indices: &[usize],
        cancel: Option<&std::sync::atomic::AtomicBool>,
        mut sink: impl FnMut(JobResult),
    ) -> Result<usize, EngineError> {
        let _span = span!(self.recorder.as_ref(), "sweep.subset");
        self.validate_spec(spec)?;
        let (_cells, jobs) = spec.expand();
        let job_count = jobs.len();
        let mut wanted = vec![false; job_count];
        for &index in indices {
            if index >= job_count {
                return Err(EngineError::InvalidSpec(format!(
                    "job index {index} is outside this spec's {job_count}-job expansion"
                )));
            }
            wanted[index] = true;
        }
        let mut jobs: Vec<Job> = jobs.into_iter().filter(|job| wanted[job.index]).collect();
        let ran = jobs.len();
        if self.injection == InjectionOrder::CostDescending {
            self.order_by_cost(&mut jobs);
        }
        let caches = &self.caches;
        let registry = &self.registry;
        let recorder: &dyn Recorder = self.recorder.as_ref();
        pool::run_jobs_cancellable(
            jobs,
            self.threads.min(ran.max(1)),
            cancel,
            |worker, job: Job| {
                hetrta_obs::set_thread_lane(worker as u32 + 1);
                let _span = span!(recorder, "job", index = job.index, cell = job.cell);
                job::execute(caches, registry, &job, worker, recorder)
            },
            |_, result| {
                for (key, elapsed) in &result.timings {
                    self.cost_model.observe(key, *elapsed);
                }
                sink(result);
            },
        );
        Ok(ran)
    }

    /// Stable-sorts jobs so the heaviest analysis kinds enter the injector
    /// first — by learned wall-clock EWMA where measured, by the static
    /// `cost_hint` rank otherwise (the aggregator replays expansion order,
    /// so aggregates are unaffected either way).
    fn order_by_cost(&self, jobs: &mut [Job]) {
        jobs.sort_by_cached_key(|job| {
            let cost = job
                .payload
                .analyses
                .iter()
                .filter_map(|key| {
                    let hint = self.registry.get(key).ok()?.cost_hint();
                    Some(self.cost_model.estimate_micros(key, hint))
                })
                .fold(0.0_f64, f64::max);
            // Non-negative f64 bit patterns order like the floats.
            (Reverse(cost.max(0.0).to_bits()), job.index)
        });
    }
}

/// Everything one session thread owns: it executes the jobs, feeds the
/// aggregator and cost model, emits events, and deposits the result.
struct SessionTask {
    caches: Arc<EngineCaches>,
    registry: Arc<AnalysisRegistry>,
    cost_model: Arc<CostModel>,
    metrics: Arc<MetricsRegistry>,
    recorder: Arc<dyn Recorder>,
    shared: Arc<SessionShared>,
    result: Arc<Mutex<Option<Result<EngineOutput, EngineError>>>>,
    config: SessionConfig,
    cells: Vec<crate::spec::CellInfo>,
    jobs: Vec<Job>,
    shape: crate::spec::CellShape,
    _active: ActiveGuard,
}

/// RAII increment of the engine's active-session count; decremented when
/// the session thread drops its task (normal finish, cancellation, or
/// panic — the guard lives in the task, so every exit path counts down).
struct ActiveGuard(Arc<AtomicUsize>);

impl ActiveGuard {
    fn enter(count: Arc<AtomicUsize>) -> Self {
        count.fetch_add(1, Ordering::SeqCst);
        ActiveGuard(count)
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl SessionTask {
    fn run(mut self) {
        // Close the event stream even if a worker (or the aggregation
        // callback) panics: a consumer blocked in `next_event()` must
        // wake up and fall through to `wait()`, which re-raises the
        // panic — never hang on a Condvar that nobody will notify.
        struct CloseOnDrop(Arc<SessionShared>);
        impl Drop for CloseOnDrop {
            fn drop(&mut self) {
                self.0.events.close();
            }
        }
        let _close = CloseOnDrop(Arc::clone(&self.shared));
        let outcome = self.execute();
        *self.result.lock().expect("session result") = Some(outcome);
    }

    fn execute(&mut self) -> Result<EngineOutput, EngineError> {
        let shared = &self.shared;
        let jobs = std::mem::take(&mut self.jobs);
        let job_count = jobs.len();
        let mut aggregator =
            Aggregator::new(std::mem::take(&mut self.cells), job_count, self.shape);
        let caches = &self.caches;
        let registry = &self.registry;
        let config = &self.config;
        let cost_model = &self.cost_model;
        let metrics = &self.metrics;
        let recorder: &dyn Recorder = self.recorder.as_ref();

        // Name the timeline lanes (lane 0 = this session thread, lane
        // 1+k = worker k) and open the root span covering the whole run.
        if recorder.enabled() {
            recorder.name_lane(0, "session");
            for worker in 0..shared.threads {
                recorder.name_lane(worker as u32 + 1, &format!("worker {worker}"));
            }
        }
        hetrta_obs::set_thread_lane(0);
        let sweep_span = span!(recorder, "sweep", jobs = job_count);

        let queue_gauge = metrics.gauge("pool.queue_depth");
        let observe_depth = |depth: usize| {
            queue_gauge.set(depth as u64);
            recorder.record_counter("pool.queue_depth", depth as u64);
        };

        // Per-analysis latency histograms are fed here on the
        // single-threaded consume path, through a local handle cache, so
        // workers never touch (or contend on) the registry.
        let mut latency_handles: HashMap<Arc<str>, Histogram> = HashMap::new();

        let mut delta_encoder = config
            .partial_every
            .map(|_| crate::aggregate::AggregateDeltaEncoder::new(config.keyframe_every));
        let delta_encoder = &mut delta_encoder;
        let latency = &mut latency_handles;
        let worker_stats = pool::run_jobs_observed(
            jobs,
            shared.threads,
            Some(&shared.cancel),
            Some(&observe_depth),
            move |worker, j: Job| {
                hetrta_obs::set_thread_lane(worker as u32 + 1);
                if config.job_events {
                    shared
                        .events
                        .push(SweepEvent::JobStarted { index: j.index });
                }
                let _span = span!(recorder, "job", index = j.index, cell = j.cell);
                job::execute(caches, registry, &j, worker, recorder)
            },
            |_, result| {
                for (key, elapsed) in &result.timings {
                    cost_model.observe(key, *elapsed);
                    latency
                        .entry(Arc::clone(key))
                        .or_insert_with(|| metrics.histogram(&format!("analysis.{key}.latency_ns")))
                        .record_duration(*elapsed);
                }
                shared.progress.done.fetch_add(1, Ordering::Relaxed);
                if result.cache_hit {
                    shared.progress.cached.fetch_add(1, Ordering::Relaxed);
                }
                if matches!(result.metrics, Ok(JobMetrics::Skipped)) {
                    shared.progress.skipped.fetch_add(1, Ordering::Relaxed);
                }
                if config.job_events {
                    shared.events.push(SweepEvent::JobFinished {
                        index: result.index,
                        cell: result.cell,
                        key: result.identity,
                        cache_hit: result.cache_hit,
                        wall_time: result.wall_time,
                    });
                }
                // Journal before the aggregator consumes the result: the
                // done record is the durability point for this job.
                let journal_keyframe_due = config
                    .journal
                    .as_deref()
                    .is_some_and(|journal| journal.record_done(&result));
                aggregator.accept(result);
                if journal_keyframe_due && aggregator.received() < job_count {
                    if let Some(journal) = &config.journal {
                        journal.record_keyframe(aggregator.received(), aggregator.partial());
                    }
                }
                if let Some(every) = config.partial_every {
                    let received = aggregator.received();
                    if received.is_multiple_of(every) && received < job_count {
                        let _span = span!(recorder, "session.emit_partial");
                        let encoder = delta_encoder.as_mut().expect("encoder exists");
                        shared.events.push(SweepEvent::PartialAggregate {
                            completed: received,
                            total: job_count,
                            update: encoder.encode(aggregator.partial()),
                        });
                    }
                }
            },
        );

        // Pool-level totals and the learned per-key cost EWMAs land on
        // the registry once per run.
        metrics
            .counter("pool.jobs")
            .add(worker_stats.iter().map(|w| w.jobs).sum());
        metrics
            .counter("pool.steals")
            .add(worker_stats.iter().map(|w| w.steals).sum());
        metrics.counter("pool.busy_us").add(
            worker_stats
                .iter()
                .map(|w| u64::try_from(w.busy.as_micros()).unwrap_or(u64::MAX))
                .sum(),
        );
        metrics.counter("pool.idle_us").add(
            worker_stats
                .iter()
                .map(|w| u64::try_from(w.idle.as_micros()).unwrap_or(u64::MAX))
                .sum(),
        );
        for key in latency_handles.keys() {
            if let Some(micros) = cost_model.measured_micros(key) {
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                metrics
                    .gauge(&format!("cost.ewma_us.{key}"))
                    .set(micros.max(0.0) as u64);
            }
        }

        // Seal the journal tail whether the sweep finished or was
        // cancelled — either way its records must survive this process.
        if let Some(journal) = &self.config.journal {
            journal.seal();
        }

        let completed = aggregator.received();
        let cancelled = shared.cancel.load(Ordering::Relaxed) && completed < job_count;
        shared
            .events
            .push_with_dropped(|events_dropped| SweepEvent::SweepFinished {
                completed,
                cancelled,
                events_dropped,
            });
        if cancelled {
            return Err(EngineError::Cancelled);
        }

        let cached_jobs = aggregator.cache_hits();
        let skipped_jobs = aggregator.skipped();
        let finalize_span = span!(recorder, "aggregate.finalize");
        let aggregate = aggregator.finalize()?;
        drop(finalize_span);
        drop(sweep_span);
        let baseline = shared.baseline;
        let stats = EngineStats {
            threads: worker_stats.len(),
            jobs: job_count,
            per_worker_jobs: worker_stats.iter().map(|w| w.jobs).collect(),
            per_worker_steals: worker_stats.iter().map(|w| w.steals).collect(),
            cached_jobs,
            skipped_jobs,
            transform_cache: caches.transform.counters().since(baseline.transform),
            derived_cache: caches.derived.counters().since(baseline.derived),
            result_cache: caches.results.counters().since(baseline.results),
            identity_cache: caches.identity.counters().since(baseline.identity),
            input_cache: caches.inputs.counters().since(baseline.inputs),
            disk_cache: caches.disk_counters().since(baseline.disk),
            events_dropped: shared.events.dropped(),
            elapsed: shared.started.elapsed(),
        };
        Ok(EngineOutput { aggregate, stats })
    }
}

impl Default for Engine {
    /// An engine on all available cores.
    fn default() -> Self {
        Engine::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GeneratorPreset, SweepSpec};

    #[test]
    fn invalid_specs_fail_fast() {
        let engine = Engine::new(1);
        let mut spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 1);
        spec.core_counts.clear();
        assert!(matches!(
            engine.run(&spec),
            Err(EngineError::InvalidSpec(_))
        ));
    }

    #[test]
    fn unknown_analysis_keys_fail_fast_with_valid_keys() {
        let engine = Engine::new(1);
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 1)
            .with_analyses(crate::AnalysisSelection::from_keys(["zig"]));
        let Err(EngineError::InvalidSpec(msg)) = engine.run(&spec) else {
            panic!("unknown key must fail validation")
        };
        assert!(msg.contains("unknown analysis kind `zig`"), "{msg}");
        assert!(msg.contains("het"), "{msg}");
    }

    #[test]
    fn grid_and_analysis_input_kinds_must_agree() {
        // `acceptance` needs a task set; a fraction grid produces tasks —
        // the mismatch is knowable before any work, so run() refuses.
        let engine = Engine::new(1);
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 1)
            .with_analyses(crate::AnalysisSelection::from_keys(["exact", "acceptance"]));
        let Err(EngineError::InvalidSpec(msg)) = engine.run(&spec) else {
            panic!("input-kind mismatch must fail validation")
        };
        assert!(msg.contains("`acceptance` expects a task set"), "{msg}");
        assert!(msg.contains("produces a task"), "{msg}");
    }

    #[test]
    fn stats_cover_all_workers_and_jobs() {
        let engine = Engine::new(2);
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2, 0.3], 4, 5);
        let out = engine.run(&spec).unwrap();
        assert_eq!(out.stats.jobs, 8);
        assert_eq!(out.stats.per_worker_jobs.iter().sum::<u64>(), 8);
        assert_eq!(out.stats.per_worker_jobs.len(), out.stats.threads);
        assert_eq!(out.aggregate.cells.len(), 2);
        let rendered = out.stats.render();
        assert!(rendered.contains("result cache"));
        assert!(rendered.contains("identity memo"));
        assert!(rendered.contains("worker 0"));
    }

    #[test]
    fn injection_order_does_not_change_the_aggregate() {
        // Tiny DAGs keep the (heaviest-ranked) exact solves fast while the
        // cost ordering still reshuffles all four analysis kinds.
        let tiny =
            GeneratorPreset::Custom(hetrta_gen::NfjParams::small_tasks().with_node_range(4, 12));
        let spec = SweepSpec::fractions(tiny, vec![2, 4], vec![0.1, 0.3], 6, 11)
            .with_analyses(crate::AnalysisSelection::all());
        let by_cost = Engine::new(3).run(&spec).unwrap();
        let by_expansion = Engine::new(3)
            .with_injection_order(InjectionOrder::Expansion)
            .run(&spec)
            .unwrap();
        assert_eq!(by_cost.aggregate, by_expansion.aggregate);
    }

    #[test]
    fn bounded_caches_stay_under_their_cap() {
        let engine = Engine::with_cache_capacity(2, 64);
        // 2 × 4 × 20 = 160 distinct jobs — far beyond the 64-entry cap.
        let spec = SweepSpec::fractions(
            GeneratorPreset::Small,
            vec![2, 4],
            vec![0.1, 0.2, 0.3, 0.4],
            20,
            13,
        );
        let out = engine.run(&spec).unwrap();
        assert_eq!(out.stats.jobs, 160);
        assert!(
            engine.caches().results.len() <= 64,
            "result cache grew to {}",
            engine.caches().results.len()
        );
        assert!(engine.caches().identity.len() <= 64);
        // Bounded caches still produce the exact unbounded aggregate.
        let unbounded = Engine::new(2).run(&spec).unwrap();
        assert_eq!(out.aggregate, unbounded.aggregate);
        // And clear() empties everything.
        engine.caches().clear();
        assert_eq!(engine.caches().resident_entries(), 0);
    }

    #[test]
    fn error_display_variants() {
        let e = EngineError::InvalidSpec("x".into());
        assert!(e.to_string().contains("invalid sweep spec"));
        let e = EngineError::Job {
            index: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("job 3"));
        let e = EngineError::Incomplete { index: 1 };
        assert!(e.to_string().contains("no result"));
        assert!(EngineError::Cancelled.to_string().contains("cancelled"));
        let e = EngineError::Cache("denied".into());
        assert!(e.to_string().contains("disk cache: denied"));
    }

    #[test]
    fn cost_model_learns_ewmas_and_orders_by_them() {
        let model = CostModel::default();
        let key: Arc<str> = Arc::from("hom");
        assert_eq!(model.measured_micros("hom"), None);
        // Unmeasured keys order by their static hints.
        assert!(model.estimate_micros("exact", 4) > model.estimate_micros("hom", 0));
        model.observe(&key, Duration::from_micros(100));
        assert_eq!(model.measured_micros("hom"), Some(100.0));
        // EWMA: 0.2·500 + 0.8·100 = 180.
        model.observe(&key, Duration::from_micros(500));
        let ewma = model.measured_micros("hom").unwrap();
        assert!((ewma - 180.0).abs() < 1e-6, "{ewma}");
        // A measured key outweighs any static hint.
        assert!(model.estimate_micros("hom", 0) > model.estimate_micros("exact", 255));
    }

    #[test]
    fn measured_costs_reorder_the_injector_without_changing_aggregates() {
        // Run once (costs get measured), then again: the second run's
        // injector is EWMA-ordered, and the aggregate must not move.
        let spec = SweepSpec::fractions(
            GeneratorPreset::Custom(hetrta_gen::NfjParams::small_tasks().with_node_range(4, 12)),
            vec![2],
            vec![0.2],
            4,
            5,
        )
        .with_analyses(crate::AnalysisSelection::all());
        let engine = Engine::new(2);
        let first = engine.run(&spec).unwrap();
        for key in ["het", "hom", "sim", "exact"] {
            assert!(
                engine.cost_model().measured_micros(key).is_some(),
                "`{key}` was executed but never measured"
            );
        }
        let second = engine.run(&spec).unwrap();
        assert_eq!(first.aggregate, second.aggregate);
        // Fully cached second run adds no new measurements.
        assert_eq!(second.stats.cached_jobs as usize, second.stats.jobs);
    }
}
