//! The engine facade: spec in, deterministic aggregate + run statistics out.

use std::cmp::Reverse;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hetrta_api::{AnalysisOutcome, AnalysisRegistry};
use hetrta_core::TransformedTask;

use crate::aggregate::{Aggregator, SweepAggregate};
use crate::cache::{CacheCounters, MemoCache};
use crate::job::{self, Job};
use crate::pool;
use crate::spec::SweepSpec;

/// Default per-cache entry bound of [`EngineCaches`]: roomy for any
/// realistic sweep, but a hard ceiling for resident memory.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// Shared memoization state, persistent across [`Engine::run`] calls.
///
/// Three sharded LRU caches, each bounded (default
/// [`DEFAULT_CACHE_CAPACITY`] entries):
///
/// * `transform` — content hash → Algorithm 1 transformation
///   (m-independent, so one entry serves every core count of a sweep);
/// * `results` — content hash × registry key × parameter digest →
///   analysis outcome;
/// * `identity` — job input *recipe* → content hash, so repeated-seed jobs
///   whose results are cached never regenerate the input.
#[derive(Debug)]
pub struct EngineCaches {
    pub(crate) transform: MemoCache<Result<TransformedTask, String>>,
    pub(crate) results: MemoCache<Result<AnalysisOutcome, String>>,
    pub(crate) identity: MemoCache<Option<u128>>,
}

impl EngineCaches {
    /// Caches bounded at (approximately) `capacity` entries each.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EngineCaches {
            transform: MemoCache::bounded(capacity),
            results: MemoCache::bounded(capacity),
            identity: MemoCache::bounded(capacity),
        }
    }

    /// Transformation-cache counters (lifetime of the engine).
    #[must_use]
    pub fn transform_counters(&self) -> CacheCounters {
        self.transform.counters()
    }

    /// Result-cache counters (lifetime of the engine).
    #[must_use]
    pub fn result_counters(&self) -> CacheCounters {
        self.results.counters()
    }

    /// Identity-memo counters (lifetime of the engine).
    #[must_use]
    pub fn identity_counters(&self) -> CacheCounters {
        self.identity.counters()
    }

    /// Total memoized entries across the three caches.
    #[must_use]
    pub fn resident_entries(&self) -> usize {
        self.transform.len() + self.results.len() + self.identity.len()
    }

    /// Drops every memoized entry (a fresh scope for a long-lived engine;
    /// counters keep running).
    pub fn clear(&self) {
        self.transform.clear();
        self.results.clear();
        self.identity.clear();
    }
}

impl Default for EngineCaches {
    /// Caches bounded at [`DEFAULT_CACHE_CAPACITY`] entries each.
    fn default() -> Self {
        EngineCaches::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

/// How the engine seeds its injector queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectionOrder {
    /// Heaviest analysis kinds first (by
    /// [`Analysis::cost_hint`](hetrta_api::Analysis::cost_hint)), so a
    /// single expensive job does not tail the sweep. Aggregates are
    /// injection-order independent, so this is the default.
    #[default]
    CostDescending,
    /// Plain expansion order.
    Expansion,
}

/// Statistics of one [`Engine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Worker threads used.
    pub threads: usize,
    /// Jobs executed (the spec's full expansion).
    pub jobs: usize,
    /// Jobs executed per worker.
    pub per_worker_jobs: Vec<u64>,
    /// Jobs each worker stole from a sibling's deque.
    pub per_worker_steals: Vec<u64>,
    /// Jobs served entirely from the memo caches.
    pub cached_jobs: u64,
    /// Jobs whose sample the generator declined (skipped by aggregation).
    pub skipped_jobs: u64,
    /// Transformation-cache activity during this run.
    pub transform_cache: CacheCounters,
    /// Result-cache activity during this run.
    pub result_cache: CacheCounters,
    /// Identity-memo activity during this run.
    pub identity_cache: CacheCounters,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl EngineStats {
    /// Multi-line human-readable rendering (used by the CLI and binaries).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "engine: {} jobs on {} threads in {:.2?}",
            self.jobs, self.threads, self.elapsed
        );
        let _ = writeln!(
            out,
            "  result cache:    {} hits / {} misses ({:.1}% hit rate), {} jobs fully cached",
            self.result_cache.hits,
            self.result_cache.misses,
            self.result_cache.hit_rate() * 100.0,
            self.cached_jobs,
        );
        let _ = writeln!(
            out,
            "  transform cache: {} hits / {} misses ({:.1}% hit rate)",
            self.transform_cache.hits,
            self.transform_cache.misses,
            self.transform_cache.hit_rate() * 100.0,
        );
        let _ = writeln!(
            out,
            "  identity memo:   {} hits / {} misses",
            self.identity_cache.hits, self.identity_cache.misses,
        );
        if self.skipped_jobs > 0 {
            let _ = writeln!(out, "  skipped samples: {}", self.skipped_jobs);
        }
        for (worker, (jobs, steals)) in self
            .per_worker_jobs
            .iter()
            .zip(&self.per_worker_steals)
            .enumerate()
        {
            let _ = writeln!(out, "  worker {worker}: {jobs} jobs ({steals} stolen)");
        }
        out
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct EngineOutput {
    /// The deterministic per-cell aggregate.
    pub aggregate: SweepAggregate,
    /// Run statistics (nondeterministic: scheduling-dependent).
    pub stats: EngineStats,
}

/// Engine failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The spec is internally inconsistent (including unknown analysis
    /// registry keys).
    InvalidSpec(String),
    /// A job failed; the lowest failing expansion index is reported.
    Job {
        /// Expansion index of the failing job.
        index: usize,
        /// The job's error message.
        message: String,
    },
    /// Internal: a job result never arrived.
    Incomplete {
        /// Expansion index of the missing job.
        index: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidSpec(msg) => write!(f, "invalid sweep spec: {msg}"),
            EngineError::Job { index, message } => write!(f, "job {index} failed: {message}"),
            EngineError::Incomplete { index } => {
                write!(f, "internal: job {index} produced no result")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The work-stealing, registry-driven batch-analysis engine.
///
/// Holds the worker-thread count, the [`AnalysisRegistry`] jobs resolve
/// their keys against, and the content-addressed caches; caches persist
/// across runs, so re-running a spec (or running an overlapping one) on
/// the same engine is served from memory.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    caches: Arc<EngineCaches>,
    registry: Arc<AnalysisRegistry>,
    injection: InjectionOrder,
}

impl Engine {
    /// Creates an engine with `threads` workers (`0` = all available
    /// cores) over the builtin registry.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Engine::with_registry(threads, AnalysisRegistry::builtin())
    }

    /// Creates an engine over a custom registry.
    #[must_use]
    pub fn with_registry(threads: usize, registry: AnalysisRegistry) -> Self {
        Engine {
            threads: pool::resolve_threads(threads),
            caches: Arc::new(EngineCaches::default()),
            registry: Arc::new(registry),
            injection: InjectionOrder::default(),
        }
    }

    /// Creates an engine whose caches are bounded at (approximately)
    /// `capacity` entries each.
    #[must_use]
    pub fn with_cache_capacity(threads: usize, capacity: usize) -> Self {
        let mut engine = Engine::new(threads);
        engine.caches = Arc::new(EngineCaches::with_capacity(capacity));
        engine
    }

    /// Overrides the injector seeding order.
    #[must_use]
    pub fn with_injection_order(mut self, injection: InjectionOrder) -> Self {
        self.injection = injection;
        self
    }

    /// Worker threads this engine uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine's caches (counters survive across runs).
    #[must_use]
    pub fn caches(&self) -> &EngineCaches {
        &self.caches
    }

    /// The registry jobs resolve their analysis keys against.
    #[must_use]
    pub fn registry(&self) -> &AnalysisRegistry {
        &self.registry
    }

    /// Expands `spec`, runs every job on the worker pool, and aggregates.
    ///
    /// The aggregate is deterministic: same spec ⇒ identical result for
    /// any thread count, any injection order, and any cache state.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidSpec`] before any work starts (inconsistent
    /// spec or unknown registry keys, the latter listing every valid key),
    /// or [`EngineError::Job`] if a job fails.
    pub fn run(&self, spec: &SweepSpec) -> Result<EngineOutput, EngineError> {
        spec.validate()?;
        let produced = spec.input_kind();
        for key in spec.analyses.keys() {
            let analysis = self
                .registry
                .get(key)
                .map_err(|e| EngineError::InvalidSpec(e.to_string()))?;
            // A key whose input kind cannot come out of this grid would
            // deterministically fail every job; refuse before any work.
            if analysis.input_kind() != produced {
                return Err(EngineError::InvalidSpec(format!(
                    "analysis `{key}` expects a {}, but this grid produces a {}",
                    analysis.input_kind().describe(),
                    produced.describe()
                )));
            }
        }
        let started = Instant::now();
        let transform_before = self.caches.transform.counters();
        let results_before = self.caches.results.counters();
        let identity_before = self.caches.identity.counters();

        let (cells, mut jobs) = spec.expand();
        let job_count = jobs.len();
        if self.injection == InjectionOrder::CostDescending {
            self.order_by_cost(&mut jobs);
        }
        let mut aggregator = Aggregator::new(cells, job_count, spec.cell_shape());
        let caches = Arc::clone(&self.caches);
        let registry = Arc::clone(&self.registry);
        let worker_stats = pool::run_jobs(
            jobs,
            self.threads,
            move |worker, j| job::execute(&caches, &registry, &j, worker),
            |_, result| aggregator.accept(result),
        );

        let cached_jobs = aggregator.cache_hits();
        let skipped_jobs = aggregator.skipped();
        let aggregate = aggregator.finalize()?;
        let stats = EngineStats {
            threads: worker_stats.len(),
            jobs: job_count,
            per_worker_jobs: worker_stats.iter().map(|w| w.jobs).collect(),
            per_worker_steals: worker_stats.iter().map(|w| w.steals).collect(),
            cached_jobs,
            skipped_jobs,
            transform_cache: self.caches.transform.counters().since(transform_before),
            result_cache: self.caches.results.counters().since(results_before),
            identity_cache: self.caches.identity.counters().since(identity_before),
            elapsed: started.elapsed(),
        };
        Ok(EngineOutput { aggregate, stats })
    }

    /// Stable-sorts jobs so the heaviest analysis kinds enter the injector
    /// first (the aggregator replays expansion order, so aggregates are
    /// unaffected).
    fn order_by_cost(&self, jobs: &mut [Job]) {
        jobs.sort_by_cached_key(|job| {
            let cost = job
                .payload
                .analyses
                .iter()
                .filter_map(|key| self.registry.get(key).ok())
                .map(hetrta_api::Analysis::cost_hint)
                .max()
                .unwrap_or(0);
            (Reverse(cost), job.index)
        });
    }
}

impl Default for Engine {
    /// An engine on all available cores.
    fn default() -> Self {
        Engine::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GeneratorPreset, SweepSpec};

    #[test]
    fn invalid_specs_fail_fast() {
        let engine = Engine::new(1);
        let mut spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 1);
        spec.core_counts.clear();
        assert!(matches!(
            engine.run(&spec),
            Err(EngineError::InvalidSpec(_))
        ));
    }

    #[test]
    fn unknown_analysis_keys_fail_fast_with_valid_keys() {
        let engine = Engine::new(1);
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 1)
            .with_analyses(crate::AnalysisSelection::from_keys(["zig"]));
        let Err(EngineError::InvalidSpec(msg)) = engine.run(&spec) else {
            panic!("unknown key must fail validation")
        };
        assert!(msg.contains("unknown analysis kind `zig`"), "{msg}");
        assert!(msg.contains("het"), "{msg}");
    }

    #[test]
    fn grid_and_analysis_input_kinds_must_agree() {
        // `acceptance` needs a task set; a fraction grid produces tasks —
        // the mismatch is knowable before any work, so run() refuses.
        let engine = Engine::new(1);
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 1)
            .with_analyses(crate::AnalysisSelection::from_keys(["exact", "acceptance"]));
        let Err(EngineError::InvalidSpec(msg)) = engine.run(&spec) else {
            panic!("input-kind mismatch must fail validation")
        };
        assert!(msg.contains("`acceptance` expects a task set"), "{msg}");
        assert!(msg.contains("produces a task"), "{msg}");
    }

    #[test]
    fn stats_cover_all_workers_and_jobs() {
        let engine = Engine::new(2);
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2, 0.3], 4, 5);
        let out = engine.run(&spec).unwrap();
        assert_eq!(out.stats.jobs, 8);
        assert_eq!(out.stats.per_worker_jobs.iter().sum::<u64>(), 8);
        assert_eq!(out.stats.per_worker_jobs.len(), out.stats.threads);
        assert_eq!(out.aggregate.cells.len(), 2);
        let rendered = out.stats.render();
        assert!(rendered.contains("result cache"));
        assert!(rendered.contains("identity memo"));
        assert!(rendered.contains("worker 0"));
    }

    #[test]
    fn injection_order_does_not_change_the_aggregate() {
        // Tiny DAGs keep the (heaviest-ranked) exact solves fast while the
        // cost ordering still reshuffles all four analysis kinds.
        let tiny =
            GeneratorPreset::Custom(hetrta_gen::NfjParams::small_tasks().with_node_range(4, 12));
        let spec = SweepSpec::fractions(tiny, vec![2, 4], vec![0.1, 0.3], 6, 11)
            .with_analyses(crate::AnalysisSelection::all());
        let by_cost = Engine::new(3).run(&spec).unwrap();
        let by_expansion = Engine::new(3)
            .with_injection_order(InjectionOrder::Expansion)
            .run(&spec)
            .unwrap();
        assert_eq!(by_cost.aggregate, by_expansion.aggregate);
    }

    #[test]
    fn bounded_caches_stay_under_their_cap() {
        let engine = Engine::with_cache_capacity(2, 64);
        // 2 × 4 × 20 = 160 distinct jobs — far beyond the 64-entry cap.
        let spec = SweepSpec::fractions(
            GeneratorPreset::Small,
            vec![2, 4],
            vec![0.1, 0.2, 0.3, 0.4],
            20,
            13,
        );
        let out = engine.run(&spec).unwrap();
        assert_eq!(out.stats.jobs, 160);
        assert!(
            engine.caches().results.len() <= 64,
            "result cache grew to {}",
            engine.caches().results.len()
        );
        assert!(engine.caches().identity.len() <= 64);
        // Bounded caches still produce the exact unbounded aggregate.
        let unbounded = Engine::new(2).run(&spec).unwrap();
        assert_eq!(out.aggregate, unbounded.aggregate);
        // And clear() empties everything.
        engine.caches().clear();
        assert_eq!(engine.caches().resident_entries(), 0);
    }

    #[test]
    fn error_display_variants() {
        let e = EngineError::InvalidSpec("x".into());
        assert!(e.to_string().contains("invalid sweep spec"));
        let e = EngineError::Job {
            index: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("job 3"));
        let e = EngineError::Incomplete { index: 1 };
        assert!(e.to_string().contains("no result"));
    }
}
