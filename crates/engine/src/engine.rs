//! The engine facade: spec in, deterministic aggregate + run statistics out.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hetrta_core::TransformedTask;

use crate::aggregate::{Aggregator, SweepAggregate};
use crate::cache::{CacheCounters, MemoCache};
use crate::job::{self, CachedValue};
use crate::pool;
use crate::spec::SweepSpec;

/// Shared memoization state, persistent across [`Engine::run`] calls.
#[derive(Debug, Default)]
pub struct EngineCaches {
    /// Content hash → Algorithm 1 transformation (m-independent, so one
    /// entry serves every core count of a sweep).
    pub(crate) transform: MemoCache<Result<TransformedTask, String>>,
    /// Content hash + params → analysis result.
    pub(crate) results: MemoCache<CachedValue>,
}

impl EngineCaches {
    /// Transformation-cache counters (lifetime of the engine).
    #[must_use]
    pub fn transform_counters(&self) -> CacheCounters {
        self.transform.counters()
    }

    /// Result-cache counters (lifetime of the engine).
    #[must_use]
    pub fn result_counters(&self) -> CacheCounters {
        self.results.counters()
    }
}

/// Statistics of one [`Engine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Worker threads used.
    pub threads: usize,
    /// Jobs executed (the spec's full expansion).
    pub jobs: usize,
    /// Jobs executed per worker.
    pub per_worker_jobs: Vec<u64>,
    /// Jobs each worker stole from a sibling's deque.
    pub per_worker_steals: Vec<u64>,
    /// Jobs whose primary result was served from the cache.
    pub cached_jobs: u64,
    /// Transformation-cache activity during this run.
    pub transform_cache: CacheCounters,
    /// Result-cache activity during this run.
    pub result_cache: CacheCounters,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl EngineStats {
    /// Multi-line human-readable rendering (used by the CLI and binaries).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "engine: {} jobs on {} threads in {:.2?}",
            self.jobs, self.threads, self.elapsed
        );
        let _ = writeln!(
            out,
            "  result cache:    {} hits / {} misses ({:.1}% hit rate), {} jobs fully cached",
            self.result_cache.hits,
            self.result_cache.misses,
            self.result_cache.hit_rate() * 100.0,
            self.cached_jobs,
        );
        let _ = writeln!(
            out,
            "  transform cache: {} hits / {} misses ({:.1}% hit rate)",
            self.transform_cache.hits,
            self.transform_cache.misses,
            self.transform_cache.hit_rate() * 100.0,
        );
        for (worker, (jobs, steals)) in self
            .per_worker_jobs
            .iter()
            .zip(&self.per_worker_steals)
            .enumerate()
        {
            let _ = writeln!(out, "  worker {worker}: {jobs} jobs ({steals} stolen)");
        }
        out
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct EngineOutput {
    /// The deterministic per-cell aggregate.
    pub aggregate: SweepAggregate,
    /// Run statistics (nondeterministic: scheduling-dependent).
    pub stats: EngineStats,
}

/// Engine failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The spec is internally inconsistent.
    InvalidSpec(String),
    /// A job failed; the lowest failing expansion index is reported.
    Job {
        /// Expansion index of the failing job.
        index: usize,
        /// The job's error message.
        message: String,
    },
    /// Internal: a job result never arrived.
    Incomplete {
        /// Expansion index of the missing job.
        index: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidSpec(msg) => write!(f, "invalid sweep spec: {msg}"),
            EngineError::Job { index, message } => write!(f, "job {index} failed: {message}"),
            EngineError::Incomplete { index } => {
                write!(f, "internal: job {index} produced no result")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The work-stealing batch-analysis engine.
///
/// Holds the worker-thread count and the content-addressed caches; caches
/// persist across runs, so re-running a spec (or running an overlapping
/// one) on the same engine is served from memory.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    caches: Arc<EngineCaches>,
}

impl Engine {
    /// Creates an engine with `threads` workers (`0` = all available
    /// cores).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: pool::resolve_threads(threads),
            caches: Arc::default(),
        }
    }

    /// Worker threads this engine uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The engine's caches (counters survive across runs).
    #[must_use]
    pub fn caches(&self) -> &EngineCaches {
        &self.caches
    }

    /// Expands `spec`, runs every job on the worker pool, and aggregates.
    ///
    /// The aggregate is deterministic: same spec ⇒ identical result for
    /// any thread count and any cache state.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidSpec`] before any work starts, or
    /// [`EngineError::Job`] if a job fails.
    pub fn run(&self, spec: &SweepSpec) -> Result<EngineOutput, EngineError> {
        spec.validate()?;
        let started = Instant::now();
        let transform_before = self.caches.transform.counters();
        let results_before = self.caches.results.counters();

        let (cells, jobs) = spec.expand();
        let job_count = jobs.len();
        let mut aggregator = Aggregator::new(cells, job_count);
        let caches = Arc::clone(&self.caches);
        let worker_stats = pool::run_jobs(
            jobs,
            self.threads,
            move |worker, j| job::execute(&caches, &j, worker),
            |_, result| aggregator.accept(result),
        );

        let cached_jobs = aggregator.cache_hits();
        let aggregate = aggregator.finalize()?;
        let stats = EngineStats {
            threads: worker_stats.len(),
            jobs: job_count,
            per_worker_jobs: worker_stats.iter().map(|w| w.jobs).collect(),
            per_worker_steals: worker_stats.iter().map(|w| w.steals).collect(),
            cached_jobs,
            transform_cache: self.caches.transform.counters().since(transform_before),
            result_cache: self.caches.results.counters().since(results_before),
            elapsed: started.elapsed(),
        };
        Ok(EngineOutput { aggregate, stats })
    }
}

impl Default for Engine {
    /// An engine on all available cores.
    fn default() -> Self {
        Engine::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{GeneratorPreset, SweepSpec};

    #[test]
    fn invalid_specs_fail_fast() {
        let engine = Engine::new(1);
        let mut spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 1);
        spec.core_counts.clear();
        assert!(matches!(
            engine.run(&spec),
            Err(EngineError::InvalidSpec(_))
        ));
    }

    #[test]
    fn stats_cover_all_workers_and_jobs() {
        let engine = Engine::new(2);
        let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2, 0.3], 4, 5);
        let out = engine.run(&spec).unwrap();
        assert_eq!(out.stats.jobs, 8);
        assert_eq!(out.stats.per_worker_jobs.iter().sum::<u64>(), 8);
        assert_eq!(out.stats.per_worker_jobs.len(), out.stats.threads);
        assert_eq!(out.aggregate.cells.len(), 2);
        let rendered = out.stats.render();
        assert!(rendered.contains("result cache"));
        assert!(rendered.contains("worker 0"));
    }

    #[test]
    fn error_display_variants() {
        let e = EngineError::InvalidSpec("x".into());
        assert!(e.to_string().contains("invalid sweep spec"));
        let e = EngineError::Job {
            index: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("job 3"));
        let e = EngineError::Incomplete { index: 1 };
        assert!(e.to_string().contains("no result"));
    }
}
