//! Streaming aggregation of job results into per-cell summaries.
//!
//! Results arrive in nondeterministic completion order; the aggregator
//! stores them into expansion-order slots (plus cheap running counters for
//! progress) and computes every floating-point reduction during
//! [`Aggregator::finalize`] by replaying the slots in expansion order. That
//! makes the aggregate **bit-identical across worker counts** — the
//! determinism contract the engine tests pin down.
//!
//! Reduction is generic over the tagged [`AnalysisOutcome`]s a job carries:
//! each tag feeds its own accumulators, so any registry selection — the
//! four classic per-task analyses, suspension baselines, conditional
//! bounds, acceptance tests — reduces without bespoke job shapes.

use hetrta_api::AnalysisOutcome;
use hetrta_sched::acceptance::TestKind;

use crate::job::{JobMetrics, JobResult};
use crate::spec::{CellInfo, CellShape};
use crate::EngineError;

/// Per-cell summary of a per-task sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskCellSummary {
    /// Scenario occurrence counts `[s1, s2.1, s2.2]` (Figure 8).
    pub scenario_counts: [usize; 3],
    /// Mean `100·(R_hom − R_het)/R_het` over the cell (Figure 9).
    pub mean_improvement: f64,
    /// Maximum observed improvement within the cell.
    pub max_improvement: f64,
    /// Mean `R_het` over the cell.
    pub mean_r_het: f64,
    /// Mean `R_hom(τ)` over the cell.
    pub mean_r_hom: f64,
    /// Tasks with `R_het ≤ D`.
    pub schedulable_het: usize,
    /// Tasks with `R_hom ≤ D`.
    pub schedulable_hom: usize,
    /// Mean simulated makespan of `τ`, if simulation was selected.
    pub mean_sim_makespan: Option<f64>,
    /// Mean simulated makespan of the transformed `τ'`, if the simulation
    /// ran with `sim_transformed` (Figure 6).
    pub mean_sim_transformed: Option<f64>,
    /// Tasks the bounded exact solver finished.
    pub exact_solved: usize,
    /// Mean exact makespan over the solved tasks.
    pub mean_exact_makespan: Option<f64>,
    /// Accuracy of the analytical bounds against the exact optimum, when
    /// the sweep ran `exact`, `hom` and `het` together (Figure 7).
    pub accuracy: Option<AccuracySummary>,
    /// Self-suspending baseline means, when `suspend` was selected.
    pub suspend: Option<SuspendCellSummary>,
    /// Sampled-simulation statistics, when `sampled` was selected.
    pub sampled: Option<SampledCellSummary>,
    /// Anytime exact-bound means, when `anytime` was selected.
    pub anytime: Option<AnytimeCellSummary>,
}

/// Per-cell statistics of the sampled makespan simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledCellSummary {
    /// Mean of the per-job sample means.
    pub mean: f64,
    /// Mean per-job 95% CI half-width (the sampling noise indicator).
    pub mean_ci_half: f64,
    /// Smallest sampled makespan across the cell.
    pub min: u64,
    /// Largest sampled makespan across the cell.
    pub max: u64,
    /// Total simulation samples drawn across the cell's jobs.
    pub total_samples: u64,
}

/// Per-cell means of the anytime exact bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeCellSummary {
    /// Mean proven lower bound.
    pub mean_lower: f64,
    /// Mean feasible upper bound.
    pub mean_upper: f64,
    /// Jobs whose bounds were proven tight.
    pub optimal: usize,
}

/// Mean percentage increments of the analytical bounds over the proven
/// exact optimum (instances the solver could not close are skipped, like
/// the paper skips instances CPLEX could not solve).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracySummary {
    /// Mean `100·(R_hom − opt)/opt` over solved instances.
    pub mean_hom_increment: f64,
    /// Mean `100·(R_het − opt)/opt` over solved instances.
    pub mean_het_increment: f64,
    /// Instances where the solver proved optimality (and `opt > 0`).
    pub solved: usize,
}

/// Per-cell means of the self-suspending baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct SuspendCellSummary {
    /// Mean suspension-oblivious bound.
    pub mean_oblivious: f64,
    /// Mean phase-barrier bound.
    pub mean_barrier: f64,
    /// Mean `min(R_het, R_hom(τ'))`.
    pub mean_het_tight: f64,
    /// Mean of the unsound naive discount.
    pub mean_naive: f64,
    /// Mean worst observed makespan, when the exploration ran.
    pub mean_worst_observed: Option<f64>,
    /// Samples whose observed worst case exceeded the naive discount.
    pub naive_violations: usize,
}

/// Per-cell summary of an acceptance sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCellSummary {
    /// Sets accepted per test, in [`TestKind::ALL`] order.
    pub accepted: [usize; 6],
}

impl SetCellSummary {
    /// Acceptance ratio of `test` in `[0, 1]`.
    #[must_use]
    pub fn ratio(&self, test: TestKind, samples: usize) -> f64 {
        let idx = TestKind::ALL
            .iter()
            .position(|&t| t == test)
            .expect("known test");
        self.accepted[idx] as f64 / samples.max(1) as f64
    }
}

impl TaskCellSummary {
    /// Scenario shares `(s1, s2.1, s2.2)` in `[0, 1]`.
    #[must_use]
    pub fn scenario_shares(&self, samples: usize) -> (f64, f64, f64) {
        let n = samples as f64;
        (
            self.scenario_counts[0] as f64 / n,
            self.scenario_counts[1] as f64 / n,
            self.scenario_counts[2] as f64 / n,
        )
    }
}

/// Per-cell summary of a conditional-bound sweep. Samples enter the means
/// only when the exact enumeration succeeded with a nonzero bound — the
/// serial ablation's inclusion rule.
#[derive(Debug, Clone, PartialEq)]
pub struct CondCellSummary {
    /// Samples included in the means.
    pub included: usize,
    /// Mean % by which flatten-all exceeds the conditional-aware bound.
    pub mean_flat_overhead: f64,
    /// Mean % by which the DP bound exceeds the exact enumeration.
    pub mean_dp_overhead: f64,
    /// Mean realizations per included expression.
    pub mean_realizations: f64,
}

/// Aggregated contents of one sweep cell.
//
// Task cells dwarf the other variants (every optional per-analysis
// summary lives inline), but an aggregate holds one cell per grid
// point — dozens, not millions — so indirection would cost more in
// destructuring churn than it saves in memory.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CellKind {
    /// Per-task metrics.
    Task(TaskCellSummary),
    /// Acceptance-test counts.
    Set(SetCellSummary),
    /// Conditional-bound overheads.
    Cond(CondCellSummary),
}

/// One finalized sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Host core count.
    pub m: u64,
    /// Grid value (offload fraction, normalized utilization, or
    /// conditional share).
    pub grid_value: f64,
    /// Jobs aggregated into this cell (declined samples excluded).
    pub samples: usize,
    /// The metrics.
    pub kind: CellKind,
}

/// The deterministic result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAggregate {
    /// One summary per cell, in expansion order (core counts outer, grid
    /// values inner).
    pub cells: Vec<CellSummary>,
}

impl SweepAggregate {
    /// The cell for `(m, grid_value)`, if present.
    #[must_use]
    pub fn cell(&self, m: u64, grid_value: f64) -> Option<&CellSummary> {
        self.cells
            .iter()
            .find(|c| c.m == m && c.grid_value == grid_value)
    }
}

/// One delta-encoded [`SweepAggregate`] snapshot — the payload of
/// [`SweepEvent::PartialAggregate`](crate::SweepEvent).
///
/// Huge sweeps emit hundreds of partial snapshots over thousands of
/// cells, but between two consecutive snapshots only the cells of the
/// jobs that completed in between actually change. The session stream
/// therefore carries *changed cells only*, with a periodic full keyframe
/// (cadence set by
/// [`SessionConfig::keyframe_every`](crate::SessionConfig)) so a consumer
/// that joined late — or fell behind a drop-oldest event buffer — can
/// resynchronize. Updates carry a per-stream sequence number so a
/// consumer can *detect* gaps (the bounded event buffer drops oldest
/// events under pressure): [`AggregateView`] refuses to apply a delta
/// whose predecessor it never saw and reports unsynced until the next
/// keyframe, rather than silently patching stale state. Reconstruction
/// is otherwise bitwise exact: the view's state after applying an update
/// equals the full snapshot the encoder saw (pinned by the unit tests
/// below).
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateUpdate {
    /// A complete snapshot (always the first update of a stream).
    Keyframe {
        /// Position of this update in the encoder's stream (0-based).
        seq: u64,
        /// The full snapshot.
        aggregate: SweepAggregate,
    },
    /// The cells that changed since the previous update, as
    /// `(cell index, new summary)` pairs in cell order.
    Delta {
        /// Position of this update in the encoder's stream; valid only
        /// on a state that has applied update `seq - 1`.
        seq: u64,
        /// Changed cells; indices address the keyframe's `cells` vector.
        changed: Vec<(usize, CellSummary)>,
    },
}

impl AggregateUpdate {
    /// Number of cell summaries this update carries (what the delta
    /// encoding saves: deltas carry only changed cells).
    #[must_use]
    pub fn cells_carried(&self) -> usize {
        match self {
            AggregateUpdate::Keyframe { aggregate, .. } => aggregate.cells.len(),
            AggregateUpdate::Delta { changed, .. } => changed.len(),
        }
    }

    /// This update's position in the encoder's stream.
    #[must_use]
    pub fn seq(&self) -> u64 {
        match self {
            AggregateUpdate::Keyframe { seq, .. } | AggregateUpdate::Delta { seq, .. } => *seq,
        }
    }
}

/// Turns a stream of full snapshots into [`AggregateUpdate`]s: the first
/// snapshot (and every `keyframe_every`-th thereafter) becomes a
/// [`AggregateUpdate::Keyframe`], the rest shrink to changed-cells
/// deltas against the previously emitted state.
#[derive(Debug)]
pub(crate) struct AggregateDeltaEncoder {
    last: Option<SweepAggregate>,
    keyframe_every: usize,
    since_keyframe: usize,
    next_seq: u64,
}

impl AggregateDeltaEncoder {
    /// An encoder emitting a keyframe every `keyframe_every` updates
    /// (clamped to ≥ 1; `1` disables delta encoding entirely).
    pub(crate) fn new(keyframe_every: usize) -> Self {
        AggregateDeltaEncoder {
            last: None,
            keyframe_every: keyframe_every.max(1),
            since_keyframe: 0,
            next_seq: 0,
        }
    }

    /// Encodes one snapshot.
    pub(crate) fn encode(&mut self, snapshot: SweepAggregate) -> AggregateUpdate {
        let seq = self.next_seq;
        self.next_seq += 1;
        let update = match &self.last {
            Some(last)
                if self.since_keyframe < self.keyframe_every - 1
                    && last.cells.len() == snapshot.cells.len() =>
            {
                self.since_keyframe += 1;
                AggregateUpdate::Delta {
                    seq,
                    changed: snapshot
                        .cells
                        .iter()
                        .enumerate()
                        .filter(|&(i, cell)| last.cells[i] != *cell)
                        .map(|(i, cell)| (i, cell.clone()))
                        .collect(),
                }
            }
            _ => {
                self.since_keyframe = 0;
                AggregateUpdate::Keyframe {
                    seq,
                    aggregate: snapshot.clone(),
                }
            }
        };
        self.last = Some(snapshot);
        update
    }
}

/// Consumer-side reassembly of delta-encoded partial aggregates.
///
/// Feed every [`AggregateUpdate`] from the event stream to
/// [`AggregateView::apply`]; the view returns the reconstructed full
/// snapshot. The view tracks the stream's sequence numbers: a delta
/// arriving before any keyframe, or after a *gap* (the bounded
/// drop-oldest event buffer discarded an update in between), is refused
/// — the view reports unsynced (`None`) until the next keyframe
/// resynchronizes it, so it never silently patches stale state.
#[derive(Debug, Clone, Default)]
pub struct AggregateView {
    current: Option<SweepAggregate>,
    last_seq: Option<u64>,
}

impl AggregateView {
    /// An empty view (no keyframe seen yet).
    #[must_use]
    pub fn new() -> Self {
        AggregateView::default()
    }

    /// Applies one update; returns the reconstructed snapshot, or `None`
    /// while the view is unsynced (no keyframe seen yet, or a dropped
    /// update left a sequence gap a delta cannot bridge).
    pub fn apply(&mut self, update: &AggregateUpdate) -> Option<&SweepAggregate> {
        match update {
            AggregateUpdate::Keyframe { seq, aggregate } => {
                self.current = Some(aggregate.clone());
                self.last_seq = Some(*seq);
            }
            AggregateUpdate::Delta { seq, changed } => {
                if self.last_seq != seq.checked_sub(1) {
                    // Gap (or no keyframe yet): applying this delta would
                    // yield a silently wrong snapshot. Desynchronize
                    // until the next keyframe.
                    self.current = None;
                    self.last_seq = None;
                    return None;
                }
                let current = self.current.as_mut()?;
                for (index, cell) in changed {
                    current.cells[*index] = cell.clone();
                }
                self.last_seq = Some(*seq);
            }
        }
        self.current.as_ref()
    }

    /// The last reconstructed snapshot, if the view is in sync.
    #[must_use]
    pub fn snapshot(&self) -> Option<&SweepAggregate> {
        self.current.as_ref()
    }
}

/// Collects streamed results and finalizes them deterministically.
#[derive(Debug)]
pub struct Aggregator {
    cells: Vec<CellInfo>,
    shape: CellShape,
    slots: Vec<Option<JobResult>>,
    received: usize,
    cache_hits: u64,
    skipped: u64,
    first_error: Option<(usize, String)>,
}

impl Aggregator {
    /// Creates an aggregator for `job_count` jobs over `cells`.
    #[must_use]
    pub fn new(cells: Vec<CellInfo>, job_count: usize, shape: CellShape) -> Self {
        Aggregator {
            cells,
            shape,
            slots: vec![None; job_count],
            received: 0,
            cache_hits: 0,
            skipped: 0,
            first_error: None,
        }
    }

    /// Accepts one streamed result (any order).
    pub fn accept(&mut self, result: JobResult) {
        self.received += 1;
        if result.cache_hit {
            self.cache_hits += 1;
        }
        match &result.metrics {
            Ok(JobMetrics::Skipped) => self.skipped += 1,
            Ok(JobMetrics::Outcomes(_)) => {}
            Err(message) => {
                let candidate = (result.index, message.clone());
                // Deterministic error selection: lowest job index wins.
                if self
                    .first_error
                    .as_ref()
                    .is_none_or(|(i, _)| candidate.0 < *i)
                {
                    self.first_error = Some(candidate);
                }
            }
        }
        let index = result.index;
        self.slots[index] = Some(result);
    }

    /// Results accepted so far (progress indicator).
    #[must_use]
    pub fn received(&self) -> usize {
        self.received
    }

    /// Jobs whose results came fully from the caches.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Jobs whose sample the generator declined.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// A snapshot aggregate over every result received *so far* — the
    /// payload of [`SweepEvent::PartialAggregate`](crate::SweepEvent)
    /// events. Unfilled slots and failed jobs are simply absent from
    /// their cells; once every slot is filled, the snapshot of an
    /// error-free sweep equals [`Aggregator::finalize`]'s aggregate
    /// exactly (slots replay in expansion order either way).
    #[must_use]
    pub fn partial(&self) -> SweepAggregate {
        let mut per_cell: Vec<Vec<&[AnalysisOutcome]>> = vec![Vec::new(); self.cells.len()];
        for result in self.slots.iter().flatten() {
            if let Ok(JobMetrics::Outcomes(outcomes)) = &result.metrics {
                per_cell[result.cell].push(outcomes);
            }
        }
        summarize_cells(&self.cells, self.shape, &per_cell)
    }

    /// Replays the slots in expansion order and produces the aggregate.
    ///
    /// # Errors
    ///
    /// - [`EngineError::Job`] if any job failed (lowest index reported);
    /// - [`EngineError::Incomplete`] if a slot was never filled.
    pub fn finalize(self) -> Result<SweepAggregate, EngineError> {
        if let Some((index, message)) = self.first_error {
            return Err(EngineError::Job { index, message });
        }
        let mut per_cell: Vec<Vec<&[AnalysisOutcome]>> = vec![Vec::new(); self.cells.len()];
        for (index, slot) in self.slots.iter().enumerate() {
            let result = slot.as_ref().ok_or(EngineError::Incomplete { index })?;
            match result.metrics.as_ref().expect("errors already reported") {
                JobMetrics::Outcomes(outcomes) => per_cell[result.cell].push(outcomes),
                JobMetrics::Skipped => {}
            }
        }

        Ok(summarize_cells(&self.cells, self.shape, &per_cell))
    }
}

/// Summarizes every cell's collected outcome slices into an aggregate.
fn summarize_cells(
    cells: &[CellInfo],
    shape: CellShape,
    per_cell: &[Vec<&[AnalysisOutcome]>],
) -> SweepAggregate {
    SweepAggregate {
        cells: cells
            .iter()
            .zip(per_cell)
            .map(|(info, outcomes)| summarize_cell(shape, info, outcomes))
            .collect(),
    }
}

fn summarize_cell(shape: CellShape, info: &CellInfo, jobs: &[&[AnalysisOutcome]]) -> CellSummary {
    let kind = match shape {
        CellShape::Set => CellKind::Set(summarize_set_cell(jobs)),
        CellShape::Cond => CellKind::Cond(summarize_cond_cell(jobs)),
        CellShape::Task => CellKind::Task(summarize_task_cell(jobs)),
    };
    CellSummary {
        m: info.m,
        grid_value: info.grid_value,
        samples: jobs.len(),
        kind,
    }
}

/// Mean/max reductions mirror `hetrta_bench::stats::summarize` operation
/// order (sum then divide; max by `f64::max` fold) so engine sweeps match
/// the serial experiments bitwise.
fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn max(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

fn mean_opt(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(mean(values))
    }
}

fn summarize_set_cell(jobs: &[&[AnalysisOutcome]]) -> SetCellSummary {
    let mut accepted = [0usize; 6];
    for outcomes in jobs {
        for outcome in *outcomes {
            if let AnalysisOutcome::Acceptance(a) = outcome {
                for (count, &bit) in accepted.iter_mut().zip(&a.accepted) {
                    *count += usize::from(bit);
                }
            }
        }
    }
    SetCellSummary { accepted }
}

fn summarize_cond_cell(jobs: &[&[AnalysisOutcome]]) -> CondCellSummary {
    let mut flat_overheads = Vec::new();
    let mut dp_overheads = Vec::new();
    let mut realizations = Vec::new();
    for outcomes in jobs {
        for outcome in *outcomes {
            let AnalysisOutcome::Cond(c) = outcome else {
                continue;
            };
            // Serial inclusion rule: exact enumeration succeeded, nonzero.
            let Some(exact) = c.exact else { continue };
            if exact == 0.0 {
                continue;
            }
            flat_overheads.push((c.flattened / c.cond_aware - 1.0) * 100.0);
            dp_overheads.push((c.cond_aware / exact - 1.0) * 100.0);
            realizations.push(c.realizations as f64);
        }
    }
    CondCellSummary {
        included: flat_overheads.len(),
        mean_flat_overhead: mean(&flat_overheads),
        mean_dp_overhead: mean(&dp_overheads),
        mean_realizations: mean(&realizations),
    }
}

fn summarize_task_cell(jobs: &[&[AnalysisOutcome]]) -> TaskCellSummary {
    let mut scenario_counts = [0usize; 3];
    let mut improvements = Vec::with_capacity(jobs.len());
    let mut r_hets = Vec::with_capacity(jobs.len());
    let mut r_homs = Vec::with_capacity(jobs.len());
    let mut sims = Vec::new();
    let mut sims_transformed = Vec::new();
    let mut exacts = Vec::new();
    let mut hom_increments = Vec::new();
    let mut het_increments = Vec::new();
    let mut schedulable_het = 0usize;
    let mut schedulable_hom = 0usize;
    let mut accuracy_selected = false;
    let mut oblivious = Vec::new();
    let mut barriers = Vec::new();
    let mut het_tights = Vec::new();
    let mut naives = Vec::new();
    let mut worsts = Vec::new();
    let mut naive_violations = 0usize;
    let mut suspend_selected = false;
    let mut sampled_means = Vec::new();
    let mut sampled_cis = Vec::new();
    let (mut sampled_min, mut sampled_max) = (u64::MAX, 0u64);
    let mut sampled_total = 0u64;
    let mut sampled_selected = false;
    let mut anytime_lowers = Vec::new();
    let mut anytime_uppers = Vec::new();
    let mut anytime_optimal = 0usize;
    let mut anytime_selected = false;

    for outcomes in jobs {
        let mut het_value = None;
        let mut hom_value = None;
        let mut exact_outcome = None;
        let mut exact_selected = false;
        for outcome in *outcomes {
            match outcome {
                AnalysisOutcome::Het(h) => {
                    use hetrta_core::Scenario;
                    let slot = match h.scenario {
                        Scenario::OffNotOnCriticalPath => 0,
                        Scenario::OffOnCriticalPathDominant => 1,
                        Scenario::OffOnCriticalPathDominated => 2,
                    };
                    scenario_counts[slot] += 1;
                    improvements.push(h.improvement_percent);
                    r_hets.push(h.r_het);
                    r_homs.push(h.r_hom_original);
                    schedulable_het += usize::from(h.schedulable_het);
                    schedulable_hom += usize::from(h.schedulable_hom);
                    het_value = Some(h.r_het);
                }
                AnalysisOutcome::Hom { r_hom } => hom_value = Some(*r_hom),
                AnalysisOutcome::Sim(s) => {
                    sims.push(s.makespan as f64);
                    if let Some(t) = s.transformed_makespan {
                        sims_transformed.push(t as f64);
                    }
                }
                AnalysisOutcome::Exact(e) => {
                    exact_selected = true;
                    if let Some(x) = e {
                        exacts.push(x.makespan as f64);
                        exact_outcome = Some(*x);
                    }
                }
                AnalysisOutcome::Suspend(s) => {
                    suspend_selected = true;
                    oblivious.push(s.oblivious);
                    barriers.push(s.phase_barrier);
                    het_tights.push(s.r_het_tight);
                    naives.push(s.naive_unsound);
                    if let Some(w) = s.worst_observed {
                        worsts.push(w as f64);
                    }
                    naive_violations += usize::from(s.naive_violated == Some(true));
                }
                AnalysisOutcome::Sampled(s) => {
                    sampled_selected = true;
                    sampled_means.push(s.mean);
                    sampled_cis.push(s.ci_half);
                    sampled_min = sampled_min.min(s.min);
                    sampled_max = sampled_max.max(s.max);
                    sampled_total += s.count;
                }
                AnalysisOutcome::Anytime(a) => {
                    anytime_selected = true;
                    anytime_lowers.push(a.lower as f64);
                    anytime_uppers.push(a.upper as f64);
                    anytime_optimal += usize::from(a.optimal);
                }
                // Acceptance/Cond outcomes never appear in task cells by
                // construction; ignore them defensively.
                AnalysisOutcome::Acceptance(_) | AnalysisOutcome::Cond(_) => {}
            }
        }

        // A job carrying both analyses contributes R_hom(τ) once: the het
        // outcome's copy wins, mirroring the serial sweeps.
        if het_value.is_none() {
            if let Some(r) = hom_value {
                r_homs.push(r);
            }
        }
        // Figure 7: increments over the proven exact optimum.
        if exact_selected && hom_value.is_some() && het_value.is_some() {
            accuracy_selected = true;
            if let (Some(e), Some(hom), Some(het)) = (exact_outcome, hom_value, het_value) {
                if e.optimal {
                    let opt = e.makespan as f64;
                    if opt != 0.0 {
                        hom_increments.push(100.0 * (hom - opt) / opt);
                        het_increments.push(100.0 * (het - opt) / opt);
                    }
                }
            }
        }
    }

    TaskCellSummary {
        scenario_counts,
        mean_improvement: mean(&improvements),
        max_improvement: max(&improvements),
        mean_r_het: mean(&r_hets),
        mean_r_hom: mean(&r_homs),
        schedulable_het,
        schedulable_hom,
        mean_sim_makespan: mean_opt(&sims),
        mean_sim_transformed: mean_opt(&sims_transformed),
        exact_solved: exacts.len(),
        mean_exact_makespan: mean_opt(&exacts),
        accuracy: accuracy_selected.then(|| AccuracySummary {
            mean_hom_increment: mean(&hom_increments),
            mean_het_increment: mean(&het_increments),
            solved: hom_increments.len(),
        }),
        suspend: suspend_selected.then(|| SuspendCellSummary {
            mean_oblivious: mean(&oblivious),
            mean_barrier: mean(&barriers),
            mean_het_tight: mean(&het_tights),
            mean_naive: mean(&naives),
            mean_worst_observed: mean_opt(&worsts),
            naive_violations,
        }),
        sampled: sampled_selected.then(|| SampledCellSummary {
            mean: mean(&sampled_means),
            mean_ci_half: mean(&sampled_cis),
            min: sampled_min,
            max: sampled_max,
            total_samples: sampled_total,
        }),
        anytime: anytime_selected.then(|| AnytimeCellSummary {
            mean_lower: mean(&anytime_lowers),
            mean_upper: mean(&anytime_uppers),
            optimal: anytime_optimal,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_api::{AcceptanceOutcome, CondOutcome, HetOutcome, SuspendOutcome};
    use hetrta_core::Scenario;

    fn het(improvement: f64, scenario: Scenario) -> JobMetrics {
        JobMetrics::Outcomes(vec![AnalysisOutcome::Het(HetOutcome {
            r_het: 10.0,
            r_hom_original: 12.0,
            r_hom_transformed: 13.0,
            scenario,
            improvement_percent: improvement,
            schedulable_het: true,
            schedulable_hom: false,
        })])
    }

    fn result(index: usize, cell: usize, metrics: JobMetrics) -> JobResult {
        JobResult {
            index,
            cell,
            worker: 0,
            identity: 0,
            cache_hit: false,
            wall_time: std::time::Duration::ZERO,
            timings: Vec::new(),
            metrics: Ok(metrics),
        }
    }

    fn cell_infos() -> Vec<CellInfo> {
        vec![CellInfo {
            m: 2,
            grid_value: 0.1,
        }]
    }

    #[test]
    fn order_independence_of_acceptance() {
        let results = [
            result(0, 0, het(10.0, Scenario::OffNotOnCriticalPath)),
            result(1, 0, het(30.0, Scenario::OffOnCriticalPathDominant)),
            result(2, 0, het(20.0, Scenario::OffNotOnCriticalPath)),
        ];

        let mut forward = Aggregator::new(cell_infos(), 3, CellShape::Task);
        for r in &results {
            forward.accept(r.clone());
        }
        let mut backward = Aggregator::new(cell_infos(), 3, CellShape::Task);
        for r in results.iter().rev() {
            backward.accept(r.clone());
        }
        let a = forward.finalize().unwrap();
        let b = backward.finalize().unwrap();
        assert_eq!(a, b);

        let CellKind::Task(t) = &a.cells[0].kind else {
            panic!("task cell")
        };
        assert_eq!(t.scenario_counts, [2, 1, 0]);
        assert_eq!(t.mean_improvement, 20.0);
        assert_eq!(t.max_improvement, 30.0);
        assert_eq!(t.schedulable_het, 3);
        let (s1, s21, s22) = t.scenario_shares(a.cells[0].samples);
        assert!((s1 - 2.0 / 3.0).abs() < 1e-12 && (s21 - 1.0 / 3.0).abs() < 1e-12 && s22 == 0.0);
    }

    #[test]
    fn set_cells_count_accepts() {
        let cells = vec![CellInfo {
            m: 4,
            grid_value: 0.5,
        }];
        let mut agg = Aggregator::new(cells, 2, CellShape::Set);
        agg.accept(result(
            0,
            0,
            JobMetrics::Outcomes(vec![AnalysisOutcome::Acceptance(AcceptanceOutcome {
                accepted: [true, true, false, true, false, true],
            })]),
        ));
        agg.accept(result(
            1,
            0,
            JobMetrics::Outcomes(vec![AnalysisOutcome::Acceptance(AcceptanceOutcome {
                accepted: [false, true, false, false, false, true],
            })]),
        ));
        let a = agg.finalize().unwrap();
        let CellKind::Set(s) = &a.cells[0].kind else {
            panic!("set cell")
        };
        assert_eq!(s.accepted, [1, 2, 0, 1, 0, 2]);
        assert_eq!(s.ratio(TestKind::GfpHeterogeneous, a.cells[0].samples), 1.0);
        assert_eq!(s.ratio(TestKind::GedfHomogeneous, a.cells[0].samples), 0.0);
    }

    #[test]
    fn cond_cells_apply_the_serial_inclusion_rule() {
        let cond = |flattened: f64, cond_aware: f64, exact: Option<f64>| {
            JobMetrics::Outcomes(vec![AnalysisOutcome::Cond(CondOutcome {
                flattened,
                cond_aware,
                exact,
                realizations: 4,
            })])
        };
        let mut agg = Aggregator::new(cell_infos(), 4, CellShape::Cond);
        agg.accept(result(0, 0, cond(30.0, 20.0, Some(10.0))));
        agg.accept(result(1, 0, cond(50.0, 25.0, None))); // enumeration refused
        agg.accept(result(2, 0, cond(50.0, 25.0, Some(0.0)))); // zero bound
        agg.accept(result(3, 0, JobMetrics::Skipped)); // generation declined
        let a = agg.finalize().unwrap();
        assert_eq!(a.cells[0].samples, 3, "skips leave the sample count");
        let CellKind::Cond(c) = &a.cells[0].kind else {
            panic!("cond cell")
        };
        assert_eq!(c.included, 1);
        assert_eq!(c.mean_flat_overhead, 50.0);
        assert_eq!(c.mean_dp_overhead, 100.0);
        assert_eq!(c.mean_realizations, 4.0);
    }

    #[test]
    fn suspend_outcomes_summarize_in_task_cells() {
        let suspend = |oblivious: f64, violated: bool| {
            JobMetrics::Outcomes(vec![AnalysisOutcome::Suspend(SuspendOutcome {
                oblivious,
                phase_barrier: oblivious - 1.0,
                r_het_tight: oblivious - 2.0,
                naive_unsound: oblivious - 3.0,
                worst_observed: Some(8),
                naive_violated: Some(violated),
            })])
        };
        let mut agg = Aggregator::new(cell_infos(), 2, CellShape::Task);
        agg.accept(result(0, 0, suspend(10.0, true)));
        agg.accept(result(1, 0, suspend(14.0, false)));
        let a = agg.finalize().unwrap();
        let CellKind::Task(t) = &a.cells[0].kind else {
            panic!("task cell")
        };
        let s = t.suspend.as_ref().expect("suspend summarized");
        assert_eq!(s.mean_oblivious, 12.0);
        assert_eq!(s.mean_naive, 9.0);
        assert_eq!(s.mean_worst_observed, Some(8.0));
        assert_eq!(s.naive_violations, 1);
        // No het/hom outcomes → those reductions stay at their defaults.
        assert_eq!(t.scenario_counts, [0, 0, 0]);
        assert!(t.accuracy.is_none());
    }

    #[test]
    fn sampled_and_anytime_outcomes_summarize_in_task_cells() {
        use hetrta_api::{AnytimeOutcome, SampledOutcome};
        let job = |mean: f64, lower: u64, optimal: bool| {
            JobMetrics::Outcomes(vec![
                AnalysisOutcome::Sampled(SampledOutcome {
                    mean,
                    ci_half: 2.0,
                    min: mean as u64 - 4,
                    max: mean as u64 + 4,
                    count: 16,
                }),
                AnalysisOutcome::Anytime(AnytimeOutcome {
                    lower,
                    upper: lower + 2,
                    optimal,
                }),
            ])
        };
        let mut agg = Aggregator::new(cell_infos(), 2, CellShape::Task);
        agg.accept(result(0, 0, job(40.0, 30, true)));
        agg.accept(result(1, 0, job(44.0, 34, false)));
        let a = agg.finalize().unwrap();
        let CellKind::Task(t) = &a.cells[0].kind else {
            panic!("task cell")
        };
        let s = t.sampled.as_ref().expect("sampled summarized");
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.mean_ci_half, 2.0);
        assert_eq!((s.min, s.max), (36, 48));
        assert_eq!(s.total_samples, 32);
        let any = t.anytime.as_ref().expect("anytime summarized");
        assert_eq!(any.mean_lower, 32.0);
        assert_eq!(any.mean_upper, 34.0);
        assert_eq!(any.optimal, 1);
        // No het outcomes → the het reductions stay at defaults.
        assert_eq!(t.scenario_counts, [0, 0, 0]);
    }

    #[test]
    fn accuracy_increments_skip_unsolved_instances() {
        use hetrta_api::ExactOutcome;
        let job = |opt: Option<(u64, bool)>| {
            JobMetrics::Outcomes(vec![
                AnalysisOutcome::Exact(
                    opt.map(|(makespan, optimal)| ExactOutcome { makespan, optimal }),
                ),
                AnalysisOutcome::Hom { r_hom: 12.0 },
                AnalysisOutcome::Het(HetOutcome {
                    r_het: 11.0,
                    r_hom_original: 12.0,
                    r_hom_transformed: 13.0,
                    scenario: Scenario::OffNotOnCriticalPath,
                    improvement_percent: 0.0,
                    schedulable_het: true,
                    schedulable_hom: true,
                }),
            ])
        };
        let mut agg = Aggregator::new(cell_infos(), 3, CellShape::Task);
        agg.accept(result(0, 0, job(Some((10, true)))));
        agg.accept(result(1, 0, job(Some((10, false))))); // not proven optimal
        agg.accept(result(2, 0, job(None))); // solver gave up
        let a = agg.finalize().unwrap();
        let CellKind::Task(t) = &a.cells[0].kind else {
            panic!("task cell")
        };
        let acc = t.accuracy.as_ref().expect("accuracy selected");
        assert_eq!(acc.solved, 1);
        assert_eq!(acc.mean_hom_increment, 20.0);
        assert!((acc.mean_het_increment - 10.0).abs() < 1e-12);
        assert_eq!(t.exact_solved, 2, "feasible-but-unproven still counts");
        // R_hom enters the cell mean once per job (het's copy wins).
        assert_eq!(t.mean_r_hom, 12.0);
    }

    #[test]
    fn delta_encoding_reconstructs_snapshots_bitwise() {
        // Feed results one by one; after each, the encoder's update
        // applied to the consumer view must reproduce the full snapshot
        // exactly — bitwise, pinned through the Debug rendering (which
        // prints every f64 digit-exact via `{:?}`).
        let cells = vec![
            CellInfo {
                m: 2,
                grid_value: 0.1,
            },
            CellInfo {
                m: 2,
                grid_value: 0.3,
            },
        ];
        let mut agg = Aggregator::new(cells, 6, CellShape::Task);
        let mut encoder = AggregateDeltaEncoder::new(3);
        let mut view = AggregateView::new();
        let mut keyframes = 0;
        let mut deltas = 0;
        for i in 0..6 {
            let cell = i % 2;
            agg.accept(result(
                i,
                cell,
                het(7.5 * i as f64, Scenario::OffNotOnCriticalPath),
            ));
            let snapshot = agg.partial();
            let update = encoder.encode(snapshot.clone());
            assert_eq!(update.seq(), u64::from(i as u32), "stream position");
            match &update {
                AggregateUpdate::Keyframe { .. } => keyframes += 1,
                AggregateUpdate::Delta { changed, .. } => {
                    deltas += 1;
                    assert_eq!(changed.len(), 1, "one result → one changed cell");
                }
            }
            let reconstructed = view.apply(&update).expect("keyframe seen");
            assert_eq!(*reconstructed, snapshot);
            assert_eq!(format!("{reconstructed:?}"), format!("{snapshot:?}"));
        }
        // Cadence 3 over 6 updates: keyframes at 0 and 3.
        assert_eq!((keyframes, deltas), (2, 4));
    }

    #[test]
    fn deltas_before_a_keyframe_or_after_a_gap_desynchronize_the_view() {
        let cell = CellSummary {
            m: 2,
            grid_value: 0.5,
            samples: 1,
            kind: CellKind::Set(SetCellSummary { accepted: [0; 6] }),
        };
        let mut view = AggregateView::new();
        // Orphan delta (keyframe dropped by the event buffer): refused.
        let orphan = AggregateUpdate::Delta {
            seq: 3,
            changed: vec![(0, cell.clone())],
        };
        assert!(view.apply(&orphan).is_none());
        assert!(view.snapshot().is_none());
        // Keyframe resynchronizes…
        let keyframe = AggregateUpdate::Keyframe {
            seq: 4,
            aggregate: SweepAggregate {
                cells: vec![cell.clone()],
            },
        };
        assert!(view.apply(&keyframe).is_some());
        // …a contiguous delta applies…
        let next = AggregateUpdate::Delta {
            seq: 5,
            changed: vec![(0, cell.clone())],
        };
        assert!(view.apply(&next).is_some());
        // …but a delta after a dropped update (seq 6 missing) must
        // desynchronize rather than silently patch stale cells.
        let gapped = AggregateUpdate::Delta {
            seq: 7,
            changed: vec![(0, cell)],
        };
        assert!(view.apply(&gapped).is_none());
        assert!(view.snapshot().is_none(), "stale state is discarded");
    }

    #[test]
    fn lowest_index_error_wins() {
        let mut agg = Aggregator::new(cell_infos(), 2, CellShape::Task);
        let failure = |index: usize, message: &str| {
            let mut r = result(index, 0, JobMetrics::Skipped);
            r.metrics = Err(message.into());
            r
        };
        agg.accept(failure(1, "late failure"));
        agg.accept(failure(0, "early failure"));
        match agg.finalize() {
            Err(EngineError::Job { index, message }) => {
                assert_eq!(index, 0);
                assert_eq!(message, "early failure");
            }
            other => panic!("expected job error, got {other:?}"),
        }
    }

    #[test]
    fn missing_slots_are_reported() {
        let agg = Aggregator::new(cell_infos(), 1, CellShape::Task);
        assert!(matches!(
            agg.finalize(),
            Err(EngineError::Incomplete { index: 0 })
        ));
    }
}
