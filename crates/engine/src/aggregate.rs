//! Streaming aggregation of job results into per-cell summaries.
//!
//! Results arrive in nondeterministic completion order; the aggregator
//! stores them into expansion-order slots (plus cheap running counters for
//! progress) and computes every floating-point reduction during
//! [`Aggregator::finalize`] by replaying the slots in expansion order. That
//! makes the aggregate **bit-identical across worker counts** — the
//! determinism contract the engine tests pin down.

use hetrta_sched::acceptance::TestKind;

use crate::job::{JobMetrics, JobResult};
use crate::spec::CellInfo;
use crate::EngineError;

/// Per-cell summary of a per-task sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskCellSummary {
    /// Scenario occurrence counts `[s1, s2.1, s2.2]` (Figure 8).
    pub scenario_counts: [usize; 3],
    /// Mean `100·(R_hom − R_het)/R_het` over the cell (Figure 9).
    pub mean_improvement: f64,
    /// Maximum observed improvement within the cell.
    pub max_improvement: f64,
    /// Mean `R_het` over the cell.
    pub mean_r_het: f64,
    /// Mean `R_hom(τ)` over the cell.
    pub mean_r_hom: f64,
    /// Tasks with `R_het ≤ D`.
    pub schedulable_het: usize,
    /// Tasks with `R_hom ≤ D`.
    pub schedulable_hom: usize,
    /// Mean simulated makespan, if simulation was selected.
    pub mean_sim_makespan: Option<f64>,
    /// Tasks the bounded exact solver finished.
    pub exact_solved: usize,
    /// Mean exact makespan over the solved tasks.
    pub mean_exact_makespan: Option<f64>,
}

impl TaskCellSummary {
    /// Scenario shares `(s1, s2.1, s2.2)` in `[0, 1]`.
    #[must_use]
    pub fn scenario_shares(&self, samples: usize) -> (f64, f64, f64) {
        let n = samples as f64;
        (
            self.scenario_counts[0] as f64 / n,
            self.scenario_counts[1] as f64 / n,
            self.scenario_counts[2] as f64 / n,
        )
    }
}

/// Per-cell summary of an acceptance sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCellSummary {
    /// Sets accepted per test, in [`TestKind::ALL`] order.
    pub accepted: [usize; 6],
}

impl SetCellSummary {
    /// Acceptance ratio of `test` in `[0, 1]`.
    #[must_use]
    pub fn ratio(&self, test: TestKind, samples: usize) -> f64 {
        let idx = TestKind::ALL
            .iter()
            .position(|&t| t == test)
            .expect("known test");
        self.accepted[idx] as f64 / samples.max(1) as f64
    }
}

/// Aggregated contents of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellKind {
    /// Per-task metrics.
    Task(TaskCellSummary),
    /// Acceptance-test counts.
    Set(SetCellSummary),
}

/// One finalized sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSummary {
    /// Host core count.
    pub m: u64,
    /// Grid value (offload fraction or normalized utilization).
    pub grid_value: f64,
    /// Jobs aggregated into this cell.
    pub samples: usize,
    /// The metrics.
    pub kind: CellKind,
}

/// The deterministic result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAggregate {
    /// One summary per cell, in expansion order (core counts outer, grid
    /// values inner).
    pub cells: Vec<CellSummary>,
}

impl SweepAggregate {
    /// The cell for `(m, grid_value)`, if present.
    #[must_use]
    pub fn cell(&self, m: u64, grid_value: f64) -> Option<&CellSummary> {
        self.cells
            .iter()
            .find(|c| c.m == m && c.grid_value == grid_value)
    }
}

/// Collects streamed results and finalizes them deterministically.
#[derive(Debug)]
pub struct Aggregator {
    cells: Vec<CellInfo>,
    slots: Vec<Option<JobResult>>,
    received: usize,
    cache_hits: u64,
    first_error: Option<(usize, String)>,
}

impl Aggregator {
    /// Creates an aggregator for `job_count` jobs over `cells`.
    #[must_use]
    pub fn new(cells: Vec<CellInfo>, job_count: usize) -> Self {
        Aggregator {
            cells,
            slots: vec![None; job_count],
            received: 0,
            cache_hits: 0,
            first_error: None,
        }
    }

    /// Accepts one streamed result (any order).
    pub fn accept(&mut self, result: JobResult) {
        self.received += 1;
        if result.cache_hit {
            self.cache_hits += 1;
        }
        if let Err(message) = &result.metrics {
            let candidate = (result.index, message.clone());
            // Deterministic error selection: lowest job index wins.
            if self
                .first_error
                .as_ref()
                .is_none_or(|(i, _)| candidate.0 < *i)
            {
                self.first_error = Some(candidate);
            }
        }
        let index = result.index;
        self.slots[index] = Some(result);
    }

    /// Results accepted so far (progress indicator).
    #[must_use]
    pub fn received(&self) -> usize {
        self.received
    }

    /// Jobs whose primary result came from the cache.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Replays the slots in expansion order and produces the aggregate.
    ///
    /// # Errors
    ///
    /// - [`EngineError::Job`] if any job failed (lowest index reported);
    /// - [`EngineError::Incomplete`] if a slot was never filled.
    pub fn finalize(self) -> Result<SweepAggregate, EngineError> {
        if let Some((index, message)) = self.first_error {
            return Err(EngineError::Job { index, message });
        }
        let mut per_cell: Vec<Vec<&JobMetrics>> = vec![Vec::new(); self.cells.len()];
        for (index, slot) in self.slots.iter().enumerate() {
            let result = slot.as_ref().ok_or(EngineError::Incomplete { index })?;
            let metrics = result.metrics.as_ref().expect("errors already reported");
            per_cell[result.cell].push(metrics);
        }

        let cells = self
            .cells
            .iter()
            .zip(&per_cell)
            .map(|(info, metrics)| summarize_cell(info, metrics))
            .collect();
        Ok(SweepAggregate { cells })
    }
}

fn summarize_cell(info: &CellInfo, metrics: &[&JobMetrics]) -> CellSummary {
    let samples = metrics.len();
    let is_set = matches!(metrics.first(), Some(JobMetrics::Set(_)));
    let kind = if is_set {
        let mut accepted = [0usize; 6];
        for m in metrics {
            let JobMetrics::Set(s) = m else {
                unreachable!("uniform cell job kinds")
            };
            for (count, &bit) in accepted.iter_mut().zip(&s.accepted) {
                *count += usize::from(bit);
            }
        }
        CellKind::Set(SetCellSummary { accepted })
    } else {
        CellKind::Task(summarize_task_cell(metrics))
    };
    CellSummary {
        m: info.m,
        grid_value: info.grid_value,
        samples,
        kind,
    }
}

/// Mean/max reductions mirror `hetrta_bench::stats::summarize` operation
/// order (sum then divide; max by `f64::max` fold) so engine sweeps match
/// the serial experiments bitwise.
fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn max(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

fn summarize_task_cell(metrics: &[&JobMetrics]) -> TaskCellSummary {
    let mut scenario_counts = [0usize; 3];
    let mut improvements = Vec::with_capacity(metrics.len());
    let mut r_hets = Vec::with_capacity(metrics.len());
    let mut r_homs = Vec::with_capacity(metrics.len());
    let mut sims = Vec::new();
    let mut exacts = Vec::new();
    let mut schedulable_het = 0usize;
    let mut schedulable_hom = 0usize;

    for m in metrics {
        let JobMetrics::Task(t) = m else {
            unreachable!("uniform cell job kinds")
        };
        if let Some(h) = &t.het {
            use hetrta_core::Scenario;
            let slot = match h.scenario {
                Scenario::OffNotOnCriticalPath => 0,
                Scenario::OffOnCriticalPathDominant => 1,
                Scenario::OffOnCriticalPathDominated => 2,
            };
            scenario_counts[slot] += 1;
            improvements.push(h.improvement_percent);
            r_hets.push(h.r_het);
            r_homs.push(h.r_hom_original);
            schedulable_het += usize::from(h.schedulable_het);
            schedulable_hom += usize::from(h.schedulable_hom);
        } else if let Some(r) = t.r_hom {
            r_homs.push(r);
        }
        if let Some(ms) = t.sim_makespan {
            sims.push(ms as f64);
        }
        if let Some(e) = &t.exact {
            exacts.push(e.makespan as f64);
        }
    }

    TaskCellSummary {
        scenario_counts,
        mean_improvement: mean(&improvements),
        max_improvement: max(&improvements),
        mean_r_het: mean(&r_hets),
        mean_r_hom: mean(&r_homs),
        schedulable_het,
        schedulable_hom,
        mean_sim_makespan: if sims.is_empty() {
            None
        } else {
            Some(mean(&sims))
        },
        exact_solved: exacts.len(),
        mean_exact_makespan: if exacts.is_empty() {
            None
        } else {
            Some(mean(&exacts))
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{HetSummary, SetPointMetrics, TaskPointMetrics};
    use hetrta_core::Scenario;

    fn het(improvement: f64, scenario: Scenario) -> JobMetrics {
        JobMetrics::Task(TaskPointMetrics {
            het: Some(HetSummary {
                r_het: 10.0,
                r_hom_original: 12.0,
                r_hom_transformed: 13.0,
                scenario,
                improvement_percent: improvement,
                schedulable_het: true,
                schedulable_hom: false,
            }),
            ..TaskPointMetrics::default()
        })
    }

    fn result(index: usize, cell: usize, metrics: JobMetrics) -> JobResult {
        JobResult {
            index,
            cell,
            worker: 0,
            cache_hit: false,
            metrics: Ok(metrics),
        }
    }

    #[test]
    fn order_independence_of_acceptance() {
        let cells = vec![CellInfo {
            m: 2,
            grid_value: 0.1,
        }];
        let results = [
            result(0, 0, het(10.0, Scenario::OffNotOnCriticalPath)),
            result(1, 0, het(30.0, Scenario::OffOnCriticalPathDominant)),
            result(2, 0, het(20.0, Scenario::OffNotOnCriticalPath)),
        ];

        let mut forward = Aggregator::new(cells.clone(), 3);
        for r in &results {
            forward.accept(r.clone());
        }
        let mut backward = Aggregator::new(cells, 3);
        for r in results.iter().rev() {
            backward.accept(r.clone());
        }
        let a = forward.finalize().unwrap();
        let b = backward.finalize().unwrap();
        assert_eq!(a, b);

        let CellKind::Task(t) = &a.cells[0].kind else {
            panic!("task cell")
        };
        assert_eq!(t.scenario_counts, [2, 1, 0]);
        assert_eq!(t.mean_improvement, 20.0);
        assert_eq!(t.max_improvement, 30.0);
        assert_eq!(t.schedulable_het, 3);
        let (s1, s21, s22) = t.scenario_shares(a.cells[0].samples);
        assert!((s1 - 2.0 / 3.0).abs() < 1e-12 && (s21 - 1.0 / 3.0).abs() < 1e-12 && s22 == 0.0);
    }

    #[test]
    fn set_cells_count_accepts() {
        let cells = vec![CellInfo {
            m: 4,
            grid_value: 0.5,
        }];
        let mut agg = Aggregator::new(cells, 2);
        agg.accept(result(
            0,
            0,
            JobMetrics::Set(SetPointMetrics {
                accepted: [true, true, false, true, false, true],
            }),
        ));
        agg.accept(result(
            1,
            0,
            JobMetrics::Set(SetPointMetrics {
                accepted: [false, true, false, false, false, true],
            }),
        ));
        let a = agg.finalize().unwrap();
        let CellKind::Set(s) = &a.cells[0].kind else {
            panic!("set cell")
        };
        assert_eq!(s.accepted, [1, 2, 0, 1, 0, 2]);
        assert_eq!(s.ratio(TestKind::GfpHeterogeneous, a.cells[0].samples), 1.0);
        assert_eq!(s.ratio(TestKind::GedfHomogeneous, a.cells[0].samples), 0.0);
    }

    #[test]
    fn lowest_index_error_wins() {
        let cells = vec![CellInfo {
            m: 2,
            grid_value: 0.1,
        }];
        let mut agg = Aggregator::new(cells, 2);
        agg.accept(JobResult {
            index: 1,
            cell: 0,
            worker: 0,
            cache_hit: false,
            metrics: Err("late failure".into()),
        });
        agg.accept(JobResult {
            index: 0,
            cell: 0,
            worker: 1,
            cache_hit: false,
            metrics: Err("early failure".into()),
        });
        match agg.finalize() {
            Err(EngineError::Job { index, message }) => {
                assert_eq!(index, 0);
                assert_eq!(message, "early failure");
            }
            other => panic!("expected job error, got {other:?}"),
        }
    }

    #[test]
    fn missing_slots_are_reported() {
        let cells = vec![CellInfo {
            m: 2,
            grid_value: 0.1,
        }];
        let agg = Aggregator::new(cells, 1);
        assert!(matches!(
            agg.finalize(),
            Err(EngineError::Incomplete { index: 0 })
        ));
    }
}
