//! Allocation accounting for the workspace-reuse layer.
//!
//! A counting global allocator measures heap allocations of the analysis
//! hot paths, recording the before/after of the refactor **in the test
//! itself**: the pre-refactor shape (fresh scratch state per call —
//! `simulate`, `solve`) is measured next to the workspace-reusing path
//! (`simulate_makespan`, `solve_with` on a warm workspace), and the warm
//! path must do strictly less heap work per call. A separate budget pins
//! the steady-state allocations per *sweep cell* of a fully warmed engine.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is the only addition.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<T>(op: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let value = op();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, value)
}

use hetrta_engine::{Engine, GeneratorPreset, SweepSpec};
use hetrta_exact::{solve, solve_with, SolverConfig, SolverWorkspace};
use hetrta_gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta_gen::{generate_nfj, NfjParams};
use hetrta_sim::policy::BreadthFirst;
use hetrta_sim::{simulate, simulate_makespan, Platform, SimWorkspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_task(n_min: usize, n_max: usize) -> hetrta_dag::HeteroDagTask {
    let params = NfjParams::large_tasks().with_node_range(n_min, n_max);
    let mut rng = StdRng::seed_from_u64(0x000A_110C);
    loop {
        let Ok(dag) = generate_nfj(&params, &mut rng) else {
            continue;
        };
        if let Ok(task) = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(0.15),
            &mut rng,
        ) {
            return task;
        }
    }
}

#[test]
fn warm_sim_workspace_allocates_an_order_less_than_the_cold_path() {
    let task = sample_task(60, 120);
    let platform = Platform::with_accelerator(4);
    let mut ws = SimWorkspace::new();
    // Warm up the workspace buffers.
    for _ in 0..3 {
        simulate_makespan(
            &mut ws,
            task.dag(),
            Some(task.offloaded()),
            platform,
            &mut BreadthFirst::new(),
        )
        .unwrap();
    }

    const RUNS: u64 = 20;
    let (cold, _) = allocations_during(|| {
        for _ in 0..RUNS {
            // The pre-refactor shape: every call builds its own queues,
            // heaps and per-node arrays (and an intervals vector).
            simulate(
                task.dag(),
                Some(task.offloaded()),
                platform,
                &mut BreadthFirst::new(),
            )
            .unwrap();
        }
    });
    let (warm, _) = allocations_during(|| {
        for _ in 0..RUNS {
            simulate_makespan(
                &mut ws,
                task.dag(),
                Some(task.offloaded()),
                platform,
                &mut BreadthFirst::new(),
            )
            .unwrap();
        }
    });
    // Fixed budget: a warm simulation may allocate a handful of times
    // (`sources()` collects), nothing per-node.
    assert!(
        warm <= RUNS * 4,
        "warm sim path allocates {warm} over {RUNS} runs (budget {})",
        RUNS * 4
    );
    assert!(
        warm * 5 <= cold,
        "workspace reuse saves less than 5x: warm {warm} vs cold {cold}"
    );
}

#[test]
fn warm_solver_workspace_allocates_less_than_the_cold_path() {
    let task = sample_task(14, 20);
    let config = SolverConfig::default();
    let mut ws = SolverWorkspace::new();
    for _ in 0..2 {
        solve_with(&mut ws, task.dag(), Some(task.offloaded()), 2, &config).unwrap();
    }

    const RUNS: u64 = 10;
    let (cold, _) = allocations_during(|| {
        for _ in 0..RUNS {
            solve(task.dag(), Some(task.offloaded()), 2, &config).unwrap();
        }
    });
    let (warm, _) = allocations_during(|| {
        for _ in 0..RUNS {
            solve_with(&mut ws, task.dag(), Some(task.offloaded()), 2, &config).unwrap();
        }
    });
    assert!(
        warm < cold,
        "solver workspace reuse must reduce allocations: warm {warm} vs cold {cold}"
    );
}

#[test]
fn steady_state_engine_cells_fit_a_fixed_allocation_budget() {
    // 2 cores × 2 fractions × 8 tasks = 32 jobs over 4 cells. After the
    // first run everything is memoized; the steady-state re-run must stay
    // under a fixed per-cell allocation budget (cache lookups, outcome
    // clones, aggregation — no DAG generation, no analysis scratch).
    let spec = SweepSpec::fractions(
        GeneratorPreset::Custom(NfjParams::large_tasks().with_node_range(60, 120)),
        vec![2, 8],
        vec![0.02, 0.25],
        8,
        0x00A1_10C2,
    );
    let engine = Engine::new(1);
    engine.run(&spec).unwrap();

    let cells = 4u64;
    let (steady, out) = allocations_during(|| engine.run(&spec).unwrap());
    assert_eq!(out.stats.cached_jobs as usize, out.stats.jobs);
    const PER_CELL_BUDGET: u64 = 4_000;
    assert!(
        steady / cells < PER_CELL_BUDGET,
        "steady-state sweep allocated {steady} over {cells} cells \
         ({} per cell, budget {PER_CELL_BUDGET})",
        steady / cells
    );
}
