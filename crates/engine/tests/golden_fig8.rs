//! Golden parity pin for the CSR/workspace/derived-data refactor: the
//! engine aggregate of a small Figure-8-style sweep must stay **bitwise
//! identical** to the output captured from the pre-refactor engine (nested
//! `Vec<Vec>` adjacency, per-job allocation, no derived-data sharing).
//!
//! Every floating-point constant below is the exact `f64::to_bits` pattern
//! the pre-refactor build produced for this spec. Any change to graph
//! layout, kernel order of operations, caching, or aggregation that moves
//! a single mantissa bit fails this test.

use hetrta_engine::{CellKind, Engine, GeneratorPreset, SweepSpec};
use hetrta_gen::NfjParams;

/// One expected cell: `(m, grid-value bits, samples, scenario counts,
/// mean/max improvement bits, mean R_het/R_hom bits, schedulable counts)`.
type GoldenCell = (
    u64,
    u64,
    usize,
    [usize; 3],
    u64,
    u64,
    u64,
    u64,
    usize,
    usize,
);

/// Captured from the pre-refactor engine (commit 086983d) for the spec in
/// `golden_spec()`.
const GOLDEN: [GoldenCell; 4] = [
    (
        2,
        0x3f94_7ae1_47ae_147b,
        8,
        [8, 0, 0],
        0x3fd6_f72a_a244_1648,
        0x3ffc_e944_3365_ce94,
        0x40a5_9580_0000_0000,
        0x40a5_a8e0_0000_0000,
        8,
        8,
    ),
    (
        2,
        0x3fd0_0000_0000_0000,
        8,
        [0, 1, 7],
        0x4047_7c9d_a15b_8f4d,
        0x4049_c213_185c_15c6,
        0x40a4_e8c0_0000_0000,
        0x40ae_c6e0_0000_0000,
        8,
        8,
    ),
    (
        8,
        0x3f94_7ae1_47ae_147b,
        8,
        [8, 0, 0],
        0xc011_aa02_f730_ce95,
        0x3ff1_4d8a_6644_7a61,
        0x4093_7300_0000_0000,
        0x4092_9250_0000_0000,
        8,
        8,
    ),
    (
        8,
        0x3fd0_0000_0000_0000,
        8,
        [0, 8, 0],
        0x4037_721d_1581_3819,
        0x403d_e297_fcd3_fd5b,
        0x409f_1e70_0000_0000,
        0x40a3_1df8_0000_0000,
        8,
        8,
    ),
];

fn golden_spec() -> SweepSpec {
    SweepSpec::fractions(
        GeneratorPreset::Custom(NfjParams::large_tasks().with_node_range(60, 120)),
        vec![2, 8],
        vec![0.02, 0.25],
        8,
        0x8008_0002,
    )
}

fn assert_matches_golden(engine: &Engine) {
    let out = engine.run(&golden_spec()).expect("sweep succeeds");
    assert_eq!(out.aggregate.cells.len(), GOLDEN.len());
    for (cell, golden) in out.aggregate.cells.iter().zip(GOLDEN) {
        let (m, f_bits, samples, counts, mean_imp, max_imp, mean_het, mean_hom, sh, shm) = golden;
        let CellKind::Task(t) = &cell.kind else {
            panic!("fraction sweeps produce task cells")
        };
        assert_eq!(cell.m, m);
        assert_eq!(cell.grid_value.to_bits(), f_bits);
        assert_eq!(cell.samples, samples);
        assert_eq!(t.scenario_counts, counts);
        assert_eq!(t.mean_improvement.to_bits(), mean_imp, "mean improvement");
        assert_eq!(t.max_improvement.to_bits(), max_imp, "max improvement");
        assert_eq!(t.mean_r_het.to_bits(), mean_het, "mean R_het");
        assert_eq!(t.mean_r_hom.to_bits(), mean_hom, "mean R_hom");
        assert_eq!(t.schedulable_het, sh);
        assert_eq!(t.schedulable_hom, shm);
    }
}

#[test]
fn engine_aggregate_is_bitwise_identical_to_pre_refactor_output() {
    assert_matches_golden(&Engine::new(0));
}

#[test]
fn golden_parity_holds_single_threaded_and_warm() {
    // One thread, then a warm re-run on the same engine: the cached path
    // must replay the exact same bits.
    let engine = Engine::new(1);
    assert_matches_golden(&engine);
    assert_matches_golden(&engine);
}
