//! Every registered analysis key round-trips `parse → run → outcome`, and
//! unknown keys fail helpfully at every layer (selection parsing, engine
//! validation, job execution).

use hetrta_api::{
    AnalysisInput, AnalysisOutcome, AnalysisRegistry, AnalysisRequest, DirectContext,
};
use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
use hetrta_engine::AnalysisSelection;

fn figure1_task() -> HeteroDagTask {
    let mut b = DagBuilder::new();
    let v1 = b.node("v1", Ticks::new(1));
    let v2 = b.node("v2", Ticks::new(4));
    let v3 = b.node("v3", Ticks::new(6));
    let v4 = b.node("v4", Ticks::new(2));
    let v5 = b.node("v5", Ticks::new(1));
    let voff = b.node("v_off", Ticks::new(4));
    b.edges([
        (v1, v2),
        (v1, v3),
        (v1, v4),
        (v4, voff),
        (v2, v5),
        (v3, v5),
        (voff, v5),
    ])
    .unwrap();
    HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(50), Ticks::new(50)).unwrap()
}

/// A valid input for each registered key.
fn request_for(key: &str) -> AnalysisRequest {
    let input = match key {
        "acceptance" => AnalysisInput::TaskSet(vec![figure1_task()]),
        "cond" => AnalysisInput::Cond(
            hetrta_cond::parse_expr("pre(4); if { kernel(26) | soft(30) }; fuse(3)").unwrap(),
        ),
        _ => AnalysisInput::Task(figure1_task()),
    };
    AnalysisRequest {
        input,
        params: hetrta_api::AnalysisParams::new(2),
    }
}

#[test]
fn every_registered_key_round_trips_parse_run_outcome() {
    let registry = AnalysisRegistry::builtin();
    for key in registry.keys() {
        // parse: the engine's selection parser accepts the key …
        let selection = AnalysisSelection::parse(key).unwrap_or_else(|e| panic!("{key}: {e}"));
        assert!(selection.contains(key));
        // … run: the registry resolves and executes it …
        let outcome = registry
            .run(key, &request_for(key), &DirectContext)
            .unwrap_or_else(|e| panic!("{key}: {e}"));
        // … outcome: and the produced value carries the same tag back.
        assert_eq!(outcome.key(), key, "outcome tag must round-trip");
    }
}

#[test]
fn outcomes_carry_the_expected_figure1_values() {
    let registry = AnalysisRegistry::builtin();
    match registry
        .run("het", &request_for("het"), &DirectContext)
        .unwrap()
    {
        AnalysisOutcome::Het(h) => {
            assert_eq!((h.r_het, h.r_hom_original), (12.0, 13.0));
        }
        other => panic!("expected het outcome, got {other:?}"),
    }
    match registry
        .run("exact", &request_for("exact"), &DirectContext)
        .unwrap()
    {
        AnalysisOutcome::Exact(Some(e)) => assert_eq!(e.makespan, 8),
        other => panic!("expected solved exact outcome, got {other:?}"),
    }
}

#[test]
fn unknown_keys_fail_helpfully_everywhere() {
    let registry = AnalysisRegistry::builtin();
    let known: Vec<String> = registry.keys().iter().map(|&k| k.to_owned()).collect();

    // Registry resolution names every valid key.
    let err = registry.get("warp").unwrap_err().to_string();
    for key in &known {
        assert!(err.contains(key), "`{key}` missing from: {err}");
    }

    // Selection parsing mirrors that.
    let err = AnalysisSelection::parse("warp").unwrap_err();
    assert!(err.contains("unknown analysis kind `warp`"), "{err}");
    for key in &known {
        assert!(err.contains(key), "`{key}` missing from: {err}");
    }

    // Wrong-input requests are typed errors, not panics.
    let err = registry
        .run("acceptance", &request_for("het"), &DirectContext)
        .unwrap_err();
    assert!(err.to_string().contains("expects a task set"), "{err}");
}

#[test]
fn custom_analyses_flow_through_the_engine() {
    use hetrta_api::{Analysis, AnalysisContext, ApiError};
    use hetrta_engine::{CellKind, Engine, GeneratorPreset, SweepSpec};
    use std::sync::Arc;

    /// Reports the critical-path length as a `hom`-tagged scalar.
    #[derive(Debug)]
    struct CriticalPath;

    impl Analysis for CriticalPath {
        fn key(&self) -> &str {
            "len"
        }
        fn describe(&self) -> &str {
            "critical-path length of the task graph"
        }
        fn run(
            &self,
            request: &AnalysisRequest,
            _ctx: &dyn AnalysisContext,
        ) -> Result<AnalysisOutcome, ApiError> {
            let task = request.input.as_task(self.key())?;
            Ok(AnalysisOutcome::Hom {
                r_hom: task.critical_path_length().as_f64(),
            })
        }
    }

    let mut registry = AnalysisRegistry::builtin();
    registry.register(Arc::new(CriticalPath));
    let engine = Engine::with_registry(1, registry);
    let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 4, 3)
        .with_analyses(AnalysisSelection::from_keys(["len"]));
    let out = engine.run(&spec).expect("custom analysis runs");
    let CellKind::Task(t) = &out.aggregate.cells[0].kind else {
        panic!("task cell")
    };
    assert!(t.mean_r_hom > 0.0, "custom scalar reduced into the cell");
}
