//! End-to-end observability: an instrumented engine run must export a
//! Chrome trace that parses as JSON, carries one span per job nested in
//! worker lanes, and a metrics registry that agrees with the run stats.

use std::sync::Arc;

use hetrta_engine::obs::json::JsonValue;
use hetrta_engine::{EngineBuilder, GeneratorPreset, SessionConfig, SweepSpec, TraceRecorder};

/// One X event, decoded just enough for structural assertions.
struct Complete {
    name: String,
    lane: f64,
    depth: f64,
    start: f64,
    end: f64,
}

fn complete_events(doc: &JsonValue) -> Vec<Complete> {
    doc.get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents")
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .map(|e| {
            let ts = e.get("ts").and_then(JsonValue::as_f64).expect("ts");
            let dur = e.get("dur").and_then(JsonValue::as_f64).expect("dur");
            Complete {
                name: e
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .expect("name")
                    .to_owned(),
                lane: e.get("tid").and_then(JsonValue::as_f64).expect("tid"),
                depth: e
                    .get("args")
                    .and_then(|a| a.get("depth"))
                    .and_then(JsonValue::as_f64)
                    .expect("depth"),
                start: ts,
                end: ts + dur,
            }
        })
        .collect()
}

#[test]
fn instrumented_sweep_exports_a_structurally_valid_chrome_trace() {
    let recorder = Arc::new(TraceRecorder::new());
    let engine = EngineBuilder::new()
        .threads(2)
        .with_recorder(Arc::clone(&recorder) as _)
        .build()
        .expect("no cache dir");

    let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2, 0.3], 4, 5);
    let out = engine.run(&spec).expect("sweep succeeds");
    assert_eq!(out.stats.jobs, 8);

    let text = recorder.to_chrome_json();
    let doc = JsonValue::parse(&text).expect("export is valid JSON");
    let events = complete_events(&doc);

    // Every job produced exactly one `job` span, all on worker lanes
    // (lane 0 is the session thread).
    let jobs: Vec<&Complete> = events.iter().filter(|e| e.name == "job").collect();
    assert_eq!(jobs.len(), out.stats.jobs, "one span per job");
    assert!(
        jobs.iter().all(|j| j.lane >= 1.0),
        "jobs run on worker lanes"
    );

    // Analysis spans nest inside a job span on the same lane, one level
    // (or more, via the context seam) deeper.
    let analyses: Vec<&Complete> = events.iter().filter(|e| e.name == "analysis").collect();
    assert!(!analyses.is_empty(), "computed analyses produce spans");
    for analysis in &analyses {
        assert!(analysis.depth >= 1.0, "analysis spans are children");
        assert!(
            jobs.iter().any(|job| job.lane == analysis.lane
                && job.start <= analysis.start
                && analysis.end <= job.end),
            "analysis span outside every job interval on its lane"
        );
    }

    // The session lane carries the root sweep span enclosing every job.
    let sweep = events
        .iter()
        .find(|e| e.name == "sweep")
        .expect("root sweep span");
    assert_eq!(sweep.lane, 0.0, "sweep span lives on the session lane");
    for job in &jobs {
        assert!(
            sweep.start <= job.start && job.end <= sweep.end,
            "job outside the sweep interval"
        );
    }

    // Worker lanes are named through thread_name metadata.
    let lane_names: Vec<String> = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
        })
        .collect();
    for expected in ["session", "worker 0", "worker 1"] {
        assert!(
            lane_names.iter().any(|n| n == expected),
            "missing lane {expected}"
        );
    }
}

#[test]
fn metrics_registry_is_the_source_of_the_run_stats() {
    let engine = EngineBuilder::new()
        .threads(2)
        .build()
        .expect("no cache dir");
    let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2, 0.3], 4, 5);
    let out = engine.run(&spec).expect("sweep succeeds");

    let snap = engine.metrics().snapshot();
    // EngineStats is a view over the registry: the same counters back both.
    assert_eq!(
        snap.counter("cache.result.hits"),
        Some(out.stats.result_cache.hits),
    );
    assert_eq!(
        snap.counter("cache.result.misses"),
        Some(out.stats.result_cache.misses),
    );
    assert_eq!(snap.counter("pool.jobs"), Some(out.stats.jobs as u64));
    // Each executed analysis fed its latency histogram, and its measured
    // EWMA landed as a gauge.
    let latencies = snap.histograms_with_prefix("analysis.");
    assert!(!latencies.is_empty(), "latency histograms recorded");
    for (name, hist) in &latencies {
        assert!(hist.count > 0, "{name} is empty");
        assert!(hist.p99().is_some(), "{name} has no quantiles");
    }
    assert!(
        snap.gauge("cost.ewma_us.het").is_some(),
        "cost EWMA gauges exported"
    );
}

#[test]
fn overflowing_event_buffers_count_their_drops() {
    let engine = EngineBuilder::new()
        .threads(2)
        .build()
        .expect("no cache dir");
    let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2, 0.3], 16, 5);
    // A 2-event buffer with per-job events and no consumer must drop.
    let config = SessionConfig {
        max_buffered_events: 2,
        ..SessionConfig::default()
    };
    let handle = engine.submit_with(&spec, config).expect("valid spec");
    let out = handle.wait().expect("sweep succeeds");
    assert!(
        out.stats.events_dropped > 0,
        "a tiny unconsumed buffer must drop events"
    );
    let rendered = out.stats.render();
    assert!(rendered.contains("events dropped"), "{rendered}");

    // The quiet path never drops (nothing is buffered per job).
    let quiet = engine.run(&spec).expect("sweep succeeds");
    assert_eq!(quiet.stats.events_dropped, 0);
    assert!(!quiet.stats.render().contains("events dropped"));
}
