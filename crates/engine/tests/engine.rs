//! Engine-level guarantees: deterministic aggregation across thread
//! counts, and cache correctness (cached results equal fresh ones, hits
//! occur whenever content repeats).

use hetrta_engine::{AnalysisSelection, CellKind, Engine, GeneratorPreset, SweepSpec, TestKind};
use hetrta_sched::taskset::TaskSetParams;

fn fraction_spec(seed: u64) -> SweepSpec {
    SweepSpec::fractions(GeneratorPreset::Small, vec![2, 4], vec![0.1, 0.3], 8, seed)
}

fn acceptance_spec() -> SweepSpec {
    SweepSpec::acceptance(
        TaskSetParams::small(3, 1.0).with_offload_fraction(0.15, 0.35),
        vec![2],
        vec![0.2, 0.6, 1.0],
        3,
        6,
        42,
    )
}

#[test]
fn aggregate_is_byte_identical_across_thread_counts() {
    let spec = fraction_spec(0xD1CE);
    let single = Engine::new(1).run(&spec).expect("single-threaded run");
    for threads in [2, 4, 8] {
        let parallel = Engine::new(threads).run(&spec).expect("parallel run");
        assert_eq!(
            single.aggregate, parallel.aggregate,
            "aggregate differs on {threads} threads"
        );
        // Byte-identical, not just approximately equal: the Debug
        // rendering prints exact f64 values.
        assert_eq!(
            format!("{:?}", single.aggregate),
            format!("{:?}", parallel.aggregate)
        );
    }
}

#[test]
fn acceptance_aggregate_is_deterministic_too() {
    let spec = acceptance_spec();
    let a = Engine::new(1).run(&spec).expect("run");
    let b = Engine::new(4).run(&spec).expect("run");
    assert_eq!(a.aggregate, b.aggregate);
}

#[test]
fn cached_results_equal_freshly_computed_results() {
    let spec = fraction_spec(0xBEEF);
    let engine = Engine::new(2);
    let fresh = engine.run(&spec).expect("cold run");
    // Same engine, same spec: everything is served from the cache …
    let cached = engine.run(&spec).expect("warm run");
    assert_eq!(
        cached.stats.result_cache.misses, 0,
        "warm run must not recompute"
    );
    assert_eq!(cached.stats.cached_jobs as usize, cached.stats.jobs);
    // … and equals a from-scratch engine's answer exactly.
    assert_eq!(fresh.aggregate, cached.aggregate);
    let scratch = Engine::new(2).run(&spec).expect("independent run");
    assert_eq!(scratch.aggregate, cached.aggregate);
}

#[test]
fn repeated_seeds_hit_the_cache_within_one_run() {
    // The same base seed twice: the second replication's tasks are
    // structurally identical to the first's, so every analysis after the
    // first replication is a cache hit (single thread makes the schedule,
    // and therefore the counter values, deterministic).
    let spec = fraction_spec(7).with_seeds(vec![7, 7]);
    let out = Engine::new(1).run(&spec).expect("run");
    assert!(
        out.stats.result_cache.hits > 0,
        "repeated seeds must produce cache hits, got {:?}",
        out.stats.result_cache
    );
    // Exactly half the jobs are duplicates of the other half.
    assert_eq!(out.stats.result_cache.hits, out.stats.result_cache.misses);

    // Determinism also holds with replicated seeds.
    let again = Engine::new(4).run(&spec).expect("run");
    assert_eq!(out.aggregate, again.aggregate);
}

#[test]
fn transform_cache_is_shared_across_core_counts() {
    // Two core counts, one seed: each generated DAG is transformed once
    // and the transformation is reused for the second core count.
    let spec = fraction_spec(0xACE);
    let out = Engine::new(1).run(&spec).expect("run");
    let t = out.stats.transform_cache;
    assert_eq!(t.misses, 16, "8 tasks × 2 fractions transformed once each");
    assert_eq!(
        t.hits, 16,
        "each transformation reused for the second core count"
    );
}

#[test]
fn engine_matches_serial_acceptance_sweep() {
    // The engine's set jobs mirror hetrta_sched::acceptance::acceptance_sweep
    // (same seeding, same tests): ratios must agree exactly.
    use hetrta_sched::acceptance::{acceptance_sweep, AcceptanceConfig};

    let config = AcceptanceConfig {
        cores: 2,
        n_tasks: 3,
        sets_per_point: 6,
        normalized_utils: vec![0.2, 0.6, 1.0],
        template: TaskSetParams::small(3, 1.0).with_offload_fraction(0.15, 0.35),
        seed: 42,
    };
    let serial = acceptance_sweep(&config).expect("serial sweep");

    let out = Engine::new(4)
        .run(&acceptance_spec())
        .expect("engine sweep");
    assert_eq!(out.aggregate.cells.len(), serial.len());
    for (cell, point) in out.aggregate.cells.iter().zip(&serial) {
        assert_eq!(cell.grid_value, point.normalized_util);
        assert_eq!(cell.samples, point.sets);
        let CellKind::Set(s) = &cell.kind else {
            panic!("set cell")
        };
        for t in TestKind::ALL {
            assert_eq!(
                s.ratio(t, cell.samples),
                point.ratio(t),
                "{t:?} ratio diverges at U/m = {}",
                point.normalized_util
            );
        }
    }
}

#[test]
fn exact_budget_is_part_of_the_cache_key() {
    // A starved solver budget yields "unsolved"; re-running on the same
    // engine with a real budget must not be served the stale verdict.
    // Tiny DAGs keep the branch-and-bound solver fast here.
    let tiny = GeneratorPreset::Custom(hetrta_gen::NfjParams::small_tasks().with_node_range(4, 10));
    let mut starved = SweepSpec::fractions(tiny, vec![2], vec![0.25], 3, 3)
        .with_analyses(AnalysisSelection::from_keys(["exact"]));
    starved.exact_node_budget = Some(1);
    let mut generous = starved.clone();
    generous.exact_node_budget = None;

    let engine = Engine::new(1);
    let poor = engine.run(&starved).expect("starved run");
    let rich = engine.run(&generous).expect("generous run");
    let CellKind::Task(poor_cell) = &poor.aggregate.cells[0].kind else {
        panic!("task cell")
    };
    let CellKind::Task(rich_cell) = &rich.aggregate.cells[0].kind else {
        panic!("task cell")
    };
    assert!(
        rich_cell.exact_solved >= poor_cell.exact_solved,
        "larger budget solves at least as much"
    );
    assert_eq!(
        rich_cell.exact_solved, 3,
        "default budget solves small tasks"
    );
    // And the default-budget result matches a cache-free engine.
    let fresh = Engine::new(1).run(&generous).expect("fresh run");
    assert_eq!(fresh.aggregate, rich.aggregate);
}

#[test]
fn sim_and_exact_analyses_run_through_the_engine() {
    let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.25], 4, 3)
        .with_analyses(AnalysisSelection::all());
    let out = Engine::new(2).run(&spec).expect("run");
    let CellKind::Task(t) = &out.aggregate.cells[0].kind else {
        panic!("task cell")
    };
    let sim = t.mean_sim_makespan.expect("simulation selected");
    let exact = t.mean_exact_makespan.expect("small tasks solve exactly");
    assert_eq!(t.exact_solved, 4);
    assert!(
        exact <= sim + 1e-9,
        "mean exact optimum {exact} above mean simulated {sim}"
    );
    assert!(
        t.mean_r_het >= exact,
        "analytical bound below the exact optimum"
    );
}
