//! Session-API guarantees: the streaming path is the blocking path
//! (bitwise-identical aggregates), events are complete and well-formed,
//! partial aggregates converge on the final one, cancellation stops the
//! sweep, and live statistics track progress.

use hetrta_engine::{
    AnalysisSelection, Engine, EngineError, GeneratorPreset, SessionConfig, SweepEvent, SweepSpec,
};

fn spec() -> SweepSpec {
    SweepSpec::fractions(
        GeneratorPreset::Small,
        vec![2, 4],
        vec![0.1, 0.3],
        6,
        0xD1CE,
    )
}

#[test]
fn streaming_consumption_matches_blocking_run_bitwise() {
    let blocking = Engine::new(2).run(&spec()).expect("blocking run");

    let engine = Engine::new(2);
    let handle = engine
        .submit_with(&spec(), SessionConfig::with_partials(1))
        .expect("submit");
    let mut started = 0usize;
    let mut finished = 0usize;
    let mut partials = 0usize;
    let mut terminal = None;
    while let Some(event) = handle.next_event() {
        match event {
            SweepEvent::JobStarted { .. } => started += 1,
            SweepEvent::JobFinished { wall_time: _, .. } => finished += 1,
            SweepEvent::PartialAggregate {
                completed, total, ..
            } => {
                assert!(completed >= 1 && completed < total);
                partials += 1;
            }
            SweepEvent::SweepFinished {
                completed,
                cancelled,
                events_dropped,
            } => {
                assert!(terminal.is_none(), "exactly one terminal event");
                assert_eq!(events_dropped, 0, "nothing dropped on a drained stream");
                terminal = Some((completed, cancelled));
            }
        }
    }
    let streamed = handle.wait().expect("streamed run");

    assert_eq!(streamed.aggregate, blocking.aggregate);
    // Byte-identical, not approximately equal.
    assert_eq!(
        format!("{:?}", streamed.aggregate),
        format!("{:?}", blocking.aggregate)
    );
    assert_eq!(started, blocking.stats.jobs);
    assert_eq!(finished, blocking.stats.jobs);
    // partial_every = 1 → one snapshot per completed job except the last.
    assert_eq!(partials, blocking.stats.jobs - 1);
    assert_eq!(terminal, Some((blocking.stats.jobs, false)));
}

#[test]
fn event_keys_are_the_stable_content_identities() {
    // The same spec twice: JobFinished keys must repeat exactly, and the
    // second submission's jobs must all be cache hits.
    let engine = Engine::new(1);
    let keys = |handle: &hetrta_engine::SweepHandle| {
        let mut keys = Vec::new();
        let mut hits = 0usize;
        while let Some(event) = handle.next_event() {
            if let SweepEvent::JobFinished {
                index,
                key,
                cache_hit,
                ..
            } = event
            {
                keys.push((index, key));
                hits += usize::from(cache_hit);
            }
        }
        keys.sort_unstable();
        (keys, hits)
    };
    let first = engine.submit(&spec()).expect("submit");
    let (first_keys, _) = keys(&first);
    first.wait().expect("first run");
    let second = engine.submit(&spec()).expect("submit");
    let (second_keys, second_hits) = keys(&second);
    let out = second.wait().expect("second run");

    assert_eq!(first_keys, second_keys, "content identities are stable");
    assert_eq!(second_hits, out.stats.jobs, "warm run is all cache hits");
    assert!(first_keys.iter().any(|&(_, k)| k != 0));
}

#[test]
fn partial_aggregates_converge_to_the_final_aggregate() {
    // With a single worker, completion order is expansion order, so the
    // last partial (after jobs-1 results) differs from the final only in
    // the final job's cell — and a partial over *all* results would be
    // the final. Check the last reconstructed partial's fully-populated
    // cells match. Partials stream delta-encoded; `AggregateView`
    // reassembles them (keyframe cadence 4 exercises both variants).
    let engine = Engine::new(1);
    let config = SessionConfig {
        keyframe_every: 4,
        ..SessionConfig::with_partials(1)
    };
    let handle = engine.submit_with(&spec(), config).expect("submit");
    let mut view = hetrta_engine::AggregateView::new();
    let mut keyframes = 0usize;
    let mut deltas = 0usize;
    let mut last_partial = None;
    while let Some(event) = handle.next_event() {
        if let SweepEvent::PartialAggregate { update, .. } = event {
            match &update {
                hetrta_engine::AggregateUpdate::Keyframe { .. } => keyframes += 1,
                hetrta_engine::AggregateUpdate::Delta { .. } => deltas += 1,
            }
            last_partial = view.apply(&update).cloned();
        }
    }
    let out = handle.wait().expect("run");
    // 23 partials at cadence 4: keyframes at 0, 4, 8, ... — deltas carry
    // the rest, and deltas must actually dominate the stream.
    assert!(keyframes >= 1, "first partial must be a keyframe");
    assert!(deltas > keyframes, "deltas should dominate at cadence 4");
    let last = last_partial.expect("partials were emitted");
    assert_eq!(last.cells.len(), out.aggregate.cells.len());
    // All cells except the final one are complete in the last partial.
    for (partial_cell, final_cell) in last
        .cells
        .iter()
        .zip(&out.aggregate.cells)
        .take(out.aggregate.cells.len() - 1)
    {
        assert_eq!(partial_cell, final_cell);
    }
}

#[test]
fn delta_encoded_partials_carry_fewer_cells_than_keyframes() {
    // The point of the delta encoding: between two snapshots only the
    // cells of the jobs that completed in between change, so deltas must
    // be strictly smaller than the 4-cell keyframes on this sweep.
    let engine = Engine::new(1);
    let config = SessionConfig {
        keyframe_every: 8,
        ..SessionConfig::with_partials(1)
    };
    let handle = engine.submit_with(&spec(), config).expect("submit");
    let mut keyframe_cells = Vec::new();
    let mut delta_cells = Vec::new();
    while let Some(event) = handle.next_event() {
        if let SweepEvent::PartialAggregate { update, .. } = event {
            match &update {
                hetrta_engine::AggregateUpdate::Keyframe { .. } => {
                    keyframe_cells.push(update.cells_carried());
                }
                hetrta_engine::AggregateUpdate::Delta { .. } => {
                    delta_cells.push(update.cells_carried());
                }
            }
        }
    }
    handle.wait().expect("run");
    assert!(keyframe_cells.iter().all(|&c| c == 4), "{keyframe_cells:?}");
    // One job finishes between consecutive partials → exactly one cell
    // changes (its own), so every delta carries at most one cell.
    assert!(!delta_cells.is_empty());
    assert!(delta_cells.iter().all(|&c| c <= 1), "{delta_cells:?}");
}

/// Many moderately-sized jobs (tiny DAGs keep exact solves at
/// milliseconds, not seconds) — enough runway that a cancel lands before
/// the sweep drains.
fn cancellable_spec() -> SweepSpec {
    let tiny = GeneratorPreset::Custom(hetrta_gen::NfjParams::small_tasks().with_node_range(4, 12));
    SweepSpec::fractions(tiny, vec![2], vec![0.2], 64, 3)
        .with_analyses(AnalysisSelection::from_keys(["sim", "exact"]))
}

#[test]
fn cancellation_returns_cancelled_and_stops_the_sweep() {
    // Plenty of jobs on one worker; cancel after the first finishes.
    let spec = cancellable_spec();
    let engine = Engine::new(1);
    let handle = engine.submit(&spec).expect("submit");
    while let Some(event) = handle.next_event() {
        if matches!(event, SweepEvent::JobFinished { .. }) {
            handle.cancel();
            break;
        }
    }
    // Drain to the terminal event.
    let mut cancelled_event = false;
    while let Some(event) = handle.next_event() {
        if let SweepEvent::SweepFinished { cancelled, .. } = event {
            cancelled_event = cancelled;
        }
    }
    assert!(cancelled_event, "terminal event reports the cancellation");
    let (done, total) = handle.progress();
    assert!(
        done < total,
        "cancellation left jobs unexecuted ({done}/{total})"
    );
    assert!(matches!(handle.wait(), Err(EngineError::Cancelled)));
}

#[test]
fn live_stats_track_progress_and_finish_consistent() {
    let engine = Engine::new(2);
    let handle = engine.submit(&spec()).expect("submit");
    let total = spec().job_count();
    let mut saw_midway_stats = false;
    while let Some(event) = handle.next_event() {
        if matches!(event, SweepEvent::JobFinished { .. }) {
            let live = handle.stats();
            assert_eq!(live.jobs, total);
            assert!(live.cached_jobs <= live.jobs as u64);
            saw_midway_stats = true;
        }
    }
    assert!(saw_midway_stats);
    assert!(handle.is_finished());
    let final_live = handle.stats();
    assert_eq!(handle.progress(), (total, total));
    let out = handle.wait().expect("run");
    assert_eq!(final_live.jobs, out.stats.jobs);
    assert_eq!(
        out.stats.per_worker_jobs.iter().sum::<u64>() as usize,
        total
    );
}

#[test]
fn quiet_sessions_emit_only_the_terminal_event() {
    let engine = Engine::new(2);
    let handle = engine
        .submit_with(&spec(), SessionConfig::quiet())
        .expect("submit");
    let mut events = Vec::new();
    while let Some(event) = handle.next_event() {
        events.push(event);
    }
    assert_eq!(events.len(), 1, "{events:?}");
    assert!(matches!(events[0], SweepEvent::SweepFinished { .. }));
    assert_eq!(handle.dropped_events(), 0);
    handle.wait().expect("run");
}

#[test]
fn unconsumed_event_buffers_bound_their_memory() {
    // 96 jobs, buffer of 8: the producer must never block, the consumer
    // sees only the newest events, and the drop counter reports the rest.
    let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 96, 3);
    let engine = Engine::new(2);
    let config = SessionConfig {
        max_buffered_events: 8,
        ..SessionConfig::default()
    };
    let handle = engine.submit_with(&spec, config).expect("submit");
    while !handle.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(handle.dropped_events() > 0, "overflow must be counted");
    // The terminal event is the newest, so it survived the drops.
    let mut drained = Vec::new();
    while let Some(event) = handle.try_next_event() {
        drained.push(event);
    }
    assert!(drained.len() <= 8);
    assert!(matches!(
        drained.last(),
        Some(SweepEvent::SweepFinished { .. })
    ));
    let out = handle.wait().expect("run completes without a consumer");
    assert_eq!(out.stats.jobs, 96);
}

#[test]
fn slow_consumers_see_their_drop_count_rise() {
    // A consumer that never drains until the sweep is done, against a
    // tiny buffer and a chatty event config: the per-session drop count
    // must rise, and the terminal event itself must carry it — that is
    // how a daemon tells the affected client its stream was lossy.
    let spec = spec(); // 24 jobs
    let engine = Engine::new(2);
    let config = SessionConfig {
        job_events: true,
        partial_every: Some(1),
        keyframe_every: 1,
        max_buffered_events: 4,
        journal: None,
    };
    let handle = engine.submit_with(&spec, config).expect("submit");
    while !handle.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let dropped = handle.dropped_events();
    assert!(dropped > 0, "a slow consumer must observe drops");
    // The terminal event is the last push and is never itself dropped;
    // its count equals the handle's view at that moment.
    let mut terminal_dropped = None;
    while let Some(event) = handle.try_next_event() {
        if let SweepEvent::SweepFinished { events_dropped, .. } = event {
            terminal_dropped = Some(events_dropped);
        }
    }
    assert_eq!(terminal_dropped, Some(dropped));
    handle.wait().expect("run");
}

#[test]
#[ignore = "large-graph tier; run with --ignored (release)"]
fn hundred_thousand_job_sweep_keeps_the_event_buffer_bounded() {
    // The 10⁵-job tier: a chatty config (job events + per-job partials at
    // keyframe cadence 16) against a fixed 512-event buffer and a consumer
    // that never drains until the sweep is done. The buffer must stay
    // bounded (the producer never blocks and never accumulates), the drop
    // accounting must be exact, and the terminal event must survive.
    let spec = SweepSpec::fractions(
        GeneratorPreset::Custom(hetrta_gen::NfjParams::small_tasks().with_node_range(4, 8)),
        vec![2],
        vec![0.2],
        100_000,
        0xBE9C_0100,
    )
    .with_analyses(AnalysisSelection::from_keys(["het"]));
    let engine = Engine::new(4);
    let config = SessionConfig {
        job_events: true,
        partial_every: Some(1),
        keyframe_every: 16,
        max_buffered_events: 512,
        journal: None,
    };
    let handle = engine.submit_with(&spec, config).expect("submit");
    while !handle.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let dropped = handle.dropped_events();
    assert!(dropped > 0, "an undrained 10⁵-job stream must drop");
    let mut drained = 0usize;
    let mut terminal_dropped = None;
    while let Some(event) = handle.try_next_event() {
        drained += 1;
        if let SweepEvent::SweepFinished { events_dropped, .. } = event {
            terminal_dropped = Some(events_dropped);
        }
    }
    assert!(drained <= 512, "buffer exceeded its bound: {drained}");
    assert_eq!(
        terminal_dropped,
        Some(dropped),
        "terminal carries the count"
    );
    let out = handle.wait().expect("run completes without a consumer");
    assert_eq!(out.stats.jobs, 100_000);
}

#[test]
fn cancel_tokens_cancel_and_observe_from_another_thread() {
    let spec = cancellable_spec();
    let engine = Engine::new(1);
    let handle = engine.submit(&spec).expect("submit");
    assert_eq!(engine.active_sessions(), 1);
    let token = handle.cancel_token();
    assert!(!token.is_cancelled());
    let canceller = std::thread::spawn(move || {
        token.cancel();
        token.is_cancelled()
    });
    assert!(canceller.join().expect("canceller thread"));
    while handle.next_event().is_some() {}
    assert!(matches!(handle.wait(), Err(EngineError::Cancelled)));
    assert_eq!(engine.active_sessions(), 0, "session count returns to zero");
}

#[test]
fn dropping_an_unwaited_handle_cancels_cleanly() {
    let spec = cancellable_spec();
    let engine = Engine::new(1);
    let handle = engine.submit(&spec).expect("submit");
    drop(handle); // must join the session thread, not leak it
                  // The engine is still usable afterwards.
    let out = engine.run(&fast()).expect("post-drop run");
    assert_eq!(out.stats.jobs, fast().job_count());

    fn fast() -> SweepSpec {
        SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 3)
    }
}

#[test]
fn panicking_analysis_closes_the_stream_and_reraises_the_payload() {
    // A worker panic must (a) close the event stream so a blocked
    // consumer terminates instead of hanging on the Condvar, and
    // (b) surface the *original* panic payload through wait().
    use std::sync::Arc;

    #[derive(Debug)]
    struct Exploding;
    impl hetrta_engine::Analysis for Exploding {
        fn key(&self) -> &str {
            "explode"
        }
        fn describe(&self) -> &str {
            "panics on purpose"
        }
        fn run(
            &self,
            _request: &hetrta_engine::AnalysisRequest,
            _ctx: &dyn hetrta_engine::AnalysisContext,
        ) -> Result<hetrta_engine::AnalysisOutcome, hetrta_engine::ApiError> {
            panic!("analysis exploded on purpose")
        }
    }

    let mut registry = hetrta_engine::AnalysisRegistry::builtin();
    registry.register(Arc::new(Exploding));
    let engine = Engine::with_registry(1, registry);
    let spec = SweepSpec::fractions(GeneratorPreset::Small, vec![2], vec![0.2], 2, 7)
        .with_analyses(AnalysisSelection::from_keys(["explode"]));

    let handle = engine.submit(&spec).expect("submit");
    // This loop must terminate (close-on-drop), not deadlock.
    while handle.next_event().is_some() {}
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()))
        .expect_err("the worker panic re-raises");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .expect("original payload survives");
    assert_eq!(message, "analysis exploded on purpose");
}
