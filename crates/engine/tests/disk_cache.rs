//! Disk-persistent cache guarantees: a second engine instance (standing
//! in for a second process — nothing is shared but the directory) replays
//! every result from disk with zero recomputation, corrupt or stale
//! entries degrade to recomputation without ever panicking, and disk
//! activity is reported in `EngineStats`.

use std::path::PathBuf;

use hetrta_engine::{
    AnalysisSelection, Engine, EngineBuilder, EngineError, GeneratorPreset, SweepSpec,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hetrta-engine-disk-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> SweepSpec {
    SweepSpec::fractions(
        GeneratorPreset::Small,
        vec![2, 4],
        vec![0.1, 0.3],
        5,
        0xCAFE,
    )
    .with_analyses(AnalysisSelection::from_keys(["het", "hom", "sim"]))
}

fn engine_on(dir: &PathBuf) -> Engine {
    EngineBuilder::new()
        .threads(2)
        .with_cache_dir(dir)
        .build()
        .expect("cache dir opens")
}

#[test]
fn second_engine_instance_replays_from_disk_with_zero_recomputes() {
    let dir = temp_dir("roundtrip");

    let cold = engine_on(&dir).run(&spec()).expect("cold run");
    assert_eq!(cold.stats.disk_cache.hits, 0, "nothing persisted yet");
    assert!(cold.stats.disk_cache.misses > 0, "disk was probed");

    // A brand-new engine on the same directory: fresh in-memory caches,
    // so everything must come off disk.
    let warm = engine_on(&dir).run(&spec()).expect("warm run");
    assert_eq!(warm.aggregate, cold.aggregate);
    assert_eq!(
        format!("{:?}", warm.aggregate),
        format!("{:?}", cold.aggregate),
        "disk replay must be bitwise identical"
    );
    assert_eq!(
        warm.stats.cached_jobs as usize, warm.stats.jobs,
        "zero recomputed jobs on an unchanged spec"
    );
    assert!(warm.stats.disk_cache.hits > 0);
    assert!(
        warm.stats.render().contains("disk cache"),
        "{}",
        warm.stats.render()
    );

    // And a disk-free engine agrees (the disk layer changes nothing).
    let reference = Engine::new(2).run(&spec()).expect("reference run");
    assert_eq!(reference.aggregate, cold.aggregate);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn declined_samples_are_persisted_too() {
    // A generator that cannot produce a valid task: every job is a
    // declined sample, memoized on disk, so the second instance skips
    // generation entirely.
    let tiny = GeneratorPreset::Custom(hetrta_gen::NfjParams::small_tasks().with_node_range(1, 1));
    let mut spec = SweepSpec::suspension(vec![2], vec![0.05], 4, 0);
    spec.preset = tiny;
    let dir = temp_dir("skips");

    let cold = engine_on(&dir).run(&spec).expect("cold run");
    assert_eq!(cold.stats.skipped_jobs, 4);
    let warm = engine_on(&dir).run(&spec).expect("warm run");
    assert_eq!(warm.stats.skipped_jobs, 4);
    assert_eq!(warm.stats.cached_jobs, 4, "skips replay from disk");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_and_stale_entries_fall_back_to_recompute() {
    let dir = temp_dir("corrupt");
    let cold = engine_on(&dir).run(&spec()).expect("cold run");

    // Vandalize every persisted entry: truncated, garbage, stale magic.
    let mut vandalized = 0usize;
    for namespace in ["results", "identity"] {
        for shard in std::fs::read_dir(dir.join(namespace)).expect("namespace dir") {
            for entry in std::fs::read_dir(shard.expect("shard").path()).expect("shard dir") {
                let path = entry.expect("entry").path();
                let content = match vandalized % 3 {
                    0 => Vec::new(),                                     // truncated to nothing
                    1 => b"\xDE\xAD\xBE\xEF garbage".to_vec(),           // binary garbage
                    _ => b"hetrta-cache v0\nold payload\n00\n".to_vec(), // stale version
                };
                std::fs::write(&path, content).expect("vandalize");
                vandalized += 1;
            }
        }
    }
    assert!(vandalized > 0, "the cold run persisted entries");

    // The engine must recompute everything, bit-identically, no panic.
    let recovered = engine_on(&dir).run(&spec()).expect("recovery run");
    assert_eq!(recovered.aggregate, cold.aggregate);
    assert_eq!(recovered.stats.disk_cache.hits, 0, "nothing valid on disk");
    assert!(recovered.stats.disk_cache.misses > 0);

    // Recomputation rewrote the entries: a further instance replays.
    let warm = engine_on(&dir).run(&spec()).expect("rewritten run");
    assert_eq!(warm.stats.cached_jobs as usize, warm.stats.jobs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_engines_share_one_cache_dir_under_concurrent_gc() {
    // Two engines (standing in for two processes — nothing shared but
    // the directory) run the same sweep concurrently while a third
    // thread aggressively gc's the directory the whole time. Entries
    // vanishing mid-run must read as misses and be recomputed; tmp+rename
    // from the concurrent writer must never yield a torn read; the
    // outputs must match a disk-free reference bitwise.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let dir = temp_dir("two-engines");
    let reference = Engine::new(2).run(&spec()).expect("reference run");

    let stop = Arc::new(AtomicBool::new(false));
    let gc_thread = {
        let dir = dir.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // A dedicated handle, like an operator's `hetrta cache gc`
            // racing the daemons.
            let cache = hetrta_engine::DiskCache::open(&dir).expect("gc handle");
            let mut sweeps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                cache.gc(0).expect("gc never errors");
                sweeps += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            sweeps
        })
    };

    let runs: Vec<_> = (0..2)
        .map(|_| {
            let dir = dir.clone();
            std::thread::spawn(move || engine_on(&dir).run(&spec()).expect("concurrent run"))
        })
        .collect();
    let outputs: Vec<_> = runs
        .into_iter()
        .map(|t| t.join().expect("run thread"))
        .collect();
    stop.store(true, Ordering::Relaxed);
    let sweeps = gc_thread.join().expect("gc thread");
    assert!(sweeps > 0, "gc actually raced the engines");

    for out in &outputs {
        assert_eq!(out.aggregate, reference.aggregate);
        assert_eq!(
            format!("{:?}", out.aggregate),
            format!("{:?}", reference.aggregate),
            "bitwise identical under gc pressure"
        );
    }
    // The directory is still a working cache afterwards.
    let warm = engine_on(&dir).run(&spec()).expect("post-stress run");
    assert_eq!(warm.aggregate, reference.aggregate);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_cache_dir_is_a_builder_error() {
    let err = EngineBuilder::new()
        .with_cache_dir("/proc/definitely/not/writable")
        .build()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, EngineError::Cache(_)), "{err}");
    assert!(err.to_string().contains("disk cache"), "{err}");
}

#[test]
fn disk_layer_composes_with_bounded_memory_caches() {
    // Memory far too small to hold the run: the disk still captures
    // everything, so instance two is fully cached even though instance
    // one was evicting constantly.
    let dir = temp_dir("bounded");
    let tiny = EngineBuilder::new()
        .threads(2)
        .cache_capacity(32)
        .with_cache_dir(&dir)
        .build()
        .expect("build");
    let cold = tiny.run(&spec()).expect("cold run");

    let warm = engine_on(&dir).run(&spec()).expect("warm run");
    assert_eq!(warm.aggregate, cold.aggregate);
    assert_eq!(warm.stats.cached_jobs as usize, warm.stats.jobs);
    let _ = std::fs::remove_dir_all(&dir);
}
