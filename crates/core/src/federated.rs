//! Federated scheduling of heterogeneous DAG task *sets* (extension).
//!
//! The paper analyzes one task; real systems run several. Under *federated
//! scheduling* (Li/Baruah style) every high-utilization DAG task receives a
//! dedicated cluster of host cores, sized so that its response-time bound
//! meets its deadline; the task set is schedulable when the clusters fit
//! on the platform. This module sizes clusters with either the homogeneous
//! bound (Eq. 1) or the paper's heterogeneous bound (Theorem 1),
//! quantifying at system level how many cores the heterogeneous analysis
//! saves — the ablation reported by the `federated` experiment binary.
//!
//! Platform assumption: every offloading task uses its own accelerator
//! (the paper's model has a single task and a single device; sharing one
//! device among tasks needs inter-task device arbitration, which neither
//! the paper nor this extension models).

use hetrta_dag::{HeteroDagTask, Rational};

use crate::analysis::HeterogeneousAnalysis;
use crate::AnalysisError;

/// Which response-time bound sizes the per-task clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisKind {
    /// Eq. 1 on the original DAG (homogeneous baseline).
    Homogeneous,
    /// Theorem 1 on the transformed DAG.
    Heterogeneous,
    /// `min(R_hom(τ), R_het(τ'))` — a designer free to deploy either
    /// program version.
    Best,
}

/// Cluster assignment for one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterAssignment {
    /// Index of the task in the input slice.
    pub task: usize,
    /// Dedicated host cores granted.
    pub cores: u64,
    /// The bound achieved with that many cores.
    pub bound: Rational,
}

/// Result of federated partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedResult {
    /// Per-task assignments (only present when schedulable).
    pub assignments: Vec<ClusterAssignment>,
    /// Total cores required.
    pub cores_needed: u64,
    /// Cores available on the platform.
    pub cores_available: u64,
}

impl FederatedResult {
    /// `true` if every task received a cluster and they fit the platform.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        !self.assignments.is_empty() && self.cores_needed <= self.cores_available
    }
}

/// Smallest core count `m ≤ max_cores` for which the chosen bound of
/// `task` meets its deadline, with the bound value; `None` if even
/// `max_cores` does not suffice (e.g. the critical path exceeds `D`).
///
/// Uses binary search — all three bounds are non-increasing in `m`.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the underlying analyses.
pub fn minimum_cores(
    task: &HeteroDagTask,
    kind: AnalysisKind,
    max_cores: u64,
) -> Result<Option<(u64, Rational)>, AnalysisError> {
    let deadline = task.deadline().to_rational();
    let bound_at = |m: u64| -> Result<Rational, AnalysisError> {
        let report = HeterogeneousAnalysis::run(task, m)?;
        Ok(match kind {
            AnalysisKind::Homogeneous => report.r_hom_original(),
            AnalysisKind::Heterogeneous => report.r_het(),
            AnalysisKind::Best => report.best_bound(),
        })
    };
    if bound_at(max_cores)? > deadline {
        return Ok(None);
    }
    let (mut lo, mut hi) = (1u64, max_cores);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if bound_at(mid)? <= deadline {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(Some((lo, bound_at(lo)?)))
}

/// Federated partitioning: sizes a dedicated cluster for every task and
/// checks the platform capacity.
///
/// Returns the assignments even when the set does not fit (so callers can
/// report how many cores *would* be needed); an unschedulable single task
/// (deadline below its critical path) yields `cores_needed = u64::MAX`.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the underlying analyses.
///
/// # Examples
///
/// ```
/// use hetrta_core::federated::{federated_partition, AnalysisKind};
/// use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new();
/// let pre = b.node("pre", Ticks::new(2));
/// let gpu = b.node("gpu", Ticks::new(10));
/// let cpu = b.node("cpu", Ticks::new(9));
/// let post = b.node("post", Ticks::new(2));
/// b.edges([(pre, gpu), (pre, cpu), (gpu, post), (cpu, post)])?;
/// let task = HeteroDagTask::new(b.build()?, gpu, Ticks::new(40), Ticks::new(20))?;
///
/// let result = federated_partition(&[task], 8, AnalysisKind::Heterogeneous)?;
/// assert!(result.is_schedulable());
/// # Ok(())
/// # }
/// ```
pub fn federated_partition(
    tasks: &[HeteroDagTask],
    total_cores: u64,
    kind: AnalysisKind,
) -> Result<FederatedResult, AnalysisError> {
    let mut assignments = Vec::with_capacity(tasks.len());
    let mut needed: u64 = 0;
    for (i, task) in tasks.iter().enumerate() {
        match minimum_cores(task, kind, total_cores.max(1))? {
            Some((cores, bound)) => {
                needed = needed.saturating_add(cores);
                assignments.push(ClusterAssignment {
                    task: i,
                    cores,
                    bound,
                });
            }
            None => {
                needed = u64::MAX;
                assignments.push(ClusterAssignment {
                    task: i,
                    cores: u64::MAX,
                    bound: Rational::from_integer(-1),
                });
            }
        }
    }
    Ok(FederatedResult {
        assignments,
        cores_needed: needed,
        cores_available: total_cores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::{DagBuilder, Ticks};

    fn offload_heavy_task(deadline: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let pre = b.node("pre", Ticks::new(2));
        let gpu = b.node("gpu", Ticks::new(20));
        let c1 = b.node("c1", Ticks::new(8));
        let c2 = b.node("c2", Ticks::new(8));
        let c3 = b.node("c3", Ticks::new(8));
        let post = b.node("post", Ticks::new(2));
        b.edges([
            (pre, gpu),
            (pre, c1),
            (pre, c2),
            (pre, c3),
            (gpu, post),
            (c1, post),
            (c2, post),
            (c3, post),
        ])
        .unwrap();
        HeteroDagTask::new(
            b.build().unwrap(),
            gpu,
            Ticks::new(deadline),
            Ticks::new(deadline),
        )
        .unwrap()
    }

    #[test]
    fn minimum_cores_is_monotone_in_deadline() {
        let tight = minimum_cores(&offload_heavy_task(30), AnalysisKind::Heterogeneous, 16)
            .unwrap()
            .unwrap();
        let loose = minimum_cores(&offload_heavy_task(48), AnalysisKind::Heterogeneous, 16)
            .unwrap()
            .unwrap();
        assert!(loose.0 <= tight.0);
    }

    #[test]
    fn heterogeneous_needs_no_more_cores_than_best_baseline() {
        for d in [30u64, 36, 42, 48] {
            let task = offload_heavy_task(d);
            let hom = minimum_cores(&task, AnalysisKind::Homogeneous, 32).unwrap();
            let best = minimum_cores(&task, AnalysisKind::Best, 32).unwrap();
            if let (Some((mh, _)), Some((mb, _))) = (hom, best) {
                assert!(mb <= mh, "best {mb} > hom {mh} at D = {d}");
            }
        }
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        let task = offload_heavy_task(36);
        for kind in [
            AnalysisKind::Homogeneous,
            AnalysisKind::Heterogeneous,
            AnalysisKind::Best,
        ] {
            let bs = minimum_cores(&task, kind, 24).unwrap();
            let linear = (1..=24u64).find(|&m| {
                let r = HeterogeneousAnalysis::run(&task, m).unwrap();
                let b = match kind {
                    AnalysisKind::Homogeneous => r.r_hom_original(),
                    AnalysisKind::Heterogeneous => r.r_het(),
                    AnalysisKind::Best => r.best_bound(),
                };
                b <= task.deadline().to_rational()
            });
            assert_eq!(bs.map(|(m, _)| m), linear);
        }
    }

    #[test]
    fn impossible_deadline_returns_none() {
        // deadline below the critical path (2 + 20 + 2 = 24)
        let task = offload_heavy_task(20);
        assert_eq!(
            minimum_cores(&task, AnalysisKind::Homogeneous, 64).unwrap(),
            None
        );
    }

    #[test]
    fn partition_accounts_all_tasks() {
        let tasks = vec![
            offload_heavy_task(40),
            offload_heavy_task(36),
            offload_heavy_task(48),
        ];
        let result = federated_partition(&tasks, 16, AnalysisKind::Best).unwrap();
        assert_eq!(result.assignments.len(), 3);
        let sum: u64 = result.assignments.iter().map(|a| a.cores).sum();
        assert_eq!(sum, result.cores_needed);
        assert!(result.is_schedulable());
    }

    #[test]
    fn partition_reports_infeasible_task() {
        let tasks = vec![offload_heavy_task(40), offload_heavy_task(10)];
        let result = federated_partition(&tasks, 16, AnalysisKind::Best).unwrap();
        assert_eq!(result.cores_needed, u64::MAX);
        assert!(!result.is_schedulable());
    }

    #[test]
    fn empty_task_set_is_trivially_unschedulable_result() {
        let result = federated_partition(&[], 4, AnalysisKind::Best).unwrap();
        assert!(!result.is_schedulable());
        assert_eq!(result.cores_needed, 0);
    }
}
