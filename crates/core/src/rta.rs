//! Response-time analysis: Equation 1 (`R_hom`) and Theorem 1 (`R_het`).
//!
//! All bounds are computed in exact [`Rational`] arithmetic: the equations
//! divide integer workloads by the core count `m`, and the *comparison*
//! `C_off ⋛ R_hom(G_par)` decides which bound applies — floating-point
//! round-off there could select the wrong scenario.

use core::fmt;

use hetrta_dag::algo::CriticalPath;
use hetrta_dag::{Dag, DagTask, Rational, Ticks};

use crate::transform::TransformedTask;
use crate::AnalysisError;

/// The execution scenario of Theorem 1 that applies to a transformed task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scenario {
    /// **Scenario 1**: `v_off` does not belong to the critical path of `G'`.
    /// Some path of `G_par` is longer than `C_off`, so the offloaded node
    /// can never delay the task; its WCET is discounted from the
    /// self-interference term (Eq. 2).
    OffNotOnCriticalPath,
    /// **Scenario 2.1**: `v_off` is on the critical path and
    /// `C_off ≥ R_hom(G_par)` — the host finishes the parallel sub-DAG
    /// before the accelerator returns, so *all* of `vol(G_par)` is
    /// discounted (Eq. 3).
    OffOnCriticalPathDominant,
    /// **Scenario 2.2**: `v_off` is on the critical path but
    /// `C_off ≤ R_hom(G_par)` — the parallel sub-DAG determines the finish
    /// of the barrier section; `C_off` is replaced by `R_hom(G_par)` in the
    /// chain term (Eq. 4).
    OffOnCriticalPathDominated,
}

impl Scenario {
    /// The paper's label for the scenario (`"1"`, `"2.1"`, `"2.2"`).
    #[must_use]
    pub fn paper_label(self) -> &'static str {
        match self {
            Scenario::OffNotOnCriticalPath => "1",
            Scenario::OffOnCriticalPathDominant => "2.1",
            Scenario::OffOnCriticalPathDominated => "2.2",
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario {}", self.paper_label())
    }
}

/// Equation 1 applied to a bare graph: `R_hom(G) = len(G) + (vol(G) − len(G))/m`.
///
/// This is the classical bound for a DAG executed by any work-conserving
/// scheduler on `m` identical cores. The paper also applies it to the
/// (possibly disconnected, multi-terminal) sub-DAG `G_par`, which this
/// function supports; an empty graph yields zero.
///
/// # Errors
///
/// - [`AnalysisError::ZeroCores`] if `m == 0`;
/// - [`AnalysisError::Dag`] if the graph is cyclic.
///
/// # Examples
///
/// ```
/// use hetrta_core::r_hom_dag;
/// use hetrta_dag::{DagBuilder, Rational, Ticks};
///
/// let mut b = DagBuilder::new();
/// let v1 = b.unlabeled_node(Ticks::new(4));
/// let v2 = b.unlabeled_node(Ticks::new(4));
/// b.edge(v1, v2)?;
/// let dag = b.build()?;
/// // len = 8, vol = 8 → bound 8 regardless of m
/// assert_eq!(r_hom_dag(&dag, 4)?, Rational::from_integer(8));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn r_hom_dag(dag: &Dag, m: u64) -> Result<Rational, AnalysisError> {
    if m == 0 {
        return Err(AnalysisError::ZeroCores);
    }
    let len = CriticalPath::try_of(dag)?.length();
    let vol = dag.volume();
    Ok(graham(len, vol, len, m))
}

/// Equation 1 from precomputed parts: `len(G) + (vol(G) − len(G))/m`.
///
/// Operation-for-operation identical to [`r_hom_dag`] — callers that
/// already hold `len(G)` and `vol(G)` (e.g. through a derived-data cache
/// or a [`TransformedTask`]) skip the critical-path recomputation and get
/// the bitwise-same rational.
///
/// # Errors
///
/// [`AnalysisError::ZeroCores`] if `m == 0`.
pub fn r_hom_parts(len: Ticks, vol: Ticks, m: u64) -> Result<Rational, AnalysisError> {
    if m == 0 {
        return Err(AnalysisError::ZeroCores);
    }
    Ok(graham(len, vol, len, m))
}

/// `chain + (vol − discount)/m` with everything exact.
fn graham(chain: Ticks, vol: Ticks, discount: Ticks, m: u64) -> Rational {
    debug_assert!(vol >= discount);
    chain.to_rational()
        + Rational::new((vol - discount).get() as i128, 1) / Rational::from_integer(m as i128)
}

/// Equation 1 on a task: `R_hom(τ)`.
///
/// # Errors
///
/// See [`r_hom_dag`].
pub fn r_hom(task: &DagTask, m: u64) -> Result<Rational, AnalysisError> {
    r_hom_dag(task.dag(), m)
}

/// The result of Theorem 1 for one transformed task and core count.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HetBound {
    scenario: Scenario,
    r_het: Rational,
    r_hom_g_par: Rational,
    r_hom_transformed: Rational,
    m: u64,
}

impl HetBound {
    /// Which scenario of Theorem 1 applied.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// The heterogeneous response-time upper bound `R_het(τ')`, exactly as
    /// stated by Theorem 1.
    #[must_use]
    pub fn value(&self) -> Rational {
        self.r_het
    }

    /// `min(R_het(τ'), R_hom(G'))` — never worse than the homogeneous
    /// bound on the transformed graph (see the Scenario 2.2 tightness
    /// note in the [`r_het`] documentation).
    #[must_use]
    pub fn tight_value(&self) -> Rational {
        self.r_het.min(self.r_hom_transformed)
    }

    /// Eq. 1 applied to the transformed graph `G'`.
    #[must_use]
    pub fn r_hom_transformed(&self) -> Rational {
        self.r_hom_transformed
    }

    /// `R_hom(G_par)` — the Eq. 1 bound of the parallel sub-DAG, the pivot
    /// of the scenario 2.1 / 2.2 distinction.
    #[must_use]
    pub fn r_hom_g_par(&self) -> Rational {
        self.r_hom_g_par
    }

    /// The host core count the bound was computed for.
    #[must_use]
    pub fn cores(&self) -> u64 {
        self.m
    }
}

/// Theorem 1: the heterogeneous response-time bound `R_het(τ')` of a
/// transformed task on `m` host cores plus one accelerator.
///
/// The three scenarios (see [`Scenario`]) are selected exactly as in the
/// paper:
///
/// 1. `v_off ∉` critical path of `G'` → Eq. 2:
///    `len(G') + (vol(G') − len(G') − C_off)/m`;
/// 2. `v_off ∈` critical path and `C_off ≥ R_hom(G_par)` → Eq. 3:
///    `len(G') + (vol(G') − len(G') − vol(G_par))/m`;
/// 3. `v_off ∈` critical path and `C_off < R_hom(G_par)` → Eq. 4:
///    `len(G') − C_off + len(G_par) + (vol(G') − len(G') − len(G_par))/m`.
///
/// At `C_off = R_hom(G_par)` Equations 3 and 4 coincide (shown in the paper
/// after the proof); we classify the boundary as Scenario 2.1.
///
/// ## A note on Scenario 2.2 tightness
///
/// Theorem 1 is derived for the generic transformed structure of the
/// paper's Figure 4, where `G_par` and `v_off` rejoin before the remaining
/// sub-DAG. On arbitrary task graphs (still within the model) the exits of
/// `G_par` may attach at different depths of `Succ(v_off)`; Equation 4 then
/// remains a *sound* upper bound but can exceed the plain Eq. 1 bound on
/// `G'` (it inflates the chain term by `len(G_par) − C_off` while only
/// discounting `len(G_par)/m`). [`HetBound::value`] returns the faithful
/// Theorem 1 value; use [`HetBound::tight_value`] for
/// `min(R_het, R_hom(G'))`, which is sound for `τ'` because both inputs
/// are.
///
/// # Errors
///
/// Returns [`AnalysisError::ZeroCores`] if `m == 0`.
///
/// # Examples
///
/// ```
/// use hetrta_core::{r_het, transform, Scenario};
/// use hetrta_dag::{DagBuilder, HeteroDagTask, Rational, Ticks};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Figure 1(a) of the paper (reconstructed WCETs), m = 2.
/// let mut b = DagBuilder::new();
/// let v1 = b.node("v1", Ticks::new(1));
/// let v2 = b.node("v2", Ticks::new(4));
/// let v3 = b.node("v3", Ticks::new(6));
/// let v4 = b.node("v4", Ticks::new(2));
/// let v5 = b.node("v5", Ticks::new(1));
/// let voff = b.node("v_off", Ticks::new(4));
/// b.edges([(v1, v2), (v1, v3), (v1, v4), (v4, voff), (v2, v5), (v3, v5), (voff, v5)])?;
/// let task = HeteroDagTask::new(b.build()?, voff, Ticks::new(50), Ticks::new(50))?;
///
/// let bound = r_het(&transform(&task)?, 2)?;
/// assert_eq!(bound.scenario(), Scenario::OffNotOnCriticalPath);
/// // Eq. 2: 10 + (18 − 10 − 4)/2 = 12
/// assert_eq!(bound.value(), Rational::from_integer(12));
/// # Ok(())
/// # }
/// ```
pub fn r_het(t: &TransformedTask, m: u64) -> Result<HetBound, AnalysisError> {
    if m == 0 {
        return Err(AnalysisError::ZeroCores);
    }
    let len2 = t.len_transformed();
    let vol2 = t.vol_transformed();
    let c_off = t.c_off();
    // `len(G_par)` and `vol(G_par)` were computed by the transformation;
    // feeding them to Eq. 1 directly is bitwise identical to re-deriving
    // the critical path of `G_par` here.
    let r_hom_g_par = graham(t.len_g_par(), t.vol_g_par(), t.len_g_par(), m);
    let r_hom_transformed = graham(len2, vol2, len2, m);

    let (scenario, r_het) = if !t.off_on_critical_path() {
        // Eq. 2. vol(G') − len(G') ≥ C_off because v_off is outside the
        // critical path, so the subtraction below cannot underflow.
        (
            Scenario::OffNotOnCriticalPath,
            graham(len2, vol2, len2 + c_off, m),
        )
    } else if c_off.to_rational() >= r_hom_g_par {
        // Eq. 3.
        (
            Scenario::OffOnCriticalPathDominant,
            graham(len2, vol2, len2 + t.vol_g_par(), m),
        )
    } else {
        // Eq. 4.
        let chain = len2 - c_off + t.len_g_par();
        (
            Scenario::OffOnCriticalPathDominated,
            graham(chain, vol2, len2 + t.len_g_par(), m),
        )
    };
    Ok(HetBound {
        scenario,
        r_het,
        r_hom_g_par,
        r_hom_transformed,
        m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::transform;
    use hetrta_dag::{DagBuilder, HeteroDagTask, NodeId};

    fn figure1_task() -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(50), Ticks::new(50)).unwrap()
    }

    /// Builds a fork-join task `src → {host_chain, v_off} → sink` where the
    /// host branch is a chain of `k` nodes of WCET `w` and `C_off` is given.
    fn forkjoin_task(k: usize, w: u64, c_off: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ONE);
        let sink = b.node("sink", Ticks::ONE);
        let voff = b.node("v_off", Ticks::new(c_off));
        b.edge(src, voff).unwrap();
        b.edge(voff, sink).unwrap();
        let mut prev = src;
        for i in 0..k {
            let v = b.node(format!("h{i}"), Ticks::new(w));
            b.edge(prev, v).unwrap();
            prev = v;
        }
        b.edge(prev, sink).unwrap();
        HeteroDagTask::new(
            b.build().unwrap(),
            voff,
            Ticks::new(10_000),
            Ticks::new(10_000),
        )
        .unwrap()
    }

    #[test]
    fn r_hom_matches_paper_example() {
        let task = figure1_task();
        let r = r_hom(&task.as_homogeneous(), 2).unwrap();
        assert_eq!(r, Rational::from_integer(13));
    }

    #[test]
    fn r_hom_is_exact_rational_for_odd_interference() {
        let task = figure1_task();
        // m = 4: 8 + 10/4 = 10.5
        let r = r_hom(&task.as_homogeneous(), 4).unwrap();
        assert_eq!(r, Rational::new(21, 2));
    }

    #[test]
    fn r_hom_zero_cores_rejected() {
        let task = figure1_task();
        assert_eq!(
            r_hom(&task.as_homogeneous(), 0).unwrap_err(),
            AnalysisError::ZeroCores
        );
        let t = transform(&task).unwrap();
        assert_eq!(r_het(&t, 0).unwrap_err(), AnalysisError::ZeroCores);
    }

    #[test]
    fn r_hom_empty_graph_is_zero() {
        assert_eq!(r_hom_dag(&Dag::new(), 2).unwrap(), Rational::ZERO);
    }

    #[test]
    fn figure1_is_scenario_1_with_bound_12() {
        let t = transform(&figure1_task()).unwrap();
        let b = r_het(&t, 2).unwrap();
        assert_eq!(b.scenario(), Scenario::OffNotOnCriticalPath);
        assert_eq!(b.value(), Rational::from_integer(12));
        // R_hom(G_par) = 6 + (10-6)/2 = 8 > C_off = 4, consistent with
        // len(G_par) > C_off required by Scenario 1.
        assert_eq!(b.r_hom_g_par(), Rational::from_integer(8));
        assert_eq!(b.cores(), 2);
    }

    #[test]
    fn scenario_2_1_when_c_off_dominates() {
        // Host branch: 2 nodes of WCET 2 (len 4, vol 4); C_off = 50.
        // After transform, v_off is on the critical path and
        // C_off ≥ R_hom(G_par).
        let task = forkjoin_task(2, 2, 50);
        let t = transform(&task).unwrap();
        let b = r_het(&t, 2).unwrap();
        assert_eq!(b.scenario(), Scenario::OffOnCriticalPathDominant);
        // G' chain: src(1) → v_sync(0) → v_off(50) → sink(1): len 52.
        assert_eq!(t.len_transformed(), Ticks::new(52));
        // vol = 1+1+50+4 = 56, vol(G_par) = 4 → R = 52 + (56-52-4)/2 = 52.
        assert_eq!(b.value(), Rational::from_integer(52));
    }

    #[test]
    fn scenario_2_2_when_g_par_dominates() {
        // Host branch: 4 nodes of WCET 5 (len 20 = vol, chain); C_off = 10.
        // v_off on critical path? G' chain through host branch:
        // src(1) + sync(0) + 20 + sink(1) = 22; through v_off: 12. So v_off
        // NOT on critical path → scenario 1. To force scenario 2 we need
        // C_off > len(G_par) but C_off < R_hom(G_par): make G_par wide.
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ONE);
        let sink = b.node("sink", Ticks::ONE);
        let voff = b.node("v_off", Ticks::new(12));
        b.edge(src, voff).unwrap();
        b.edge(voff, sink).unwrap();
        // 6 parallel host nodes of WCET 5: len(G_par) = 5, vol = 30,
        // R_hom(G_par) on m=2 = 5 + 25/2 = 17.5 > C_off = 12 > len = 5.
        for i in 0..6 {
            let v = b.node(format!("p{i}"), Ticks::new(5));
            b.edge(src, v).unwrap();
            b.edge(v, sink).unwrap();
        }
        let task = HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(1000), Ticks::new(1000))
            .unwrap();
        let t = transform(&task).unwrap();
        // G' critical path: src(1) → sync(0) → v_off(12) → sink(1) = 14
        // vs parallel nodes: 1+0+5+1 = 7. So v_off IS on the critical path.
        assert!(t.off_on_critical_path());
        let bound = r_het(&t, 2).unwrap();
        assert_eq!(bound.scenario(), Scenario::OffOnCriticalPathDominated);
        // Eq. 4: len(G')=14, vol=44, len(G_par)=5, C_off=12:
        // 14 − 12 + 5 + (44 − 14 − 5)/2 = 7 + 12.5 = 19.5
        assert_eq!(bound.value(), Rational::new(39, 2));
        assert_eq!(bound.r_hom_g_par(), Rational::new(35, 2));
    }

    #[test]
    fn boundary_c_off_equals_r_hom_gpar_scenarios_coincide() {
        // Same wide structure, C_off tuned so C_off = R_hom(G_par).
        // 4 parallel nodes of WCET 4 on m=2: R_hom(G_par) = 4 + 12/2 = 10.
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::ONE);
        let sink = b.node("sink", Ticks::ONE);
        let voff = b.node("v_off", Ticks::new(10));
        b.edge(src, voff).unwrap();
        b.edge(voff, sink).unwrap();
        for i in 0..4 {
            let v = b.node(format!("p{i}"), Ticks::new(4));
            b.edge(src, v).unwrap();
            b.edge(v, sink).unwrap();
        }
        let task = HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(1000), Ticks::new(1000))
            .unwrap();
        let t = transform(&task).unwrap();
        let bound = r_het(&t, 2).unwrap();
        assert_eq!(bound.scenario(), Scenario::OffOnCriticalPathDominant);
        // Eq. 3: len(G') = 12, vol = 28, vol(G_par) = 16:
        //   12 + (28 − 12 − 16)/2 = 12.
        assert_eq!(bound.value(), Rational::from_integer(12));
        // Eq. 4 at the boundary gives the same value:
        //   12 − 10 + 4 + (28 − 12 − 4)/2 = 6 + 6 = 12. (paper remark)
        let eq4 = Rational::from_integer(12 - 10 + 4) + Rational::new(28 - 12 - 4, 2);
        assert_eq!(eq4, bound.value());
    }

    #[test]
    fn degenerate_chain_is_scenario_2_1() {
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let k = b.node("k", Ticks::new(5));
        let z = b.node("z", Ticks::new(2));
        b.edges([(a, k), (k, z)]).unwrap();
        let task =
            HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(20), Ticks::new(20)).unwrap();
        let t = transform(&task).unwrap();
        let bound = r_het(&t, 4).unwrap();
        // G_par empty: R_hom(G_par) = 0 ≤ C_off → scenario 2.1;
        // R = len(G') + (vol − len − 0)/m = 9 + 0/4 = 9.
        assert_eq!(bound.scenario(), Scenario::OffOnCriticalPathDominant);
        assert_eq!(bound.value(), Rational::from_integer(9));
    }

    #[test]
    fn scenario_labels() {
        assert_eq!(Scenario::OffNotOnCriticalPath.paper_label(), "1");
        assert_eq!(Scenario::OffOnCriticalPathDominant.paper_label(), "2.1");
        assert_eq!(Scenario::OffOnCriticalPathDominated.paper_label(), "2.2");
        assert_eq!(Scenario::OffNotOnCriticalPath.to_string(), "scenario 1");
    }

    #[test]
    fn r_het_more_precise_than_r_hom_on_transformed_task_for_large_coff() {
        let task = forkjoin_task(3, 2, 40);
        let t = transform(&task).unwrap();
        let het = r_het(&t, 4).unwrap().value();
        let hom_on_transformed = r_hom_dag(t.transformed(), 4).unwrap();
        assert!(het <= hom_on_transformed, "{het} > {hom_on_transformed}");
    }

    #[test]
    fn unknown_scenarios_never_underflow() {
        // Stress many shapes; graham() debug-asserts vol ≥ discount.
        for k in 1..6 {
            for c in [1u64, 3, 9, 27, 81] {
                let task = forkjoin_task(k, 2, c);
                let t = transform(&task).unwrap();
                for m in [1u64, 2, 3, 8, 16] {
                    let b = r_het(&t, m).unwrap();
                    assert!(!b.value().is_negative());
                }
            }
        }
        let _ = NodeId::from_index(0);
    }
}
