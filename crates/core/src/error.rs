//! Analysis errors.

use core::fmt;

use hetrta_dag::DagError;

/// Errors produced by the transformation and response-time analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The host core count `m` must be at least 1.
    ZeroCores,
    /// The task's DAG violates a structural assumption (wrapped cause).
    Dag(DagError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::ZeroCores => write!(f, "host must have at least one core"),
            AnalysisError::Dag(e) => write!(f, "task structure error: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Dag(e) => Some(e),
            AnalysisError::ZeroCores => None,
        }
    }
}

impl From<DagError> for AnalysisError {
    fn from(e: DagError) -> Self {
        AnalysisError::Dag(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            AnalysisError::ZeroCores.to_string(),
            "host must have at least one core"
        );
        let wrapped = AnalysisError::from(DagError::Empty);
        assert!(wrapped.to_string().contains("graph has no nodes"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        assert!(AnalysisError::ZeroCores.source().is_none());
        assert!(AnalysisError::from(DagError::Empty).source().is_some());
    }
}
