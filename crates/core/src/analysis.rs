//! One-call analysis façade.

use hetrta_dag::{HeteroDagTask, Rational, Ticks};

use crate::rta::{r_het, r_hom_dag, HetBound, Scenario};
use crate::transform::{transform, TransformedTask};
use crate::AnalysisError;

/// Entry point combining Algorithm 1 and Theorem 1.
///
/// See [`HeterogeneousAnalysis::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeterogeneousAnalysis;

/// Everything the analysis of one task on one platform produces.
///
/// Produced by [`HeterogeneousAnalysis::run`]; exposes (per the paper's
/// comparison methodology):
///
/// * `R_hom(τ)` — Eq. 1 on the *original* DAG, the homogeneous-analysis
///   baseline of §5.4;
/// * `R_hom(τ')` — Eq. 1 on the *transformed* DAG (what a homogeneous
///   analysis would say about the transformed program);
/// * `R_het(τ')` — Theorem 1, with its [`Scenario`];
/// * the full [`TransformedTask`] for further inspection or simulation;
/// * a deadline verdict.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    transformed: TransformedTask,
    het: HetBound,
    r_hom_original: Rational,
    r_hom_transformed: Rational,
    m: u64,
}

impl HeterogeneousAnalysis {
    /// Analyzes `task` on a host with `m` cores plus one accelerator.
    ///
    /// # Errors
    ///
    /// - [`AnalysisError::ZeroCores`] if `m == 0`;
    /// - [`AnalysisError::Dag`] if the task graph is structurally invalid.
    ///
    /// # Examples
    ///
    /// ```
    /// use hetrta_core::HeterogeneousAnalysis;
    /// use hetrta_dag::{DagBuilder, HeteroDagTask, Ticks};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = DagBuilder::new();
    /// let pre = b.node("pre", Ticks::new(2));
    /// let gpu = b.node("gpu", Ticks::new(20));
    /// let cpu = b.node("cpu", Ticks::new(18));
    /// let post = b.node("post", Ticks::new(2));
    /// b.edges([(pre, gpu), (pre, cpu), (gpu, post), (cpu, post)])?;
    /// let task = HeteroDagTask::new(b.build()?, gpu, Ticks::new(60), Ticks::new(40))?;
    ///
    /// let report = HeterogeneousAnalysis::run(&task, 2)?;
    /// assert!(report.is_schedulable());
    /// assert!(report.r_het() <= report.r_hom_original());
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(task: &HeteroDagTask, m: u64) -> Result<AnalysisReport, AnalysisError> {
        if m == 0 {
            return Err(AnalysisError::ZeroCores);
        }
        let transformed = transform(task)?;
        let het = r_het(&transformed, m)?;
        let r_hom_original = r_hom_dag(task.dag(), m)?;
        let r_hom_transformed = r_hom_dag(transformed.transformed(), m)?;
        Ok(AnalysisReport {
            transformed,
            het,
            r_hom_original,
            r_hom_transformed,
            m,
        })
    }
}

impl AnalysisReport {
    /// The heterogeneous bound `R_het(τ')` (Theorem 1).
    #[must_use]
    pub fn r_het(&self) -> Rational {
        self.het.value()
    }

    /// The homogeneous baseline `R_hom(τ)` (Eq. 1 on the original DAG).
    #[must_use]
    pub fn r_hom_original(&self) -> Rational {
        self.r_hom_original
    }

    /// `R_hom(τ')`: Eq. 1 applied to the transformed DAG.
    ///
    /// Always ≥ [`r_het`](AnalysisReport::r_het); the gap is exactly the
    /// benefit of accounting for heterogeneity.
    #[must_use]
    pub fn r_hom_transformed(&self) -> Rational {
        self.r_hom_transformed
    }

    /// The scenario of Theorem 1 that applied.
    #[must_use]
    pub fn scenario(&self) -> Scenario {
        self.het.scenario()
    }

    /// `R_hom(G_par)` used for the scenario decision.
    #[must_use]
    pub fn r_hom_g_par(&self) -> Rational {
        self.het.r_hom_g_par()
    }

    /// The transformation artifacts (G', v_sync, G_par).
    #[must_use]
    pub fn transformed(&self) -> &TransformedTask {
        &self.transformed
    }

    /// Host core count of the analysis.
    #[must_use]
    pub fn cores(&self) -> u64 {
        self.m
    }

    /// The best (smallest) sound bound this analysis derived:
    /// `min(R_het(τ'), R_hom(τ))`.
    ///
    /// `R_hom(τ)` is sound for the original, untransformed program;
    /// `R_het(τ')` for the transformed one. A designer free to pick either
    /// program version can take the minimum — the paper's Figure 9 shows
    /// which wins where.
    #[must_use]
    pub fn best_bound(&self) -> Rational {
        self.het.value().min(self.r_hom_original)
    }

    /// Deadline verdict for the transformed task:
    /// `R_het(τ') ≤ D`.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.r_het() <= self.deadline().to_rational()
    }

    /// Deadline verdict for the original task under the homogeneous
    /// analysis: `R_hom(τ) ≤ D`.
    #[must_use]
    pub fn is_schedulable_homogeneous(&self) -> bool {
        self.r_hom_original <= self.deadline().to_rational()
    }

    /// The task's relative deadline.
    #[must_use]
    pub fn deadline(&self) -> Ticks {
        self.transformed.original().deadline()
    }

    /// Percentage change of `R_hom(τ)` with respect to `R_het(τ')`
    /// (the paper's Figure 9 metric): `100·(R_hom − R_het)/R_het`.
    ///
    /// Positive values mean the heterogeneous analysis is tighter.
    #[must_use]
    pub fn improvement_percent(&self) -> f64 {
        let het = self.r_het().to_f64();
        if het == 0.0 {
            return 0.0;
        }
        100.0 * (self.r_hom_original.to_f64() - het) / het
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetrta_dag::DagBuilder;

    fn figure1_task(deadline: u64) -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        HeteroDagTask::new(
            b.build().unwrap(),
            voff,
            Ticks::new(deadline),
            Ticks::new(deadline),
        )
        .unwrap()
    }

    #[test]
    fn report_exposes_all_bounds() {
        let report = HeterogeneousAnalysis::run(&figure1_task(50), 2).unwrap();
        assert_eq!(report.r_hom_original(), Rational::from_integer(13));
        assert_eq!(report.r_het(), Rational::from_integer(12));
        // R_hom(τ') = 10 + (18-10)/2 = 14
        assert_eq!(report.r_hom_transformed(), Rational::from_integer(14));
        assert_eq!(report.scenario(), Scenario::OffNotOnCriticalPath);
        assert_eq!(report.cores(), 2);
        assert_eq!(report.best_bound(), Rational::from_integer(12));
        assert!((report.improvement_percent() - 100.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn het_always_at_most_hom_on_transformed() {
        for m in [1u64, 2, 4, 8, 16] {
            let report = HeterogeneousAnalysis::run(&figure1_task(50), m).unwrap();
            assert!(report.r_het() <= report.r_hom_transformed());
        }
    }

    #[test]
    fn schedulability_verdicts() {
        // D = 12: het says yes (R_het = 12), hom says no (R_hom = 13).
        let report = HeterogeneousAnalysis::run(&figure1_task(12), 2).unwrap();
        assert!(report.is_schedulable());
        assert!(!report.is_schedulable_homogeneous());
        assert_eq!(report.deadline(), Ticks::new(12));

        // D = 11: both say no.
        let report = HeterogeneousAnalysis::run(&figure1_task(11), 2).unwrap();
        assert!(!report.is_schedulable());
    }

    #[test]
    fn zero_cores_error() {
        assert_eq!(
            HeterogeneousAnalysis::run(&figure1_task(50), 0).unwrap_err(),
            AnalysisError::ZeroCores
        );
    }

    #[test]
    fn more_cores_tighten_both_bounds() {
        let r2 = HeterogeneousAnalysis::run(&figure1_task(50), 2).unwrap();
        let r16 = HeterogeneousAnalysis::run(&figure1_task(50), 16).unwrap();
        assert!(r16.r_het() <= r2.r_het());
        assert!(r16.r_hom_original() <= r2.r_hom_original());
    }

    #[test]
    fn improvement_can_be_negative_for_tiny_coff() {
        // Tiny C_off: the barrier hurts; R_hom(τ) < R_het(τ').
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(40));
        let v3 = b.node("v3", Ticks::new(60));
        let v4 = b.node("v4", Ticks::new(20));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(1)); // ~0.8% of volume
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        let task =
            HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(500), Ticks::new(500)).unwrap();
        let report = HeterogeneousAnalysis::run(&task, 2).unwrap();
        assert!(report.improvement_percent() < 0.0);
        assert_eq!(report.best_bound(), report.r_hom_original());
    }
}
