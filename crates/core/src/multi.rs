//! Multi-offload response-time analysis (extension).
//!
//! The paper's future work asks for "(i) more tasks assigned to the
//! accelerator device, and (ii) more devices in the heterogeneous
//! architecture". This module provides a *conservative* analysis for a DAG
//! task with a **set** `O` of offloaded nodes executing on a pool of `d`
//! identical devices, combining two sound bounds:
//!
//! 1. **Typed Graham bound.** For work-conserving scheduling over two
//!    resource pools (m host cores, d devices),
//!    `R ≤ vol_H/m + vol_A/d + max_λ Σ_{v∈λ} C_v·(1 − 1/m_type(v))`,
//!    maximizing over source-sink paths `λ` (computed by a longest-path DP
//!    with per-node weights `C_v·(1 − 1/m_t)`). With a single pool this is
//!    exactly Eq. 1 of the paper. The argument is the classical chain
//!    construction: every instant not covered by the chain has the chain's
//!    next node waiting on a full pool of its own type.
//! 2. **Candidate Theorem 1.** When `d ≥ |O|` no offloaded node ever waits
//!    for a device, so for any single candidate `v ∈ O` the paper's
//!    transformation + Theorem 1 — treating the *other* offloaded nodes as
//!    host nodes — remains sound: modeling a device node as host work only
//!    adds pessimism, and the barrier argument is unaffected. We take the
//!    best candidate.
//!
//! The returned bound is the minimum of all applicable bounds. Soundness of
//! both components is exercised against [`hetrta-sim`]'s multi-device
//! simulator by the property suite in `tests/multi_offload.rs`.
//!
//! [`hetrta-sim`]: https://docs.rs/hetrta-sim

use hetrta_dag::algo::topological_order;
use hetrta_dag::{Dag, DagError, HeteroDagTask, NodeId, Rational, Ticks};

use crate::rta::r_het;
use crate::transform::transform;
use crate::AnalysisError;

/// A deployment option produced by the candidate analysis: transform the
/// task with respect to one offloaded node and run the transformed program.
#[derive(Debug, Clone)]
pub struct CandidatePlan {
    /// The offloaded node the transformation targeted.
    pub node: NodeId,
    /// Theorem 1 bound **for the transformed program** below.
    pub bound: Rational,
    /// The transformed DAG `G'` to deploy (original node ids preserved,
    /// `v_sync` appended).
    pub transformed: Dag,
    /// The synchronization node inside `transformed`.
    pub sync: NodeId,
}

/// The result of the multi-offload analysis.
///
/// The two component bounds certify *different programs*:
///
/// * [`typed_bound`](MultiOffloadBound::typed_bound) — the **original**,
///   untransformed task;
/// * [`candidate`](MultiOffloadBound::candidate) — the task transformed
///   with respect to the best single offloaded node (the program a designer
///   would deploy to exploit Theorem 1).
///
/// [`value`](MultiOffloadBound::value) is the smaller of the two — the best
/// bound achievable when the designer is free to pick the deployment; use
/// the individual accessors when the program version is fixed.
#[derive(Debug, Clone)]
pub struct MultiOffloadBound {
    typed: Rational,
    candidate: Option<CandidatePlan>,
    m: u64,
    devices: u64,
}

impl MultiOffloadBound {
    /// The best (smallest) bound over the available deployments.
    #[must_use]
    pub fn value(&self) -> Rational {
        match &self.candidate {
            Some(c) => c.bound.min(self.typed),
            None => self.typed,
        }
    }

    /// The typed (two-pool) Graham bound — valid for the original program.
    #[must_use]
    pub fn typed_bound(&self) -> Rational {
        self.typed
    }

    /// The best single-candidate Theorem 1 deployment, when applicable
    /// (`d ≥ |O|`).
    #[must_use]
    pub fn candidate(&self) -> Option<&CandidatePlan> {
        self.candidate.as_ref()
    }

    /// Host cores the analysis assumed.
    #[must_use]
    pub fn cores(&self) -> u64 {
        self.m
    }

    /// Devices the analysis assumed.
    #[must_use]
    pub fn devices(&self) -> u64 {
        self.devices
    }
}

/// Computes the typed two-pool Graham bound (see module docs).
///
/// Nodes in `offloaded` are device work; everything else is host work.
/// Zero-WCET nodes contribute nothing.
///
/// # Errors
///
/// - [`AnalysisError::ZeroCores`] if `m == 0`, or if `offloaded` is
///   non-empty and `devices == 0`;
/// - [`AnalysisError::Dag`] on unknown nodes or cycles.
pub fn typed_graham_bound(
    dag: &Dag,
    offloaded: &[NodeId],
    m: u64,
    devices: u64,
) -> Result<Rational, AnalysisError> {
    if m == 0 || (!offloaded.is_empty() && devices == 0) {
        return Err(AnalysisError::ZeroCores);
    }
    for &v in offloaded {
        if !dag.contains_node(v) {
            return Err(AnalysisError::Dag(DagError::UnknownNode(v)));
        }
    }
    let mut is_off = vec![false; dag.node_count()];
    for &v in offloaded {
        is_off[v.index()] = true;
    }
    let (mut vol_host, mut vol_dev) = (Ticks::ZERO, Ticks::ZERO);
    for v in dag.node_ids() {
        if is_off[v.index()] {
            vol_dev += dag.wcet(v);
        } else {
            vol_host += dag.wcet(v);
        }
    }
    // Longest path under weights C_v · (1 − 1/m_t), exactly rational:
    // track numerators over the common denominator m·d.
    let md = (m as i128) * (devices.max(1) as i128);
    let weight = |v: NodeId| -> i128 {
        let c = dag.wcet(v).get() as i128;
        if is_off[v.index()] {
            // c·(1 − 1/d) scaled by m·d = c·m·(d − 1)
            c * (m as i128) * (devices.max(1) as i128 - 1)
        } else {
            // c·(1 − 1/m) scaled by m·d = c·d·(m − 1)
            c * (devices.max(1) as i128) * (m as i128 - 1)
        }
    };
    let order = topological_order(dag)?;
    let mut best = vec![0i128; dag.node_count()];
    let mut overall = 0i128;
    for &v in &order {
        let pred_best = dag
            .predecessors(v)
            .iter()
            .map(|&p| best[p.index()])
            .max()
            .unwrap_or(0);
        best[v.index()] = pred_best + weight(v);
        overall = overall.max(best[v.index()]);
    }
    let chain_term = Rational::new(overall, md);
    let pool_term = Rational::new(vol_host.get() as i128, m as i128)
        + if devices == 0 {
            Rational::ZERO
        } else {
            Rational::new(vol_dev.get() as i128, devices as i128)
        };
    Ok(pool_term + chain_term)
}

/// Multi-offload analysis: best sound bound for `dag` with the node set
/// `offloaded` executing on `devices` devices and the rest on `m` host
/// cores (see the module documentation for the component bounds).
///
/// With `offloaded.len() == 1` and `devices == 1` this reduces to
/// `min(`[Theorem 1](crate::r_het)`, typed bound)` — never worse than the
/// paper's analysis.
///
/// # Errors
///
/// - [`AnalysisError::ZeroCores`] if `m == 0`, or `devices == 0` with a
///   non-empty offload set;
/// - [`AnalysisError::Dag`] on unknown nodes or cycles.
///
/// # Examples
///
/// ```
/// use hetrta_core::multi::r_het_multi;
/// use hetrta_dag::{DagBuilder, Ticks};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DagBuilder::new();
/// let src = b.node("src", Ticks::new(1));
/// let k1 = b.node("k1", Ticks::new(8));
/// let k2 = b.node("k2", Ticks::new(8));
/// let h = b.node("h", Ticks::new(6));
/// let sink = b.node("sink", Ticks::new(1));
/// b.edges([(src, k1), (src, k2), (src, h), (k1, sink), (k2, sink), (h, sink)])?;
/// let dag = b.build()?;
///
/// let bound = r_het_multi(&dag, &[k1, k2], 2, 2)?;
/// // both kernels overlap the host work: far below serial volume 24
/// assert!(bound.value() < hetrta_dag::Rational::from_integer(24));
/// # Ok(())
/// # }
/// ```
pub fn r_het_multi(
    dag: &Dag,
    offloaded: &[NodeId],
    m: u64,
    devices: u64,
) -> Result<MultiOffloadBound, AnalysisError> {
    let typed = typed_graham_bound(dag, offloaded, m, devices)?;
    let mut candidate: Option<CandidatePlan> = None;
    if !offloaded.is_empty() && devices >= offloaded.len() as u64 {
        for &v in offloaded {
            // Treat the other offloaded nodes as host nodes (conservative:
            // they never wait for a device when d ≥ |O|, and counting them
            // as host interference only adds pessimism).
            let vol = dag.volume();
            let task = HeteroDagTask::new(dag.clone(), v, vol, vol)?;
            let t = transform(&task)?;
            let bound = r_het(&t, m)?;
            let value = bound.tight_value();
            if candidate.as_ref().is_none_or(|best| value < best.bound) {
                candidate = Some(CandidatePlan {
                    node: v,
                    bound: value,
                    sync: t.sync_node(),
                    transformed: t.transformed().clone(),
                });
            }
        }
    }
    Ok(MultiOffloadBound {
        typed,
        candidate,
        m,
        devices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::r_hom_dag;
    use hetrta_dag::DagBuilder;

    fn two_kernel_dag() -> (Dag, [NodeId; 5]) {
        let mut b = DagBuilder::new();
        let src = b.node("src", Ticks::new(1));
        let k1 = b.node("k1", Ticks::new(6));
        let k2 = b.node("k2", Ticks::new(6));
        let h = b.node("h", Ticks::new(4));
        let sink = b.node("sink", Ticks::new(1));
        b.edges([
            (src, k1),
            (src, k2),
            (src, h),
            (k1, sink),
            (k2, sink),
            (h, sink),
        ])
        .unwrap();
        (b.build().unwrap(), [src, k1, k2, h, sink])
    }

    #[test]
    fn typed_bound_reduces_to_eq1_without_offloading() {
        let (dag, _) = two_kernel_dag();
        for m in [1u64, 2, 4, 8] {
            let typed = typed_graham_bound(&dag, &[], m, 0).unwrap();
            let eq1 = r_hom_dag(&dag, m).unwrap();
            assert_eq!(typed, eq1, "m = {m}");
        }
    }

    #[test]
    fn typed_bound_known_value() {
        let (dag, [_, k1, k2, _, _]) = two_kernel_dag();
        // m = 2, d = 1: vol_H = 6, vol_A = 12.
        // weights: host c·(1 − 1/2), device c·(1 − 1/1) = 0.
        // longest weighted path: src..h..sink = (1+4+1)/2 = 3.
        // bound = 6/2 + 12/1 + 3 = 18.
        let b = typed_graham_bound(&dag, &[k1, k2], 2, 1).unwrap();
        assert_eq!(b, Rational::from_integer(18));
        // d = 2: device chain weight c·(1/2): longest weighted path now
        // src,k,sink = 0.5·(1+1) + 3 = ... host weights (1+1)/2 = 1 plus
        // k·(1−1/2) = 3 → 4; host path 3. bound = 3 + 6 + 4 = 13.
        let b2 = typed_graham_bound(&dag, &[k1, k2], 2, 2).unwrap();
        assert_eq!(b2, Rational::from_integer(13));
    }

    #[test]
    fn multi_bound_beats_serial_volume() {
        let (dag, [_, k1, k2, _, _]) = two_kernel_dag();
        let bound = r_het_multi(&dag, &[k1, k2], 2, 2).unwrap();
        assert!(bound.value() < dag.volume().to_rational());
        assert_eq!(bound.cores(), 2);
        assert_eq!(bound.devices(), 2);
        // candidate analysis applies (d ≥ |O|)
        assert!(bound.candidate().is_some());
    }

    #[test]
    fn shared_device_disables_candidate_bound() {
        let (dag, [_, k1, k2, _, _]) = two_kernel_dag();
        let bound = r_het_multi(&dag, &[k1, k2], 2, 1).unwrap();
        assert!(bound.candidate().is_none());
        assert_eq!(bound.value(), bound.typed_bound());
    }

    #[test]
    fn single_offload_never_worse_than_typed() {
        let (dag, [_, k1, _, _, _]) = two_kernel_dag();
        let bound = r_het_multi(&dag, &[k1], 2, 1).unwrap();
        assert!(bound.value() <= bound.typed_bound());
        assert_eq!(bound.candidate().unwrap().node, k1);
    }

    #[test]
    fn empty_offload_set_equals_r_hom() {
        let (dag, _) = two_kernel_dag();
        let bound = r_het_multi(&dag, &[], 4, 0).unwrap();
        assert_eq!(bound.value(), r_hom_dag(&dag, 4).unwrap());
    }

    #[test]
    fn errors() {
        let (dag, [_, k1, ..]) = two_kernel_dag();
        assert_eq!(
            r_het_multi(&dag, &[k1], 0, 1).unwrap_err(),
            AnalysisError::ZeroCores
        );
        assert_eq!(
            r_het_multi(&dag, &[k1], 2, 0).unwrap_err(),
            AnalysisError::ZeroCores
        );
        let bogus = NodeId::from_index(99);
        assert!(matches!(
            r_het_multi(&dag, &[bogus], 2, 1),
            Err(AnalysisError::Dag(DagError::UnknownNode(_)))
        ));
    }
}
