//! Executable invariants of the transformation and analysis.
//!
//! The proof of Theorem 1 leans on structural facts about the transformed
//! task; this module states them as checkable predicates. They run inside
//! the crate's test suites (including property-based tests over random
//! DAGs) and are available to downstream users who want to audit a
//! transformation — e.g. after deserializing a task from disk.

use hetrta_dag::algo::{is_acyclic, Reachability};
use hetrta_dag::{DagError, HeteroDagTask};

use crate::transform::TransformedTask;

/// A violated invariant, with a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl core::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "transformation invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

macro_rules! ensure {
    ($cond:expr, $($msg:tt)+) => {
        if !$cond {
            return Err(InvariantViolation(format!($($msg)+)));
        }
    };
}

/// Checks every structural invariant of Algorithm 1's output.
///
/// Verified facts (`G` the original graph, `G'` the transformed one):
///
/// 1. `G'` is acyclic;
/// 2. `vol(G') = vol(G)` (the barrier adds no work);
/// 3. `len(G') ≥ len(G)` (the barrier can only lengthen chains);
/// 4. `v_sync` has zero WCET, is the only predecessor of `v_off`, and
///    *dominates* `v_off` and every node of `V_par` (each is a descendant
///    of `v_sync`);
/// 5. `V_par` is exactly the set of nodes parallel to `v_off` in `G`;
/// 6. `G_par`'s nodes/edges agree with `V_par` and the original edge set;
/// 7. host-side precedence is preserved: every edge of `G` has a
///    corresponding path in `G'` (rerouting strengthens, never drops,
///    ordering).
///
/// # Errors
///
/// Returns the first violated invariant with an explanatory message, or a
/// [`DagError`] if reachability cannot be computed (cyclic input —
/// impossible for outputs of [`crate::transform()`]).
pub fn check_transform_invariants(
    original: &HeteroDagTask,
    t: &TransformedTask,
) -> Result<(), InvariantViolation> {
    let g = original.dag();
    let g2 = t.transformed();
    let v_off = original.offloaded();
    let sync = t.sync_node();

    ensure!(is_acyclic(g2), "transformed graph contains a cycle");
    ensure!(
        g2.volume() == g.volume(),
        "volume changed: {} -> {}",
        g.volume(),
        g2.volume()
    );
    ensure!(g2.wcet(sync).is_zero(), "v_sync must have zero WCET");
    ensure!(
        t.len_transformed() >= hetrta_dag::algo::CriticalPath::of(g).length(),
        "transformation shortened the critical path"
    );
    ensure!(
        g2.predecessors(v_off) == [sync],
        "v_off must have v_sync as its only predecessor, got {:?}",
        g2.predecessors(v_off)
    );

    let reach2 = match Reachability::of(g2) {
        Ok(r) => r,
        Err(e) => return Err(InvariantViolation(dag_err(e))),
    };
    ensure!(
        reach2.descendants(sync).contains(v_off),
        "v_off must be a descendant of v_sync"
    );
    for v in t.par_nodes().iter() {
        ensure!(
            reach2.descendants(sync).contains(v),
            "parallel node {v} does not start after the barrier"
        );
    }

    // V_par definition check against the original graph.
    let reach1 = match Reachability::of(g) {
        Ok(r) => r,
        Err(e) => return Err(InvariantViolation(dag_err(e))),
    };
    let expected = reach1.parallel(v_off);
    ensure!(
        *t.par_nodes() == expected,
        "V_par mismatch: got {:?}, expected {:?}",
        t.par_nodes(),
        expected
    );

    // G_par agrees with the induced subgraph definition.
    ensure!(
        t.g_par().node_count() == t.par_nodes().len(),
        "G_par node count {} != |V_par| {}",
        t.g_par().node_count(),
        t.par_nodes().len()
    );
    for (f, to) in t.g_par().edges() {
        let (of, ot) = (t.g_par_original_id(f), t.g_par_original_id(to));
        ensure!(
            g.has_edge(of, ot),
            "G_par edge ({of}, {ot}) not present in the original graph"
        );
    }
    let internal_edges = g
        .edges()
        .filter(|&(a, b)| t.par_nodes().contains(a) && t.par_nodes().contains(b))
        .count();
    ensure!(
        t.g_par().edge_count() == internal_edges,
        "G_par edge count {} != internal original edges {}",
        t.g_par().edge_count(),
        internal_edges
    );

    // Precedence preservation: each original edge still implies ordering.
    for (a, b) in g.edges() {
        ensure!(
            a == b || reach2.is_ordered_before(a, b),
            "original precedence ({a}, {b}) lost in the transformed graph"
        );
    }
    Ok(())
}

fn dag_err(e: DagError) -> String {
    format!("reachability failed: {e}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::transform;
    use hetrta_dag::{DagBuilder, Ticks};

    fn sample_task() -> HeteroDagTask {
        let mut b = DagBuilder::new();
        let v1 = b.node("v1", Ticks::new(1));
        let v2 = b.node("v2", Ticks::new(4));
        let v3 = b.node("v3", Ticks::new(6));
        let v4 = b.node("v4", Ticks::new(2));
        let v5 = b.node("v5", Ticks::new(1));
        let voff = b.node("v_off", Ticks::new(4));
        b.edges([
            (v1, v2),
            (v1, v3),
            (v1, v4),
            (v4, voff),
            (v2, v5),
            (v3, v5),
            (voff, v5),
        ])
        .unwrap();
        HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(50), Ticks::new(50)).unwrap()
    }

    #[test]
    fn valid_transform_passes_all_invariants() {
        let task = sample_task();
        let t = transform(&task).unwrap();
        check_transform_invariants(&task, &t).unwrap();
    }

    #[test]
    fn violation_display() {
        let v = InvariantViolation("boom".into());
        assert_eq!(v.to_string(), "transformation invariant violated: boom");
    }

    #[test]
    fn tampered_transform_is_caught() {
        let task = sample_task();
        let mut t = transform(&task).unwrap();
        // Sabotage: flip v_sync's WCET through the public surface by
        // rebuilding a TransformedTask is not possible (fields private), so
        // instead check a mismatched task/transform pair is rejected.
        let mut b = DagBuilder::new();
        let a = b.node("a", Ticks::new(2));
        let k = b.node("k", Ticks::new(5));
        let z = b.node("z", Ticks::new(2));
        b.edges([(a, k), (k, z)]).unwrap();
        let other =
            HeteroDagTask::new(b.build().unwrap(), k, Ticks::new(20), Ticks::new(20)).unwrap();
        assert!(check_transform_invariants(&other, &t).is_err());
        let _ = &mut t;
    }
}
