//! # hetrta-core — heterogeneous DAG response-time analysis
//!
//! The primary contribution of *Serrano & Quiñones, "Response-Time Analysis
//! of DAG Tasks Supporting Heterogeneous Computing", DAC 2018*, implemented
//! from scratch:
//!
//! * [`transform`](crate::transform()) — **Algorithm 1**: given a heterogeneous DAG task `τ`
//!   whose node `v_off` executes on an accelerator, build the transformed
//!   task `τ'` by inserting a zero-WCET synchronization node `v_sync` that
//!   guarantees `v_off` and the parallel sub-DAG `G_par` start together;
//! * [`rta`] — **Equation 1** (the Graham-style homogeneous bound `R_hom`)
//!   and **Theorem 1** (the scenario-based heterogeneous bounds `R_het`,
//!   Equations 2–4);
//! * [`analysis`] — a one-call façade ([`HeterogeneousAnalysis`]) combining
//!   transformation, scenario classification, both bounds and a
//!   schedulability verdict;
//! * [`properties`] — executable statements of the structural invariants the
//!   proof of Theorem 1 relies on (used by the test suites and available to
//!   downstream users for auditing).
//!
//! ## The worked example of the paper (Figures 1–2)
//!
//! ```
//! use hetrta_core::HeterogeneousAnalysis;
//! use hetrta_dag::{DagBuilder, HeteroDagTask, Rational, Ticks};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DagBuilder::new();
//! let v1 = b.node("v1", Ticks::new(1));
//! let v2 = b.node("v2", Ticks::new(4));
//! let v3 = b.node("v3", Ticks::new(6));
//! let v4 = b.node("v4", Ticks::new(2));
//! let v5 = b.node("v5", Ticks::new(1));
//! let voff = b.node("v_off", Ticks::new(4));
//! b.edges([(v1, v2), (v1, v3), (v1, v4), (v4, voff), (v2, v5), (v3, v5), (voff, v5)])?;
//! let task = HeteroDagTask::new(b.build()?, voff, Ticks::new(20), Ticks::new(20))?;
//!
//! let report = HeterogeneousAnalysis::run(&task, 2)?;
//! // R_hom(τ) = len + (vol − len)/m = 8 + (18 − 8)/2 = 13  (paper, §3.2)
//! assert_eq!(report.r_hom_original(), Rational::from_integer(13));
//! // len(G') = 10 after the transformation (paper, §3.3)
//! assert_eq!(report.transformed().len_transformed(), Ticks::new(10));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod error;
pub mod federated;
pub mod multi;
pub mod properties;
pub mod rta;
pub mod transform;

pub use analysis::{AnalysisReport, HeterogeneousAnalysis};
pub use error::AnalysisError;
pub use multi::r_het_multi;
pub use rta::{r_het, r_hom, r_hom_dag, r_hom_parts, HetBound, Scenario};
pub use transform::{transform, transform_with_reachability, TransformedTask};
